// Figure 17: percentage of Wikipedia requests served within the 15 s
// timeout at each deflation level (§7.2).
#include <iostream>

#include "bench_common.hpp"
#include "workloads/wikipedia.hpp"

int main() {
  using namespace deflate;
  bench::print_header(
      "Figure 17: % requests served vs CPU deflation",
      "almost all requests served until 70% deflation; noticeable loss only "
      "beyond that");

  wl::WikipediaConfig config;
  config.duration = sim::SimTime::from_seconds(
      std::max(60.0, 300.0 * bench::bench_scale()));
  const wl::WikipediaApp app(config);

  util::Table table({"deflation_%", "requests", "served_%"});
  for (int d = 0; d <= 100; d += 10) {
    const double deflation = std::min(d / 100.0, 0.97);
    const auto result = app.run(deflation);
    table.add_row({std::to_string(d), std::to_string(result.requests),
                   util::format_double(100.0 * result.served_fraction, 1)});
  }
  table.print(std::cout);

  const auto at_70 = app.run(0.7);
  const auto at_90 = app.run(0.9);
  std::cout << "\nheadline: served "
            << util::format_double(100.0 * at_70.served_fraction, 1)
            << "% at 70% deflation vs "
            << util::format_double(100.0 * at_90.served_fraction, 1)
            << "% at 90% (paper: losses appear only past 70%)\n";
  return 0;
}
