// Micro-benchmark: fitness-based placement scan over large clusters, and
// end-to-end ClusterManager placement (flat vs sharded) at fleet scale.
#include <benchmark/benchmark.h>

#include <memory>

#include "cluster/placement.hpp"
#include "cluster/sharded_manager.hpp"
#include "util/rng.hpp"

namespace {

using deflate::cluster::HostView;
using deflate::res::ResourceVector;

std::vector<HostView> make_views(std::size_t n) {
  deflate::util::Rng rng(42);
  std::vector<HostView> views;
  views.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    HostView view;
    view.host_id = i;
    view.capacity = {48.0, 131072.0, 4000.0, 40000.0};
    view.available = {rng.uniform(0.0, 48.0), rng.uniform(0.0, 131072.0),
                      rng.uniform(0.0, 4000.0), rng.uniform(0.0, 40000.0)};
    view.deflatable = {rng.uniform(0.0, 24.0), rng.uniform(0.0, 65536.0), 0.0,
                       0.0};
    view.overcommit_ratio = rng.uniform(0.5, 2.0);
    view.feasible = rng.bernoulli(0.8);
    views.push_back(view);
  }
  return views;
}

}  // namespace

static void bench_pick_best_host(benchmark::State& state) {
  const auto views = make_views(static_cast<std::size_t>(state.range(0)));
  const ResourceVector demand(8.0, 16384.0, 100.0, 1000.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(deflate::cluster::pick_best_host(demand, views));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(bench_pick_best_host)->Arg(40)->Arg(400)->Arg(4000)->Arg(10000);

static void bench_fitness(benchmark::State& state) {
  const auto views = make_views(1);
  const ResourceVector demand(8.0, 16384.0, 100.0, 1000.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(deflate::cluster::fitness(demand, views[0]));
  }
}
BENCHMARK(bench_fitness);

// --- end-to-end manager placement: flat scan vs sharded routing ------------

namespace {

deflate::hv::VmSpec bench_spec(deflate::util::Rng& rng, std::uint64_t id) {
  deflate::hv::VmSpec spec;
  spec.id = id;
  spec.name = "vm";
  spec.vcpus = static_cast<int>(rng.uniform_int(1, 4)) * 4;
  spec.memory_mib = spec.vcpus * 2048.0;
  spec.disk_bw_mbps = 0.0;
  spec.net_bw_mbps = 0.0;
  spec.deflatable = rng.bernoulli(0.5);
  spec.priority = spec.deflatable ? 0.4 : 1.0;
  return spec;
}

std::unique_ptr<deflate::cluster::ClusterManagerBase> make_manager(
    std::size_t servers, std::size_t shards) {
  deflate::cluster::ShardedClusterConfig config;
  config.cluster.server_count = servers;
  config.cluster.server_capacity = {48.0, 128.0 * 1024.0, 1e9, 1e9};
  config.shard_count = shards;
  if (shards == 1) {
    // The /1 case measures the scheduler wrapper's overhead over the flat
    // manager, so bypass the factory's flat-degenerate shortcut.
    return std::make_unique<deflate::cluster::ShardedClusterManager>(config);
  }
  return deflate::cluster::make_cluster_manager(std::move(config));
}

}  // namespace

/// One steady-state placement (replace a resident VM with a fresh one) on
/// a fleet warmed to ~50% CPU. range(0) = servers, range(1) = shard count
/// (0 = flat manager). Fixed iteration counts keep the warm-up from being
/// re-run by the adaptive timer.
static void bench_manager_place(benchmark::State& state) {
  const auto servers = static_cast<std::size_t>(state.range(0));
  const auto shards = static_cast<std::size_t>(state.range(1));
  auto manager = make_manager(servers, shards);
  deflate::util::Rng rng(42);
  std::vector<std::uint64_t> live;
  std::uint64_t next_id = 1;
  double committed = 0.0;
  const double target = 0.5 * 48.0 * static_cast<double>(servers);
  while (committed < target) {
    const auto spec = bench_spec(rng, next_id++);
    if (manager->place_vm(spec).ok()) {
      live.push_back(spec.id);
      committed += static_cast<double>(spec.vcpus);
    }
  }

  for (auto _ : state) {
    const auto pick = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
    manager->remove_vm(live[pick]);
    live[pick] = live.back();
    live.pop_back();
    const auto spec = bench_spec(rng, next_id++);
    if (manager->place_vm(spec).ok()) live.push_back(spec.id);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bench_manager_place)
    ->Args({400, 0})
    ->Args({4000, 0})
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Args({10000, 4})
    ->Args({10000, 16})
    ->Args({10000, 64})
    ->Iterations(2000)
    ->Unit(benchmark::kMicrosecond);
