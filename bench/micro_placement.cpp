// Micro-benchmark: fitness-based placement scan over large clusters.
#include <benchmark/benchmark.h>

#include "cluster/placement.hpp"
#include "util/rng.hpp"

namespace {

using deflate::cluster::HostView;
using deflate::res::ResourceVector;

std::vector<HostView> make_views(std::size_t n) {
  deflate::util::Rng rng(42);
  std::vector<HostView> views;
  views.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    HostView view;
    view.host_id = i;
    view.capacity = {48.0, 131072.0, 4000.0, 40000.0};
    view.available = {rng.uniform(0.0, 48.0), rng.uniform(0.0, 131072.0),
                      rng.uniform(0.0, 4000.0), rng.uniform(0.0, 40000.0)};
    view.deflatable = {rng.uniform(0.0, 24.0), rng.uniform(0.0, 65536.0), 0.0,
                       0.0};
    view.overcommit_ratio = rng.uniform(0.5, 2.0);
    view.feasible = rng.bernoulli(0.8);
    views.push_back(view);
  }
  return views;
}

}  // namespace

static void bench_pick_best_host(benchmark::State& state) {
  const auto views = make_views(static_cast<std::size_t>(state.range(0)));
  const ResourceVector demand(8.0, 16384.0, 100.0, 1000.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(deflate::cluster::pick_best_host(demand, views));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(bench_pick_best_host)->Arg(40)->Arg(400)->Arg(4000)->Arg(10000);

static void bench_fitness(benchmark::State& state) {
  const auto views = make_views(1);
  const ResourceVector demand(8.0, 16384.0, 100.0, 1000.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(deflate::cluster::fitness(demand, views[0]));
  }
}
BENCHMARK(bench_fitness);
