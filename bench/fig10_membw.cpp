// Figure 10: memory-bandwidth utilization of the Alibaba-like containers —
// the proxy metric showing the *true* memory deflation headroom (§3.2.2).
#include <iostream>

#include "analysis/feasibility.hpp"
#include "bench_common.hpp"

int main() {
  using namespace deflate;
  bench::print_header(
      "Figure 10: memory-bandwidth utilization",
      "mean memory-bandwidth utilization below 0.1%, maximum around 1% — "
      "applications do not touch RAM in proportion to their allocations");

  const auto containers = bench::container_trace();
  const auto stats = analysis::container_utilization_stats(
      containers, analysis::memory_bw_series);

  util::Table table({"metric", "value_%"});
  table.add_row({"mean", util::format_double(100.0 * stats.mean(), 4)});
  table.add_row({"stddev", util::format_double(100.0 * stats.stddev(), 4)});
  table.add_row({"max", util::format_double(100.0 * stats.max(), 4)});
  table.print(std::cout);

  std::cout << "\nfraction-of-time above deflated bandwidth allocation:\n";
  util::Table box_table({"deflation_%", "median", "q3", "max"});
  for (int d = 10; d <= 90; d += 20) {
    const auto box = analysis::container_underallocation_box(
        containers, analysis::memory_bw_series, d / 100.0);
    box_table.add_row_labeled(std::to_string(d), {box.median, box.q3, box.max});
  }
  box_table.print(std::cout);
  std::cout << "\nheadline: mean "
            << util::format_double(100.0 * stats.mean(), 3) << "% (paper: "
            << "<0.1%), max " << util::format_double(100.0 * stats.max(), 2)
            << "% (paper: ~1%)\n";
  return 0;
}
