// Figure 16: Wikipedia response-time distribution vs CPU deflation
// (30-core VM, 800 req/s, 15 s timeout; §7.2).
#include <iostream>

#include "bench_common.hpp"
#include "workloads/wikipedia.hpp"

int main() {
  using namespace deflate;
  bench::print_header(
      "Figure 16: Wikipedia response times under CPU deflation",
      "response time flat until ~70% deflation; mean 0.3s undeflated, "
      "~0.45s @50%, ~0.6s @80%; p99 6.8s -> 9.7s @80% (+43%)");

  wl::WikipediaConfig config;
  config.duration = sim::SimTime::from_seconds(
      std::max(60.0, 300.0 * bench::bench_scale()));
  const wl::WikipediaApp app(config);

  util::Table table({"deflation_%", "cores", "mean_s", "p50_s", "p90_s",
                     "p99_s", "cpu_util"});
  for (const int d : {0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 97}) {
    const double deflation = d / 100.0;
    const auto result = app.run(deflation);
    const double cores = std::max(1.0, 30.0 * (1.0 - deflation));
    table.add_row_labeled(std::to_string(d),
                          {cores, result.latency.mean, result.latency.p50,
                           result.latency.p90, result.latency.p99,
                           result.cpu_utilization});
  }
  table.print(std::cout);

  const auto base = app.run(0.0);
  const auto at_80 = app.run(0.8);
  std::cout << "\nheadline: mean " << util::format_double(base.latency.mean, 2)
            << "s -> " << util::format_double(at_80.latency.mean, 2)
            << "s at 80% deflation; p99 +"
            << util::format_double(
                   100.0 * (at_80.latency.p99 / base.latency.p99 - 1.0), 0)
            << "% (paper: +43%)\n";
  return 0;
}
