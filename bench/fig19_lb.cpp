// Figure 19: deflation-aware load balancing vs vanilla HAProxy-style WRR
// for three Wikipedia replicas, two of them deflatable (§7.3).
#include <iostream>

#include "bench_common.hpp"
#include "workloads/load_balancer.hpp"

int main() {
  using namespace deflate;
  bench::print_header(
      "Figure 19: deflation-aware load balancer response times",
      "the deflation-aware balancer yields 15-40% lower 90th-percentile "
      "response times at 40-80% deflation; means lower or comparable");

  wl::LbConfig config;
  config.duration = sim::SimTime::from_seconds(
      std::max(90.0, 300.0 * bench::bench_scale()));
  const wl::LbExperiment experiment(config);

  util::Table table({"deflation_%", "mean_vanilla_s", "mean_aware_s",
                     "p90_vanilla_s", "p90_aware_s", "tail_improvement_%"});
  for (int d = 0; d <= 80; d += 10) {
    const auto vanilla = experiment.run(d / 100.0, /*deflation_aware=*/false);
    const auto aware = experiment.run(d / 100.0, /*deflation_aware=*/true);
    const double improvement =
        vanilla.latency.p90 > 0.0
            ? 100.0 * (1.0 - aware.latency.p90 / vanilla.latency.p90)
            : 0.0;
    table.add_row_labeled(std::to_string(d),
                          {vanilla.latency.mean, aware.latency.mean,
                           vanilla.latency.p90, aware.latency.p90,
                           improvement},
                          2);
  }
  table.print(std::cout);

  const auto vanilla_60 = experiment.run(0.6, false);
  const auto aware_60 = experiment.run(0.6, true);
  std::cout << "\nheadline: @60% deflation the aware balancer cuts p90 by "
            << util::format_double(
                   100.0 * (1.0 - aware_60.latency.p90 / vanilla_60.latency.p90),
                   0)
            << "% (paper: 15-40% at 40-80%)\n";
  return 0;
}
