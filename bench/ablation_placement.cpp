// Ablation: placement heuristic (DESIGN.md §5 item 2). §5.2 notes that
// "policies such as best-fit or first-fit can be used"; the paper's
// fitness policy adds shape matching and the deflatable/overcommitted
// load-balancing term.
#include <iostream>

#include "cluster_bench.hpp"

int main() {
  using namespace deflate;
  bench::print_header(
      "Ablation: placement strategy at 50% overcommitment",
      "fitness placement balances deflation pressure across servers; "
      "first/best-fit concentrate it and deflate resident VMs deeper");

  const auto records = bench::cluster_trace();
  const auto base = bench::base_sim_config();
  const std::size_t baseline_servers =
      simcluster::TraceDrivenSimulator::minimum_feasible_servers(records, base);
  const std::size_t servers = bench::servers_for(baseline_servers, 0.5);
  std::cout << "trace: " << records.size() << " VMs, " << servers
            << " servers (50% overcommit)\n\n";

  const cluster::PlacementStrategy strategies[] = {
      cluster::PlacementStrategy::Fitness, cluster::PlacementStrategy::FirstFit,
      cluster::PlacementStrategy::BestFit, cluster::PlacementStrategy::WorstFit};

  std::vector<bench::SweepCase> cases;
  for (const auto strategy : strategies) {
    bench::SweepCase c;
    c.config = base;
    c.config.placement = strategy;
    c.config.server_count = servers;
    cases.push_back(c);
  }
  bench::run_sweep(records, cases);

  util::Table table({"strategy", "failure_prob_%", "throughput_loss_%",
                     "mean_deflation_%"});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& metrics = cases[i].metrics;
    table.add_row_labeled(cluster::placement_strategy_name(strategies[i]),
                          {100.0 * metrics.failure_probability,
                           100.0 * metrics.throughput_loss,
                           100.0 * metrics.mean_cpu_deflation},
                          2);
  }
  table.print(std::cout);
  return 0;
}
