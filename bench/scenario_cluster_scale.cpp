// Scenario: placement throughput at fleet scale — flat manager vs the
// sharded scheduler at increasing shard counts, then the sharded
// scheduler's worker-thread sweep on a 100k-server fleet (the ROADMAP's
// "Parallel simulation core + data-oriented hot paths" perf item).
//
// Part 1 (sharding): each configuration owns an identical 10k fleet, is
// warmed to ~50% CPU with the same seeded arrival stream, then runs a
// steady-state churn of place+remove pairs. The flat manager scans all 10k
// rows per placement; shards cut the scan to fleet/shards plus an
// O(shards) routing step.
//
// Part 2 (threading): a 100k-server fleet under 16 shards, swept across
// worker-thread counts. The in-shard SoA placement scan chunks across the
// pool and dirty shards refresh concurrently at the flush barrier; results
// are bit-identical at every thread count (test_parallel_parity), so the
// sweep only moves wall-clock time. Each run prints the scoped-profiler
// phase breakdown.
//
//   $ ./build/bench_scenario_cluster_scale            # full 10k/100k fleets
//   $ DEFLATE_BENCH_SCALE=0.1 ./build/bench_...       # quick smoke
#include <chrono>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "cluster/sharded_manager.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace deflate;

hv::VmSpec churn_spec(util::Rng& rng, std::uint64_t id) {
  static const int kCores[] = {4, 8, 8, 16, 24};
  hv::VmSpec spec;
  spec.id = id;
  spec.name = "vm";
  spec.vcpus = kCores[rng.uniform_int(0, 4)];
  spec.memory_mib = spec.vcpus * 2048.0;
  spec.disk_bw_mbps = 0.0;
  spec.net_bw_mbps = 0.0;
  spec.deflatable = rng.bernoulli(0.5);
  spec.priority =
      spec.deflatable ? 0.2 * static_cast<double>(rng.uniform_int(1, 4)) : 1.0;
  return spec;
}

struct RunResult {
  double fill_seconds = 0.0;
  double churn_seconds = 0.0;
  double placements_per_second = 0.0;
  std::uint64_t rejections = 0;
};

RunResult run(cluster::ClusterManagerBase& manager, std::size_t servers,
              std::size_t churn_ops, double fill_fraction) {
  util::Rng rng(7);
  std::vector<std::uint64_t> live;
  std::uint64_t next_id = 1;

  using clock = std::chrono::steady_clock;
  const auto fill_start = clock::now();
  const double target_cores =
      fill_fraction * 48.0 * static_cast<double>(servers);
  double committed = 0.0;
  while (committed < target_cores) {
    const hv::VmSpec spec = churn_spec(rng, next_id++);
    if (manager.place_vm(spec).ok()) {
      live.push_back(spec.id);
      committed += static_cast<double>(spec.vcpus);
    }
  }
  const auto churn_start = clock::now();

  // Steady state: replace a random resident VM with a fresh arrival. One
  // placement (and one departure) per op; views flush per 64-op "tick".
  for (std::size_t op = 0; op < churn_ops; ++op) {
    const std::size_t pick = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
    manager.remove_vm(live[pick]);
    live[pick] = live.back();
    live.pop_back();
    const hv::VmSpec spec = churn_spec(rng, next_id++);
    if (manager.place_vm(spec).ok()) live.push_back(spec.id);
    if (op % 64 == 0) manager.flush_views();
  }
  const auto churn_end = clock::now();

  const auto seconds = [](auto from, auto to) {
    return std::chrono::duration<double>(to - from).count();
  };
  RunResult result;
  result.fill_seconds = seconds(fill_start, churn_start);
  result.churn_seconds = seconds(churn_start, churn_end);
  result.placements_per_second =
      result.churn_seconds > 0.0
          ? static_cast<double>(churn_ops) / result.churn_seconds
          : 0.0;
  result.rejections = manager.stats().rejections;
  return result;
}

void shard_sweep() {
  const std::size_t servers = bench::scaled(10000);
  const std::size_t churn_ops = bench::scaled(4000);
  std::cout << "-- shard sweep --\n"
            << "fleet: " << servers << " servers (48 CPUs / 128 GB), warm to "
            << "50% CPU, then " << churn_ops << " place+remove churn ops\n\n";

  cluster::ClusterConfig fleet;
  fleet.server_count = servers;
  fleet.server_capacity = {48.0, 128.0 * 1024.0, 1e9, 1e9};

  struct Case {
    std::string label;
    std::size_t shards;  // 0 = flat ClusterManager
  };
  const std::vector<Case> cases = {
      {"flat scan", 0},  {"sharded x2", 2},  {"sharded x4", 4},
      {"sharded x8", 8}, {"sharded x16", 16}, {"sharded x32", 32},
  };

  util::Table table({"configuration", "fill_s", "churn_s", "placements_per_s",
                     "speedup_vs_flat", "rejections"});
  double flat_throughput = 0.0;
  for (const Case& c : cases) {
    cluster::ShardedClusterConfig config;
    config.cluster = fleet;
    config.shard_count = c.shards;  // <= 1 builds the flat manager
    std::unique_ptr<cluster::ClusterManagerBase> manager =
        cluster::make_cluster_manager(config);
    const RunResult result = run(*manager, servers, churn_ops, 0.5);
    if (c.shards == 0) flat_throughput = result.placements_per_second;
    const double speedup = flat_throughput > 0.0
                               ? result.placements_per_second / flat_throughput
                               : 0.0;
    table.add_row({c.label, util::format_double(result.fill_seconds, 2),
                   util::format_double(result.churn_seconds, 2),
                   util::format_double(result.placements_per_second, 0),
                   util::format_double(speedup, 2),
                   std::to_string(result.rejections)});
  }
  table.print(std::cout);
}

void thread_sweep() {
  const std::size_t servers = bench::scaled(100000);
  const std::size_t churn_ops = bench::scaled(2000);
  const std::size_t shards = 16;
  std::cout << "\n-- worker-thread sweep --\n"
            << "fleet: " << servers << " servers under " << shards
            << " shards, warm to 30% CPU, then " << churn_ops
            << " churn ops per thread count\n"
            << "(identical decisions at every thread count; only wall-clock "
               "moves)\n\n";

  cluster::ClusterConfig fleet;
  fleet.server_count = servers;
  fleet.server_capacity = {48.0, 128.0 * 1024.0, 1e9, 1e9};

  util::Table table({"worker_threads", "fill_s", "churn_s",
                     "placements_per_s", "speedup_vs_1t", "rejections"});
  const std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
  double base_throughput = 0.0;
  double speedup_at_8 = 0.0;
  for (const std::size_t threads : thread_counts) {
    cluster::ShardedClusterConfig config;
    config.cluster = fleet;
    config.shard_count = shards;
    config.worker_threads = threads;
    std::unique_ptr<cluster::ClusterManagerBase> manager =
        cluster::make_cluster_manager(config);
    util::Profiler::instance().reset();
    const RunResult result = run(*manager, servers, churn_ops, 0.3);
    if (threads == 1) base_throughput = result.placements_per_second;
    const double speedup = base_throughput > 0.0
                               ? result.placements_per_second / base_throughput
                               : 0.0;
    if (threads == 8) speedup_at_8 = speedup;
    table.add_row({std::to_string(threads),
                   util::format_double(result.fill_seconds, 2),
                   util::format_double(result.churn_seconds, 2),
                   util::format_double(result.placements_per_second, 0),
                   util::format_double(speedup, 2),
                   std::to_string(result.rejections)});
    std::cout << "[threads=" << threads << "]\n";
    bench::print_profile();
  }
  table.print(std::cout);

  // The >= 3x-at-8-threads target only means something when the machine
  // has 8 cores to run them on; smaller hosts (CI runners, laptops) report
  // the sweep without judging it.
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores >= 8) {
    std::cout << "\nplacement-loop speedup at 8 threads: "
              << util::format_double(speedup_at_8, 2)
              << "x (target >= 3x) -> "
              << (speedup_at_8 >= 3.0 ? "PASS" : "MISS") << "\n";
  } else {
    std::cout << "\nplacement-loop speedup at 8 threads: "
              << util::format_double(speedup_at_8, 2) << "x (target >= 3x "
              << "not judged: only " << cores << " hardware threads)\n";
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Scenario: fleet-scale placement throughput (sharded + threaded)",
      "sharding turns the O(fleet) placement scan into O(fleet/shards); "
      "the SoA scan table and the shared worker pool then parallelize the "
      "remaining in-shard scan and the tick-barrier view drains");

  shard_sweep();
  thread_sweep();

  std::cout << "\nPower-of-two-choices routing consults two cached shard "
               "aggregates per placement;\nonly the chosen shard runs the "
               "exact fitness scan, so the per-placement cost\ndrops from "
               "O(fleet) to O(fleet/shards) + O(shards). Worker threads "
               "chunk that\nscan and the flush-barrier refresh without "
               "changing any decision.\n";
  return 0;
}
