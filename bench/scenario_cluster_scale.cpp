// Scenario: placement throughput on a 10,000-server fleet, flat manager
// vs the sharded scheduler at increasing shard counts (the ROADMAP's
// "Sharded ClusterManager for 10k+ servers" perf item).
//
// Each configuration owns an identical fleet, is warmed to ~50% CPU with
// the same seeded arrival stream, then runs a steady-state churn of
// place+remove pairs. The flat manager scans all 10k views per placement;
// shards cut the scan to fleet/shards plus an O(shards) routing step, so
// throughput should scale near-linearly until the routing overhead and
// shard imbalance bite.
//
//   $ ./build/bench_scenario_cluster_scale            # full 10k fleet
//   $ DEFLATE_BENCH_SCALE=0.1 ./build/bench_...       # quick smoke
#include <chrono>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cluster/sharded_manager.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace deflate;

hv::VmSpec churn_spec(util::Rng& rng, std::uint64_t id) {
  static const int kCores[] = {4, 8, 8, 16, 24};
  hv::VmSpec spec;
  spec.id = id;
  spec.name = "vm";
  spec.vcpus = kCores[rng.uniform_int(0, 4)];
  spec.memory_mib = spec.vcpus * 2048.0;
  spec.disk_bw_mbps = 0.0;
  spec.net_bw_mbps = 0.0;
  spec.deflatable = rng.bernoulli(0.5);
  spec.priority =
      spec.deflatable ? 0.2 * static_cast<double>(rng.uniform_int(1, 4)) : 1.0;
  return spec;
}

struct RunResult {
  double fill_seconds = 0.0;
  double churn_seconds = 0.0;
  double placements_per_second = 0.0;
  std::uint64_t rejections = 0;
};

RunResult run(cluster::ClusterManagerBase& manager, std::size_t servers,
              std::size_t churn_ops) {
  util::Rng rng(7);
  std::vector<std::uint64_t> live;
  std::uint64_t next_id = 1;

  using clock = std::chrono::steady_clock;
  const auto fill_start = clock::now();
  const double target_cores = 0.5 * 48.0 * static_cast<double>(servers);
  double committed = 0.0;
  while (committed < target_cores) {
    const hv::VmSpec spec = churn_spec(rng, next_id++);
    if (manager.place_vm(spec).ok()) {
      live.push_back(spec.id);
      committed += static_cast<double>(spec.vcpus);
    }
  }
  const auto churn_start = clock::now();

  // Steady state: replace a random resident VM with a fresh arrival. One
  // placement (and one departure) per op; views flush per 64-op "tick".
  for (std::size_t op = 0; op < churn_ops; ++op) {
    const std::size_t pick = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
    manager.remove_vm(live[pick]);
    live[pick] = live.back();
    live.pop_back();
    const hv::VmSpec spec = churn_spec(rng, next_id++);
    if (manager.place_vm(spec).ok()) live.push_back(spec.id);
    if (op % 64 == 0) manager.flush_views();
  }
  const auto churn_end = clock::now();

  const auto seconds = [](auto from, auto to) {
    return std::chrono::duration<double>(to - from).count();
  };
  RunResult result;
  result.fill_seconds = seconds(fill_start, churn_start);
  result.churn_seconds = seconds(churn_start, churn_end);
  result.placements_per_second =
      result.churn_seconds > 0.0
          ? static_cast<double>(churn_ops) / result.churn_seconds
          : 0.0;
  result.rejections = manager.stats().rejections;
  return result;
}

}  // namespace

int main() {
  bench::print_header(
      "Scenario: 10k-server placement throughput (sharded vs flat)",
      "sharding the fleet turns the O(fleet) placement scan into "
      "O(fleet/shards), scaling interactive placement to 10k+ servers");

  const std::size_t servers = bench::scaled(10000);
  const std::size_t churn_ops = bench::scaled(4000);
  std::cout << "fleet: " << servers << " servers (48 CPUs / 128 GB), warm to "
            << "50% CPU, then " << churn_ops << " place+remove churn ops\n\n";

  cluster::ClusterConfig fleet;
  fleet.server_count = servers;
  fleet.server_capacity = {48.0, 128.0 * 1024.0, 1e9, 1e9};

  struct Case {
    std::string label;
    std::size_t shards;  // 0 = flat ClusterManager
  };
  const std::vector<Case> cases = {
      {"flat scan", 0},  {"sharded x2", 2},  {"sharded x4", 4},
      {"sharded x8", 8}, {"sharded x16", 16}, {"sharded x32", 32},
  };

  util::Table table({"configuration", "fill_s", "churn_s", "placements_per_s",
                     "speedup_vs_flat", "rejections"});
  double flat_throughput = 0.0;
  for (const Case& c : cases) {
    cluster::ShardedClusterConfig config;
    config.cluster = fleet;
    config.shard_count = c.shards;  // <= 1 builds the flat manager
    std::unique_ptr<cluster::ClusterManagerBase> manager =
        cluster::make_cluster_manager(config);
    const RunResult result = run(*manager, servers, churn_ops);
    if (c.shards == 0) flat_throughput = result.placements_per_second;
    const double speedup = flat_throughput > 0.0
                               ? result.placements_per_second / flat_throughput
                               : 0.0;
    table.add_row({c.label, util::format_double(result.fill_seconds, 2),
                   util::format_double(result.churn_seconds, 2),
                   util::format_double(result.placements_per_second, 0),
                   util::format_double(speedup, 2),
                   std::to_string(result.rejections)});
  }
  table.print(std::cout);

  std::cout << "\nPower-of-two-choices routing consults two cached shard "
               "aggregates per placement;\nonly the chosen shard runs the "
               "exact fitness scan, so the per-placement cost\ndrops from "
               "O(fleet) to O(fleet/shards) + O(shards).\n";
  return 0;
}
