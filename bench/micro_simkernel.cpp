// Micro-benchmark: discrete-event kernel throughput (events/second bounds
// every queueing simulation in the repo).
#include <benchmark/benchmark.h>

#include "sim/simulator.hpp"

static void bench_schedule_run(benchmark::State& state) {
  using namespace deflate::sim;
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator simulator;
    for (int i = 0; i < n; ++i) {
      simulator.schedule_at(SimTime::from_micros(i % 1000), [] {});
    }
    benchmark::DoNotOptimize(simulator.run());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(bench_schedule_run)->Arg(1000)->Arg(100000);

static void bench_event_chain(benchmark::State& state) {
  using namespace deflate::sim;
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator simulator;
    int remaining = n;
    std::function<void()> next = [&] {
      if (--remaining > 0) {
        simulator.schedule_in(SimTime::from_micros(1), next);
      }
    };
    simulator.schedule_in(SimTime::from_micros(1), next);
    simulator.run();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(bench_event_chain)->Arg(1000)->Arg(100000);

static void bench_cancellation(benchmark::State& state) {
  using namespace deflate::sim;
  for (auto _ : state) {
    Simulator simulator;
    std::vector<EventHandle> handles;
    handles.reserve(1000);
    for (int i = 0; i < 1000; ++i) {
      handles.push_back(
          simulator.schedule_at(SimTime::from_micros(i), [] {}));
    }
    for (auto& handle : handles) handle.cancel();
    benchmark::DoNotOptimize(simulator.run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(bench_cancellation);
