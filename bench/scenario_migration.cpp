// Migration-cost scenario: the paper's headline argument, reproduced.
//
// Deflation beats checkpoint/migration for transient revocations *because*
// migration has a real time cost: streaming a VM's memory over a finite
// link takes longer than the provider's revocation warning. This bench
// runs the same trace, fleet and revocation schedule under shrinking
// warning times with three timed strategies (src/cluster/migration):
//
//   * migration — full-footprint pre-copy; VMs that cannot finish
//     streaming before the warning expires are lost;
//   * deflation — the VM deflates first and streams only the deflated
//     footprint, fitting warnings full-size migration cannot;
//   * hybrid    — deflation + checkpointing: whatever still misses the
//     deadline is checkpointed and relaunched (possibly deflated) on a
//     surviving server, trading kills for downtime.
//
// Gates (exit 1 on regression; CI smokes this binary):
//   1. at the shortest warning, deflation kills strictly fewer VMs and
//      loses less throughput than pure migration;
//   2. the hybrid kills no more than deflation (expected: zero);
//   3. `--migration-bandwidth 0`-style instant migration (the sentinel)
//      is bit-identical to the legacy free re-place path.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "cluster_bench.hpp"
#include "transient/revocation.hpp"

namespace {

using namespace deflate;

struct Strategy {
  const char* label;
  bool deflate_before_transfer;
  bool checkpoint_fallback;
};

constexpr Strategy kStrategies[] = {
    {"migration", false, false},
    {"deflation", true, false},
    {"hybrid", true, true},
};

}  // namespace

int main() {
  bench::print_header(
      "Scenario: migration time cost under shrinking revocation warnings",
      "with a finite streaming bandwidth, pure migration loses the VMs "
      "that cannot finish inside the warning; deflation shrinks the "
      "footprint to fit, and the deflation+checkpointing hybrid saves the "
      "rest at a downtime cost");

  const auto records = bench::cluster_trace();
  auto base = bench::base_sim_config();
  // 20% headroom below peak so migrations have somewhere to land.
  base.server_count = simcluster::TraceDrivenSimulator::servers_for_overcommit(
      records, base.server_capacity, -0.2);
  base.market_enabled = true;
  base.market.seed = 7;
  base.market.revocation.model =
      transient::RevocationModel::TemporallyConstrained;
  base.market.portfolio.on_demand_floor = 0.2;
  std::cout << "trace: " << records.size() << " VMs, fleet "
            << base.server_count
            << " servers; temporally-constrained revocations, 256 MiB/s "
               "link, 64 MiB/s dirty rate\n\n";

  // Instant-sentinel baseline: bandwidth 0 must reproduce the legacy
  // free-re-place path exactly, warning or not.
  auto legacy = base;
  auto sentinel = base;
  sentinel.market.revocation.warning_hours = 120.0 / 3600.0;
  sentinel.migration.model.bandwidth_mib_per_sec = 0.0;

  const std::vector<double> warnings_secs{600.0, 240.0, 120.0, 60.0};
  std::vector<bench::SweepCase> cases;
  cases.push_back({0.0, legacy, {}});
  cases.push_back({0.0, sentinel, {}});
  for (const double warning : warnings_secs) {
    for (const Strategy& strategy : kStrategies) {
      bench::SweepCase c;
      c.config = base;
      c.config.market.revocation.warning_hours = warning / 3600.0;
      c.config.migration.model.bandwidth_mib_per_sec = 256.0;
      c.config.migration.model.dirty_mib_per_sec = 64.0;
      c.config.migration.deflate_before_transfer =
          strategy.deflate_before_transfer;
      c.config.migration.checkpoint_fallback = strategy.checkpoint_fallback;
      cases.push_back(c);
    }
  }
  bench::run_sweep(records, cases);

  const auto& legacy_m = cases[0].metrics;
  const auto& sentinel_m = cases[1].metrics;

  util::Table table({"warning_s", "strategy", "revocations", "live_migr",
                     "ckpt_restore", "kills", "tput_loss_%", "downtime_h",
                     "fleet_cost"});
  table.add_row({"-", "instant (legacy)",
                 std::to_string(legacy_m.revocations),
                 "-", "-", std::to_string(legacy_m.revocation_kills),
                 util::format_double(100 * legacy_m.throughput_loss, 3),
                 "0", util::format_double(legacy_m.cost.total_cost(), 0)});
  std::size_t case_index = 2;
  for (const double warning : warnings_secs) {
    for (const Strategy& strategy : kStrategies) {
      const auto& m = cases[case_index++].metrics;
      table.add_row({util::format_double(warning, 0), strategy.label,
                     std::to_string(m.revocations),
                     std::to_string(m.live_migrations),
                     std::to_string(m.checkpoint_restores),
                     std::to_string(m.checkpoint_kills),
                     util::format_double(100 * m.throughput_loss, 3),
                     util::format_double(m.migration_downtime_hours, 2),
                     util::format_double(m.cost.total_cost(), 0)});
    }
  }
  table.print(std::cout);

  // --- gates -----------------------------------------------------------------
  const std::size_t last = cases.size() - 3;  // shortest warning triplet
  const auto& migration = cases[last].metrics;      // kStrategies[0]
  const auto& deflation = cases[last + 1].metrics;  // kStrategies[1]
  const auto& hybrid = cases[last + 2].metrics;     // kStrategies[2]

  const bool sentinel_ok =
      sentinel_m.revocations == legacy_m.revocations &&
      sentinel_m.revocation_migrations == legacy_m.revocation_migrations &&
      sentinel_m.revocation_kills == legacy_m.revocation_kills &&
      sentinel_m.throughput_loss == legacy_m.throughput_loss &&
      sentinel_m.cost.total_cost() == legacy_m.cost.total_cost();
  const bool deflation_ok =
      deflation.checkpoint_kills < migration.checkpoint_kills &&
      deflation.throughput_loss < migration.throughput_loss;
  const bool hybrid_ok = hybrid.checkpoint_kills <= deflation.checkpoint_kills;

  std::cout << "\ninstant sentinel (bandwidth 0) vs legacy path: "
            << (sentinel_ok ? "bit-identical" : "MISMATCH") << "\n"
            << "shortest warning (" << warnings_secs.back() << " s): deflation "
            << (deflation_ok ? "kills fewer VMs and loses less throughput "
                               "than pure migration"
                             : "NO ADVANTAGE over migration — REGRESSION")
            << "\nhybrid at the shortest warning: "
            << hybrid.checkpoint_kills << " kills vs deflation's "
            << deflation.checkpoint_kills
            << (hybrid_ok ? "" : " — REGRESSION") << "\n";
  bench::print_profile();
  return sentinel_ok && deflation_ok && hybrid_ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
