// Figure 5: box plot of the fraction of time VMs' CPU usage exceeds the
// deflated allocation, across the whole Azure-like population (§3.2.1).
#include <iostream>

#include "analysis/feasibility.hpp"
#include "bench_common.hpp"

int main() {
  using namespace deflate;
  bench::print_header(
      "Figure 5: fraction of time CPU usage exceeds the deflated allocation",
      "even at 50% deflation the median VM spends ~80% of time below the "
      "deflated allocation (i.e. median fraction above ~0.2 or less)");

  const auto records = bench::feasibility_trace();
  std::cout << "population: " << records.size() << " VMs\n\n";

  util::Table table({"deflation_%", "min", "q1", "median", "q3", "max"});
  for (int d = 10; d <= 90; d += 10) {
    const auto box =
        analysis::cpu_underallocation_box(records, d / 100.0);
    table.add_row_labeled(std::to_string(d),
                          {box.min, box.q1, box.median, box.q3, box.max});
  }
  table.print(std::cout);

  const auto at_50 = analysis::cpu_underallocation_box(records, 0.5);
  std::cout << "\nheadline: at 50% deflation the median VM is underallocated "
            << util::format_double(100.0 * at_50.median, 1)
            << "% of the time (paper: ~20%)\n";
  return 0;
}
