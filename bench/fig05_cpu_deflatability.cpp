// Figure 5: box plot of the fraction of time VMs' CPU usage exceeds the
// deflated allocation, across the whole Azure-like population (§3.2.1).
// Streams the trace in one pass — the population is never materialized.
#include <iostream>

#include "analysis/feasibility.hpp"
#include "bench_common.hpp"

int main() {
  using namespace deflate;
  bench::print_header(
      "Figure 5: fraction of time CPU usage exceeds the deflated allocation",
      "even at 50% deflation the median VM spends ~80% of time below the "
      "deflated allocation (i.e. median fraction above ~0.2 or less)");

  const auto stream = bench::feasibility_stream();
  std::cout << "population: " << stream->size() << " VMs (streamed)\n\n";

  const std::vector<double> levels = bench::deflation_levels();
  const auto boxes =
      analysis::cpu_underallocation_boxes(*stream, levels).front();

  util::Table table({"deflation_%", "min", "q1", "median", "q3", "max"});
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const auto& box = boxes[i];
    table.add_row_labeled(std::to_string(10 * static_cast<int>(i + 1)),
                          {box.min, box.q1, box.median, box.q3, box.max});
  }
  table.print(std::cout);

  const auto& at_50 = boxes[4];  // levels[4] == 0.5
  std::cout << "\nheadline: at 50% deflation the median VM is underallocated "
            << util::format_double(100.0 * at_50.median, 1)
            << "% of the time (paper: ~20%)\n";
  return 0;
}
