// Figure 8: deflatability by 95th-percentile CPU usage — peak load is a
// coarse indicator of a VM's deflatability (§3.2.1).
#include <iostream>

#include "analysis/feasibility.hpp"
#include "bench_common.hpp"

int main() {
  using namespace deflate;
  bench::print_header(
      "Figure 8: fraction of time above deflated allocation, by P95 CPU",
      "up to 20% deflation every bucket except peak>80% has enough slack; "
      "higher peak loads imply greater impact when deflated");

  const auto records = bench::feasibility_trace();

  const trace::PeakBucket buckets[] = {
      trace::PeakBucket::Low, trace::PeakBucket::Moderate,
      trace::PeakBucket::High, trace::PeakBucket::VeryHigh};

  for (const auto bucket : buckets) {
    util::Table table({"deflation_%", "min", "q1", "median", "q3", "max"});
    for (int d = 10; d <= 90; d += 10) {
      const auto box = analysis::cpu_underallocation_box(
          records, d / 100.0, [&](const trace::VmRecord& record) {
            return trace::peak_bucket_for_p95(record.p95_cpu()) == bucket;
          });
      table.add_row_labeled(std::to_string(d),
                            {box.min, box.q1, box.median, box.q3, box.max});
    }
    std::cout << "-- bucket: " << trace::peak_bucket_name(bucket) << " --\n";
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "headline @20% deflation (medians): ";
  for (const auto bucket : buckets) {
    const auto box = analysis::cpu_underallocation_box(
        records, 0.2, [&](const trace::VmRecord& record) {
          return trace::peak_bucket_for_p95(record.p95_cpu()) == bucket;
        });
    std::cout << trace::peak_bucket_name(bucket) << "="
              << util::format_double(100.0 * box.median, 1) << "%  ";
  }
  std::cout << "(paper: ~0 for all but >80%)\n";
  return 0;
}
