// Figure 8: deflatability by 95th-percentile CPU usage — peak load is a
// coarse indicator of a VM's deflatability (§3.2.1).
// Streams the trace in one pass — the population is never materialized.
#include <iostream>

#include "analysis/feasibility.hpp"
#include "bench_common.hpp"

int main() {
  using namespace deflate;
  bench::print_header(
      "Figure 8: fraction of time above deflated allocation, by P95 CPU",
      "up to 20% deflation every bucket except peak>80% has enough slack; "
      "higher peak loads imply greater impact when deflated");

  const trace::PeakBucket buckets[] = {
      trace::PeakBucket::Low, trace::PeakBucket::Moderate,
      trace::PeakBucket::High, trace::PeakBucket::VeryHigh};

  const auto stream = bench::feasibility_stream();
  const std::vector<double> levels = bench::deflation_levels();
  const auto boxes = analysis::cpu_underallocation_boxes(
      *stream, levels, std::size(buckets), [&](const trace::VmRecord& record) {
        const auto bucket = trace::peak_bucket_for_p95(record.p95_cpu());
        for (std::size_t b = 0; b < std::size(buckets); ++b) {
          if (bucket == buckets[b]) return static_cast<int>(b);
        }
        return -1;
      });

  for (std::size_t b = 0; b < std::size(buckets); ++b) {
    util::Table table({"deflation_%", "min", "q1", "median", "q3", "max"});
    for (std::size_t i = 0; i < levels.size(); ++i) {
      const auto& box = boxes[b][i];
      table.add_row_labeled(std::to_string(10 * static_cast<int>(i + 1)),
                            {box.min, box.q1, box.median, box.q3, box.max});
    }
    std::cout << "-- bucket: " << trace::peak_bucket_name(buckets[b]) << " --\n";
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "headline @20% deflation (medians): ";
  for (std::size_t b = 0; b < std::size(buckets); ++b) {
    std::cout << trace::peak_bucket_name(buckets[b]) << "="
              << util::format_double(100.0 * boxes[b][1].median, 1)
              << "%  ";  // levels[1] == 0.2
  }
  std::cout << "(paper: ~0 for all but >80%)\n";
  return 0;
}
