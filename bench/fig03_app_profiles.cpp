// Figure 3: normalized performance when all resources (CPU, memory, I/O)
// are deflated in the same proportion, for SpecJBB, Kcompile, Memcached.
#include <iostream>

#include "bench_common.hpp"
#include "core/perf_model.hpp"

int main() {
  using namespace deflate;
  bench::print_header(
      "Figure 3: application performance under uniform all-resource deflation",
      "SpecJBB shows no slack; Kcompile degrades gradually; Memcached "
      "tolerates ~50% deflation with negligible loss");

  const auto specjbb = core::PerfCurve::specjbb();
  const auto kcompile = core::PerfCurve::kcompile();
  const auto memcached = core::PerfCurve::memcached();

  util::Table table({"deflation_%", "SpecJBB", "Kcompile", "Memcached"});
  for (int d = 0; d <= 100; d += 10) {
    const double deflation = d / 100.0;
    table.add_row_labeled(std::to_string(d),
                          {specjbb.performance(deflation),
                           kcompile.performance(deflation),
                           memcached.performance(deflation)});
  }
  table.print(std::cout);

  std::cout << "\nslack at 1% tolerance:  SpecJBB="
            << util::format_double(specjbb.slack(0.01), 2)
            << "  Kcompile=" << util::format_double(kcompile.slack(0.01), 2)
            << "  Memcached=" << util::format_double(memcached.slack(0.01), 2)
            << "\n";
  return 0;
}
