// Rolling re-optimization scenario: the online control plane
// (src/control/) against a mid-run regime shift.
//
// The one-shot pipeline decides everything economic at t=0 — portfolio
// weights, bids, revocation expectations — from the *planned* market
// statistics. This scenario changes the world mid-run: at ~40% of the
// horizon, market spot-0 turns hostile (a sustained price climb plus a
// revocation storm, ~6x the planned rate) while the other two zones stay
// calm, and the cross-zone correlation the plan priced in weakens. Both
// runs below face exactly that environment (the shift is applied whether
// or not the controller is on — RegimeShiftConfig's contract):
//
//   static  the t=0 plan rides the storm out: servers stay on the now
//           expensive, now stormy market until the horizon;
//   reopt   a FleetController on a 6h window with the `windowed` forecast
//           observes the realized rates/prices, re-runs the portfolio +
//           bid optimization and drains servers off the hostile market at
//           a bounded rate (max 6 moves per window).
//
// The comparison metric is the effective fleet cost of
// bench/scenario_admission: the billed fleet (segment-aware when the
// controller moved servers) plus unserved demand priced at the on-demand
// rate, so a controller cannot "win" by dropping work.
//
// Gates (exit 1 on regression; the margins hold from
// DEFLATE_BENCH_SCALE=0.1 through full scale):
//   1. rolling re-optimization beats the static t=0 plan on effective
//      cost;
//   2. at no worse served throughput (total served core-hours — on-demand
//      committed + deflatable allocated — within 0.2%);
//   3. the win is real: the controller actually re-optimized and moved
//      servers (no vacuous pass where both runs are identical).
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "cluster_bench.hpp"
#include "transient/revocation.hpp"

namespace {

using namespace deflate;

double effective_cost(const simcluster::SimMetrics& m, double od_rate) {
  return m.cost.total_cost() + m.unserved_core_hours * od_rate;
}

// End-to-end served work in core-hours: on-demand committed plus
// deflatable *allocated* (so deflation squeeze, revocation kills,
// rejections and migration-paused windows all subtract from one
// number). `throughput_loss` alone is only the deflation-induced slice
// as a fraction of usage — a run that serves strictly more demand can
// still show a higher loss fraction, so the gate compares this instead.
double served_core_hours(const simcluster::SimMetrics& m) {
  return m.revenue.od_committed_core_hours +
         m.revenue.df_allocated_core_hours;
}

}  // namespace

int main() {
  bench::print_header(
      "Scenario: rolling re-optimization under a regime shift",
      "a t=0 portfolio cannot see a mid-run revocation storm; an online "
      "control loop that re-estimates rates/prices/correlation each window "
      "and drains servers off the hostile market recovers the loss");

  const auto records = bench::cluster_trace();
  auto base = bench::base_sim_config();
  base.server_count = simcluster::TraceDrivenSimulator::servers_for_overcommit(
      records, base.server_capacity, -0.2);
  base.market_enabled = true;
  base.market.seed = 11;
  base.market.revocation.model = transient::RevocationModel::Poisson;
  base.market.revocation.poisson_rate_per_hour = 1.0 / 12.0;
  base.market.portfolio.on_demand_floor = 0.2;
  base.market.replicate_markets(3, 0.45);
  const double od_rate = base.market.price.on_demand_price;

  // The shift: from 28h on (72h horizon), market spot-0's long-run price
  // nearly triples and its revocation rate jumps to one every two hours;
  // spot-1/2 keep the planned regime. Correlation across zones weakens,
  // so the diversification the plan priced in is now understated — a
  // re-optimizer should *increase* transient exposure on the calm zones
  // while fleeing spot-0. The after-config must keep the market count,
  // price step and on-demand rate (apply_regime_shift's compatibility
  // contract); everything else may change.
  control::RegimeShiftConfig shift;
  shift.at_hours = 28.0;
  shift.after = base.market;
  shift.after.seed = 4242;
  shift.after.markets[0].price.mean_price = 0.7;
  shift.after.markets[0].price.shock_rate_per_hour = 1.0 / 8.0;
  shift.after.markets[0].revocation.poisson_rate_per_hour = 1.0 / 2.0;
  shift.after.correlation =
      transient::CorrelatedPriceModel::uniform_correlation(3, 0.15);

  auto static_config = base;  // t=0 plan rides the storm out
  static_config.control.regime_shift = shift;

  auto reopt_config = static_config;  // same world, live controller
  reopt_config.control.enabled = true;
  reopt_config.control.reopt_hours = 6.0;
  reopt_config.control.max_moves_per_window = 6;
  reopt_config.control.forecast = "windowed";

  std::cout << "trace: " << records.size() << " VMs, fleet "
            << base.server_count << " servers, 3 zones rho=0.45; regime "
            << "shift at 28h: spot-0 mean price 0.25 -> 0.7, revocation "
            << "rate 1/12h -> 1/2h, rho -> 0.15\n\n";

  std::vector<bench::SweepCase> cases;
  cases.push_back({0.0, static_config, {}});
  cases.push_back({0.0, reopt_config, {}});
  bench::run_sweep(records, cases);

  const auto& stat = cases[0].metrics;
  const auto& reopt = cases[1].metrics;

  const char* labels[] = {"static t=0 plan", "reopt 6h windowed"};
  util::Table table({"plan", "reopts", "moves", "revocations", "migrations",
                     "kills", "served_ch", "fleet_cost", "unserved_ch",
                     "effective_cost"});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& m = cases[i].metrics;
    table.add_row({labels[i], std::to_string(m.control_reopts),
                   std::to_string(m.control_moves),
                   std::to_string(m.revocations),
                   std::to_string(m.revocation_migrations),
                   std::to_string(m.revocation_kills),
                   util::format_double(served_core_hours(m), 0),
                   util::format_double(m.cost.total_cost(), 0),
                   util::format_double(m.unserved_core_hours, 0),
                   util::format_double(effective_cost(m, od_rate), 0)});
  }
  table.print(std::cout);

  const double static_cost = effective_cost(stat, od_rate);
  const double reopt_cost = effective_cost(reopt, od_rate);
  const bool cheaper = reopt_cost < static_cost;
  // "No worse served throughput": total served core-hours within 0.2% of
  // the static plan — moves drain through migration, which pauses a
  // little work that the cost gate must more than pay for.
  const double static_served = served_core_hours(stat);
  const double reopt_served = served_core_hours(reopt);
  const bool throughput_ok = reopt_served >= static_served * (1.0 - 0.002);
  const bool moved = reopt.control_reopts > 0 && reopt.control_moves > 0;

  std::cout << "\nreopt vs static effective cost: "
            << util::format_double(reopt_cost, 0) << " vs "
            << util::format_double(static_cost, 0) << " ("
            << util::format_double(
                   100.0 * (static_cost - reopt_cost) / static_cost, 2)
            << "% saved) — "
            << (cheaper ? "re-optimization wins" : "NO ADVANTAGE — REGRESSION")
            << "\nserved core-hours: "
            << util::format_double(reopt_served, 0) << " vs "
            << util::format_double(static_served, 0) << " — "
            << (throughput_ok ? "within 0.2% of the static plan"
                              : "DEGRADED — REGRESSION")
            << "\ncontroller activity: "
            << (moved ? "re-optimized and moved servers"
                      : "NO MOVES — VACUOUS RUN, REGRESSION")
            << "\n";
  bench::print_profile();
  return cheaper && throughput_ok && moved ? EXIT_SUCCESS : EXIT_FAILURE;
}
