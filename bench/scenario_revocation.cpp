// Revocation-scenario sweep: reclamation-failure probability, VM losses
// and fleet cost across revocation models and intensities, for deflation
// vs the preemption baseline. Extends the paper's Fig. 20 axis (arrival
// pressure) with the transient-market axis (server revocations).
#include <iostream>
#include <string>
#include <vector>

#include "cluster_bench.hpp"
#include "transient/revocation.hpp"

int main() {
  using namespace deflate;
  bench::print_header(
      "Scenario: server revocations (transient market)",
      "deflation migrates VMs off revoked servers and keeps losses near "
      "zero where classic preemption kills every resident VM; the "
      "portfolio mix still undercuts an all-on-demand fleet");

  const auto records = bench::cluster_trace();
  auto base = bench::base_sim_config();
  // 20% headroom below peak so migrations have somewhere to land.
  base.server_count = simcluster::TraceDrivenSimulator::servers_for_overcommit(
      records, base.server_capacity, -0.2);
  std::cout << "trace: " << records.size() << " VMs, fleet "
            << base.server_count << " servers\n\n";

  struct Scenario {
    std::string label;
    transient::RevocationModel model;
    double poisson_rate;  // per hour, Poisson only
    cluster::ReclamationMode mode;
  };
  std::vector<Scenario> scenarios;
  for (const auto mode : {cluster::ReclamationMode::Deflation,
                          cluster::ReclamationMode::Preemption}) {
    const char* suffix =
        mode == cluster::ReclamationMode::Deflation ? "deflate" : "preempt";
    scenarios.push_back({std::string("poisson mtbr 48h / ") + suffix,
                         transient::RevocationModel::Poisson, 1.0 / 48.0,
                         mode});
    scenarios.push_back({std::string("poisson mtbr 12h / ") + suffix,
                         transient::RevocationModel::Poisson, 1.0 / 12.0,
                         mode});
    scenarios.push_back({std::string("temporal 24h cap / ") + suffix,
                         transient::RevocationModel::TemporallyConstrained,
                         0.0, mode});
  }

  std::vector<bench::SweepCase> cases;
  for (const Scenario& scenario : scenarios) {
    bench::SweepCase c;
    c.config = base;
    c.config.mode = scenario.mode;
    c.config.market_enabled = true;
    c.config.market.seed = 7;
    c.config.market.revocation.model = scenario.model;
    c.config.market.revocation.poisson_rate_per_hour = scenario.poisson_rate;
    c.config.market.portfolio.on_demand_floor = 0.2;
    cases.push_back(c);
  }
  bench::run_sweep(records, cases);

  util::Table table({"scenario", "revocations", "migrations", "kills",
                     "failure_prob_%", "tput_loss_%", "saving_vs_od_%"});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& m = cases[i].metrics;
    table.add_row({scenarios[i].label, std::to_string(m.revocations),
                   std::to_string(m.revocation_migrations),
                   std::to_string(m.revocation_kills),
                   util::format_double(100 * m.failure_probability, 3),
                   util::format_double(100 * m.throughput_loss, 3),
                   util::format_double(m.cost.saving_percent(), 1)});
  }
  table.print(std::cout);
  bench::print_profile();
  return 0;
}
