// Ablation: the §5.1.3 reinflation rule. Without reinflation, VMs deflated
// during a pressure episode stay deflated for the rest of their lives even
// after capacity frees up — quantifying how much of the paper's low
// throughput loss is owed to running the policies "backwards".
#include <iostream>

#include "cluster_bench.hpp"

int main() {
  using namespace deflate;
  bench::print_header(
      "Ablation: reinflation on departure (on vs off)",
      "reinflation returns reclaimed resources when pressure passes; "
      "disabling it leaves VMs deflated and multiplies throughput loss");

  const auto records = bench::cluster_trace();
  const auto base = bench::base_sim_config();
  const std::size_t baseline_servers =
      simcluster::TraceDrivenSimulator::minimum_feasible_servers(records, base);

  std::vector<bench::SweepCase> cases;
  const int levels[] = {20, 50, 80};
  for (const bool reinflate : {true, false}) {
    for (const int oc : levels) {
      bench::SweepCase c;
      c.overcommit = oc / 100.0;
      c.config = base;
      c.config.reinflate_on_departure = reinflate;
      c.config.server_count = bench::servers_for(baseline_servers, c.overcommit);
      cases.push_back(c);
    }
  }
  bench::run_sweep(records, cases);

  util::Table table({"overcommit_%", "loss_with_reinflation_%",
                     "loss_without_%", "mean_deflation_with_%",
                     "mean_deflation_without_%"});
  const std::size_t n = std::size(levels);
  for (std::size_t i = 0; i < n; ++i) {
    table.add_row_labeled(std::to_string(levels[i]),
                          {100.0 * cases[i].metrics.throughput_loss,
                           100.0 * cases[n + i].metrics.throughput_loss,
                           100.0 * cases[i].metrics.mean_cpu_deflation,
                           100.0 * cases[n + i].metrics.mean_cpu_deflation},
                          2);
  }
  table.print(std::cout);
  return 0;
}
