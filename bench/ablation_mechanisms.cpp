// Ablation: which deflation mechanism the cluster's local controllers
// drive (DESIGN.md §5 item 1). Hybrid reaches fractional targets exactly;
// pure explicit hotplug is coarse (whole vCPUs, memory blocks, guest
// refusals, no I/O path) and therefore under-reclaims, which surfaces as
// placement failures under pressure.
#include <iostream>

#include "cluster_bench.hpp"

int main() {
  using namespace deflate;
  bench::print_header(
      "Ablation: cluster-level mechanism choice at 50% overcommitment",
      "hybrid == transparent reach (fine-grained), explicit under-reclaims "
      "(coarse units + safety floors -> failures)");

  const auto records = bench::cluster_trace();
  const auto base = bench::base_sim_config();
  const std::size_t baseline_servers =
      simcluster::TraceDrivenSimulator::minimum_feasible_servers(records, base);
  const std::size_t servers = bench::servers_for(baseline_servers, 0.5);
  std::cout << "trace: " << records.size() << " VMs, " << servers
            << " servers (50% overcommit)\n\n";

  std::vector<bench::SweepCase> cases;
  const mech::MechanismKind kinds[] = {
      mech::MechanismKind::Hybrid, mech::MechanismKind::Transparent,
      mech::MechanismKind::Explicit, mech::MechanismKind::Balloon};
  for (const auto kind : kinds) {
    bench::SweepCase c;
    c.config = base;
    c.config.mechanism = kind;
    c.config.server_count = servers;
    cases.push_back(c);
  }
  bench::run_sweep(records, cases);

  util::Table table({"mechanism", "failure_prob_%", "throughput_loss_%",
                     "mean_deflation_%", "reclamation_attempts"});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& metrics = cases[i].metrics;
    table.add_row_labeled(mech::mechanism_kind_name(kinds[i]),
                          {100.0 * metrics.failure_probability,
                           100.0 * metrics.throughput_loss,
                           100.0 * metrics.mean_cpu_deflation,
                           static_cast<double>(metrics.reclamation_attempts)},
                          2);
  }
  table.print(std::cout);
  return 0;
}
