// Figure 20: probability of failing to reclaim sufficient resources vs
// cluster overcommitment, for the deflation policies and the preemption
// baseline (§7.4.1).
#include <iostream>

#include "cluster_bench.hpp"

int main() {
  using namespace deflate;
  bench::print_header(
      "Figure 20: reclamation-failure probability vs overcommitment",
      "proportional deflation <1% failures even at 70% overcommitment vs "
      "~35% preemption probability for preemptible VMs; priority and "
      "deterministic in between");

  const auto records = bench::cluster_trace();
  const auto base = bench::base_sim_config();
  const std::size_t baseline_servers =
      simcluster::TraceDrivenSimulator::minimum_feasible_servers(records, base);
  std::cout << "trace: " << records.size() << " VMs, baseline cluster "
            << baseline_servers << " servers of 48 CPUs / 128 GB\n\n";

  struct Series {
    const char* label;
    core::PolicyKind policy;
    cluster::ReclamationMode mode;
  };
  const std::vector<Series> series{
      {"proportional", core::PolicyKind::Proportional,
       cluster::ReclamationMode::Deflation},
      {"priority", core::PolicyKind::Priority,
       cluster::ReclamationMode::Deflation},
      {"deterministic", core::PolicyKind::Deterministic,
       cluster::ReclamationMode::Deflation},
      {"preemptible", core::PolicyKind::Proportional,
       cluster::ReclamationMode::Preemption},
  };

  std::vector<bench::SweepCase> cases;
  for (const auto& s : series) {
    for (const int oc : bench::overcommit_levels()) {
      bench::SweepCase c;
      c.overcommit = oc / 100.0;
      c.config = base;
      c.config.policy = s.policy;
      c.config.mode = s.mode;
      c.config.server_count = bench::servers_for(baseline_servers, c.overcommit);
      cases.push_back(c);
    }
  }
  bench::run_sweep(records, cases);

  util::Table table({"overcommit_%", "proportional_%", "priority_%",
                     "deterministic_%", "preemptible_%"});
  const std::size_t levels = bench::overcommit_levels().size();
  for (std::size_t i = 0; i < levels; ++i) {
    std::vector<double> row;
    for (std::size_t s = 0; s < series.size(); ++s) {
      const auto& metrics = cases[s * levels + i].metrics;
      const double value = series[s].mode == cluster::ReclamationMode::Preemption
                               ? metrics.preemption_probability
                               : metrics.failure_probability;
      row.push_back(100.0 * value);
    }
    table.add_row_labeled(std::to_string(bench::overcommit_levels()[i]), row, 2);
  }
  table.print(std::cout);

  const auto& prop_70 = cases[levels - 1].metrics;
  const auto& preempt_70 = cases[3 * levels + levels - 1].metrics;
  std::cout << "\nheadline @70% overcommit: proportional failure "
            << util::format_double(100.0 * prop_70.failure_probability, 2)
            << "% (paper: <1%) vs preemption probability "
            << util::format_double(100.0 * preempt_70.preemption_probability, 1)
            << "% (paper: ~35%)\n";
  return 0;
}
