// Figure 6: deflatability by workload class. Interactive VMs (the web
// workloads) have more slack than delay-insensitive batch VMs (§3.2.1).
#include <iostream>

#include "analysis/feasibility.hpp"
#include "bench_common.hpp"

int main() {
  using namespace deflate;
  bench::print_header(
      "Figure 6: fraction of time above deflated allocation, by class",
      "interactive VMs impacted 1-15% of the time as deflation goes "
      "10%->50%; batch (delay-insensitive) 1-30%");

  const auto records = bench::feasibility_trace();

  const struct {
    const char* label;
    hv::WorkloadClass workload;
  } classes[] = {
      {"interactive", hv::WorkloadClass::Interactive},
      {"delay-insensitive", hv::WorkloadClass::DelayInsensitive},
      {"unknown", hv::WorkloadClass::Unknown},
  };

  for (const auto& cls : classes) {
    util::Table table({"deflation_%", "min", "q1", "median", "q3", "max"});
    for (int d = 10; d <= 90; d += 10) {
      const auto box = analysis::cpu_underallocation_box(
          records, d / 100.0, [&](const trace::VmRecord& record) {
            return record.workload == cls.workload;
          });
      table.add_row_labeled(std::to_string(d),
                            {box.min, box.q1, box.median, box.q3, box.max});
    }
    std::cout << "-- class: " << cls.label << " --\n";
    table.print(std::cout);
    std::cout << "\n";
  }

  const auto interactive_50 = analysis::cpu_underallocation_box(
      records, 0.5, [](const trace::VmRecord& record) {
        return record.workload == hv::WorkloadClass::Interactive;
      });
  const auto batch_50 = analysis::cpu_underallocation_box(
      records, 0.5, [](const trace::VmRecord& record) {
        return record.workload == hv::WorkloadClass::DelayInsensitive;
      });
  std::cout << "headline @50% deflation (median): interactive "
            << util::format_double(100.0 * interactive_50.median, 1)
            << "% vs batch " << util::format_double(100.0 * batch_50.median, 1)
            << "% (paper: ~15% vs ~30%)\n";
  return 0;
}
