// Figure 6: deflatability by workload class. Interactive VMs (the web
// workloads) have more slack than delay-insensitive batch VMs (§3.2.1).
// Streams the trace in one pass — the population is never materialized.
#include <iostream>

#include "analysis/feasibility.hpp"
#include "bench_common.hpp"

int main() {
  using namespace deflate;
  bench::print_header(
      "Figure 6: fraction of time above deflated allocation, by class",
      "interactive VMs impacted 1-15% of the time as deflation goes "
      "10%->50%; batch (delay-insensitive) 1-30%");

  const struct {
    const char* label;
    hv::WorkloadClass workload;
  } classes[] = {
      {"interactive", hv::WorkloadClass::Interactive},
      {"delay-insensitive", hv::WorkloadClass::DelayInsensitive},
      {"unknown", hv::WorkloadClass::Unknown},
  };

  const auto stream = bench::feasibility_stream();
  const std::vector<double> levels = bench::deflation_levels();
  const auto boxes = analysis::cpu_underallocation_boxes(
      *stream, levels, std::size(classes), [&](const trace::VmRecord& record) {
        for (std::size_t c = 0; c < std::size(classes); ++c) {
          if (record.workload == classes[c].workload) {
            return static_cast<int>(c);
          }
        }
        return -1;
      });

  for (std::size_t c = 0; c < std::size(classes); ++c) {
    util::Table table({"deflation_%", "min", "q1", "median", "q3", "max"});
    for (std::size_t i = 0; i < levels.size(); ++i) {
      const auto& box = boxes[c][i];
      table.add_row_labeled(std::to_string(10 * static_cast<int>(i + 1)),
                            {box.min, box.q1, box.median, box.q3, box.max});
    }
    std::cout << "-- class: " << classes[c].label << " --\n";
    table.print(std::cout);
    std::cout << "\n";
  }

  const auto& interactive_50 = boxes[0][4];  // levels[4] == 0.5
  const auto& batch_50 = boxes[1][4];
  std::cout << "headline @50% deflation (median): interactive "
            << util::format_double(100.0 * interactive_50.median, 1)
            << "% vs batch " << util::format_double(100.0 * batch_50.median, 1)
            << "% (paper: ~15% vs ~30%)\n";
  return 0;
}
