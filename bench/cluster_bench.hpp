// Shared sweep machinery for the cluster-level figures (20-22): baseline
// sizing per §7.1.2 (minimum feasible cluster found by simulation), then
// overcommitment produced by shrinking the server count. Sweep points run
// in parallel; each point constructs its own simulator (deterministic).
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "bench_common.hpp"
#include "simcluster/cluster_sim.hpp"
#include "util/thread_pool.hpp"

namespace deflate::bench {

inline simcluster::SimConfig base_sim_config() {
  simcluster::SimConfig config;
  config.server_capacity = {48.0, 128.0 * 1024.0, 1e9, 1e9};
  return config;
}

/// Server count that produces overcommitment `oc` relative to the baseline
/// (minimum-feasible) cluster of `baseline_servers`.
inline std::size_t servers_for(std::size_t baseline_servers, double oc) {
  const auto servers = static_cast<std::size_t>(
      std::floor(static_cast<double>(baseline_servers) / (1.0 + oc)));
  return std::max<std::size_t>(1, servers);
}

struct SweepCase {
  double overcommit = 0.0;
  simcluster::SimConfig config;
  simcluster::SimMetrics metrics;
};

/// Runs every case (in parallel) through a fresh trace-driven simulator.
inline void run_sweep(const std::vector<trace::VmRecord>& records,
                      std::vector<SweepCase>& cases) {
  util::parallel_for(cases.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      simcluster::TraceDrivenSimulator simulator(records, cases[i].config);
      cases[i].metrics = simulator.run();
    }
  });
}

inline const std::vector<int>& overcommit_levels() {
  static const std::vector<int> levels{0, 10, 20, 30, 40, 50, 60, 70};
  return levels;
}

}  // namespace deflate::bench
