// Admission-policy scenario: the Admission API v2 economics, end to end.
//
// One trace, one tight fleet riding a price-crossing spot market whose
// crunch spikes peak above the on-demand rate, three admission policies
// (src/cluster/admission.hpp):
//
//   * admit-all — the legacy contract: every VM placed on arrival;
//   * price     — deflatable launches deferred while the spot quote
//                 exceeds the class ceiling (the fleet is shrunken during
//                 exactly those windows — price-crossing revocations and
//                 unaffordable prices are the same event);
//   * bid-opt   — per-class bid optimization (src/transient/bidding.hpp)
//                 replaces the hand-set market bid and supplies the
//                 admission ceilings.
//
// The gated comparison runs the *preemption* reclamation baseline —
// classic transient servers, the setting of Sharma et al.
// (arXiv:1704.08738 §5): a VM launched into a revocation window simply
// dies there, so deferring the launch saves its whole remaining demand.
// The same policies are also reported under deflation (informational):
// deflation absorbs revocations so gracefully that the admission layer
// has far less to save — which is the paper's thesis, visible here as the
// gap between the two modes' admit-all rows. The capacity mix is held
// fixed (25% on-demand) for these rows because the mean-variance
// portfolio is a *substitute* for admission control — it would flee the
// risky market into on-demand before admission had anything to do — the
// same isolation trick bench/scenario_multimarket uses.
//
// The comparison metric is the *effective* fleet cost: the billed fleet
// (CostReport::total_cost, which already folds in admission-caused
// unserved demand) plus the demand the fleet failed to serve for
// non-admission reasons — capacity rejections and revocation kills —
// billed at the on-demand rate, as if replacement capacity had to be
// bought for the turned-away customers. Without that term a policy could
// "save" money by simply dropping work.
//
// Gates (exit 1 on regression; CI runs this binary at full scale). The
// margins are statistical: they hold from DEFLATE_BENCH_SCALE=0.1 up
// through full scale; a 0.05 smoke run is below the gates' noise floor.
//   1. under preemption, price and bid-opt both beat admit-all on
//      effective cost, at equal or better served throughput for
//      on-demand-class VMs (class 0 is never deferred, so price-aware
//      admission can only help it);
//   2. on the PR-3 three-market portfolio scenario (deflation mode), the
//      bid optimizer does not underperform the hand-set static bids
//      (effective cost within 0.5%).
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "cluster_bench.hpp"
#include "transient/revocation.hpp"

namespace {

using namespace deflate;

double effective_cost(const simcluster::SimMetrics& m, double od_rate) {
  return m.cost.total_cost() + m.unserved_core_hours * od_rate;
}

}  // namespace

int main() {
  bench::print_header(
      "Scenario: price-aware admission and per-class bid optimization",
      "deferring deflatable launches while the spot price is high — and "
      "bidding per class instead of by hand — is where much of the "
      "transient cost saving lives (Sharma et al., arXiv:1704.08738 §5)");

  const auto records = bench::cluster_trace();
  auto base = bench::base_sim_config();
  // A tight fleet: 25% below the demand peak, so the price-crossing
  // revocation windows (spot above the bid) genuinely hurt — arrivals
  // admitted into them land on a shrunken fleet.
  base.server_count = simcluster::TraceDrivenSimulator::servers_for_overcommit(
      records, base.server_capacity, -0.25);
  base.market_enabled = true;
  base.market.seed = 7;
  base.market.price.volatility = 0.08;
  // Crunch spikes peak above the on-demand rate (8x the long-run mean), so
  // holding through them is genuinely expensive and every spike opens a
  // revocation window.
  base.market.price.shock_multiplier = 8.0;
  base.market.price.shock_rate_per_hour = 1.0 / 18.0;
  base.market.revocation.model = transient::RevocationModel::PriceCrossing;
  base.market.revocation.bid = 0.5;
  base.market.portfolio.on_demand_floor = 0.2;
  // Fixed 25% on-demand split for the policy comparison (see header).
  base.market.use_portfolio = false;
  base.market.on_demand_share = 0.25;
  const double od_rate = base.market.price.on_demand_price;
  std::cout << "trace: " << records.size() << " VMs, fleet "
            << base.server_count
            << " servers; price-crossing revocations, hand-set bid "
            << base.market.revocation.bid << ", fixed 25% on-demand split\n\n";

  const auto with_policy = [&](simcluster::SimConfig config,
                               cluster::ReclamationMode mode,
                               cluster::AdmissionPolicyKind policy) {
    config.mode = mode;
    config.admission.policy = policy;
    config.admission.default_ceiling = config.market.revocation.bid;
    config.admission.max_defer_hours = 12.0;
    if (policy == cluster::AdmissionPolicyKind::BidOptimized) {
      config.market.optimize_bids = true;
    }
    return config;
  };

  const cluster::AdmissionPolicyKind policies[] = {
      cluster::AdmissionPolicyKind::AdmitAll,
      cluster::AdmissionPolicyKind::PriceThreshold,
      cluster::AdmissionPolicyKind::BidOptimized,
  };

  std::vector<bench::SweepCase> cases;
  for (const auto policy : policies) {  // gated: preemption baseline
    cases.push_back(
        {0.0, with_policy(base, cluster::ReclamationMode::Preemption, policy),
         {}});
  }
  for (const auto policy : policies) {  // informational: deflation
    cases.push_back(
        {0.0, with_policy(base, cluster::ReclamationMode::Deflation, policy),
         {}});
  }

  // Gate 2: the PR-3 three-market portfolio scenario (deflation mode,
  // portfolio-driven split as in bench/scenario_multimarket), hand-set
  // static bids vs the optimizer.
  auto multi_static = base;
  multi_static.market.use_portfolio = true;
  multi_static.market.replicate_markets(3, 0.35);
  auto multi_opt = multi_static;
  multi_opt.market.optimize_bids = true;
  cases.push_back({0.0, multi_static, {}});
  cases.push_back({0.0, multi_opt, {}});

  bench::run_sweep(records, cases);

  const char* labels[] = {
      "preemption/admit-all", "preemption/price",   "preemption/bid-opt",
      "deflation/admit-all",  "deflation/price",    "deflation/bid-opt",
      "3-market static bids", "3-market bid-opt",
  };
  util::Table table({"mode/policy", "deferrals", "expired", "preempt",
                     "od_served_ch", "tput_loss_%", "fleet_cost",
                     "unserved_ch", "effective_cost"});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& m = cases[i].metrics;
    table.add_row({labels[i], std::to_string(m.admission_deferrals),
                   std::to_string(m.admission_expired),
                   std::to_string(m.preemptions),
                   util::format_double(m.revenue.od_committed_core_hours, 0),
                   util::format_double(100 * m.throughput_loss, 3),
                   util::format_double(m.cost.total_cost(), 0),
                   util::format_double(m.unserved_core_hours, 0),
                   util::format_double(effective_cost(m, od_rate), 0)});
  }
  table.print(std::cout);

  const auto& all = cases[0].metrics;     // preemption/admit-all
  const auto& thresh = cases[1].metrics;  // preemption/price
  const auto& opt = cases[2].metrics;     // preemption/bid-opt
  const auto& mstatic = cases[6].metrics;
  const auto& mopt = cases[7].metrics;

  const double all_cost = effective_cost(all, od_rate);
  const bool price_ok =
      effective_cost(thresh, od_rate) < all_cost &&
      thresh.revenue.od_committed_core_hours >=
          all.revenue.od_committed_core_hours;
  const bool bid_ok =
      effective_cost(opt, od_rate) < all_cost &&
      opt.revenue.od_committed_core_hours >=
          all.revenue.od_committed_core_hours;
  const bool multi_ok = effective_cost(mopt, od_rate) <=
                        1.005 * effective_cost(mstatic, od_rate);

  std::cout << "\npreemption price-threshold vs admit-all: "
            << (price_ok ? "cheaper at >= on-demand served throughput"
                         : "NO ADVANTAGE — REGRESSION")
            << "\npreemption bid-optimized vs admit-all: "
            << (bid_ok ? "cheaper at >= on-demand served throughput"
                       : "NO ADVANTAGE — REGRESSION")
            << "\n3-market bid-opt vs hand-set static bids: "
            << (multi_ok ? "no worse (within 0.5%)"
                         : "UNDERPERFORMS — REGRESSION")
            << "\n";
  bench::print_profile();
  return price_ok && bid_ok && multi_ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
