// Figure 9: container memory usage vs deflation thresholds (Alibaba-like
// trace). Raw usage looks high — the §3.2.2 point is that usage alone
// overstates memory pressure for JVM-style services.
#include <iostream>

#include "analysis/feasibility.hpp"
#include "bench_common.hpp"

int main() {
  using namespace deflate;
  bench::print_header(
      "Figure 9: memory usage of applications vs deflated allocation",
      "usage-based analysis says >70% of time underallocated even at 10% "
      "memory deflation (heap pre-allocation, not true working set)");

  const auto containers = bench::container_trace();
  std::cout << "population: " << containers.size() << " containers\n\n";

  util::Table table({"deflation_%", "min", "q1", "median", "q3", "max"});
  for (int d = 10; d <= 70; d += 10) {
    const auto box = analysis::container_underallocation_box(
        containers, analysis::memory_series, d / 100.0);
    table.add_row_labeled(std::to_string(d),
                          {box.min, box.q1, box.median, box.q3, box.max});
  }
  table.print(std::cout);

  const auto at_10 = analysis::container_underallocation_box(
      containers, analysis::memory_series, 0.10);
  std::cout << "\nheadline: at 10% memory deflation the median container is "
            << util::format_double(100.0 * at_10.median, 1)
            << "% of time above the deflated allocation (paper: >70%)\n";
  return 0;
}
