// Figure 18: response times for the DeathStarBench-style social-network
// application when the 22 non-database microservices are deflated (§7.2).
#include <iostream>

#include "bench_common.hpp"
#include "workloads/microservice.hpp"

int main() {
  using namespace deflate;
  bench::print_header(
      "Figure 18: social-network microservice response times (ms)",
      "deflatable to 50% with no performance loss; past that the "
      "degradation is more abrupt than the monolithic Wikipedia case");

  wl::MicroserviceConfig config;
  config.duration = sim::SimTime::from_seconds(
      std::max(60.0, 240.0 * bench::bench_scale()));
  const wl::MicroserviceApp app(config);

  util::Table table({"deflation_%", "median_ms", "p90_ms", "p99_ms",
                     "served_%", "hottest_station_util"});
  for (const int d : {0, 30, 50, 60, 65}) {
    const auto result = app.run(d / 100.0);
    table.add_row_labeled(std::to_string(d),
                          {1000.0 * result.latency.p50,
                           1000.0 * result.latency.p90,
                           1000.0 * result.latency.p99,
                           100.0 * result.served_fraction,
                           result.bottleneck_utilization},
                          1);
  }
  table.print(std::cout);

  const auto at_50 = app.run(0.5);
  const auto at_65 = app.run(0.65);
  std::cout << "\nheadline: p99 " << util::format_double(1000.0 * at_50.latency.p99, 0)
            << "ms @50% vs " << util::format_double(1000.0 * at_65.latency.p99, 0)
            << "ms @65% (paper: ~10^2 ms vs ~10^4-10^5 ms)\n";
  return 0;
}
