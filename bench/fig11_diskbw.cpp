// Figure 11: disk-bandwidth deflation feasibility (Alibaba-like trace).
#include <iostream>

#include "analysis/feasibility.hpp"
#include "bench_common.hpp"

int main() {
  using namespace deflate;
  bench::print_header(
      "Figure 11: disk bandwidth deflation feasibility",
      "even at 50% deflation, containers are underallocated less than 1% of "
      "the time");

  const auto containers = bench::container_trace();

  util::Table table({"deflation_%", "min", "q1", "median", "q3", "max"});
  for (int d = 10; d <= 90; d += 10) {
    const auto box = analysis::container_underallocation_box(
        containers, analysis::disk_series, d / 100.0);
    table.add_row_labeled(std::to_string(d),
                          {box.min, box.q1, box.median, box.q3, box.max});
  }
  table.print(std::cout);

  const auto at_50 = analysis::container_underallocation_box(
      containers, analysis::disk_series, 0.5);
  std::cout << "\nheadline: at 50% disk deflation the median container is "
            << util::format_double(100.0 * at_50.median, 2)
            << "% of time underallocated (paper: <1%)\n";
  return 0;
}
