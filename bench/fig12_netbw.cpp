// Figure 12: network-bandwidth deflation feasibility (Alibaba-like trace,
// sum of normalized incoming + outgoing traffic).
#include <iostream>

#include "analysis/feasibility.hpp"
#include "bench_common.hpp"

int main() {
  using namespace deflate;
  bench::print_header(
      "Figure 12: network bandwidth deflation feasibility",
      "at 70% deflation containers suffer underallocation only ~1% of their "
      "lifetime; below 50% deflation the impact is near zero");

  const auto containers = bench::container_trace();

  util::Table table({"deflation_%", "min", "q1", "median", "q3", "max"});
  for (int d = 10; d <= 90; d += 10) {
    const auto box = analysis::container_underallocation_box(
        containers, analysis::net_series, d / 100.0);
    table.add_row_labeled(std::to_string(d),
                          {box.min, box.q1, box.median, box.q3, box.max});
  }
  table.print(std::cout);

  const auto at_70 = analysis::container_underallocation_box(
      containers, analysis::net_series, 0.7);
  const auto at_50 = analysis::container_underallocation_box(
      containers, analysis::net_series, 0.5);
  std::cout << "\nheadline: mean-of-median underallocation "
            << util::format_double(100.0 * at_70.median, 2) << "% at 70% and "
            << util::format_double(100.0 * at_50.median, 3)
            << "% at 50% deflation (paper: ~1% and ~0%)\n";
  return 0;
}
