// Service-layer scenario: what the wire costs, and what batching buys
// back.
//
// The deflated daemon (src/net/server.hpp) puts a framed TCP protocol in
// front of the admission controller. This harness measures sustained
// admission decisions/sec through that protocol under concurrent client
// connections, against the in-process controller as the ceiling:
//
//   * in-process — AdmissionController::decide() called directly (no
//     wire at all): the upper bound;
//   * sync       — 4 concurrent connections, one request per round-trip
//     (submit + flush every request): the naive RPC shape, paying a full
//     loopback RTT per decision;
//   * batched    — the same 4 connections using the client's request
//     batching (64 per flush) against the server's pipelining: one
//     round-trip amortized over the whole batch.
//
// Gates (exit 1 on regression):
//   1. batched throughput >= 2x sync at 4 concurrent connections — the
//      entire point of the batching client (ISSUE: acceptance criterion);
//   2. a captured price-policy session (deferral churn included) replays
//      bit-identically through a fresh controller stack
//      (src/net/capture.hpp) — the service must stay deterministic while
//      being fast.
//
// DEFLATE_BENCH_SCALE in (0, 1] shrinks the request counts for smoke
// runs; the 2x margin holds at every scale (the gap is architectural —
// RTTs per decision — not statistical).
#include <chrono>
#include <cstdio>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "net/capture.hpp"
#include "net/client.hpp"
#include "net/server.hpp"

namespace {

using namespace deflate;

constexpr int kConnections = 4;

// A deliberately small fleet: the decision itself (an 8-server placement
// scan) costs ~1-2us, so the measured gap between sync and batched is the
// transport — round-trips per decision — not placement work. The
// placement-bound regime is bench/scenario_cluster_scale's territory.
net::ServiceConfig fleet_config() {
  net::ServiceConfig config;
  config.server_count = 8;
  config.shard_count = 1;
  config.worker_threads = kConnections;
  config.admission_policy = "admit-all";
  return config;
}

cluster::AdmissionRequest make_request(std::uint64_t id) {
  hv::VmSpec spec;
  spec.id = id;
  spec.name = "svc-" + std::to_string(id);
  spec.vcpus = 2;
  spec.memory_mib = 4096.0;
  spec.priority = 0.25 + 0.5 * static_cast<double>(id % 2);
  // Non-deflatable: once the small fleet fills, the remaining requests
  // are flat capacity rejections — still one decision each, with no
  // deflation-assisted placement search muddying the per-decision cost.
  spec.deflatable = false;
  // Arrivals a few ms apart: the clock advances but the price never
  // moves (no feed), so admit-all decides in O(placement).
  return cluster::AdmissionRequest::from_spec(
      spec, sim::SimTime::from_micros(static_cast<std::int64_t>(id) * 3000));
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// In-process ceiling: decisions/sec straight through the controller.
double run_in_process(std::size_t requests) {
  net::ServiceCore core(fleet_config());
  const auto controller = core.make_controller();
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < requests; ++i) {
    const auto request = make_request(i + 1);
    (void)controller->decide(request, core.advance_clock(request.arrival));
  }
  return static_cast<double>(requests) / seconds_since(start);
}

/// Wire throughput with `batch` requests per flush across kConnections
/// concurrent clients; batch == 1 is the sync (request-per-round-trip)
/// shape.
double run_service(std::size_t requests_per_client, std::size_t batch) {
  net::Server server(fleet_config());
  if (!server.start()) {
    std::cerr << "FATAL: cannot start the service\n";
    std::exit(2);
  }
  std::vector<std::thread> clients;
  const auto start = std::chrono::steady_clock::now();
  for (int c = 0; c < kConnections; ++c) {
    clients.emplace_back([&server, requests_per_client, batch, c] {
      auto client = net::Client::connect(server.port());
      if (!client.has_value()) {
        std::cerr << "FATAL: client " << c << " cannot connect\n";
        std::exit(2);
      }
      std::size_t in_batch = 0;
      for (std::size_t i = 0; i < requests_per_client; ++i) {
        client->submit(make_request(
            static_cast<std::uint64_t>(c + 1) * 1000000 + i + 1));
        if (++in_batch == batch) {
          if (!client->flush()) std::exit(2);
          in_batch = 0;
        }
      }
      if (!client->flush()) std::exit(2);
      if (client->decisions().size() != requests_per_client) {
        std::cerr << "FATAL: client " << c << " got "
                  << client->decisions().size() << " decisions, expected "
                  << requests_per_client << "\n";
        std::exit(2);
      }
    });
  }
  for (auto& thread : clients) thread.join();
  const double elapsed = seconds_since(start);
  server.stop();
  return static_cast<double>(requests_per_client * kConnections) / elapsed;
}

/// Determinism gate: a deferral-heavy captured session must replay to
/// bit-identical decisions.
bool capture_replays_identically(std::size_t requests) {
  const std::string path = "bench_scenario_service_capture.bin";
  {
    net::ServiceConfig config = fleet_config();
    config.server_count = 8;  // tight: placement pressure + price churn
    config.admission_policy = "price";
    config.admission.default_ceiling = 0.24;
    config.admission.max_defer_hours = 2.0;
    config.price_trace_hours = 72.0;
    config.price_seed = 11;
    config.capture_path = path;
    net::Server server(config);
    if (!server.start()) return false;
    auto client = net::Client::connect(server.port());
    if (!client.has_value()) return false;
    for (std::size_t i = 1; i <= requests; ++i) {
      // Deflatable, mixed-priority: the price policy actually defers
      // these, so the log carries the deferral churn replay must match.
      auto request = make_request(i);
      request.spec.deflatable = true;
      request.spec.priority = 0.1 + 0.2 * static_cast<double>(i % 4);
      request = cluster::AdmissionRequest::from_spec(
          request.spec,
          sim::SimTime::from_hours(48.0 * static_cast<double>(i) /
                                   static_cast<double>(requests)));
      client->submit(request);
      if (i % 8 == 0 && !client->flush()) return false;
    }
    if (!client->flush()) return false;
    server.stop();
  }
  const auto report = net::replay_capture(path);
  std::remove(path.c_str());
  std::cout << "capture replay: " << report.requests << " requests, "
            << report.decisions << " decisions, " << report.mismatches
            << " mismatches\n";
  if (!report.error.empty()) std::cerr << "replay error: " << report.error
                                       << "\n";
  return report.ok() && report.requests == requests;
}

}  // namespace

int main() {
  bench::print_header(
      "Scenario: admission-as-a-service throughput and determinism",
      "the service layer must not tax admission into irrelevance — "
      "batched pipelined connections amortize the round-trip, and the "
      "wire protocol preserves decision-for-decision determinism");

  // Identical workload (request stream and total count) in every mode:
  // only the transport shape differs.
  const auto per_client = bench::scaled(2000);
  const auto in_process = run_in_process(per_client * kConnections);
  const auto sync = run_service(per_client, 1);
  const auto batched = run_service(per_client, 64);

  util::Table table({"mode", "connections", "batch", "decisions/s"});
  table.add_row_labeled("in-process", {1, 0, in_process});
  table.add_row_labeled("sync", {kConnections, 1, sync});
  table.add_row_labeled("batched", {kConnections, 64, batched});
  table.print(std::cout);
  std::printf("\nbatched/sync speedup: %.1fx (gate: >= 2x)\n",
              batched / sync);

  bool ok = true;
  if (batched < 2.0 * sync) {
    std::cerr << "GATE FAILED: batched throughput " << batched
              << " < 2x sync " << sync << "\n";
    ok = false;
  }
  if (!capture_replays_identically(bench::scaled(240))) {
    std::cerr << "GATE FAILED: captured session did not replay "
                 "bit-identically\n";
    ok = false;
  }
  std::cout << (ok ? "\nall service gates passed\n"
                   : "\nservice gates FAILED\n");
  bench::print_profile();
  return ok ? 0 : 1;
}
