// Multi-market portfolio scenario: the same transient fleet planned over
// one spot market vs three correlated markets, under provider-wide
// capacity crunches (common shocks). Diversification is the point of the
// portfolio math (Sharma et al., arXiv:1704.08738 §4): with imperfectly
// correlated markets the per-seed fleet cost keeps the same mean but a
// visibly smaller variance, because a price spike in one market no longer
// moves the whole transient bill.
//
// Sections:
//   1. K=1 parity — a one-entry market list must reproduce the legacy
//      single-market engine bit for bit (plan + billing).
//   2. Fixed 30% on-demand split — isolates diversification: same fleet
//      split, 1 vs 3 markets.
//   3. Portfolio-chosen split — the optimizer reacts to the lower joint
//      risk (less on-demand, cheaper mix) while variance still drops.
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "transient/market.hpp"
#include "util/table.hpp"

namespace {

using namespace deflate;

constexpr std::size_t kServers = 120;
constexpr double kCoresPerServer = 48.0;
constexpr std::size_t kSeeds = 30;

sim::SimTime horizon() { return sim::SimTime::from_hours(72); }

// Price-crossing revocations tie server loss to the price path, so a
// common crunch revokes capacity market-wide — the risk being diversified.
transient::MarketEngineConfig base_config() {
  transient::MarketEngineConfig config;
  config.price.volatility = 0.08;
  config.revocation.model = transient::RevocationModel::PriceCrossing;
  config.revocation.bid = 0.6;
  config.common_shock_rate_per_hour = 1.0 / 36.0;
  config.common_shock_decay_hours = 2.0;
  config.portfolio.on_demand_floor = 0.1;
  config.portfolio.risk_aversion = 2.0;
  return config;
}

transient::MarketEngineConfig multi_config(std::size_t market_count,
                                           double correlation) {
  transient::MarketEngineConfig config = base_config();
  config.replicate_markets(market_count, correlation);
  return config;
}

struct Summary {
  double mean_cost = 0.0;
  double cost_stddev = 0.0;
  double mean_saving = 0.0;
  double mean_od_share = 0.0;
  double mean_revocations = 0.0;
};

Summary sweep(transient::MarketEngineConfig config) {
  std::vector<double> costs;
  Summary out;
  for (std::size_t i = 0; i < kSeeds; ++i) {
    config.seed = 1000 + i;
    const transient::TransientMarketEngine engine(config);
    const auto plan = engine.plan(kServers, horizon());
    const auto report = engine.cost_report(plan, kCoresPerServer, horizon());
    costs.push_back(report.total_cost());
    out.mean_saving += report.saving_percent();
    out.mean_od_share += plan.portfolio.on_demand_weight();
    for (const auto& event : plan.revocations) {
      if (event.revoke) out.mean_revocations += 1.0;
    }
  }
  const auto n = static_cast<double>(costs.size());
  for (const double c : costs) out.mean_cost += c;
  out.mean_cost /= n;
  for (const double c : costs) {
    out.cost_stddev += (c - out.mean_cost) * (c - out.mean_cost);
  }
  out.cost_stddev = std::sqrt(out.cost_stddev / n);
  out.mean_saving /= n;
  out.mean_od_share /= n;
  out.mean_revocations /= n;
  return out;
}

void add_row(util::Table& table, const std::string& label, const Summary& s) {
  table.add_row({label, util::format_double(s.mean_cost, 0),
                 util::format_double(s.cost_stddev, 0),
                 util::format_double(100.0 * s.cost_stddev / s.mean_cost, 2),
                 util::format_double(s.mean_saving, 1),
                 util::format_double(100.0 * s.mean_od_share, 1),
                 util::format_double(s.mean_revocations, 1)});
}

/// A one-entry market list must reproduce the legacy engine exactly.
bool k1_parity() {
  transient::MarketEngineConfig legacy = base_config();
  legacy.seed = 1234;
  transient::MarketEngineConfig single = multi_config(1, 0.0);
  single.seed = 1234;
  const transient::TransientMarketEngine a(legacy);
  const transient::TransientMarketEngine b(single);
  const auto plan_a = a.plan(kServers, horizon());
  const auto plan_b = b.plan(kServers, horizon());
  const auto cost_a = a.cost_report(plan_a, kCoresPerServer, horizon());
  const auto cost_b = b.cost_report(plan_b, kCoresPerServer, horizon());
  return plan_a.prices.samples() == plan_b.prices.samples() &&
         plan_a.on_demand_servers == plan_b.on_demand_servers &&
         plan_a.transient_servers == plan_b.transient_servers &&
         plan_a.revocations == plan_b.revocations &&
         cost_a.total_cost() == cost_b.total_cost();
}

}  // namespace

int main() {
  bench::print_header(
      "Scenario: multi-market transient portfolios",
      "spreading the transient fleet across correlated spot markets keeps "
      "the mean fleet cost while cutting its across-seed variance — the "
      "mean-variance mixing of Sharma et al. turned into server pools");

  std::cout << kServers << " servers x " << kCoresPerServer << " cores, 72h "
            << "horizon, " << kSeeds << " seeds; price-crossing revocations "
            << "(bid 0.6), provider-wide crunches every ~36h\n\n";

  const bool parity = k1_parity();
  std::cout << "K=1 market-list plan vs legacy single-market engine: "
            << (parity ? "bit-identical" : "MISMATCH") << "\n\n";

  util::Table table({"scenario", "mean_cost", "cost_stddev", "cv_%",
                     "saving_vs_od_%", "od_share_%", "revocations"});

  // Fixed split: diversification alone.
  auto fixed_single = base_config();
  fixed_single.use_portfolio = false;
  fixed_single.on_demand_share = 0.3;
  auto fixed_multi = multi_config(3, 0.35);
  fixed_multi.use_portfolio = false;
  fixed_multi.on_demand_share = 0.3;
  const Summary fs = sweep(fixed_single);
  const Summary fm = sweep(fixed_multi);
  add_row(table, "fixed 30% od, 1 market", fs);
  add_row(table, "fixed 30% od, 3 markets (rho 0.35)", fm);

  // Portfolio-chosen split.
  const Summary ps = sweep(base_config());
  const Summary pm = sweep(multi_config(3, 0.35));
  add_row(table, "portfolio, 1 market", ps);
  add_row(table, "portfolio, 3 markets (rho 0.35)", pm);
  table.print(std::cout);

  const bool fixed_ok = fm.cost_stddev < fs.cost_stddev &&
                        fm.mean_cost <= fs.mean_cost * 1.02;
  const bool portfolio_ok = pm.cost_stddev < ps.cost_stddev &&
                            pm.mean_cost <= ps.mean_cost * 1.02;
  std::cout << "\n3-market vs 1-market: fixed split "
            << (fixed_ok ? "lower variance, mean held" : "NO IMPROVEMENT")
            << "; portfolio split "
            << (portfolio_ok ? "lower variance, mean held" : "NO IMPROVEMENT")
            << "\n";
  bench::print_profile();
  return parity && fixed_ok && portfolio_ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
