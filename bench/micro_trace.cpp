// Micro-benchmark: synthetic trace generation rate (VMs/second) and the
// feasibility statistic kernel.
#include <benchmark/benchmark.h>

#include "trace/alibaba.hpp"
#include "trace/azure.hpp"

static void bench_azure_generate_vm(benchmark::State& state) {
  using namespace deflate::trace;
  AzureTraceConfig config;
  config.vm_count = 1;
  config.seed = 3;
  config.duration = deflate::sim::SimTime::from_hours(72);
  const AzureTraceGenerator gen(config);
  std::uint64_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.generate_vm(id++ % 1000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bench_azure_generate_vm);

static void bench_alibaba_generate_container(benchmark::State& state) {
  using namespace deflate::trace;
  AlibabaTraceConfig config;
  config.duration = deflate::sim::SimTime::from_hours(24);
  const AlibabaTraceGenerator gen(config);
  std::uint64_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.generate_container(id++ % 1000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bench_alibaba_generate_container);

static void bench_fraction_above(benchmark::State& state) {
  using namespace deflate::trace;
  AzureTraceConfig config;
  config.vm_count = 1;
  config.seed = 9;
  config.duration = deflate::sim::SimTime::from_hours(72);
  const auto record = AzureTraceGenerator(config).generate_vm(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(record.cpu.fraction_above(0.5));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(record.cpu.size()));
}
BENCHMARK(bench_fraction_above);
