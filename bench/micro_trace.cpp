// Micro-benchmark: synthetic trace generation rate (VMs/second), the
// feasibility statistic kernel, and the streaming replay path (arrival-stub
// indexing and windowed record delivery).
#include <benchmark/benchmark.h>

#include "trace/alibaba.hpp"
#include "trace/azure.hpp"
#include "trace/replay.hpp"

static void bench_azure_generate_vm(benchmark::State& state) {
  using namespace deflate::trace;
  AzureTraceConfig config;
  config.vm_count = 1;
  config.seed = 3;
  config.duration = deflate::sim::SimTime::from_hours(72);
  const AzureTraceGenerator gen(config);
  std::uint64_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.generate_vm(id++ % 1000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bench_azure_generate_vm);

static void bench_alibaba_generate_container(benchmark::State& state) {
  using namespace deflate::trace;
  AlibabaTraceConfig config;
  config.duration = deflate::sim::SimTime::from_hours(24);
  const AlibabaTraceGenerator gen(config);
  std::uint64_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.generate_container(id++ % 1000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bench_alibaba_generate_container);

static void bench_fraction_above(benchmark::State& state) {
  using namespace deflate::trace;
  AzureTraceConfig config;
  config.vm_count = 1;
  config.seed = 9;
  config.duration = deflate::sim::SimTime::from_hours(72);
  const auto record = AzureTraceGenerator(config).generate_vm(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(record.cpu.fraction_above(0.5));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(record.cpu.size()));
}
BENCHMARK(bench_fraction_above);

// Stub projection: the O(1) header-only draw the streaming index is built
// from — the reason indexing a multi-million-VM trace is cheap.
static void bench_azure_arrival_stub(benchmark::State& state) {
  using namespace deflate::trace;
  AzureTraceConfig config;
  config.vm_count = 1;
  config.seed = 3;
  config.duration = deflate::sim::SimTime::from_hours(72);
  const AzureTraceGenerator gen(config);
  std::uint64_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.arrival_of(id++ % 1000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bench_azure_arrival_stub);

// End-to-end streaming delivery rate: records materialized lazily through
// the prefetch window, in (start, id) order. The wrap-around reset() cost
// (index rebuild is cached; only the window restarts) is amortized over
// the stream length.
static void bench_replay_stream_next(benchmark::State& state) {
  using namespace deflate::trace;
  ReplayConfig replay;
  replay.azure.vm_count = 2000;
  replay.azure.seed = 3;
  replay.azure.duration = deflate::sim::SimTime::from_hours(24);
  replay.window = static_cast<std::size_t>(state.range(0));
  const auto stream = make_arrival_stream(replay);
  for (auto _ : state) {
    auto record = stream->next();
    if (!record) {
      stream->reset();
      record = stream->next();
    }
    benchmark::DoNotOptimize(record);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bench_replay_stream_next)->Arg(1)->Arg(256);
