// Figure 2: the abstract slack / linear / knee model of application
// behaviour under deflation (§3.1).
#include <iostream>

#include "bench_common.hpp"
#include "core/perf_model.hpp"

int main() {
  using namespace deflate;
  bench::print_header(
      "Figure 2: application behavior under different levels of deflation",
      "three regions: flat slack, (roughly) linear degradation, precipitous "
      "drop past the knee");

  const auto curve = core::PerfCurve::abstract_model(/*slack_end=*/0.30,
                                                     /*knee=*/0.70,
                                                     /*knee_perf=*/0.45);
  util::Table table({"deflation_%", "normalized_performance", "region"});
  for (int d = 0; d <= 100; d += 5) {
    const double deflation = d / 100.0;
    const char* region = deflation <= 0.30  ? "slack"
                         : deflation <= 0.70 ? "linear"
                                             : "post-knee";
    table.add_row({std::to_string(d),
                   util::format_double(curve.performance(deflation), 3), region});
  }
  table.print(std::cout);
  std::cout << "\nmodel slack (1% tolerance): "
            << util::format_double(curve.slack(0.01), 2) << "\n";
  return 0;
}
