// Figure 7: deflatability by VM memory size — the paper finds no
// correlation between size and deflatability (§3.2.1).
#include <iostream>

#include "analysis/feasibility.hpp"
#include "bench_common.hpp"

int main() {
  using namespace deflate;
  bench::print_header(
      "Figure 7: fraction of time above deflated allocation, by VM size",
      "VM size has no direct correlation with deflatability; all sizes see "
      "similar impact at a given deflation level");

  const auto records = bench::feasibility_trace();

  const trace::SizeBucket buckets[] = {trace::SizeBucket::Small,
                                       trace::SizeBucket::Medium,
                                       trace::SizeBucket::Large};
  for (const auto bucket : buckets) {
    util::Table table({"deflation_%", "min", "q1", "median", "q3", "max"});
    for (int d = 10; d <= 90; d += 10) {
      const auto box = analysis::cpu_underallocation_box(
          records, d / 100.0, [&](const trace::VmRecord& record) {
            return record.size_bucket() == bucket;
          });
      table.add_row_labeled(std::to_string(d),
                            {box.min, box.q1, box.median, box.q3, box.max});
    }
    std::cout << "-- size: " << trace::size_bucket_name(bucket) << " --\n";
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "headline @50% deflation (medians across sizes):";
  for (const auto bucket : buckets) {
    const auto box = analysis::cpu_underallocation_box(
        records, 0.5, [&](const trace::VmRecord& record) {
          return record.size_bucket() == bucket;
        });
    std::cout << "  " << trace::size_bucket_name(bucket) << "="
              << util::format_double(100.0 * box.median, 1) << "%";
  }
  std::cout << "  (paper: roughly equal)\n";
  return 0;
}
