// Figure 7: deflatability by VM memory size — the paper finds no
// correlation between size and deflatability (§3.2.1).
// Streams the trace in one pass — the population is never materialized.
#include <iostream>

#include "analysis/feasibility.hpp"
#include "bench_common.hpp"

int main() {
  using namespace deflate;
  bench::print_header(
      "Figure 7: fraction of time above deflated allocation, by VM size",
      "VM size has no direct correlation with deflatability; all sizes see "
      "similar impact at a given deflation level");

  const trace::SizeBucket buckets[] = {trace::SizeBucket::Small,
                                       trace::SizeBucket::Medium,
                                       trace::SizeBucket::Large};

  const auto stream = bench::feasibility_stream();
  const std::vector<double> levels = bench::deflation_levels();
  const auto boxes = analysis::cpu_underallocation_boxes(
      *stream, levels, std::size(buckets), [&](const trace::VmRecord& record) {
        for (std::size_t b = 0; b < std::size(buckets); ++b) {
          if (record.size_bucket() == buckets[b]) return static_cast<int>(b);
        }
        return -1;
      });

  for (std::size_t b = 0; b < std::size(buckets); ++b) {
    util::Table table({"deflation_%", "min", "q1", "median", "q3", "max"});
    for (std::size_t i = 0; i < levels.size(); ++i) {
      const auto& box = boxes[b][i];
      table.add_row_labeled(std::to_string(10 * static_cast<int>(i + 1)),
                            {box.min, box.q1, box.median, box.q3, box.max});
    }
    std::cout << "-- size: " << trace::size_bucket_name(buckets[b]) << " --\n";
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "headline @50% deflation (medians across sizes):";
  for (std::size_t b = 0; b < std::size(buckets); ++b) {
    std::cout << "  " << trace::size_bucket_name(buckets[b]) << "="
              << util::format_double(100.0 * boxes[b][4].median, 1) << "%";
  }
  std::cout << "  (paper: roughly equal)\n";
  return 0;
}
