// Figure 21: decrease in throughput of deflatable VMs vs cluster
// overcommitment, per deflation policy (§7.4.2). Throughput loss is the
// time-integrated CPU usage above the deflated allocation (Fig. 4's area).
#include <iostream>

#include "cluster_bench.hpp"

int main() {
  using namespace deflate;
  bench::print_header(
      "Figure 21: decrease in throughput of deflatable VMs",
      "negligible below 40% overcommitment, ~1% at 50%, <5% even at 80%; "
      "priority-awareness cuts the loss ~an order of magnitude; "
      "deterministic lowest; partitions add no significant loss");

  const auto records = bench::cluster_trace();
  const auto base = bench::base_sim_config();
  const std::size_t baseline_servers =
      simcluster::TraceDrivenSimulator::minimum_feasible_servers(records, base);
  std::cout << "trace: " << records.size() << " VMs, baseline cluster "
            << baseline_servers << " servers\n\n";

  struct Series {
    const char* label;
    core::PolicyKind policy;
    bool partitioned;
  };
  const std::vector<Series> series{
      {"proportional", core::PolicyKind::Proportional, false},
      {"priority", core::PolicyKind::Priority, false},
      {"deterministic", core::PolicyKind::Deterministic, false},
      {"priority+partitions", core::PolicyKind::Priority, true},
  };

  std::vector<int> levels_ext = bench::overcommit_levels();
  levels_ext.push_back(80);

  std::vector<bench::SweepCase> cases;
  for (const auto& s : series) {
    for (const int oc : levels_ext) {
      bench::SweepCase c;
      c.overcommit = oc / 100.0;
      c.config = base;
      c.config.policy = s.policy;
      c.config.partitioned = s.partitioned;
      c.config.server_count = bench::servers_for(baseline_servers, c.overcommit);
      cases.push_back(c);
    }
  }
  bench::run_sweep(records, cases);

  util::Table table({"overcommit_%", "proportional_%", "priority_%",
                     "deterministic_%", "priority+partitions_%"});
  const std::size_t levels = levels_ext.size();
  for (std::size_t i = 0; i < levels; ++i) {
    std::vector<double> row;
    for (std::size_t s = 0; s < series.size(); ++s) {
      row.push_back(100.0 * cases[s * levels + i].metrics.throughput_loss);
    }
    table.add_row_labeled(std::to_string(levels_ext[i]), row, 3);
  }
  table.print(std::cout);

  std::cout << "\nmean CPU deflation of deflatable VMs (proportional):\n";
  util::Table deflation_table({"overcommit_%", "mean_deflation_%"});
  for (std::size_t i = 0; i < levels; ++i) {
    deflation_table.add_row_labeled(
        std::to_string(levels_ext[i]),
        {100.0 * cases[i].metrics.mean_cpu_deflation}, 2);
  }
  deflation_table.print(std::cout);

  const double prop_50 = cases[5].metrics.throughput_loss;
  const double prop_80 = cases[levels - 1].metrics.throughput_loss;
  std::cout << "\nheadline: proportional loss "
            << util::format_double(100.0 * prop_50, 2) << "% @50% (paper: ~1%), "
            << util::format_double(100.0 * prop_80, 2)
            << "% @80% (paper: <5%)\n";
  return 0;
}
