// Figure 14: SpecJBB 2015 mean response time under *memory* deflation,
// transparent vs hybrid mechanisms (§4.4). The harness drives the actual
// mechanism stack against a simulated 16 GB VM whose guest reports a
// JVM-style resident set, and maps the resulting swap pressure / hotplug
// state through the calibrated memory performance model.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "core/perf_model.hpp"
#include "mechanisms/mechanism.hpp"

namespace {

constexpr double kVmMemoryMib = 16384.0;
constexpr double kRssFraction = 0.56;  // JVM heap + runtime resident set

double run_point(deflate::mech::DeflationMechanism& mechanism, double deflation,
                 const deflate::core::MemoryPerfModel& model) {
  using namespace deflate;
  hv::SimHypervisor hypervisor(0, {48.0, 131072.0, 4000.0, 40000.0});
  virt::Connection conn(hypervisor);
  hv::VmSpec spec;
  spec.id = 1;
  spec.name = "specjbb";
  spec.vcpus = 8;
  spec.memory_mib = kVmMemoryMib;
  spec.deflatable = true;
  virt::Domain dom = conn.define_and_start(spec);
  dom.vm().guest().set_rss(kRssFraction * kVmMemoryMib);

  res::ResourceVector target = spec.vector();
  target[res::Resource::Memory] = kVmMemoryMib * (1.0 - deflation);
  mechanism.apply(dom, target);

  const bool guest_assisted =
      std::string(mechanism.name()) == "hybrid" &&
      dom.info().memory_mib < spec.memory_mib - 1.0;
  return model.rt_multiplier(dom.vm().memory_swap_pressure(), guest_assisted);
}

}  // namespace

int main() {
  using namespace deflate;
  bench::print_header(
      "Figure 14: SpecJBB 2015 mean response time vs memory deflation",
      "both mechanisms flat to ~40% deflation; hybrid ~10% faster (guest "
      "returns unused pages); transparent climbs to ~1.5-1.7x past 40%");

  const core::MemoryPerfModel model;
  mech::TransparentDeflation transparent;
  mech::HybridDeflation hybrid;

  util::Table table(
      {"mem_deflation_%", "transparent_RT(norm)", "hybrid_RT(norm)"});
  for (int d = 0; d <= 45; d += 5) {
    const double deflation = d / 100.0;
    table.add_row_labeled(std::to_string(d),
                          {run_point(transparent, deflation, model),
                           run_point(hybrid, deflation, model)});
  }
  table.print(std::cout);

  std::cout << "\nheadline: transparent @45% = "
            << util::format_double(run_point(transparent, 0.45, model), 2)
            << "x (paper: 1.5-1.7x); hybrid improvement in the flat region = "
            << util::format_double(
                   100.0 * (1.0 - run_point(hybrid, 0.20, model) /
                                      run_point(transparent, 0.20, model)),
                   0)
            << "% (paper: ~10%)\n";
  return 0;
}
