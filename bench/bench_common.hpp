// Shared helpers for the figure-reproduction harnesses.
#pragma once

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "trace/alibaba.hpp"
#include "trace/azure.hpp"
#include "trace/replay.hpp"
#include "util/profiler.hpp"
#include "util/table.hpp"

namespace deflate::bench {

/// Environment knob: DEFLATE_BENCH_SCALE in (0, 1] scales down population
/// sizes for quick smoke runs (default 1 = paper-comparable scale).
inline double bench_scale() {
  if (const char* env = std::getenv("DEFLATE_BENCH_SCALE")) {
    const double scale = std::atof(env);
    if (scale > 0.0 && scale <= 1.0) return scale;
  }
  return 1.0;
}

inline std::size_t scaled(std::size_t n) {
  const auto result = static_cast<std::size_t>(bench_scale() * static_cast<double>(n));
  return result > 0 ? result : 1;
}

/// The Azure-like trace used by the feasibility figures (5-8): a large VM
/// population over 3 days at 5-minute granularity.
inline std::vector<trace::VmRecord> feasibility_trace() {
  trace::AzureTraceConfig config;
  config.vm_count = scaled(20000);
  config.seed = 42;
  config.duration = sim::SimTime::from_hours(72);
  return trace::AzureTraceGenerator(config).generate();
}

/// Streaming variant of feasibility_trace(): the identical population (the
/// records are (seed, id)-keyed, so content matches the materialized
/// vector), yielded in arrival order through the bounded-memory replay
/// window instead of being held as one vector. The feasibility figures
/// consume it in a single pass via analysis::cpu_underallocation_boxes.
inline std::unique_ptr<trace::VmArrivalStream> feasibility_stream() {
  trace::ReplayConfig replay;
  replay.azure.vm_count = scaled(20000);
  replay.azure.seed = 42;
  replay.azure.duration = sim::SimTime::from_hours(72);
  return trace::make_arrival_stream(replay);
}

/// The deflation sweep the feasibility figures plot (10% .. 90%).
inline std::vector<double> deflation_levels() {
  std::vector<double> levels;
  for (int d = 10; d <= 90; d += 10) levels.push_back(d / 100.0);
  return levels;
}

/// The Alibaba-like container trace for Figs. 9-12.
inline std::vector<trace::ContainerRecord> container_trace() {
  trace::AlibabaTraceConfig config;
  config.container_count = scaled(4000);
  config.seed = 2020;
  config.duration = sim::SimTime::from_hours(24);
  return trace::AlibabaTraceGenerator(config).generate();
}

/// The cluster-simulation trace for Figs. 20-22 (paper: 10,000 sampled
/// VMs, §7.1.2).
inline std::vector<trace::VmRecord> cluster_trace() {
  trace::AzureTraceConfig config;
  config.vm_count = scaled(10000);
  config.seed = 7;
  config.duration = sim::SimTime::from_hours(72);
  return trace::AzureTraceGenerator(config).generate();
}

inline void print_header(const std::string& figure, const std::string& claim) {
  std::cout << "==== " << figure << " ====\n";
  std::cout << "paper: " << claim << "\n\n";
}

/// Prints the scoped-profiler phase breakdown accumulated so far (silent
/// when no instrumented phase ran). Benches call this at exit — or between
/// configurations, paired with util::Profiler::instance().reset(), to get
/// per-configuration breakdowns.
inline void print_profile() {
  util::Profiler::instance().report(std::cout);
}

}  // namespace deflate::bench
