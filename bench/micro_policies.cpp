// Micro-benchmark: deflation-policy solve throughput. The local controller
// invokes the policy once per resource dimension per placement, so the
// per-call latency bounds cluster-manager throughput.
#include <benchmark/benchmark.h>

#include "core/policy.hpp"
#include "util/rng.hpp"

namespace {

using deflate::core::PolicyKind;
using deflate::core::VmShare;

std::vector<VmShare> make_shares(std::size_t n, std::uint64_t seed) {
  deflate::util::Rng rng(seed);
  std::vector<VmShare> shares;
  shares.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    VmShare share;
    share.id = i;
    share.max_alloc = rng.uniform(1.0, 32.0);
    share.min_alloc = 0.05;
    share.priority = rng.uniform(0.1, 0.9);
    share.current = rng.uniform(share.min_alloc, share.max_alloc);
    shares.push_back(share);
  }
  return shares;
}

void bench_policy(benchmark::State& state, PolicyKind kind) {
  const auto policy = deflate::core::make_policy(kind);
  const auto shares = make_shares(static_cast<std::size_t>(state.range(0)), 99);
  const double reclaimable = policy->reclaimable(shares);
  for (auto _ : state) {
    auto result = policy->reclaim(shares, reclaimable * 0.5);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

}  // namespace

BENCHMARK_CAPTURE(bench_policy, proportional, PolicyKind::Proportional)
    ->Arg(8)->Arg(64)->Arg(512);
BENCHMARK_CAPTURE(bench_policy, priority, PolicyKind::Priority)
    ->Arg(8)->Arg(64)->Arg(512);
BENCHMARK_CAPTURE(bench_policy, deterministic, PolicyKind::Deterministic)
    ->Arg(8)->Arg(64)->Arg(512);

static void bench_reclaimable(benchmark::State& state) {
  const auto policy = deflate::core::make_policy(PolicyKind::Priority);
  const auto shares = make_shares(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->reclaimable(shares));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(bench_reclaimable)->Arg(64)->Arg(512);
