// Micro-benchmark: per-VM deflation operation latency for the three
// mechanisms (the local controller applies one per VM per reclamation).
#include <benchmark/benchmark.h>

#include <optional>

#include "mechanisms/mechanism.hpp"

namespace {

using namespace deflate;

struct Rig {
  Rig() : hypervisor(0, {48.0, 131072.0, 4000.0, 40000.0}), conn(hypervisor) {
    hv::VmSpec spec;
    spec.id = 1;
    spec.name = "vm";
    spec.vcpus = 16;
    spec.memory_mib = 32768.0;
    spec.deflatable = true;
    domain.emplace(conn.define_and_start(spec));
    domain->vm().guest().set_rss(12000.0);
  }
  hv::SimHypervisor hypervisor;
  virt::Connection conn;
  std::optional<virt::Domain> domain;
};

void bench_mechanism(benchmark::State& state, mech::DeflationMechanism& m) {
  Rig rig;
  const res::ResourceVector spec = rig.domain->vm().spec().vector();
  double deflation = 0.1;
  for (auto _ : state) {
    deflation = deflation > 0.8 ? 0.1 : deflation + 0.07;
    benchmark::DoNotOptimize(m.apply(*rig.domain, spec * (1.0 - deflation)));
  }
}

}  // namespace

static void bench_transparent(benchmark::State& state) {
  mech::TransparentDeflation m;
  bench_mechanism(state, m);
}
static void bench_explicit(benchmark::State& state) {
  mech::ExplicitDeflation m;
  bench_mechanism(state, m);
}
static void bench_hybrid(benchmark::State& state) {
  mech::HybridDeflation m;
  bench_mechanism(state, m);
}

BENCHMARK(bench_transparent);
BENCHMARK(bench_explicit);
BENCHMARK(bench_hybrid);
