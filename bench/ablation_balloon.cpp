// Ablation: ballooning vs hotplug-based memory deflation (DESIGN.md §5).
//
// The paper's hybrid mechanism uses hot-unplug for guest-visible memory
// reclamation; ballooning is the classic alternative ([47], compared in
// [29] with "generally inferior performance to hotplug"). This harness
// repeats the Fig. 14 SpecJBB memory sweep with the balloon mechanism
// added: page-granular (deflates past the hotplug block/threshold limits)
// but paying a management overhead and getting no guest-assisted gain.
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "core/perf_model.hpp"
#include "mechanisms/mechanism.hpp"

namespace {

constexpr double kVmMemoryMib = 16384.0;
constexpr double kRssFraction = 0.56;

struct Point {
  double rt = 0.0;
  double guest_visible_mib = 0.0;
};

Point run_point(deflate::mech::DeflationMechanism& mechanism, double deflation,
                const deflate::core::MemoryPerfModel& model) {
  using namespace deflate;
  hv::SimHypervisor hypervisor(0, {48.0, 131072.0, 4000.0, 40000.0});
  virt::Connection conn(hypervisor);
  hv::VmSpec spec;
  spec.id = 1;
  spec.name = "specjbb";
  spec.vcpus = 8;
  spec.memory_mib = kVmMemoryMib;
  spec.deflatable = true;
  virt::Domain dom = conn.define_and_start(spec);
  dom.vm().guest().set_rss(kRssFraction * kVmMemoryMib);

  res::ResourceVector target = spec.vector();
  target[res::Resource::Memory] = kVmMemoryMib * (1.0 - deflation);
  mechanism.apply(dom, target);

  const std::string name = mechanism.name();
  const double pressure = dom.vm().memory_swap_pressure();
  Point point;
  point.guest_visible_mib = dom.vm().guest().usable_memory_mib();
  if (name == "balloon") {
    const double balloon_fraction =
        dom.vm().guest().balloon_mib() / kVmMemoryMib;
    point.rt = model.rt_multiplier_balloon(pressure, balloon_fraction);
  } else {
    const bool guest_assisted =
        name == "hybrid" && dom.info().memory_mib < spec.memory_mib - 1.0;
    point.rt = model.rt_multiplier(pressure, guest_assisted);
  }
  return point;
}

}  // namespace

int main() {
  using namespace deflate;
  bench::print_header(
      "Ablation: memory deflation mechanism (hotplug hybrid vs balloon vs "
      "transparent)",
      "hybrid wins while above the RSS threshold (guest returns pages); "
      "ballooning pays a management overhead that grows with the pinned "
      "fraction [29]");

  const core::MemoryPerfModel model;
  mech::TransparentDeflation transparent;
  mech::HybridDeflation hybrid;
  mech::BalloonDeflation balloon;

  util::Table table({"mem_deflation_%", "transparent_RT", "hybrid_RT",
                     "balloon_RT", "balloon_guest_mem_MiB"});
  for (int d = 0; d <= 45; d += 5) {
    const double deflation = d / 100.0;
    const Point t = run_point(transparent, deflation, model);
    const Point h = run_point(hybrid, deflation, model);
    const Point b = run_point(balloon, deflation, model);
    table.add_row_labeled(std::to_string(d),
                          {t.rt, h.rt, b.rt, b.guest_visible_mib});
  }
  table.print(std::cout);

  std::cout << "\nheadline: in the flat region the balloon runs ~"
            << util::format_double(
                   100.0 * (run_point(balloon, 0.3, model).rt /
                                run_point(hybrid, 0.3, model).rt -
                            1.0),
                   0)
            << "% slower than hybrid hotplug (paper cites [29]: ballooning "
               "inferior to hotplug)\n";
  return 0;
}
