// Figure 22: increase in cloud revenue from deflatable VMs vs cluster
// overcommitment, for the three §5.2.2 pricing schemes.
//
// Protocol (EXPERIMENTS.md): the cluster is sized for the on-demand pool;
// overcommitment is produced by admitting more deflatable VMs (their
// committed core-time budget scales with the target level). Revenue
// increase = deflatable revenue / on-demand revenue. This reproduces the
// paper's narrative directly: static pricing grows with overcommitment,
// priority pricing roughly doubles it, and allocation-based pricing
// flattens once physical capacity is exhausted ("more VMs ... but highly
// deflated, thus total revenue remains the same").
#include <iostream>

#include "cluster_bench.hpp"

int main() {
  using namespace deflate;
  bench::print_header(
      "Figure 22: increase in cloud revenue due to deflatable VMs",
      "static pricing: ~15% extra revenue at 60% overcommitment; "
      "priority-based pricing ~2x static; allocation-based flat beyond "
      "moderate overcommitment");

  // A deflatable-rich trace: the revenue experiment scales the admitted
  // low-priority pool up to 70% overcommitment, which needs several times
  // the on-demand pool's committed peak in deflatable supply.
  trace::AzureTraceConfig trace_config;
  trace_config.vm_count = bench::scaled(10000);
  trace_config.seed = 7;
  trace_config.duration = sim::SimTime::from_hours(72);
  trace_config.interactive_share = 0.75;
  trace_config.delay_insensitive_share = 0.15;
  const auto all_records =
      trace::AzureTraceGenerator(trace_config).generate();
  std::vector<trace::VmRecord> od_records;
  double deflatable_core_hours = 0.0;
  for (const auto& record : all_records) {
    if (!record.deflatable()) {
      od_records.push_back(record);
    } else {
      deflatable_core_hours += record.vcpus * record.lifetime().hours();
    }
  }

  const auto base = bench::base_sim_config();
  // Cluster sized for the on-demand committed peak (the provider's sunk
  // hardware); deflatable VMs are sold out of the leftover capacity.
  const std::size_t servers =
      simcluster::TraceDrivenSimulator::servers_for_overcommit(od_records, base.server_capacity, 0.0);
  const double capacity_cores =
      base.server_capacity.cpu() * static_cast<double>(servers);
  std::cout << "on-demand pool: " << od_records.size() << " VMs on " << servers
            << " servers (" << capacity_cores << " cores)\n\n";

  // For each target level, binary-search the admitted deflatable core-hour
  // budget so the achieved committed *peak* (the paper's overcommitment
  // definition) matches the target.
  const res::ResourceVector capacity =
      base.server_capacity * static_cast<double>(servers);
  auto achieved_peak_oc = [&](const std::vector<trace::VmRecord>& records) {
    const auto peak = simcluster::TraceDrivenSimulator::peak_committed(records);
    double oc = 0.0;
    for (const res::Resource r : {res::Resource::Cpu, res::Resource::Memory}) {
      if (capacity[r] > 0.0) oc = std::max(oc, peak[r] / capacity[r] - 1.0);
    }
    return oc;
  };

  std::vector<bench::SweepCase> cases;
  std::vector<std::vector<trace::VmRecord>> traces;
  for (const int oc : bench::overcommit_levels()) {
    bench::SweepCase c;
    c.overcommit = oc / 100.0;
    c.config = base;
    c.config.server_count = servers;
    cases.push_back(c);

    double lo = 0.0, hi = deflatable_core_hours;
    std::vector<trace::VmRecord> subset =
        simcluster::TraceDrivenSimulator::select_deflatable_subset(all_records,
                                                                   hi);
    if (achieved_peak_oc(subset) > c.overcommit) {
      for (int iter = 0; iter < 24; ++iter) {
        const double mid = 0.5 * (lo + hi);
        subset = simcluster::TraceDrivenSimulator::select_deflatable_subset(
            all_records, mid);
        if (achieved_peak_oc(subset) < c.overcommit) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
    }
    traces.push_back(std::move(subset));
  }

  util::parallel_for(cases.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      simcluster::TraceDrivenSimulator simulator(traces[i], cases[i].config);
      cases[i].metrics = simulator.run();
    }
  });

  util::Table table({"overcommit_%", "achieved_peak_oc_%", "static_%",
                     "priority-based_%", "allocation-based_%",
                     "deflatable_VMs"});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& revenue = cases[i].metrics.revenue;
    std::size_t deflatable = 0;
    for (const auto& record : traces[i]) {
      if (record.deflatable()) ++deflatable;
    }
    table.add_row(
        {std::to_string(bench::overcommit_levels()[i]),
         util::format_double(100.0 * cases[i].metrics.achieved_overcommit, 1),
         util::format_double(cluster::revenue_increase_percent(
                                 revenue, cluster::PricingScheme::Static),
                             2),
         util::format_double(
             cluster::revenue_increase_percent(
                 revenue, cluster::PricingScheme::PriorityBased),
             2),
         util::format_double(
             cluster::revenue_increase_percent(
                 revenue, cluster::PricingScheme::AllocationBased),
             2),
         std::to_string(deflatable)});
  }
  table.print(std::cout);

  const auto& at_60 = cases[6].metrics.revenue;
  std::cout << "\nheadline @60% overcommit: static +"
            << util::format_double(cluster::revenue_increase_percent(
                                       at_60, cluster::PricingScheme::Static),
                                   1)
            << "% (paper: ~15%), priority-based +"
            << util::format_double(
                   cluster::revenue_increase_percent(
                       at_60, cluster::PricingScheme::PriorityBased),
                   1)
            << "% (paper: ~2x static)\n";
  return 0;
}
