// Scenario: streaming megafleet trace replay (ROADMAP: "production-trace
// megafleet scenario" — the bounded-memory path in src/trace/replay.hpp).
//
// Part 1 — determinism gates (CI greps the PASS lines): replays of one
// Azure trace must be BIT-IDENTICAL across streaming window sizes and
// prefetch worker-thread counts. Those knobs buy wall-clock time, never
// results; any divergence is a determinism regression.
//
// Part 2 — megafleet replay: a multi-million-VM Azure arrival stream
// driven through admission -> sharded placement -> market/revocation at
// 100k+ servers (at DEFLATE_BENCH_SCALE=1), in bounded memory: the full
// fleet is never materialized — only the arrival index, the streaming
// window and the concurrently-live VMs are resident. The memory gate
// checks the peak resident set stayed a fraction of the trace.
//
// Part 3 — trace-driven vs synthetic-arrival baseline: the same offered
// population with the diurnal arrival cohort disabled (uniform synthetic
// arrivals, the shape earlier scenario benches used). Cost, served
// throughput and placement latency are compared side by side: the diurnal
// trace's sharp committed-capacity peak is precisely what the synthetic
// baseline understates.
//
//   $ ./build/bench_scenario_trace_replay             # full megafleet
//   $ DEFLATE_BENCH_SCALE=0.2 ./build/bench_...       # CI smoke
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "simcluster/cluster_sim.hpp"
#include "trace/replay.hpp"
#include "util/table.hpp"

namespace {

using namespace deflate;

bool all_gates_passed = true;

void gate(const std::string& name, bool pass) {
  std::cout << "gate " << name << ": " << (pass ? "PASS" : "FAIL") << "\n";
  if (!pass) all_gates_passed = false;
}

// --- part 1: determinism gates ---------------------------------------------

trace::ReplayConfig parity_replay() {
  trace::ReplayConfig replay;
  replay.azure.vm_count = bench::scaled(20000);
  replay.azure.seed = 42;
  replay.azure.duration = sim::SimTime::from_hours(24);
  return replay;
}

simcluster::SimConfig parity_config(std::size_t servers) {
  simcluster::SimConfig config;
  config.server_count = servers;
  config.server_capacity = {48.0, 128.0 * 1024.0, 1e9, 1e9};
  config.shard_count = 8;
  config.market_enabled = true;
  config.market.seed = 7;
  config.market.revocation.model = transient::RevocationModel::Poisson;
  return config;
}

simcluster::SimMetrics run_once(const trace::ReplayConfig& replay,
                                std::size_t servers, double* seconds = nullptr,
                                std::size_t* peak_active = nullptr) {
  const auto stream = trace::make_arrival_stream(replay);
  simcluster::TraceDrivenSimulator simulator(*stream, parity_config(servers));
  const auto start = std::chrono::steady_clock::now();
  const simcluster::SimMetrics metrics = simulator.run();
  const auto end = std::chrono::steady_clock::now();
  if (seconds != nullptr) {
    *seconds = std::chrono::duration<double>(end - start).count();
  }
  if (peak_active != nullptr) *peak_active = simulator.peak_active_records();
  return metrics;
}

bool identical(const simcluster::SimMetrics& a,
               const simcluster::SimMetrics& b) {
  return a.rejections == b.rejections && a.preemptions == b.preemptions &&
         a.revocations == b.revocations &&
         a.revocation_migrations == b.revocation_migrations &&
         a.revocation_kills == b.revocation_kills &&
         a.reclamation_attempts == b.reclamation_attempts &&
         a.reclamation_failures == b.reclamation_failures &&
         a.vm_count == b.vm_count &&
         a.throughput_loss == b.throughput_loss &&          // bit-identical
         a.mean_cpu_deflation == b.mean_cpu_deflation &&    // bit-identical
         a.unserved_core_hours == b.unserved_core_hours &&  // bit-identical
         a.cost.total_cost() == b.cost.total_cost();        // bit-identical
}

void determinism_gates() {
  const trace::ReplayConfig base = parity_replay();
  const std::size_t servers = [&] {
    const auto stream = trace::make_arrival_stream(base);
    return trace::servers_for_overcommit(
        *stream, {48.0, 128.0 * 1024.0, 1e9, 1e9}, 0.2);
  }();
  std::cout << "-- determinism gates --\n"
            << base.azure.vm_count << " VMs / " << servers
            << " servers; each knob must reproduce the reference replay bit "
               "for bit\n\n";

  trace::ReplayConfig reference_cfg = base;
  reference_cfg.window = 1024;
  reference_cfg.worker_threads = 1;
  const simcluster::SimMetrics reference = run_once(reference_cfg, servers);

  for (const std::size_t window : {std::size_t{1}, std::size_t{8192}}) {
    trace::ReplayConfig replay = base;
    replay.window = window;
    replay.worker_threads = 1;
    gate("window=" + std::to_string(window),
         identical(reference, run_once(replay, servers)));
  }
  for (const std::size_t threads : {std::size_t{4}}) {
    trace::ReplayConfig replay = base;
    replay.window = 256;
    replay.worker_threads = threads;
    gate("worker_threads=" + std::to_string(threads),
         identical(reference, run_once(replay, servers)));
  }
  std::cout << "\n";
}

// --- parts 2+3: megafleet replay vs synthetic baseline ----------------------

struct FleetRun {
  std::string label;
  std::size_t arrivals = 0;
  std::size_t servers = 0;
  std::size_t peak_active = 0;
  double seconds = 0.0;
  simcluster::SimMetrics metrics;
};

FleetRun run_fleet(const std::string& label,
                   const trace::ReplayConfig& replay) {
  FleetRun run;
  run.label = label;
  const auto stream = trace::make_arrival_stream(replay);
  run.arrivals = stream->size();
  run.servers = trace::servers_for_overcommit(
      *stream, {48.0, 128.0 * 1024.0, 1e9, 1e9}, 0.2);
  simcluster::TraceDrivenSimulator simulator(*stream,
                                             parity_config(run.servers));
  const auto start = std::chrono::steady_clock::now();
  run.metrics = simulator.run();
  const auto end = std::chrono::steady_clock::now();
  run.seconds = std::chrono::duration<double>(end - start).count();
  run.peak_active = simulator.peak_active_records();
  return run;
}

void megafleet() {
  // ~4.5M VMs over 24h sizes the fleet to ~120k servers at scale 1 (the
  // concurrency peak commits ~0.027 servers per offered VM on this mix).
  const std::size_t vms = bench::scaled(4500000);

  trace::ReplayConfig traced;
  traced.azure.vm_count = vms;
  traced.azure.seed = 42;
  traced.azure.duration = sim::SimTime::from_hours(24);

  // Synthetic-arrival baseline: same population, diurnal cohort disabled —
  // arrivals spread uniformly, the shape the synthetic churn benches use.
  trace::ReplayConfig synthetic = traced;
  synthetic.azure.diurnal_share = 0.0;

  std::cout << "-- megafleet: trace-driven vs synthetic arrivals --\n"
            << vms << " offered VMs over 24 h, admission -> 8-shard "
               "placement -> spot market, 20% headroom\n\n";

  const FleetRun trace_run = run_fleet("trace-driven (diurnal)", traced);
  const FleetRun synth_run = run_fleet("synthetic (uniform)", synthetic);

  util::Table table({"arrival source", "servers", "peak resident VMs",
                     "run_s", "placements_per_s", "served_throughput",
                     "fleet_cost", "saving_vs_od", "unserved_ch"});
  for (const FleetRun* run : {&trace_run, &synth_run}) {
    const double placements_per_s =
        run->seconds > 0.0 ? static_cast<double>(run->arrivals) / run->seconds
                           : 0.0;
    table.add_row(
        {run->label, std::to_string(run->servers),
         std::to_string(run->peak_active),
         util::format_double(run->seconds, 1),
         util::format_double(placements_per_s, 0),
         util::format_double(100.0 * (1.0 - run->metrics.throughput_loss), 2) +
             "%",
         util::format_double(run->metrics.cost.total_cost(), 0),
         util::format_double(run->metrics.cost.saving_percent(), 1) + "%",
         util::format_double(run->metrics.unserved_core_hours, 0)});
  }
  table.print(std::cout);
  std::cout << "\n";
  bench::print_profile();

  // Scale gate: the headline claim only holds at full scale.
  if (bench::bench_scale() >= 1.0) {
    gate("megafleet_servers>=100k", trace_run.servers >= 100000);
  } else {
    std::cout << "(megafleet server gate skipped at DEFLATE_BENCH_SCALE="
              << bench::bench_scale() << ": " << trace_run.servers
              << " servers)\n";
  }
  // Memory gate: streaming never held the fleet — the peak resident set is
  // the concurrent population, a fraction of the offered trace.
  gate("bounded_memory(peak_resident<60%)",
       trace_run.peak_active <
           (trace_run.arrivals * 6) / 10);
}

}  // namespace

int main() {
  bench::print_header(
      "Scenario: streaming megafleet trace replay",
      "cloud-scale deflation studies need production-shaped arrival "
      "traces; the streaming replay drives millions of trace arrivals "
      "through admission and placement in bounded memory, bit-identically "
      "across streaming knobs");

  determinism_gates();
  megafleet();

  std::cout << "\nThe diurnal trace concentrates its committed-capacity "
               "peak into the business-hours\ncohort: the same offered "
               "population needs a larger fleet (or deflates deeper)\nthan "
               "the uniform synthetic baseline suggests — the reason "
               "replaying real arrival\nshapes matters for capacity "
               "planning.\n";
  std::cout << (all_gates_passed ? "ALL GATES PASSED\n" : "GATES FAILED\n");
  return all_gates_passed ? 0 : 1;
}
