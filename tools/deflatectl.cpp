// deflatectl — command-line driver for the deflate library.
//
//   deflatectl trace generate --vms 10000 --hours 72 --seed 7 --out t.csv
//   deflatectl trace stats --in t.csv [--deflation 0.5]
//   deflatectl simulate --in t.csv --overcommit 0.5 --policy proportional
//               [--mode deflation|preemption] [--mechanism hybrid|...]
//               [--placement fitness|first-fit|best-fit|worst-fit]
//               [--partitioned] [--no-reinflate]
//               [--shards N] [--shard-policy p2c|least-loaded|round-robin]
//   deflatectl feasibility --in t.csv
//   deflatectl revoke-sim --in t.csv [--servers N] [--model poisson|temporal|price]
//               [--rate R] [--bid B] [--no-portfolio] [--od-share S]
//               [--floor F] [--risk A] [--mode deflation|preemption]
//               [--partitioned] [--seed S]
//               [--markets K] [--correlation R] [--common-shock-rate R]
//               [--shards N] [--shard-policy p2c|least-loaded|round-robin]
//               [--warning-secs W] [--migration-bandwidth B]
//               [--migration-dirty-rate D] [--migration-contention]
//               [--migration-strategy migrate|deflate|hybrid]
//               [--admission admit-all|price|bid-opt] [--price-ceiling C]
//               [--defer-hours H] [--bid-opt]
//               [--reopt-hours H] [--forecast static|ewma|windowed]
//               [--reopt-max-moves N]
//   deflatectl connect --port P [--vms N] [--batch B] [--hours H]
//               [--seed S] [--telemetry N] [--shutdown]
//   deflatectl replay --capture FILE
//   deflatectl replay-trace [--source azure|alibaba|capture] [--vms N]
//               [--hours H] [--seed S] [--rate R] [--duration-scale D]
//               [--window W] [--threads T] [--capture FILE]
//               [--servers N | --overcommit O] [--shards N]
//               [--shard-policy p2c|least-loaded|round-robin]
//               [--reopt-hours H] [--forecast F] [--reopt-max-moves N]
//   deflatectl list-policies
//
// `list-policies` prints every policy registry surface (admission,
// placement, shard-selection, migration, revocation, control) with its
// registered policies, aliases and tunable parameters — including
// policies added by link-time plugins (src/policy/registry.hpp).
//
// --reopt-hours/--forecast/--reopt-max-moves enable the online control
// plane (src/control): any of them turns the rolling re-optimization loop
// on, re-planning every --reopt-hours of simulated time with the named
// forecast policy and at most --reopt-max-moves cross-market server
// moves per window. Under replay-trace (no market plan) the flags are
// accepted but the controller is inert — there is nothing to
// re-optimize. --telemetry N subscribes the connect session to one
// aggregate UtilizationReport frame per N admission decisions.
//
// `connect` drives a running deflated daemon (tools/deflated.cpp) through
// the batching client (src/net/client.hpp) and prints the decision
// breakdown; `replay` re-runs a captured admission session
// (src/net/capture.hpp) and fails on any decision divergence.
// `replay-trace` streams a generated (azure/alibaba) or captured arrival
// trace through the full cluster simulation without ever materializing the
// fleet (src/trace/replay.hpp): --rate multiplies the offered arrival
// rate, --duration-scale stretches the horizon, --window/--threads tune
// the streaming prefetch (never the results).
//
// --shards > 1 runs the fleet through the sharded cluster manager
// (src/cluster/sharded_manager.hpp); 1 (default) is the flat manager.
// --markets > 1 spreads the transient fleet across K correlated spot
// markets (pairwise innovation correlation --correlation, provider-wide
// crunches at --common-shock-rate per hour), each market carrying the
// configured revocation model/bid with its own revocation stream; the
// portfolio sizes the per-market pools and the cost table gains a
// per-market breakdown.
// --migration-bandwidth > 0 (MiB/s) turns on *timed* revocations
// (src/cluster/migration.hpp): each revocation is announced
// --warning-secs ahead, VMs stream off the doomed server within that
// window, and stop-and-copy/checkpoint downtime is billed into the fleet
// cost. 0 (default) is the instant sentinel — the legacy free re-place.
// --migration-contention makes N simultaneous streams off one server
// share the link (each sees bandwidth / N).
// --migration-strategy: migrate = full-footprint pre-copy, kill on a
// missed deadline; deflate = stream the deflated footprint, kill on a
// miss; hybrid (default) = deflated transfer + checkpoint-relaunch
// fallback.
// --admission selects the Admission API v2 policy (src/cluster/
// admission.hpp): price defers deflatable launches while the spot quote
// exceeds --price-ceiling (deferrals retried when the price drops,
// expired after --defer-hours); bid-opt derives per-class ceilings from
// the bid optimizer (so --price-ceiling conflicts with it) and implies
// --bid-opt. --bid-opt alone replaces the
// hand-set market bids with per-class optimized ones
// (src/transient/bidding.hpp) without changing the admission policy.
//
// Invalid or conflicting flags fail fast with a one-line error (exit 1):
// unknown flags, malformed numbers, out-of-range values, --correlation
// without --markets >= 2, negative bandwidths, and similar mistakes are
// never silently replaced by defaults.
//
// Exit status: 0 on success, 1 on usage errors, 2 on runtime errors.
#include <cmath>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "analysis/feasibility.hpp"
#include "control/forecast.hpp"
#include "net/capture.hpp"
#include "net/client.hpp"
#include "policy/catalog.hpp"
#include "simcluster/cluster_sim.hpp"
#include "trace/azure.hpp"
#include "trace/replay.hpp"
#include "trace/trace_io.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace deflate;
using util::CliArgs;
using util::CliValidator;

int usage() {
  std::cerr <<
      "usage:\n"
      "  deflatectl trace generate --vms N --hours H --seed S --out FILE\n"
      "  deflatectl trace stats --in FILE [--deflation D]\n"
      "  deflatectl simulate --in FILE --overcommit O [--policy P] [--mode M]\n"
      "             [--mechanism K] [--placement S] [--partitioned]\n"
      "             [--no-reinflate] [--servers N] [--shards N]\n"
      "             [--shard-policy p2c|least-loaded|round-robin]\n"
      "  deflatectl feasibility --in FILE\n"
      "  deflatectl revoke-sim --in FILE [--servers N] [--model M] [--rate R]\n"
      "             [--bid B] [--no-portfolio] [--od-share S] [--floor F]\n"
      "             [--risk A] [--mode deflation|preemption] [--partitioned]\n"
      "             [--seed S] [--markets K] [--correlation R]\n"
      "             [--common-shock-rate R] [--shards N]\n"
      "             [--shard-policy p2c|least-loaded|round-robin]\n"
      "             [--warning-secs W] [--migration-bandwidth MiB/s]\n"
      "             [--migration-dirty-rate MiB/s] [--migration-contention]\n"
      "             [--migration-strategy migrate|deflate|hybrid]\n"
      "             [--admission admit-all|price|bid-opt] [--price-ceiling C]\n"
      "             [--defer-hours H] [--bid-opt]\n"
      "             [--reopt-hours H] [--forecast static|ewma|windowed]\n"
      "             [--reopt-max-moves N]\n"
      "  deflatectl connect --port P [--vms N] [--batch B] [--hours H]\n"
      "             [--seed S] [--telemetry N] [--shutdown]\n"
      "  deflatectl replay --capture FILE\n"
      "  deflatectl replay-trace [--source azure|alibaba|capture] [--vms N]\n"
      "             [--hours H] [--seed S] [--rate R] [--duration-scale D]\n"
      "             [--window W] [--threads T] [--capture FILE]\n"
      "             [--servers N | --overcommit O] [--shards N]\n"
      "             [--shard-policy p2c|least-loaded|round-robin]\n"
      "             [--reopt-hours H] [--forecast F] [--reopt-max-moves N]\n"
      "  deflatectl list-policies\n";
  return 1;
}

/// Prints every validation error on its own line; true when the flag set
/// is invalid (caller returns exit 1).
bool report_errors(const CliValidator& validator) {
  for (const std::string& error : validator.errors()) {
    std::cerr << "error: " << error << "\n";
  }
  return !validator.ok();
}

int flag_error(const std::string& message) {
  std::cerr << "error: " << message << "\n";
  return 1;
}

/// One-line "flag --X: unknown value 'v' (expected a|b|c)" diagnostic
/// with the choice list pulled from the surface's registry — plugin
/// policies appear automatically.
template <typename Surface>
int unknown_policy_error(const std::string& flag, const std::string& value) {
  return flag_error("flag --" + flag + ": unknown value '" + value +
                    "' (expected " + policy::joined_policy_names<Surface>() +
                    ")");
}

// The policy-name parsers below all resolve through the registries
// (aliases included) instead of hand-rolled string ladders; the enum they
// return is the legacy alias of the matched entry.

std::optional<transient::RevocationModel> parse_revocation_model(
    const std::string& name) {
  return transient::revocation_model_from_name(name);
}

std::optional<core::PolicyKind> parse_policy(const std::string& name) {
  if (name == "proportional") return core::PolicyKind::Proportional;
  if (name == "priority") return core::PolicyKind::Priority;
  if (name == "priority-nomin") return core::PolicyKind::PriorityNoMin;
  if (name == "deterministic") return core::PolicyKind::Deterministic;
  return std::nullopt;
}

std::optional<mech::MechanismKind> parse_mechanism(const std::string& name) {
  if (name == "hybrid") return mech::MechanismKind::Hybrid;
  if (name == "transparent") return mech::MechanismKind::Transparent;
  if (name == "explicit") return mech::MechanismKind::Explicit;
  if (name == "balloon") return mech::MechanismKind::Balloon;
  return std::nullopt;
}

std::optional<cluster::PlacementStrategy> parse_placement(
    const std::string& name) {
  return cluster::placement_strategy_from_name(name);
}

std::optional<cluster::ShardSelectionPolicy> parse_shard_policy(
    const std::string& name) {
  return cluster::shard_selection_from_name(name);
}

std::optional<cluster::AdmissionPolicyKind> parse_admission_policy(
    const std::string& name) {
  return cluster::admission_policy_from_name(name);
}

/// Applies the shared online-control flags (--reopt-hours, --forecast,
/// --reopt-max-moves): any of them enables the controller. Returns 0, or
/// the usage-error exit code for an unknown forecast name.
int apply_control_flags(const CliArgs& args, simcluster::SimConfig& config) {
  if (args.has("forecast")) {
    const std::string forecast = args.get("forecast", "");
    if (control::ControlRegistry::instance().find(forecast) == nullptr) {
      return unknown_policy_error<control::ControlSurface>("forecast",
                                                           forecast);
    }
    config.control.forecast = forecast;
  }
  if (args.has("reopt-hours") || args.has("forecast") ||
      args.has("reopt-max-moves")) {
    config.control.enabled = true;
    config.control.reopt_hours =
        args.get_double("reopt-hours", config.control.reopt_hours);
    config.control.max_moves_per_window = static_cast<std::size_t>(
        args.get_double("reopt-max-moves",
                        static_cast<double>(
                            config.control.max_moves_per_window)));
  }
  return 0;
}

/// Applies the shared --shards / --shard-policy flags; returns false on a
/// bad policy name.
bool apply_shard_flags(const CliArgs& args, simcluster::SimConfig& config) {
  config.shard_count =
      static_cast<std::size_t>(args.get_double("shards", 1));
  const auto policy = parse_shard_policy(args.get("shard-policy", "p2c"));
  if (!policy) return false;
  config.shard_selection = *policy;
  return true;
}

int cmd_trace_generate(const CliArgs& args) {
  CliValidator validator(args);
  validator
      .allow_only({"vms", "hours", "seed", "out", "interactive-share"})
      .require_integer_at_least("vms", 1)
      .require_at_least("hours", 0.001)
      .require_at_least("seed", 0)
      .require_in_range("interactive-share", 0.0, 1.0);
  if (report_errors(validator)) return 1;

  trace::AzureTraceConfig config;
  config.vm_count = static_cast<std::size_t>(args.get_double("vms", 10000));
  config.seed = static_cast<std::uint64_t>(args.get_double("seed", 42));
  config.duration = sim::SimTime::from_hours(args.get_double("hours", 72));
  config.interactive_share = args.get_double("interactive-share", 0.5);
  const std::string out = args.get("out", "");
  if (out.empty()) return usage();

  const auto records = trace::AzureTraceGenerator(config).generate();
  trace::save_trace(out, records);
  std::cout << "wrote " << records.size() << " VMs to " << out << "\n";
  return 0;
}

int cmd_trace_stats(const CliArgs& args) {
  CliValidator validator(args);
  validator.allow_only({"in", "deflation"})
      .require_in_range("deflation", 0.0, 1.0);
  if (report_errors(validator)) return 1;

  const std::string in = args.get("in", "");
  if (in.empty()) return usage();
  const auto records = trace::load_trace(in);

  std::size_t interactive = 0, batch = 0, unknown = 0;
  double core_hours = 0.0;
  for (const auto& record : records) {
    switch (record.workload) {
      case hv::WorkloadClass::Interactive: ++interactive; break;
      case hv::WorkloadClass::DelayInsensitive: ++batch; break;
      case hv::WorkloadClass::Unknown: ++unknown; break;
    }
    core_hours += record.vcpus * record.lifetime().hours();
  }
  const auto peak = simcluster::TraceDrivenSimulator::peak_committed(records);
  std::cout << "VMs: " << records.size() << " (interactive " << interactive
            << ", delay-insensitive " << batch << ", unknown " << unknown
            << ")\n"
            << "committed core-hours: " << core_hours << "\n"
            << "peak committed: " << peak << "\n";

  const double deflation = args.get_double("deflation", 0.5);
  const auto box = analysis::cpu_underallocation_box(records, deflation);
  std::cout << "time above " << 100 * (1 - deflation)
            << "% allocation (i.e. " << 100 * deflation
            << "% deflation): median " << 100 * box.median << "%, q3 "
            << 100 * box.q3 << "%\n";
  return 0;
}

int cmd_simulate(const CliArgs& args) {
  CliValidator validator(args);
  validator
      .allow_only({"in", "overcommit", "policy", "mode", "mechanism",
                   "placement", "partitioned", "no-reinflate", "servers",
                   "shards", "shard-policy"})
      .require_at_least("overcommit", -0.9)
      .require_integer_at_least("servers", 1)
      .require_integer_at_least("shards", 1);
  if (report_errors(validator)) return 1;

  const std::string in = args.get("in", "");
  if (in.empty()) return usage();
  const auto records = trace::load_trace(in);

  simcluster::SimConfig config;
  const auto policy = parse_policy(args.get("policy", "proportional"));
  if (!policy) return flag_error("flag --policy: unknown value '" +
                                 args.get("policy", "") +
                                 "' (expected proportional|priority|"
                                 "priority-nomin|deterministic)");
  const auto mechanism = parse_mechanism(args.get("mechanism", "hybrid"));
  if (!mechanism) return flag_error("flag --mechanism: unknown value '" +
                                    args.get("mechanism", "") +
                                    "' (expected hybrid|transparent|"
                                    "explicit|balloon)");
  const auto placement = parse_placement(args.get("placement", "fitness"));
  if (!placement) {
    return unknown_policy_error<cluster::PlacementSurface>(
        "placement", args.get("placement", ""));
  }
  config.policy = *policy;
  config.mechanism = *mechanism;
  config.placement = *placement;
  const std::string mode = args.get("mode", "deflation");
  if (mode != "deflation" && mode != "preemption") {
    return flag_error("flag --mode: unknown value '" + mode +
                      "' (expected deflation|preemption)");
  }
  config.mode = mode == "preemption" ? cluster::ReclamationMode::Preemption
                                     : cluster::ReclamationMode::Deflation;
  config.partitioned = args.has("partitioned");
  config.reinflate_on_departure = !args.has("no-reinflate");
  if (!apply_shard_flags(args, config)) {
    return unknown_policy_error<cluster::ShardSelectionSurface>(
        "shard-policy", args.get("shard-policy", ""));
  }

  const double overcommit = args.get_double("overcommit", 0.0);
  if (args.has("servers")) {
    config.server_count = static_cast<std::size_t>(args.get_double("servers", 40));
  } else {
    const std::size_t baseline =
        simcluster::TraceDrivenSimulator::minimum_feasible_servers(records,
                                                                   config);
    config.server_count = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::floor(static_cast<double>(baseline) / (1.0 + overcommit))));
    std::cout << "baseline " << baseline << " servers -> "
              << config.server_count << " at " << 100 * overcommit
              << "% overcommitment\n";
  }

  simcluster::TraceDrivenSimulator simulator(records, config);
  const auto metrics = simulator.run();

  util::Table table({"metric", "value"});
  table.add_row({"policy", core::policy_kind_name(config.policy)});
  table.add_row({"mechanism", mech::mechanism_kind_name(config.mechanism)});
  if (config.shard_count > 1) {
    table.add_row({"shards",
                   std::to_string(config.shard_count) + " (" +
                       cluster::shard_selection_name(config.shard_selection) +
                       ")"});
  }
  table.add_row({"achieved overcommit",
                 util::format_double(100 * metrics.achieved_overcommit, 1) + "%"});
  table.add_row({"failure probability",
                 util::format_double(100 * metrics.failure_probability, 3) + "%"});
  table.add_row({"preemption probability",
                 util::format_double(100 * metrics.preemption_probability, 3) + "%"});
  table.add_row({"throughput loss",
                 util::format_double(100 * metrics.throughput_loss, 3) + "%"});
  table.add_row({"mean cpu deflation",
                 util::format_double(100 * metrics.mean_cpu_deflation, 2) + "%"});
  table.add_row({"rejections", std::to_string(metrics.rejections)});
  table.add_row({"preemptions", std::to_string(metrics.preemptions)});
  table.add_row(
      {"revenue (static)",
       util::format_double(cluster::revenue_increase_percent(
                               metrics.revenue, cluster::PricingScheme::Static),
                           2) +
           "% of on-demand"});
  table.print(std::cout);
  return 0;
}

int cmd_revoke_sim(const CliArgs& args) {
  CliValidator validator(args);
  validator
      .allow_only({"in", "servers", "model", "rate", "bid", "no-portfolio",
                   "od-share", "floor", "risk", "mode", "partitioned", "seed",
                   "markets", "correlation", "common-shock-rate", "shards",
                   "shard-policy", "warning-secs", "migration-bandwidth",
                   "migration-dirty-rate", "migration-contention",
                   "migration-strategy", "admission", "price-ceiling",
                   "defer-hours", "bid-opt", "reopt-hours", "forecast",
                   "reopt-max-moves"})
      .require_integer_at_least("servers", 1)
      .require_integer_at_least("shards", 1)
      .require_integer_at_least("markets", 1)
      .require_at_least("rate", 0.0)
      .require_in_range("bid", 1e-6, 100.0)
      .require_in_range("od-share", 0.0, 1.0)
      .require_in_range("floor", 0.0, 1.0)
      .require_at_least("risk", 0.0)
      .require_at_least("seed", 0)
      .require_in_range("correlation", -1.0, 1.0)
      .require_at_least("common-shock-rate", 0.0)
      .require_at_least("warning-secs", 0.0)
      .require_at_least("migration-bandwidth", 0.0)
      .require_at_least("migration-dirty-rate", 0.0)
      .require_in_range("price-ceiling", 1e-6, 100.0)
      .require_at_least("defer-hours", 0.0)
      .require_at_least("reopt-hours", 1e-6)
      .require_integer_at_least("reopt-max-moves", 0)
      .check(!args.has("price-ceiling") ||
                 args.get("admission", "admit-all") == "price",
             "flag --price-ceiling requires --admission price (admit-all "
             "ignores it; bid-opt derives its ceilings from the optimizer)")
      .check(!args.has("defer-hours") ||
                 args.get("admission", "admit-all") == "price" ||
                 args.get("admission", "admit-all") == "bid-opt",
             "flag --defer-hours requires --admission price|bid-opt (the "
             "deferral window has no effect under admit-all)")
      .check(!(args.has("bid") &&
               (args.has("bid-opt") ||
                args.get("admission", "admit-all") == "bid-opt")),
             "flags --bid and --bid-opt/--admission bid-opt conflict (the "
             "optimizer replaces the hand-set bid)")
      .check(!args.has("correlation") || args.get_double("markets", 1) >= 2,
             "flag --correlation needs --markets >= 2 (a single market has "
             "no pairwise correlation)");
  if (report_errors(validator)) return 1;

  const std::string in = args.get("in", "");
  if (in.empty()) return usage();
  const auto records = trace::load_trace(in);

  simcluster::SimConfig config;
  const std::string mode = args.get("mode", "deflation");
  if (mode != "deflation" && mode != "preemption") {
    return flag_error("flag --mode: unknown value '" + mode +
                      "' (expected deflation|preemption)");
  }
  config.mode = mode == "preemption" ? cluster::ReclamationMode::Preemption
                                     : cluster::ReclamationMode::Deflation;
  // With --partitioned the portfolio's pool weights shape the partitions
  // and the on-demand pool is exactly the never-revoked server set.
  config.partitioned = args.has("partitioned");
  if (!apply_shard_flags(args, config)) {
    return unknown_policy_error<cluster::ShardSelectionSurface>(
        "shard-policy", args.get("shard-policy", ""));
  }
  if (args.has("servers")) {
    config.server_count =
        static_cast<std::size_t>(args.get_double("servers", 40));
  } else {
    // 20% headroom below peak so migrations off revoked servers can land.
    config.server_count =
        simcluster::TraceDrivenSimulator::servers_for_overcommit(
            records, config.server_capacity, -0.2);
  }

  const auto model = parse_revocation_model(args.get("model", "poisson"));
  if (!model) {
    return unknown_policy_error<transient::RevocationSurface>(
        "model", args.get("model", ""));
  }
  config.market_enabled = true;
  config.market.seed = static_cast<std::uint64_t>(args.get_double("seed", 42));
  config.market.revocation.model = *model;
  config.market.revocation.poisson_rate_per_hour =
      args.get_double("rate", 1.0 / 24.0);
  config.market.revocation.bid = args.get_double("bid", 0.5);
  config.market.use_portfolio = !args.has("no-portfolio");
  config.market.on_demand_share = args.get_double("od-share", 0.0);
  config.market.portfolio.on_demand_floor = args.get_double("floor", 0.1);
  config.market.portfolio.risk_aversion = args.get_double("risk", 2.0);

  // Admission API v2 + per-class bid optimization.
  const std::string admission = args.get("admission", "admit-all");
  const auto admission_policy = parse_admission_policy(admission);
  if (!admission_policy) {
    return unknown_policy_error<cluster::AdmissionSurface>("admission",
                                                           admission);
  }
  config.admission.policy = *admission_policy;
  config.admission.default_ceiling = args.get_double("price-ceiling", 0.35);
  config.admission.max_defer_hours = args.get_double("defer-hours", 6.0);
  config.market.optimize_bids =
      args.has("bid-opt") ||
      *admission_policy == cluster::AdmissionPolicyKind::BidOptimized;

  // Timed migration: set the warning before replicate_markets below so
  // every market copy inherits it.
  config.market.revocation.warning_hours =
      args.get_double("warning-secs", 0.0) / 3600.0;
  config.migration.model.bandwidth_mib_per_sec =
      args.get_double("migration-bandwidth", 0.0);
  config.migration.model.dirty_mib_per_sec =
      args.get_double("migration-dirty-rate", 64.0);
  config.migration.model.share_bandwidth = args.has("migration-contention");
  const std::string strategy = args.get("migration-strategy", "hybrid");
  if (cluster::MigrationRegistry::instance().find(strategy) == nullptr) {
    return unknown_policy_error<cluster::MigrationSurface>(
        "migration-strategy", strategy);
  }
  // Resolved onto the deflate_before_transfer/checkpoint_fallback pair by
  // the MigrationEngine constructor.
  config.migration.strategy_name = strategy;

  // Multi-market fleet: K copies of the configured market, coupled by a
  // uniform pairwise correlation, each with its own revocation stream.
  const auto market_count =
      static_cast<std::size_t>(args.get_double("markets", 1));
  const double market_correlation = args.get_double("correlation", 0.3);
  if (market_count > 1) {
    config.market.replicate_markets(market_count, market_correlation);
  }
  // Provider-wide crunches apply to single-market fleets too.
  config.market.common_shock_rate_per_hour =
      args.get_double("common-shock-rate", 0.0);

  // Online control plane (rolling re-optimization).
  if (const int error = apply_control_flags(args, config); error != 0) {
    return error;
  }

  simcluster::TraceDrivenSimulator simulator(records, config);
  const auto metrics = simulator.run();

  util::Table table({"metric", "value"});
  table.add_row({"revocation model",
                 transient::revocation_model_name(*model)});
  table.add_row({"servers", std::to_string(config.server_count)});
  if (config.shard_count > 1) {
    table.add_row({"shards", std::to_string(config.shard_count)});
  }
  if (config.market.markets.size() > 1) {
    table.add_row({"markets",
                   std::to_string(config.market.markets.size()) + " (rho " +
                       util::format_double(market_correlation, 2) + ")"});
  }
  table.add_row({"transient share",
                 util::format_double(100 * metrics.transient_server_share, 1) +
                     "%"});
  table.add_row({"revocations", std::to_string(metrics.revocations)});
  table.add_row({"vm migrations", std::to_string(metrics.revocation_migrations)});
  table.add_row({"vm kills", std::to_string(metrics.revocation_kills)});
  if (*admission_policy != cluster::AdmissionPolicyKind::AdmitAll) {
    table.add_row({"admission policy",
                   cluster::admission_policy_name(*admission_policy)});
    table.add_row({"deferrals", std::to_string(metrics.admission_deferrals)});
    table.add_row({"expired deferrals",
                   std::to_string(metrics.admission_expired)});
    table.add_row({"deferred delay",
                   util::format_double(metrics.admission_delay_hours, 1) +
                       " h (unserved cost " +
                       util::format_double(
                           metrics.cost.admission_unserved_cost, 1) +
                       ")"});
  }
  if (config.migration.model.bandwidth_mib_per_sec > 0.0) {
    table.add_row({"migration strategy", strategy});
    table.add_row({"warning", args.get("warning-secs", "0") + "s @ " +
                                  args.get("migration-bandwidth", "0") +
                                  " MiB/s"});
    table.add_row({"live migrations", std::to_string(metrics.live_migrations)});
    table.add_row(
        {"checkpoint restores", std::to_string(metrics.checkpoint_restores)});
    table.add_row(
        {"checkpoint kills", std::to_string(metrics.checkpoint_kills)});
    table.add_row({"migration downtime",
                   util::format_double(metrics.migration_downtime_hours, 3) +
                       " h (cost " +
                       util::format_double(
                           metrics.cost.migration_downtime_cost, 1) +
                       ")"});
  }
  if (config.control.enabled) {
    table.add_row({"forecast policy", config.control.forecast});
    table.add_row({"re-optimizations",
                   std::to_string(metrics.control_reopts)});
    table.add_row({"control moves", std::to_string(metrics.control_moves)});
  }
  table.add_row({"failure probability",
                 util::format_double(100 * metrics.failure_probability, 3) + "%"});
  table.add_row({"throughput loss",
                 util::format_double(100 * metrics.throughput_loss, 3) + "%"});
  table.add_row({"portfolio cost/core-hour",
                 util::format_double(metrics.portfolio_expected_cost, 3)});
  table.add_row({"fleet cost",
                 util::format_double(metrics.cost.total_cost(), 0)});
  table.add_row({"all-on-demand cost",
                 util::format_double(metrics.cost.all_on_demand_cost, 0)});
  table.add_row({"saving vs on-demand",
                 util::format_double(metrics.cost.saving_percent(), 2) + "%"});
  table.print(std::cout);

  if (metrics.cost.per_market.size() > 1) {
    std::cout << "\n";
    util::Table markets({"market", "servers", "held core-hours", "cost"});
    for (const auto& market : metrics.cost.per_market) {
      markets.add_row({market.name, std::to_string(market.servers),
                       util::format_double(market.core_hours, 0),
                       util::format_double(market.cost, 0)});
    }
    markets.print(std::cout);
  }
  return 0;
}

int cmd_feasibility(const CliArgs& args) {
  CliValidator validator(args);
  validator.allow_only({"in"});
  if (report_errors(validator)) return 1;

  const std::string in = args.get("in", "");
  if (in.empty()) return usage();
  const auto records = trace::load_trace(in);

  util::Table table({"deflation_%", "min", "q1", "median", "q3", "max"});
  for (int d = 10; d <= 90; d += 10) {
    const auto box = analysis::cpu_underallocation_box(records, d / 100.0);
    table.add_row_labeled(std::to_string(d),
                          {box.min, box.q1, box.median, box.q3, box.max});
  }
  table.print(std::cout);
  return 0;
}

// --- connect / replay: the service layer (src/net/) ------------------------

// Drives a running deflated daemon through the batching client: submits
// --vms synthetic admission requests in batches of --batch, arrivals
// spread over --hours, then prints the decision breakdown (the CI smoke
// job greps for a nonzero `placed`). --shutdown sends the Shutdown frame
// afterwards, stopping the daemon.
int cmd_connect(const CliArgs& args) {
  CliValidator validator(args);
  validator
      .allow_only({"port", "vms", "batch", "hours", "seed", "telemetry",
                   "shutdown"})
      .require_in_range("port", 1, 65535)
      .require_integer_at_least("vms", 1)
      .require_integer_at_least("batch", 1)
      .require_at_least("hours", 0)
      .require_integer_at_least("telemetry", 1);
  if (report_errors(validator)) return 1;
  if (!args.has("port")) return flag_error("connect requires --port");

  const auto port = static_cast<std::uint16_t>(args.get_double("port", 0));
  const auto vms = static_cast<std::size_t>(args.get_double("vms", 200));
  const auto batch = static_cast<std::size_t>(args.get_double("batch", 32));
  const double hours = args.get_double("hours", 2.0);
  const auto seed = static_cast<std::uint64_t>(args.get_double("seed", 1));

  auto client = net::Client::connect(port);
  if (!client.has_value()) {
    std::cerr << "error: cannot connect to 127.0.0.1:" << port << "\n";
    return 2;
  }
  std::cout << "connected: " << client->hello().server
            << " (admission=" << client->hello().admission_policy << ")\n";

  // Telemetry subscription (codec v3): the server interleaves one
  // aggregate UtilizationReport per N decisions on this connection.
  if (args.has("telemetry")) {
    const auto every =
        static_cast<std::uint32_t>(args.get_double("telemetry", 0));
    if (!client->request_telemetry(every)) {
      std::cerr << "error: telemetry subscription failed\n";
      return 2;
    }
  }

  util::Rng rng(seed);
  std::size_t in_batch = 0;
  for (std::size_t i = 0; i < vms; ++i) {
    hv::VmSpec spec;
    spec.id = i + 1;
    spec.name = "req-" + std::to_string(i + 1);
    spec.vcpus = static_cast<int>(rng.uniform_int(1, 8));
    spec.memory_mib = spec.vcpus * 2048.0;
    spec.priority = rng.uniform(0.1, 1.0);
    spec.deflatable = rng.bernoulli(0.75);
    const auto arrival =
        sim::SimTime::from_hours(hours * static_cast<double>(i) /
                                 static_cast<double>(vms));
    client->submit(cluster::AdmissionRequest::from_spec(spec, arrival));
    if (++in_batch == batch) {
      if (!client->flush()) {
        std::cerr << "error: connection failed mid-batch\n";
        return 2;
      }
      in_batch = 0;
    }
  }
  if (!client->flush()) {
    std::cerr << "error: connection failed on the final batch\n";
    return 2;
  }

  std::size_t placed = 0, deflated = 0, deferred = 0, rejected = 0;
  for (const auto& [id, decision] : client->decisions()) {
    switch (decision.status) {
      case cluster::AdmissionDecision::Status::Placed: ++placed; break;
      case cluster::AdmissionDecision::Status::PlacedDeflated:
        ++deflated;
        break;
      case cluster::AdmissionDecision::Status::Deferred: ++deferred; break;
      case cluster::AdmissionDecision::Status::Rejected: ++rejected; break;
    }
  }
  std::cout << "requests " << vms << "\n"
            << "placed " << placed << "\n"
            << "placed-deflated " << deflated << "\n"
            << "deferred " << deferred << "\n"
            << "rejected " << rejected << "\n"
            << "deferral-resolutions " << client->resolved_deferrals().size()
            << "\n";
  if (args.has("telemetry")) {
    std::cout << "telemetry-reports " << client->telemetry_reports() << "\n";
    if (client->last_telemetry().has_value()) {
      std::cout << "fleet overcommit ratio "
                << util::format_double(
                       client->last_telemetry()->overcommit_ratio, 3)
                << "\n";
    }
  }

  if (args.has("shutdown")) {
    if (!client->shutdown_server()) {
      std::cerr << "error: server did not acknowledge shutdown\n";
      return 2;
    }
    std::cout << "server shut down\n";
  }
  return 0;
}

// Replays a captured admission session (deflated --capture) through a
// fresh controller stack and verifies the regenerated decisions are
// byte-identical. Exit 1 on any divergence.
int cmd_replay(const CliArgs& args) {
  CliValidator validator(args);
  validator.allow_only({"capture"});
  if (report_errors(validator)) return 1;
  const std::string path = args.get("capture", "");
  if (path.empty()) return flag_error("replay requires --capture FILE");

  const net::ReplayReport report = net::replay_capture(path);
  if (!report.error.empty()) {
    std::cerr << "error: " << report.error << "\n";
    return 2;
  }
  std::cout << "requests " << report.requests << "\n"
            << "decisions " << report.decisions << "\n"
            << "mismatches " << report.mismatches << "\n";
  for (const auto& detail : report.details) {
    std::cout << "  " << detail << "\n";
  }
  std::cout << (report.ok() ? "replay OK: decisions are bit-identical"
                            : "replay FAILED")
            << "\n";
  return report.ok() ? 0 : 1;
}

// Streams a trace through the full simulation in bounded memory: the
// arrival stream is built once, sized (server count from the stub-index
// peak), rewound, and handed to the simulator — the fleet itself is never
// resident.
int cmd_replay_trace(const CliArgs& args) {
  CliValidator validator(args);
  validator
      .allow_only({"source", "vms", "hours", "seed", "rate", "duration-scale",
                   "window", "threads", "capture", "servers", "overcommit",
                   "shards", "shard-policy", "reopt-hours", "forecast",
                   "reopt-max-moves"})
      .require_integer_at_least("vms", 1)
      .require_at_least("hours", 0.001)
      .require_at_least("seed", 0)
      .require_at_least("rate", 1e-6)
      .require_at_least("duration-scale", 1e-6)
      .require_integer_at_least("window", 1)
      .require_integer_at_least("threads", 1)
      .require_integer_at_least("servers", 1)
      .require_at_least("overcommit", -0.9)
      .require_integer_at_least("shards", 1)
      .require_at_least("reopt-hours", 1e-6)
      .require_integer_at_least("reopt-max-moves", 0)
      .check(!(args.has("servers") && args.has("overcommit")),
             "flags --servers and --overcommit conflict (pick an explicit "
             "fleet size or derive one from the target overcommitment)");
  if (report_errors(validator)) return 1;

  trace::ReplayConfig replay;
  const std::string source = args.get("source", "azure");
  if (source == "azure") {
    replay.source = trace::ArrivalSource::Azure;
    replay.azure.vm_count =
        static_cast<std::size_t>(args.get_double("vms", 10000));
    replay.azure.seed = static_cast<std::uint64_t>(args.get_double("seed", 42));
    replay.azure.duration =
        sim::SimTime::from_hours(args.get_double("hours", 72));
  } else if (source == "alibaba") {
    replay.source = trace::ArrivalSource::Alibaba;
    replay.alibaba.containers.container_count =
        static_cast<std::size_t>(args.get_double("vms", 4000));
    replay.alibaba.containers.seed =
        static_cast<std::uint64_t>(args.get_double("seed", 2020));
    replay.alibaba.containers.duration =
        sim::SimTime::from_hours(args.get_double("hours", 24));
  } else if (source == "capture") {
    replay.source = trace::ArrivalSource::Capture;
    replay.capture.path = args.get("capture", "");
    replay.capture.seed = static_cast<std::uint64_t>(args.get_double("seed", 7));
    if (replay.capture.path.empty()) {
      return flag_error("replay-trace --source capture requires --capture FILE");
    }
  } else {
    return flag_error("flag --source: unknown value '" + source +
                      "' (expected azure|alibaba|capture)");
  }
  replay.rate_multiplier = args.get_double("rate", 1.0);
  replay.duration_scale = args.get_double("duration-scale", 1.0);
  replay.window = static_cast<std::size_t>(args.get_double("window", 1024));
  if (args.has("threads")) {
    replay.worker_threads =
        static_cast<std::size_t>(args.get_double("threads", 0));
  }

  const auto stream = trace::make_arrival_stream(replay);

  simcluster::SimConfig config;
  if (!apply_shard_flags(args, config)) {
    return unknown_policy_error<cluster::ShardSelectionSurface>(
        "shard-policy", args.get("shard-policy", ""));
  }
  // Validated and carried for symmetry with revoke-sim; replay-trace has
  // no market plan, so an enabled controller is inert (nothing to
  // re-optimize).
  if (const int error = apply_control_flags(args, config); error != 0) {
    return error;
  }
  if (args.has("servers")) {
    config.server_count =
        static_cast<std::size_t>(args.get_double("servers", 40));
  } else {
    config.server_count = trace::servers_for_overcommit(
        *stream, config.server_capacity, args.get_double("overcommit", 0.0));
  }

  simcluster::TraceDrivenSimulator simulator(*stream, config);
  const auto metrics = simulator.run();

  util::Table table({"metric", "value"});
  table.add_row({"source", trace::arrival_source_name(replay.source)});
  table.add_row({"arrivals", std::to_string(stream->size())});
  table.add_row({"horizon",
                 util::format_double(stream->horizon().hours(), 1) + " h"});
  table.add_row({"servers", std::to_string(config.server_count)});
  table.add_row({"peak resident VMs",
                 std::to_string(simulator.peak_active_records())});
  table.add_row({"achieved overcommit",
                 util::format_double(100 * metrics.achieved_overcommit, 1) + "%"});
  table.add_row({"failure probability",
                 util::format_double(100 * metrics.failure_probability, 3) + "%"});
  table.add_row({"throughput loss",
                 util::format_double(100 * metrics.throughput_loss, 3) + "%"});
  table.add_row({"mean cpu deflation",
                 util::format_double(100 * metrics.mean_cpu_deflation, 2) + "%"});
  table.add_row({"rejections", std::to_string(metrics.rejections)});
  table.add_row({"preemptions", std::to_string(metrics.preemptions)});
  table.add_row({"unserved core-hours",
                 util::format_double(metrics.unserved_core_hours, 1)});
  table.print(std::cout);
  return 0;
}

// Enumerates every policy registry surface with its registered policies,
// aliases and tunable parameters — the whole catalog, including policies
// registered by link-time plugins. The trailing "N surfaces, M policies"
// summary is what the CI smoke greps.
int cmd_list_policies() {
  const auto surfaces = policy::describe_all_surfaces();
  std::size_t total = 0;
  for (const policy::SurfaceInfo& surface : surfaces) {
    std::cout << surface.surface << ": " << surface.description << "\n";
    util::Table table({"policy", "aliases", "parameters", "description"});
    for (const policy::PolicyInfo& entry : surface.policies) {
      std::string aliases;
      for (const std::string& alias : entry.aliases) {
        if (!aliases.empty()) aliases += ", ";
        aliases += alias;
      }
      std::string params;
      for (const policy::ParamSpec& spec : entry.params) {
        if (!params.empty()) params += ", ";
        params += spec.name + "=" + util::format_double(spec.default_value, 4);
      }
      table.add_row({entry.name, aliases.empty() ? "-" : aliases,
                     params.empty() ? "-" : params, entry.description});
      ++total;
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << surfaces.size() << " surfaces, " << total << " policies\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args = util::parse_cli(argc, argv);
  if (args.positional.empty()) return usage();
  try {
    const std::string& command = args.positional[0];
    if (command == "trace" && args.positional.size() > 1) {
      if (args.positional[1] == "generate") return cmd_trace_generate(args);
      if (args.positional[1] == "stats") return cmd_trace_stats(args);
    }
    if (command == "simulate") return cmd_simulate(args);
    if (command == "feasibility") return cmd_feasibility(args);
    if (command == "revoke-sim") return cmd_revoke_sim(args);
    if (command == "connect") return cmd_connect(args);
    if (command == "replay") return cmd_replay(args);
    if (command == "replay-trace") return cmd_replay_trace(args);
    if (command == "list-policies") return cmd_list_policies();
    return usage();
  } catch (const std::invalid_argument& error) {
    // Malformed flag values are usage errors, not runtime failures.
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 2;
  }
}
