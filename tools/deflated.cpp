// deflated — the admission-as-a-service daemon.
//
//   deflated [--port P] [--port-file FILE] [--servers N] [--shards K]
//            [--shard-policy p2c|least-loaded|round-robin]
//            [--admission NAME] [--price-ceiling C] [--defer-hours H]
//            [--price-hours H] [--price-seed S] [--threads T]
//            [--capture FILE] [--list-policies]
//
// Serves the Admission API v2 (src/cluster/admission.hpp) over the
// framed binary codec (src/net/codec.hpp) on loopback TCP: one
// ShardedClusterManager fleet, one spot-price feed, one admission policy
// picked *by name* from the self-describing registry
// (src/net/registry.hpp — `--list-policies` prints every name with its
// description). --port 0 (the default) binds an ephemeral port;
// --port-file writes the bound port to FILE so scripts (CI smoke) can
// find it. --capture appends every admission request and decision to a
// replayable message log (`deflatectl replay` verifies it).
//
// The daemon runs until a client sends the Shutdown frame (deflatectl
// connect --shutdown), then exits 0.
//
// Exit status: 0 on clean shutdown, 1 on usage errors, 2 when the port
// cannot be bound or the capture file cannot be created.
#include <fstream>
#include <iostream>
#include <string>

#include "net/registry.hpp"
#include "net/server.hpp"
#include "policy/catalog.hpp"
#include "util/cli.hpp"

namespace {

using namespace deflate;

int usage() {
  std::cerr
      << "usage: deflated [--port P] [--port-file FILE] [--servers N]\n"
         "                [--shards K] [--shard-policy p2c|least-loaded|"
         "round-robin]\n"
         "                [--admission NAME] [--price-ceiling C]\n"
         "                [--defer-hours H] [--price-hours H] "
         "[--price-seed S]\n"
         "                [--threads T] [--capture FILE] [--list-policies]\n";
  return 1;
}

// Prints every surface's registered policies (the same process-wide
// catalog deflatectl list-policies renders as tables), one line each:
//   <surface>\t<policy>\t<description>
int list_policies() {
  for (const auto& surface : policy::describe_all_surfaces()) {
    for (const auto& entry : surface.policies) {
      std::cout << surface.surface << "\t" << entry.name << "\t"
                << entry.description << "\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args = util::parse_cli(argc, argv);
  if (!args.positional.empty()) return usage();
  try {
    util::CliValidator validator(args);
    validator
        .allow_only({"port", "port-file", "servers", "shards", "shard-policy",
                     "admission", "price-ceiling", "defer-hours",
                     "price-hours", "price-seed", "threads", "capture",
                     "list-policies"})
        .require_in_range("port", 0, 65535)
        .require_integer_at_least("servers", 1)
        .require_integer_at_least("shards", 1)
        .require_integer_at_least("threads", 1)
        .require_at_least("price-ceiling", 0)
        .require_at_least("defer-hours", 0)
        .require_at_least("price-hours", 0);
    if (!validator.ok()) {
      for (const auto& error : validator.errors()) {
        std::cerr << "error: " << error << "\n";
      }
      return 1;
    }
    if (args.has("list-policies")) return list_policies();

    net::ServiceConfig config;
    config.port = static_cast<std::uint16_t>(args.get_double("port", 0));
    config.server_count =
        static_cast<std::size_t>(args.get_double("servers", 40));
    config.shard_count =
        static_cast<std::size_t>(args.get_double("shards", 1));
    const std::string shard_policy_name = args.get("shard-policy", "p2c");
    const auto shard_policy = net::parse_shard_policy(shard_policy_name);
    if (!shard_policy.has_value() &&
        cluster::ShardSelectionRegistry::instance().find(shard_policy_name) ==
            nullptr) {
      std::cerr << "error: flag --shard-policy: unknown value '"
                << shard_policy_name << "' (expected "
                << policy::joined_policy_names<cluster::ShardSelectionSurface>()
                << ")\n";
      return 1;
    }
    // A plugin-registered selector has no enum value; the name field
    // selects it (ServiceCore gives the name precedence).
    config.shard_policy = shard_policy.value_or(config.shard_policy);
    config.shard_policy_name = shard_policy_name;
    config.admission_policy = args.get("admission", "admit-all");
    config.admission.default_ceiling =
        args.get_double("price-ceiling", config.admission.default_ceiling);
    config.admission.max_defer_hours =
        args.get_double("defer-hours", config.admission.max_defer_hours);
    config.price_trace_hours = args.get_double("price-hours", 0);
    config.price_seed =
        static_cast<std::uint64_t>(args.get_double("price-seed", 42));
    config.worker_threads =
        static_cast<std::size_t>(args.get_double("threads", 4));
    config.capture_path = args.get("capture", "");

    net::Server server(std::move(config));
    if (!server.start()) {
      std::cerr << "error: cannot bind 127.0.0.1:"
                << args.get("port", "0") << " (or open the capture file)\n";
      return 2;
    }
    if (args.has("port-file")) {
      std::ofstream port_file(args.get("port-file", ""));
      port_file << server.port() << "\n";
    }
    std::cout << "deflated listening on 127.0.0.1:" << server.port()
              << " (admission=" << server.config().admission_policy
              << ", servers=" << server.config().server_count
              << ", shards=" << server.config().shard_count << ")"
              << std::endl;

    server.wait();
    server.stop();
    const auto stats = server.stats();
    std::cout << "deflated shut down: " << stats.connections
              << " connections, " << stats.admission_requests
              << " admission requests, " << stats.decisions << " decisions, "
              << stats.place_requests << " placements" << std::endl;
    return 0;
  } catch (const std::invalid_argument& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 2;
  }
}
