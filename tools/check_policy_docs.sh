#!/usr/bin/env bash
# Fails (exit 1) when a policy registered in the process-wide registries
# is missing from the docs/ARCHITECTURE.md policy table. The source of
# truth is the built daemon's own catalog (`deflated --list-policies`
# prints `surface<TAB>name<TAB>description` for every registered policy),
# so a builtin added in code without a docs-table row breaks CI.
#
#   $ tools/check_policy_docs.sh [path/to/deflated]   # default ./build/deflated
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
daemon="${1:-"$root/build/deflated"}"
docs="$root/docs/ARCHITECTURE.md"

if [ ! -x "$daemon" ]; then
  echo "error: daemon binary not found: $daemon (build first)" >&2
  exit 2
fi
if [ ! -f "$docs" ]; then
  echo "error: docs file not found: $docs" >&2
  exit 2
fi

fail=0
checked=0
surfaces=0
last_surface=""

while IFS=$'\t' read -r surface name _description; do
  [ -z "$surface" ] && continue
  if [ "$surface" != "$last_surface" ]; then
    surfaces=$((surfaces + 1))
    last_surface="$surface"
    if ! grep -q "$surface" "$docs"; then
      echo "undocumented surface: '$surface' not mentioned in docs/ARCHITECTURE.md"
      fail=1
    fi
  fi
  checked=$((checked + 1))
  # The policy table renders every name in backticks; match the exact
  # `name` token so e.g. documented "first-fit" doesn't cover "fit".
  if ! grep -q "\`$name\`" "$docs"; then
    echo "undocumented policy: $surface/'$name' has no \`$name\` row in docs/ARCHITECTURE.md"
    fail=1
  fi
done < <("$daemon" --list-policies)

if [ "$surfaces" -lt 5 ] || [ "$checked" -lt 10 ]; then
  echo "error: catalog suspiciously small ($surfaces surfaces, $checked policies)"
  fail=1
fi

if [ "$fail" -eq 0 ]; then
  echo "policy docs OK ($checked policies across $surfaces surfaces documented)"
fi
exit "$fail"
