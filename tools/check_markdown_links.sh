#!/usr/bin/env bash
# Fails (exit 1) when any *.md file in the repo contains an inline
# markdown link `[text](target)` whose target is a relative path that does
# not exist. External links (http/https/mailto) and pure in-page anchors
# (#...) are skipped; a `#section` suffix on a relative path is stripped
# before the existence check. Reference-style links and autolinks are out
# of scope — keep doc cross-references inline so this check sees them.
#
#   $ tools/check_markdown_links.sh        # from anywhere inside the repo
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
fail=0
checked=0

while IFS= read -r -d '' file; do
  dir="$(dirname "$file")"
  # Extract every `](target)`, then strip the wrapper and any ' "title"'.
  while IFS= read -r target; do
    target="${target#](}"
    target="${target%)}"
    target="${target%% \"*}"
    case "$target" in
      http://* | https://* | mailto:* | '#'*) continue ;;
      '') continue ;;
    esac
    path="${target%%#*}"
    [ -z "$path" ] && continue
    checked=$((checked + 1))
    if [ ! -e "$dir/$path" ]; then
      echo "broken link: ${file#"$root"/}: ($target)"
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$file" || true)
done < <(find "$root" -name '*.md' \
              -not -path "$root/build/*" \
              -not -path '*/.git/*' -print0)

if [ "$fail" -eq 0 ]; then
  echo "markdown links OK ($checked relative links checked)"
fi
exit "$fail"
