// Feasibility study (§3 in miniature): how much slack do cloud VMs have,
// and what does a fixed deflation level cost a single VM (Fig. 4's
// underallocation area)?
//
//   $ ./build/examples/feasibility
#include <iostream>

#include "analysis/feasibility.hpp"
#include "trace/azure.hpp"
#include "util/table.hpp"

int main() {
  using namespace deflate;

  trace::AzureTraceConfig config;
  config.vm_count = 3000;
  config.seed = 99;
  config.duration = sim::SimTime::from_hours(48);
  const auto records = trace::AzureTraceGenerator(config).generate();

  // Population view: fraction of time above the deflated allocation.
  util::Table table({"deflation_%", "median_time_underallocated_%",
                     "q3_time_underallocated_%"});
  for (const int d : {10, 30, 50, 70}) {
    const auto box = analysis::cpu_underallocation_box(records, d / 100.0);
    table.add_row_labeled(std::to_string(d),
                          {100.0 * box.median, 100.0 * box.q3}, 1);
  }
  table.print(std::cout);

  // Single-VM view (Fig. 4): deflate one interactive VM by 40% and compute
  // the throughput it would lose.
  for (const auto& record : records) {
    if (record.workload != hv::WorkloadClass::Interactive ||
        record.cpu.size() < 100) {
      continue;
    }
    std::cout << "\nVM " << record.id << " (" << record.vcpus
              << " cores): mean CPU " << 100.0 * record.cpu.mean()
              << "%, p95 " << 100.0 * record.p95_cpu() << "%\n";
    for (const double d : {0.2, 0.4, 0.6}) {
      std::cout << "  deflated " << 100 * d << "%: throughput loss "
                << 100.0 * analysis::throughput_loss(record, 1.0 - d)
                << "%, time underallocated "
                << 100.0 * record.cpu.fraction_above(1.0 - d) << "%\n";
    }
    break;
  }
  std::cout << "\nInteractive VMs carry enough slack that 30-50% deflation "
               "is nearly free (§3.2); this is the headroom the cluster "
               "policies monetize.\n";
  return 0;
}
