// Trace-driven cluster simulation (§7.4 in miniature): generate an
// Azure-style trace, size the minimum feasible cluster, then compare the
// deflation policies and the preemption baseline at 50% overcommitment.
//
//   $ ./build/examples/cluster_sim
#include <cmath>
#include <iostream>

#include "simcluster/cluster_sim.hpp"
#include "trace/azure.hpp"
#include "util/table.hpp"

int main() {
  using namespace deflate;

  trace::AzureTraceConfig trace_config;
  trace_config.vm_count = 2000;
  trace_config.seed = 11;
  trace_config.duration = sim::SimTime::from_hours(48);
  const auto records = trace::AzureTraceGenerator(trace_config).generate();
  std::cout << "trace: " << records.size() << " VMs over 48h\n";

  simcluster::SimConfig base;
  base.server_capacity = {48.0, 128.0 * 1024.0, 1e9, 1e9};
  const std::size_t baseline =
      simcluster::TraceDrivenSimulator::minimum_feasible_servers(records, base);
  const auto servers = static_cast<std::size_t>(
      std::max(1.0, std::floor(static_cast<double>(baseline) / 1.5)));
  std::cout << "baseline cluster: " << baseline
            << " servers; overcommitted cluster: " << servers
            << " servers (+50%)\n\n";

  util::Table table({"policy", "failure_prob_%", "throughput_loss_%",
                     "mean_deflation_%", "preemptions"});
  struct Row {
    const char* label;
    core::PolicyKind policy;
    cluster::ReclamationMode mode;
  };
  for (const Row& row : {
           Row{"proportional", core::PolicyKind::Proportional,
               cluster::ReclamationMode::Deflation},
           Row{"priority", core::PolicyKind::Priority,
               cluster::ReclamationMode::Deflation},
           Row{"deterministic", core::PolicyKind::Deterministic,
               cluster::ReclamationMode::Deflation},
           Row{"preemption", core::PolicyKind::Proportional,
               cluster::ReclamationMode::Preemption},
       }) {
    simcluster::SimConfig config = base;
    config.policy = row.policy;
    config.mode = row.mode;
    config.server_count = servers;
    simcluster::TraceDrivenSimulator simulator(records, config);
    const auto metrics = simulator.run();
    table.add_row_labeled(
        row.label,
        {100.0 * (row.mode == cluster::ReclamationMode::Preemption
                      ? metrics.preemption_probability
                      : metrics.failure_probability),
         100.0 * metrics.throughput_loss, 100.0 * metrics.mean_cpu_deflation,
         static_cast<double>(metrics.preemptions)},
        2);
  }
  table.print(std::cout);
  std::cout << "\nDeflation admits everything the preemption baseline kills, "
               "at a throughput cost of a few percent or less.\n";
  return 0;
}
