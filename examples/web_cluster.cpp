// Deflation-aware web cluster (Fig. 1's full loop): three Wikipedia
// replicas behind a smooth-WRR balancer; the per-server deflation
// controller notifies the balancer, which re-weights by the replicas'
// true (deflated) capacity — the §7.3 HAProxy modification.
//
//   $ ./build/examples/web_cluster
#include <iostream>
#include <memory>
#include <vector>

#include "core/local_controller.hpp"
#include "workloads/load_balancer.hpp"

int main() {
  using namespace deflate;

  // One server hosting three 10-core web replica VMs.
  hv::SimHypervisor hypervisor(0, {48.0, 128.0 * 1024.0, 4000.0, 40000.0});
  core::LocalDeflationController controller(
      hypervisor, core::make_policy(core::PolicyKind::Proportional),
      std::make_shared<mech::HybridDeflation>());

  std::vector<hv::Vm*> replicas;
  for (std::uint64_t i = 0; i < 3; ++i) {
    hv::VmSpec spec;
    spec.id = i;
    spec.name = "wiki-" + std::to_string(i);
    spec.vcpus = 10;
    spec.memory_mib = 10 * 1024.0;
    spec.deflatable = i < 2;  // §7.3: two of three replicas deflatable
    spec.priority = 0.4;
    replicas.push_back(&hypervisor.create_vm(spec));
  }

  // The balancer starts with equal weights; controller notifications keep
  // them equal to each replica's effective vCPU count.
  wl::SmoothWrr balancer({10.0, 10.0, 10.0});
  controller.subscribe([&](const hv::Vm& vm, const res::ResourceVector&,
                           const res::ResourceVector& new_alloc) {
    auto weights = balancer.weights();
    weights[vm.spec().id] = new_alloc[res::Resource::Cpu];
    balancer.set_weights(weights);
    std::cout << "  [notify] " << vm.spec().name << " now "
              << new_alloc[res::Resource::Cpu] << " cores -> weights {"
              << weights[0] << ", " << weights[1] << ", " << weights[2]
              << "}\n";
  });

  auto request_share = [&](const char* when) {
    std::vector<int> hits(3, 0);
    for (int i = 0; i < 3000; ++i) ++hits[balancer.pick()];
    std::cout << when << ": request split = " << hits[0] / 30 << "% / "
              << hits[1] / 30 << "% / " << hits[2] / 30 << "%\n";
  };
  request_share("undeflated");

  // Resource pressure: an incoming 24-core VM forces deflation of the two
  // deflatable replicas; the balancer shifts load to the on-demand one.
  std::cout << "pressure: incoming 24-core on-demand VM\n";
  const auto outcome = controller.make_room_for({24.0, 48.0 * 1024.0, 0, 0});
  std::cout << "reclamation " << (outcome.success ? "succeeded" : "failed")
            << "\n";
  request_share("deflated");

  // Quantify the end-to-end benefit with the Fig. 19 experiment.
  wl::LbConfig config;
  config.duration = sim::SimTime::from_seconds(120);
  const wl::LbExperiment experiment(config);
  const auto vanilla = experiment.run(0.6, /*deflation_aware=*/false);
  const auto aware = experiment.run(0.6, /*deflation_aware=*/true);
  std::cout << "at 60% deflation: p90 " << vanilla.latency.p90
            << "s (vanilla WRR) vs " << aware.latency.p90
            << "s (deflation-aware)\n";
  return 0;
}
