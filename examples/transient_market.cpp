// Transient-market demo: a 40-server cluster rides the spot market with
// the temporally-constrained revocation model of Kadupitiya et al.
// (arXiv:1911.05160), the on-demand/transient mix chosen by the
// mean-variance portfolio of Sharma et al. (arXiv:1704.08738), and
// deflation absorbing the revocations. One scenario spreads the transient
// fleet across three correlated markets (zones); the last one replaces
// the free instant re-place with the *timed* migration engine — a 60 s
// revocation warning and a 256 MiB/s streaming link — so displaced VMs
// pay real stop-and-copy/checkpoint downtime (src/cluster/migration.hpp).
//
//   $ ./build/example_transient_market
#include <iostream>

#include "simcluster/cluster_sim.hpp"
#include "trace/azure.hpp"
#include "util/table.hpp"

namespace {

// Three zones with the same temporally-constrained revocation model, price
// shocks correlated at rho = 0.35 plus provider-wide crunches — the
// multi-market configuration mirrored in src/transient/README.md.
void use_three_markets(deflate::simcluster::SimConfig& config) {
  config.market.replicate_markets(3, /*rho=*/0.35, "zone");
  config.market.common_shock_rate_per_hour = 1.0 / 48.0;
}

}  // namespace

int main() {
  using namespace deflate;

  trace::AzureTraceConfig trace_config;
  trace_config.vm_count = 1500;
  trace_config.seed = 11;
  trace_config.duration = sim::SimTime::from_hours(72);
  const auto records = trace::AzureTraceGenerator(trace_config).generate();

  simcluster::SimConfig config;
  config.server_count = 40;
  config.server_capacity = {48.0, 128.0 * 1024.0, 1e9, 1e9};
  config.market_enabled = true;
  config.market.seed = 7;
  config.market.revocation.model =
      transient::RevocationModel::TemporallyConstrained;
  config.market.revocation.max_lifetime_hours = 24.0;
  config.market.portfolio.on_demand_floor = 0.2;
  config.market.portfolio.risk_aversion = 2.0;

  std::cout << "trace: " << records.size() << " VMs over 72h on "
            << config.server_count << " servers (48 CPUs / 128 GB each)\n"
            << "revocation model: temporally-constrained (24h cap), "
               "portfolio-driven capacity mix\n\n";

  struct Row {
    const char* label;
    cluster::ReclamationMode mode;
    bool market;
    bool multi_market = false;
    bool timed_migration = false;
  };
  util::Table table({"scenario", "failure_prob_%", "throughput_loss_%",
                     "revocations", "vm_migrations", "vm_kills",
                     "fleet_cost", "saving_vs_od_%"});
  for (const Row& row : {
           Row{"all on-demand (baseline)", cluster::ReclamationMode::Deflation,
               false},
           Row{"transient + deflation", cluster::ReclamationMode::Deflation,
               true},
           Row{"transient + preemption", cluster::ReclamationMode::Preemption,
               true},
           Row{"transient + deflation, 3 markets",
               cluster::ReclamationMode::Deflation, true, true},
           Row{"transient + hybrid, 60s warning",
               cluster::ReclamationMode::Deflation, true, false, true},
       }) {
    simcluster::SimConfig run_config = config;
    run_config.mode = row.mode;
    run_config.market_enabled = row.market;
    if (row.multi_market) use_three_markets(run_config);
    if (row.timed_migration) {
      run_config.market.revocation.warning_hours = 60.0 / 3600.0;
      run_config.migration.model.bandwidth_mib_per_sec = 256.0;
      run_config.migration.deflate_before_transfer = true;
      run_config.migration.checkpoint_fallback = true;
    }
    simcluster::TraceDrivenSimulator simulator(records, run_config);
    const auto metrics = simulator.run();

    const double fleet_cost =
        row.market ? metrics.cost.total_cost()
                   : static_cast<double>(config.server_count) *
                         config.server_capacity[res::Resource::Cpu] *
                         simcluster::TraceDrivenSimulator::horizon_of(records)
                             .hours();
    const double saving = row.market ? metrics.cost.saving_percent() : 0.0;
    table.add_row({row.label,
                   util::format_double(100 * metrics.failure_probability, 3),
                   util::format_double(100 * metrics.throughput_loss, 3),
                   std::to_string(metrics.revocations),
                   std::to_string(metrics.revocation_migrations),
                   std::to_string(metrics.revocation_kills),
                   util::format_double(fleet_cost, 0),
                   util::format_double(saving, 1)});
  }
  table.print(std::cout);

  std::cout << "\nThe portfolio buys most of the fleet on the spot market, "
               "cutting cost vs the\nall-on-demand baseline, while deflation "
               "migrates VMs off revoked servers\ninstead of killing them "
               "(compare vm_kills across the two transient rows).\nThe "
               "3-market row spreads that transient fleet across correlated "
               "zones so one\nzone's capacity crunch no longer hits every "
               "transient server at once\n(bench/scenario_multimarket "
               "quantifies the cost-variance reduction).\nThe last row "
               "prices migration honestly: a 60 s warning and a finite "
               "link mean\ndisplaced VMs pay stop-and-copy/checkpoint "
               "downtime, folded into the fleet cost\n"
               "(bench/scenario_migration sweeps warning times and "
               "strategies).\n";
  return 0;
}
