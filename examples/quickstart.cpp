// Quickstart: boot a VM on a simulated hypervisor, deflate it with the
// hybrid mechanism (Fig. 13), inspect what the guest sees, and reinflate.
//
//   $ ./build/examples/quickstart
#include <iostream>

#include "core/local_controller.hpp"
#include "core/policy.hpp"
#include "hypervisor/virt.hpp"
#include "mechanisms/mechanism.hpp"

int main() {
  using namespace deflate;

  // A 48-core / 128 GiB server running one KVM-style hypervisor.
  hv::SimHypervisor hypervisor(/*host_id=*/0,
                               {48.0, 128.0 * 1024.0, 4000.0, 40000.0});
  virt::Connection conn(hypervisor);

  // Define a deflatable 8-core / 16 GiB VM (libvirt-flavoured API).
  hv::VmSpec spec;
  spec.id = 1;
  spec.name = "web-frontend";
  spec.vcpus = 8;
  spec.memory_mib = 16 * 1024.0;
  spec.disk_bw_mbps = 200.0;
  spec.net_bw_mbps = 2000.0;
  spec.deflatable = true;
  spec.priority = 0.4;
  virt::Domain domain = conn.define_and_start(spec);

  // Tell the guest model what the application is doing: ~2.5 cores of load
  // and a 9 GiB resident set. Hotplug safety thresholds derive from this.
  domain.vm().guest().set_cpu_load(2.5);
  domain.vm().guest().set_rss(9.0 * 1024.0);

  std::cout << "booted: " << domain.name() << " -> "
            << domain.vm().effective_allocation() << "\n";

  // Deflate to 45% of the spec with the hybrid mechanism: hotplug down to
  // the guest-safe level, multiplexing covers the rest.
  mech::HybridDeflation hybrid;
  const auto report = hybrid.apply(domain, spec.vector() * 0.55);
  const auto info = domain.info();
  std::cout << "deflated to 45%:\n"
            << "  effective allocation: " << report.achieved << "\n"
            << "  guest-visible vCPUs:  " << info.online_vcpus << " of "
            << info.max_vcpus << " (cgroup quota "
            << info.cpu_quota_cores << " cores)\n"
            << "  guest-visible memory: " << info.memory_mib << " MiB (limit "
            << info.memory_limit_mib << " MiB)\n"
            << "  swap pressure:        "
            << domain.vm().memory_swap_pressure() << "\n";

  // The same controller machinery a cluster node runs: make room for an
  // incoming 24-core on-demand VM by deflating residents policy-driven.
  core::LocalDeflationController controller(
      hypervisor, core::make_policy(core::PolicyKind::Proportional),
      std::make_shared<mech::HybridDeflation>());
  const auto outcome =
      controller.make_room_for({46.0, 120.0 * 1024.0, 0.0, 0.0});
  std::cout << "make_room_for(46 cores / 120 GiB): "
            << (outcome.success ? "ok" : "failed") << ", reclaimed "
            << outcome.reclaimed << "\n";

  // Reinflate once the pressure is gone.
  hybrid.apply(domain, spec.vector());
  std::cout << "reinflated: " << domain.vm().effective_allocation()
            << " (deflation fraction "
            << domain.vm().max_deflation_fraction() << ")\n";
  return 0;
}
