file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_diskbw.dir/bench/fig11_diskbw.cpp.o"
  "CMakeFiles/bench_fig11_diskbw.dir/bench/fig11_diskbw.cpp.o.d"
  "bench_fig11_diskbw"
  "bench_fig11_diskbw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_diskbw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
