# Empty dependencies file for bench_fig11_diskbw.
# This may be replaced when dependencies are built.
