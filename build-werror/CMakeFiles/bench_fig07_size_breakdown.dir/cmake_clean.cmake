file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_size_breakdown.dir/bench/fig07_size_breakdown.cpp.o"
  "CMakeFiles/bench_fig07_size_breakdown.dir/bench/fig07_size_breakdown.cpp.o.d"
  "bench_fig07_size_breakdown"
  "bench_fig07_size_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_size_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
