# Empty dependencies file for bench_fig07_size_breakdown.
# This may be replaced when dependencies are built.
