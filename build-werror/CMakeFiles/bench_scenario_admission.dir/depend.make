# Empty dependencies file for bench_scenario_admission.
# This may be replaced when dependencies are built.
