file(REMOVE_RECURSE
  "CMakeFiles/bench_scenario_admission.dir/bench/scenario_admission.cpp.o"
  "CMakeFiles/bench_scenario_admission.dir/bench/scenario_admission.cpp.o.d"
  "bench_scenario_admission"
  "bench_scenario_admission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scenario_admission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
