file(REMOVE_RECURSE
  "CMakeFiles/test_trace_io.dir/tests/test_trace_io.cpp.o"
  "CMakeFiles/test_trace_io.dir/tests/test_trace_io.cpp.o.d"
  "test_trace_io"
  "test_trace_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
