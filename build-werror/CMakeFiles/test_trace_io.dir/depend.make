# Empty dependencies file for test_trace_io.
# This may be replaced when dependencies are built.
