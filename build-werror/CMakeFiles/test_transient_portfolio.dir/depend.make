# Empty dependencies file for test_transient_portfolio.
# This may be replaced when dependencies are built.
