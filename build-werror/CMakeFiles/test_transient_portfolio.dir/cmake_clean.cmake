file(REMOVE_RECURSE
  "CMakeFiles/test_transient_portfolio.dir/tests/test_transient_portfolio.cpp.o"
  "CMakeFiles/test_transient_portfolio.dir/tests/test_transient_portfolio.cpp.o.d"
  "test_transient_portfolio"
  "test_transient_portfolio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transient_portfolio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
