file(REMOVE_RECURSE
  "CMakeFiles/test_guest_os.dir/tests/test_guest_os.cpp.o"
  "CMakeFiles/test_guest_os.dir/tests/test_guest_os.cpp.o.d"
  "test_guest_os"
  "test_guest_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_guest_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
