# Empty dependencies file for test_guest_os.
# This may be replaced when dependencies are built.
