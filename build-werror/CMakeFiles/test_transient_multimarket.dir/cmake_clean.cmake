file(REMOVE_RECURSE
  "CMakeFiles/test_transient_multimarket.dir/tests/test_transient_multimarket.cpp.o"
  "CMakeFiles/test_transient_multimarket.dir/tests/test_transient_multimarket.cpp.o.d"
  "test_transient_multimarket"
  "test_transient_multimarket.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transient_multimarket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
