# Empty dependencies file for test_transient_multimarket.
# This may be replaced when dependencies are built.
