# Empty dependencies file for test_mechanisms.
# This may be replaced when dependencies are built.
