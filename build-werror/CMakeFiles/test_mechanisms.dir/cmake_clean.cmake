file(REMOVE_RECURSE
  "CMakeFiles/test_mechanisms.dir/tests/test_mechanisms.cpp.o"
  "CMakeFiles/test_mechanisms.dir/tests/test_mechanisms.cpp.o.d"
  "test_mechanisms"
  "test_mechanisms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mechanisms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
