file(REMOVE_RECURSE
  "CMakeFiles/test_partitions_pricing.dir/tests/test_partitions_pricing.cpp.o"
  "CMakeFiles/test_partitions_pricing.dir/tests/test_partitions_pricing.cpp.o.d"
  "test_partitions_pricing"
  "test_partitions_pricing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partitions_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
