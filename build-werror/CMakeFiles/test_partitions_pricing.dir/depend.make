# Empty dependencies file for test_partitions_pricing.
# This may be replaced when dependencies are built.
