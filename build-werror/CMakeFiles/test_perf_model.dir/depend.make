# Empty dependencies file for test_perf_model.
# This may be replaced when dependencies are built.
