file(REMOVE_RECURSE
  "CMakeFiles/test_perf_model.dir/tests/test_perf_model.cpp.o"
  "CMakeFiles/test_perf_model.dir/tests/test_perf_model.cpp.o.d"
  "test_perf_model"
  "test_perf_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perf_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
