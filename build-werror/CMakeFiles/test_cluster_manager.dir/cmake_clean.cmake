file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_manager.dir/tests/test_cluster_manager.cpp.o"
  "CMakeFiles/test_cluster_manager.dir/tests/test_cluster_manager.cpp.o.d"
  "test_cluster_manager"
  "test_cluster_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
