# Empty dependencies file for test_cluster_manager.
# This may be replaced when dependencies are built.
