file(REMOVE_RECURSE
  "CMakeFiles/test_util_rng.dir/tests/test_util_rng.cpp.o"
  "CMakeFiles/test_util_rng.dir/tests/test_util_rng.cpp.o.d"
  "test_util_rng"
  "test_util_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
