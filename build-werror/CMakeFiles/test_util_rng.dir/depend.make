# Empty dependencies file for test_util_rng.
# This may be replaced when dependencies are built.
