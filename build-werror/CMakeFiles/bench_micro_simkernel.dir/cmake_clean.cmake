file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_simkernel.dir/bench/micro_simkernel.cpp.o"
  "CMakeFiles/bench_micro_simkernel.dir/bench/micro_simkernel.cpp.o.d"
  "bench_micro_simkernel"
  "bench_micro_simkernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_simkernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
