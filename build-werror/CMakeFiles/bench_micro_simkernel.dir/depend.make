# Empty dependencies file for bench_micro_simkernel.
# This may be replaced when dependencies are built.
