file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_scale.dir/tests/test_cluster_scale.cpp.o"
  "CMakeFiles/test_cluster_scale.dir/tests/test_cluster_scale.cpp.o.d"
  "test_cluster_scale"
  "test_cluster_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
