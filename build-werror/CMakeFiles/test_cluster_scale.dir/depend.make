# Empty dependencies file for test_cluster_scale.
# This may be replaced when dependencies are built.
