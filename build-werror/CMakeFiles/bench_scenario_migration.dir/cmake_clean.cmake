file(REMOVE_RECURSE
  "CMakeFiles/bench_scenario_migration.dir/bench/scenario_migration.cpp.o"
  "CMakeFiles/bench_scenario_migration.dir/bench/scenario_migration.cpp.o.d"
  "bench_scenario_migration"
  "bench_scenario_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scenario_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
