# Empty dependencies file for bench_scenario_migration.
# This may be replaced when dependencies are built.
