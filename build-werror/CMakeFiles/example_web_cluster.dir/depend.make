# Empty dependencies file for example_web_cluster.
# This may be replaced when dependencies are built.
