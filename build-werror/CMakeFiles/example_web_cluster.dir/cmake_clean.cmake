file(REMOVE_RECURSE
  "CMakeFiles/example_web_cluster.dir/examples/web_cluster.cpp.o"
  "CMakeFiles/example_web_cluster.dir/examples/web_cluster.cpp.o.d"
  "example_web_cluster"
  "example_web_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_web_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
