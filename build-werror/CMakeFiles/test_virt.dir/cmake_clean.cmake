file(REMOVE_RECURSE
  "CMakeFiles/test_virt.dir/tests/test_virt.cpp.o"
  "CMakeFiles/test_virt.dir/tests/test_virt.cpp.o.d"
  "test_virt"
  "test_virt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_virt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
