# Empty dependencies file for test_virt.
# This may be replaced when dependencies are built.
