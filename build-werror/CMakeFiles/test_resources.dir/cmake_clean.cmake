file(REMOVE_RECURSE
  "CMakeFiles/test_resources.dir/tests/test_resources.cpp.o"
  "CMakeFiles/test_resources.dir/tests/test_resources.cpp.o.d"
  "test_resources"
  "test_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
