# Empty dependencies file for test_resources.
# This may be replaced when dependencies are built.
