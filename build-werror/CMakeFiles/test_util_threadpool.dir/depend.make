# Empty dependencies file for test_util_threadpool.
# This may be replaced when dependencies are built.
