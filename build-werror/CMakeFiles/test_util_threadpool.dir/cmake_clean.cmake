file(REMOVE_RECURSE
  "CMakeFiles/test_util_threadpool.dir/tests/test_util_threadpool.cpp.o"
  "CMakeFiles/test_util_threadpool.dir/tests/test_util_threadpool.cpp.o.d"
  "test_util_threadpool"
  "test_util_threadpool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_threadpool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
