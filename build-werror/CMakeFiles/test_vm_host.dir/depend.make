# Empty dependencies file for test_vm_host.
# This may be replaced when dependencies are built.
