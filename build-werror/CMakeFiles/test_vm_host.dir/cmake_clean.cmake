file(REMOVE_RECURSE
  "CMakeFiles/test_vm_host.dir/tests/test_vm_host.cpp.o"
  "CMakeFiles/test_vm_host.dir/tests/test_vm_host.cpp.o.d"
  "test_vm_host"
  "test_vm_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vm_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
