# Empty dependencies file for test_policy.
# This may be replaced when dependencies are built.
