file(REMOVE_RECURSE
  "CMakeFiles/test_policy.dir/tests/test_policy.cpp.o"
  "CMakeFiles/test_policy.dir/tests/test_policy.cpp.o.d"
  "test_policy"
  "test_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
