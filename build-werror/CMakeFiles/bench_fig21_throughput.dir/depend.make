# Empty dependencies file for bench_fig21_throughput.
# This may be replaced when dependencies are built.
