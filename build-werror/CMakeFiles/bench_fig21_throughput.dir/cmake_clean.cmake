file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_throughput.dir/bench/fig21_throughput.cpp.o"
  "CMakeFiles/bench_fig21_throughput.dir/bench/fig21_throughput.cpp.o.d"
  "bench_fig21_throughput"
  "bench_fig21_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
