file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_wiki_rt.dir/bench/fig16_wiki_rt.cpp.o"
  "CMakeFiles/bench_fig16_wiki_rt.dir/bench/fig16_wiki_rt.cpp.o.d"
  "bench_fig16_wiki_rt"
  "bench_fig16_wiki_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_wiki_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
