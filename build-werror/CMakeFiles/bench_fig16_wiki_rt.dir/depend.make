# Empty dependencies file for bench_fig16_wiki_rt.
# This may be replaced when dependencies are built.
