# Empty dependencies file for bench_ablation_mechanisms.
# This may be replaced when dependencies are built.
