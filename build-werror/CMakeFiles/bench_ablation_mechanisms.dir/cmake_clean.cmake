file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mechanisms.dir/bench/ablation_mechanisms.cpp.o"
  "CMakeFiles/bench_ablation_mechanisms.dir/bench/ablation_mechanisms.cpp.o.d"
  "bench_ablation_mechanisms"
  "bench_ablation_mechanisms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mechanisms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
