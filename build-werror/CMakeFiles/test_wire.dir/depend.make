# Empty dependencies file for test_wire.
# This may be replaced when dependencies are built.
