file(REMOVE_RECURSE
  "CMakeFiles/test_wire.dir/tests/test_wire.cpp.o"
  "CMakeFiles/test_wire.dir/tests/test_wire.cpp.o.d"
  "test_wire"
  "test_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
