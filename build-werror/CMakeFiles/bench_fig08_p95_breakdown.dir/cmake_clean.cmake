file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_p95_breakdown.dir/bench/fig08_p95_breakdown.cpp.o"
  "CMakeFiles/bench_fig08_p95_breakdown.dir/bench/fig08_p95_breakdown.cpp.o.d"
  "bench_fig08_p95_breakdown"
  "bench_fig08_p95_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_p95_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
