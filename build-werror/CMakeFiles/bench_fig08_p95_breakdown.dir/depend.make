# Empty dependencies file for bench_fig08_p95_breakdown.
# This may be replaced when dependencies are built.
