# Empty dependencies file for test_simcluster.
# This may be replaced when dependencies are built.
