file(REMOVE_RECURSE
  "CMakeFiles/test_simcluster.dir/tests/test_simcluster.cpp.o"
  "CMakeFiles/test_simcluster.dir/tests/test_simcluster.cpp.o.d"
  "test_simcluster"
  "test_simcluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simcluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
