file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_wiki_served.dir/bench/fig17_wiki_served.cpp.o"
  "CMakeFiles/bench_fig17_wiki_served.dir/bench/fig17_wiki_served.cpp.o.d"
  "bench_fig17_wiki_served"
  "bench_fig17_wiki_served.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_wiki_served.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
