# Empty dependencies file for bench_fig17_wiki_served.
# This may be replaced when dependencies are built.
