file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_trace.dir/bench/micro_trace.cpp.o"
  "CMakeFiles/bench_micro_trace.dir/bench/micro_trace.cpp.o.d"
  "bench_micro_trace"
  "bench_micro_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
