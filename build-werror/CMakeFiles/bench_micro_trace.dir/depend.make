# Empty dependencies file for bench_micro_trace.
# This may be replaced when dependencies are built.
