# Empty dependencies file for test_ps_station.
# This may be replaced when dependencies are built.
