file(REMOVE_RECURSE
  "CMakeFiles/test_ps_station.dir/tests/test_ps_station.cpp.o"
  "CMakeFiles/test_ps_station.dir/tests/test_ps_station.cpp.o.d"
  "test_ps_station"
  "test_ps_station.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ps_station.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
