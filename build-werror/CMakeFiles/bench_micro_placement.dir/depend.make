# Empty dependencies file for bench_micro_placement.
# This may be replaced when dependencies are built.
