file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_placement.dir/bench/micro_placement.cpp.o"
  "CMakeFiles/bench_micro_placement.dir/bench/micro_placement.cpp.o.d"
  "bench_micro_placement"
  "bench_micro_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
