file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_reinflation.dir/bench/ablation_reinflation.cpp.o"
  "CMakeFiles/bench_ablation_reinflation.dir/bench/ablation_reinflation.cpp.o.d"
  "bench_ablation_reinflation"
  "bench_ablation_reinflation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_reinflation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
