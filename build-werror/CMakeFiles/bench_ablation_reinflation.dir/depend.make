# Empty dependencies file for bench_ablation_reinflation.
# This may be replaced when dependencies are built.
