file(REMOVE_RECURSE
  "CMakeFiles/test_util_csv_table.dir/tests/test_util_csv_table.cpp.o"
  "CMakeFiles/test_util_csv_table.dir/tests/test_util_csv_table.cpp.o.d"
  "test_util_csv_table"
  "test_util_csv_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_csv_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
