# Empty dependencies file for test_util_csv_table.
# This may be replaced when dependencies are built.
