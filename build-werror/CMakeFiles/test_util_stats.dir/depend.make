# Empty dependencies file for test_util_stats.
# This may be replaced when dependencies are built.
