file(REMOVE_RECURSE
  "CMakeFiles/test_util_stats.dir/tests/test_util_stats.cpp.o"
  "CMakeFiles/test_util_stats.dir/tests/test_util_stats.cpp.o.d"
  "test_util_stats"
  "test_util_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
