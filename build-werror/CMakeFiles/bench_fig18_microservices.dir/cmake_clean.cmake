file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_microservices.dir/bench/fig18_microservices.cpp.o"
  "CMakeFiles/bench_fig18_microservices.dir/bench/fig18_microservices.cpp.o.d"
  "bench_fig18_microservices"
  "bench_fig18_microservices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_microservices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
