# Empty dependencies file for bench_fig18_microservices.
# This may be replaced when dependencies are built.
