file(REMOVE_RECURSE
  "CMakeFiles/test_balloon_ablation.dir/tests/test_balloon_ablation.cpp.o"
  "CMakeFiles/test_balloon_ablation.dir/tests/test_balloon_ablation.cpp.o.d"
  "test_balloon_ablation"
  "test_balloon_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_balloon_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
