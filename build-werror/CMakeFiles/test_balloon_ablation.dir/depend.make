# Empty dependencies file for test_balloon_ablation.
# This may be replaced when dependencies are built.
