# Empty dependencies file for test_sharded_manager.
# This may be replaced when dependencies are built.
