file(REMOVE_RECURSE
  "CMakeFiles/test_sharded_manager.dir/tests/test_sharded_manager.cpp.o"
  "CMakeFiles/test_sharded_manager.dir/tests/test_sharded_manager.cpp.o.d"
  "test_sharded_manager"
  "test_sharded_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sharded_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
