# Empty dependencies file for bench_fig20_failure_prob.
# This may be replaced when dependencies are built.
