file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_failure_prob.dir/bench/fig20_failure_prob.cpp.o"
  "CMakeFiles/bench_fig20_failure_prob.dir/bench/fig20_failure_prob.cpp.o.d"
  "bench_fig20_failure_prob"
  "bench_fig20_failure_prob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_failure_prob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
