file(REMOVE_RECURSE
  "CMakeFiles/test_transient_revocation.dir/tests/test_transient_revocation.cpp.o"
  "CMakeFiles/test_transient_revocation.dir/tests/test_transient_revocation.cpp.o.d"
  "test_transient_revocation"
  "test_transient_revocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transient_revocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
