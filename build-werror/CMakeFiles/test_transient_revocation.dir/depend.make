# Empty dependencies file for test_transient_revocation.
# This may be replaced when dependencies are built.
