# Empty dependencies file for test_trace_alibaba.
# This may be replaced when dependencies are built.
