file(REMOVE_RECURSE
  "CMakeFiles/test_trace_alibaba.dir/tests/test_trace_alibaba.cpp.o"
  "CMakeFiles/test_trace_alibaba.dir/tests/test_trace_alibaba.cpp.o.d"
  "test_trace_alibaba"
  "test_trace_alibaba.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_alibaba.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
