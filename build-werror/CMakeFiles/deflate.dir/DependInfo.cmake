
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/feasibility.cpp" "CMakeFiles/deflate.dir/src/analysis/feasibility.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/analysis/feasibility.cpp.o.d"
  "/root/repo/src/cluster/admission.cpp" "CMakeFiles/deflate.dir/src/cluster/admission.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/cluster/admission.cpp.o.d"
  "/root/repo/src/cluster/cluster_manager.cpp" "CMakeFiles/deflate.dir/src/cluster/cluster_manager.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/cluster/cluster_manager.cpp.o.d"
  "/root/repo/src/cluster/migration.cpp" "CMakeFiles/deflate.dir/src/cluster/migration.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/cluster/migration.cpp.o.d"
  "/root/repo/src/cluster/partitions.cpp" "CMakeFiles/deflate.dir/src/cluster/partitions.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/cluster/partitions.cpp.o.d"
  "/root/repo/src/cluster/placement.cpp" "CMakeFiles/deflate.dir/src/cluster/placement.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/cluster/placement.cpp.o.d"
  "/root/repo/src/cluster/pricing.cpp" "CMakeFiles/deflate.dir/src/cluster/pricing.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/cluster/pricing.cpp.o.d"
  "/root/repo/src/cluster/sharded_manager.cpp" "CMakeFiles/deflate.dir/src/cluster/sharded_manager.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/cluster/sharded_manager.cpp.o.d"
  "/root/repo/src/cluster/wire.cpp" "CMakeFiles/deflate.dir/src/cluster/wire.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/cluster/wire.cpp.o.d"
  "/root/repo/src/core/local_controller.cpp" "CMakeFiles/deflate.dir/src/core/local_controller.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/core/local_controller.cpp.o.d"
  "/root/repo/src/core/perf_model.cpp" "CMakeFiles/deflate.dir/src/core/perf_model.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/core/perf_model.cpp.o.d"
  "/root/repo/src/core/policy.cpp" "CMakeFiles/deflate.dir/src/core/policy.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/core/policy.cpp.o.d"
  "/root/repo/src/hypervisor/guest_os.cpp" "CMakeFiles/deflate.dir/src/hypervisor/guest_os.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/hypervisor/guest_os.cpp.o.d"
  "/root/repo/src/hypervisor/host.cpp" "CMakeFiles/deflate.dir/src/hypervisor/host.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/hypervisor/host.cpp.o.d"
  "/root/repo/src/hypervisor/hypervisor.cpp" "CMakeFiles/deflate.dir/src/hypervisor/hypervisor.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/hypervisor/hypervisor.cpp.o.d"
  "/root/repo/src/hypervisor/virt.cpp" "CMakeFiles/deflate.dir/src/hypervisor/virt.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/hypervisor/virt.cpp.o.d"
  "/root/repo/src/hypervisor/vm.cpp" "CMakeFiles/deflate.dir/src/hypervisor/vm.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/hypervisor/vm.cpp.o.d"
  "/root/repo/src/mechanisms/balloon.cpp" "CMakeFiles/deflate.dir/src/mechanisms/balloon.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/mechanisms/balloon.cpp.o.d"
  "/root/repo/src/mechanisms/explicit_hotplug.cpp" "CMakeFiles/deflate.dir/src/mechanisms/explicit_hotplug.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/mechanisms/explicit_hotplug.cpp.o.d"
  "/root/repo/src/mechanisms/hybrid.cpp" "CMakeFiles/deflate.dir/src/mechanisms/hybrid.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/mechanisms/hybrid.cpp.o.d"
  "/root/repo/src/mechanisms/mechanism.cpp" "CMakeFiles/deflate.dir/src/mechanisms/mechanism.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/mechanisms/mechanism.cpp.o.d"
  "/root/repo/src/mechanisms/transparent.cpp" "CMakeFiles/deflate.dir/src/mechanisms/transparent.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/mechanisms/transparent.cpp.o.d"
  "/root/repo/src/resources/resource_vector.cpp" "CMakeFiles/deflate.dir/src/resources/resource_vector.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/resources/resource_vector.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "CMakeFiles/deflate.dir/src/sim/simulator.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/sim/simulator.cpp.o.d"
  "/root/repo/src/simcluster/cluster_sim.cpp" "CMakeFiles/deflate.dir/src/simcluster/cluster_sim.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/simcluster/cluster_sim.cpp.o.d"
  "/root/repo/src/trace/alibaba.cpp" "CMakeFiles/deflate.dir/src/trace/alibaba.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/trace/alibaba.cpp.o.d"
  "/root/repo/src/trace/azure.cpp" "CMakeFiles/deflate.dir/src/trace/azure.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/trace/azure.cpp.o.d"
  "/root/repo/src/trace/series.cpp" "CMakeFiles/deflate.dir/src/trace/series.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/trace/series.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "CMakeFiles/deflate.dir/src/trace/trace_io.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/trace/trace_io.cpp.o.d"
  "/root/repo/src/trace/vm_record.cpp" "CMakeFiles/deflate.dir/src/trace/vm_record.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/trace/vm_record.cpp.o.d"
  "/root/repo/src/transient/bidding.cpp" "CMakeFiles/deflate.dir/src/transient/bidding.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/transient/bidding.cpp.o.d"
  "/root/repo/src/transient/market.cpp" "CMakeFiles/deflate.dir/src/transient/market.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/transient/market.cpp.o.d"
  "/root/repo/src/transient/portfolio.cpp" "CMakeFiles/deflate.dir/src/transient/portfolio.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/transient/portfolio.cpp.o.d"
  "/root/repo/src/transient/revocation.cpp" "CMakeFiles/deflate.dir/src/transient/revocation.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/transient/revocation.cpp.o.d"
  "/root/repo/src/transient/spot_price.cpp" "CMakeFiles/deflate.dir/src/transient/spot_price.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/transient/spot_price.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "CMakeFiles/deflate.dir/src/util/cli.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/util/cli.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "CMakeFiles/deflate.dir/src/util/csv.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/util/csv.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "CMakeFiles/deflate.dir/src/util/logging.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/util/logging.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "CMakeFiles/deflate.dir/src/util/stats.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "CMakeFiles/deflate.dir/src/util/table.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/util/table.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "CMakeFiles/deflate.dir/src/util/thread_pool.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/util/thread_pool.cpp.o.d"
  "/root/repo/src/workloads/latency_recorder.cpp" "CMakeFiles/deflate.dir/src/workloads/latency_recorder.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/workloads/latency_recorder.cpp.o.d"
  "/root/repo/src/workloads/load_balancer.cpp" "CMakeFiles/deflate.dir/src/workloads/load_balancer.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/workloads/load_balancer.cpp.o.d"
  "/root/repo/src/workloads/microservice.cpp" "CMakeFiles/deflate.dir/src/workloads/microservice.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/workloads/microservice.cpp.o.d"
  "/root/repo/src/workloads/open_loop.cpp" "CMakeFiles/deflate.dir/src/workloads/open_loop.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/workloads/open_loop.cpp.o.d"
  "/root/repo/src/workloads/ps_station.cpp" "CMakeFiles/deflate.dir/src/workloads/ps_station.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/workloads/ps_station.cpp.o.d"
  "/root/repo/src/workloads/wikipedia.cpp" "CMakeFiles/deflate.dir/src/workloads/wikipedia.cpp.o" "gcc" "CMakeFiles/deflate.dir/src/workloads/wikipedia.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
