# Empty dependencies file for deflate.
# This may be replaced when dependencies are built.
