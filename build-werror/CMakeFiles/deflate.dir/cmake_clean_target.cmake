file(REMOVE_RECURSE
  "libdeflate.a"
)
