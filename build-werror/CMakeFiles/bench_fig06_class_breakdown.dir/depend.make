# Empty dependencies file for bench_fig06_class_breakdown.
# This may be replaced when dependencies are built.
