file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_class_breakdown.dir/bench/fig06_class_breakdown.cpp.o"
  "CMakeFiles/bench_fig06_class_breakdown.dir/bench/fig06_class_breakdown.cpp.o.d"
  "bench_fig06_class_breakdown"
  "bench_fig06_class_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_class_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
