file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_membw.dir/bench/fig10_membw.cpp.o"
  "CMakeFiles/bench_fig10_membw.dir/bench/fig10_membw.cpp.o.d"
  "bench_fig10_membw"
  "bench_fig10_membw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_membw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
