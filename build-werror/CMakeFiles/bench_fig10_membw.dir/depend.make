# Empty dependencies file for bench_fig10_membw.
# This may be replaced when dependencies are built.
