file(REMOVE_RECURSE
  "CMakeFiles/test_local_controller.dir/tests/test_local_controller.cpp.o"
  "CMakeFiles/test_local_controller.dir/tests/test_local_controller.cpp.o.d"
  "test_local_controller"
  "test_local_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_local_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
