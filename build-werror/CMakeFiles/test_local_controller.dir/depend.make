# Empty dependencies file for test_local_controller.
# This may be replaced when dependencies are built.
