# Empty dependencies file for bench_ablation_placement.
# This may be replaced when dependencies are built.
