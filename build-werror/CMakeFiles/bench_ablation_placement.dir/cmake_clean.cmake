file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_placement.dir/bench/ablation_placement.cpp.o"
  "CMakeFiles/bench_ablation_placement.dir/bench/ablation_placement.cpp.o.d"
  "bench_ablation_placement"
  "bench_ablation_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
