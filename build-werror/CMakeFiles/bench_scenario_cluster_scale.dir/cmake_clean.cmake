file(REMOVE_RECURSE
  "CMakeFiles/bench_scenario_cluster_scale.dir/bench/scenario_cluster_scale.cpp.o"
  "CMakeFiles/bench_scenario_cluster_scale.dir/bench/scenario_cluster_scale.cpp.o.d"
  "bench_scenario_cluster_scale"
  "bench_scenario_cluster_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scenario_cluster_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
