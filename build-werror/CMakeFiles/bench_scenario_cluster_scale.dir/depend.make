# Empty dependencies file for bench_scenario_cluster_scale.
# This may be replaced when dependencies are built.
