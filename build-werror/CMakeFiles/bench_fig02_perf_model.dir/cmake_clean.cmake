file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_perf_model.dir/bench/fig02_perf_model.cpp.o"
  "CMakeFiles/bench_fig02_perf_model.dir/bench/fig02_perf_model.cpp.o.d"
  "bench_fig02_perf_model"
  "bench_fig02_perf_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_perf_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
