# Empty dependencies file for bench_fig02_perf_model.
# This may be replaced when dependencies are built.
