file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/tests/test_sim.cpp.o"
  "CMakeFiles/test_sim.dir/tests/test_sim.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
