file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_balloon.dir/bench/ablation_balloon.cpp.o"
  "CMakeFiles/bench_ablation_balloon.dir/bench/ablation_balloon.cpp.o.d"
  "bench_ablation_balloon"
  "bench_ablation_balloon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_balloon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
