# Empty dependencies file for bench_ablation_balloon.
# This may be replaced when dependencies are built.
