# Empty dependencies file for test_trace_azure.
# This may be replaced when dependencies are built.
