file(REMOVE_RECURSE
  "CMakeFiles/test_trace_azure.dir/tests/test_trace_azure.cpp.o"
  "CMakeFiles/test_trace_azure.dir/tests/test_trace_azure.cpp.o.d"
  "test_trace_azure"
  "test_trace_azure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_azure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
