# Empty dependencies file for bench_fig22_revenue.
# This may be replaced when dependencies are built.
