file(REMOVE_RECURSE
  "CMakeFiles/bench_fig22_revenue.dir/bench/fig22_revenue.cpp.o"
  "CMakeFiles/bench_fig22_revenue.dir/bench/fig22_revenue.cpp.o.d"
  "bench_fig22_revenue"
  "bench_fig22_revenue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22_revenue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
