# Empty dependencies file for example_feasibility.
# This may be replaced when dependencies are built.
