file(REMOVE_RECURSE
  "CMakeFiles/example_feasibility.dir/examples/feasibility.cpp.o"
  "CMakeFiles/example_feasibility.dir/examples/feasibility.cpp.o.d"
  "example_feasibility"
  "example_feasibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_feasibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
