# Empty dependencies file for test_placement.
# This may be replaced when dependencies are built.
