file(REMOVE_RECURSE
  "CMakeFiles/test_placement.dir/tests/test_placement.cpp.o"
  "CMakeFiles/test_placement.dir/tests/test_placement.cpp.o.d"
  "test_placement"
  "test_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
