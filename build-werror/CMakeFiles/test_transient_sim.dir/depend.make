# Empty dependencies file for test_transient_sim.
# This may be replaced when dependencies are built.
