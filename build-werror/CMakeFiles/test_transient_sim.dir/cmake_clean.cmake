file(REMOVE_RECURSE
  "CMakeFiles/test_transient_sim.dir/tests/test_transient_sim.cpp.o"
  "CMakeFiles/test_transient_sim.dir/tests/test_transient_sim.cpp.o.d"
  "test_transient_sim"
  "test_transient_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transient_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
