file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_cpu_deflatability.dir/bench/fig05_cpu_deflatability.cpp.o"
  "CMakeFiles/bench_fig05_cpu_deflatability.dir/bench/fig05_cpu_deflatability.cpp.o.d"
  "bench_fig05_cpu_deflatability"
  "bench_fig05_cpu_deflatability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_cpu_deflatability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
