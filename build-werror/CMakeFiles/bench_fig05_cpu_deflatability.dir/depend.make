# Empty dependencies file for bench_fig05_cpu_deflatability.
# This may be replaced when dependencies are built.
