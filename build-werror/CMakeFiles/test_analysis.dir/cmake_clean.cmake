file(REMOVE_RECURSE
  "CMakeFiles/test_analysis.dir/tests/test_analysis.cpp.o"
  "CMakeFiles/test_analysis.dir/tests/test_analysis.cpp.o.d"
  "test_analysis"
  "test_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
