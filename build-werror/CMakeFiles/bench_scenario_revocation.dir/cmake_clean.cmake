file(REMOVE_RECURSE
  "CMakeFiles/bench_scenario_revocation.dir/bench/scenario_revocation.cpp.o"
  "CMakeFiles/bench_scenario_revocation.dir/bench/scenario_revocation.cpp.o.d"
  "bench_scenario_revocation"
  "bench_scenario_revocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scenario_revocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
