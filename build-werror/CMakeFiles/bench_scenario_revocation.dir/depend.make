# Empty dependencies file for bench_scenario_revocation.
# This may be replaced when dependencies are built.
