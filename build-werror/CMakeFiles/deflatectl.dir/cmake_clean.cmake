file(REMOVE_RECURSE
  "CMakeFiles/deflatectl.dir/tools/deflatectl.cpp.o"
  "CMakeFiles/deflatectl.dir/tools/deflatectl.cpp.o.d"
  "deflatectl"
  "deflatectl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deflatectl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
