# Empty dependencies file for deflatectl.
# This may be replaced when dependencies are built.
