file(REMOVE_RECURSE
  "CMakeFiles/bench_scenario_multimarket.dir/bench/scenario_multimarket.cpp.o"
  "CMakeFiles/bench_scenario_multimarket.dir/bench/scenario_multimarket.cpp.o.d"
  "bench_scenario_multimarket"
  "bench_scenario_multimarket.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scenario_multimarket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
