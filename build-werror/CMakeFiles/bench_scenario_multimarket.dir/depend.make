# Empty dependencies file for bench_scenario_multimarket.
# This may be replaced when dependencies are built.
