# Empty dependencies file for test_admission.
# This may be replaced when dependencies are built.
