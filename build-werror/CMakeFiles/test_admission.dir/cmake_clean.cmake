file(REMOVE_RECURSE
  "CMakeFiles/test_admission.dir/tests/test_admission.cpp.o"
  "CMakeFiles/test_admission.dir/tests/test_admission.cpp.o.d"
  "test_admission"
  "test_admission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_admission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
