# Empty dependencies file for test_transient_price.
# This may be replaced when dependencies are built.
