file(REMOVE_RECURSE
  "CMakeFiles/test_transient_price.dir/tests/test_transient_price.cpp.o"
  "CMakeFiles/test_transient_price.dir/tests/test_transient_price.cpp.o.d"
  "test_transient_price"
  "test_transient_price.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transient_price.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
