file(REMOVE_RECURSE
  "CMakeFiles/example_cluster_sim.dir/examples/cluster_sim.cpp.o"
  "CMakeFiles/example_cluster_sim.dir/examples/cluster_sim.cpp.o.d"
  "example_cluster_sim"
  "example_cluster_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_cluster_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
