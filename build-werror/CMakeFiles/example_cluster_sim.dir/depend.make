# Empty dependencies file for example_cluster_sim.
# This may be replaced when dependencies are built.
