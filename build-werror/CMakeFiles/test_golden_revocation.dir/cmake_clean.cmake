file(REMOVE_RECURSE
  "CMakeFiles/test_golden_revocation.dir/tests/test_golden_revocation.cpp.o"
  "CMakeFiles/test_golden_revocation.dir/tests/test_golden_revocation.cpp.o.d"
  "test_golden_revocation"
  "test_golden_revocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_golden_revocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
