# Empty dependencies file for test_golden_revocation.
# This may be replaced when dependencies are built.
