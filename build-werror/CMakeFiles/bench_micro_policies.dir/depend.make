# Empty dependencies file for bench_micro_policies.
# This may be replaced when dependencies are built.
