file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_policies.dir/bench/micro_policies.cpp.o"
  "CMakeFiles/bench_micro_policies.dir/bench/micro_policies.cpp.o.d"
  "bench_micro_policies"
  "bench_micro_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
