# Empty dependencies file for bench_fig12_netbw.
# This may be replaced when dependencies are built.
