file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_netbw.dir/bench/fig12_netbw.cpp.o"
  "CMakeFiles/bench_fig12_netbw.dir/bench/fig12_netbw.cpp.o.d"
  "bench_fig12_netbw"
  "bench_fig12_netbw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_netbw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
