file(REMOVE_RECURSE
  "CMakeFiles/test_workload_apps.dir/tests/test_workload_apps.cpp.o"
  "CMakeFiles/test_workload_apps.dir/tests/test_workload_apps.cpp.o.d"
  "test_workload_apps"
  "test_workload_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
