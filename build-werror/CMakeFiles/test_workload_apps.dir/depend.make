# Empty dependencies file for test_workload_apps.
# This may be replaced when dependencies are built.
