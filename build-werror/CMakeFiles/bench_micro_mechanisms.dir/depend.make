# Empty dependencies file for bench_micro_mechanisms.
# This may be replaced when dependencies are built.
