file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_mechanisms.dir/bench/micro_mechanisms.cpp.o"
  "CMakeFiles/bench_micro_mechanisms.dir/bench/micro_mechanisms.cpp.o.d"
  "bench_micro_mechanisms"
  "bench_micro_mechanisms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_mechanisms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
