# Empty dependencies file for example_transient_market.
# This may be replaced when dependencies are built.
