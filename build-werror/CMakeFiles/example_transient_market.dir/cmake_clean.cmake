file(REMOVE_RECURSE
  "CMakeFiles/example_transient_market.dir/examples/transient_market.cpp.o"
  "CMakeFiles/example_transient_market.dir/examples/transient_market.cpp.o.d"
  "example_transient_market"
  "example_transient_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_transient_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
