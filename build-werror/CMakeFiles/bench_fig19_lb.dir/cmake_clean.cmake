file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_lb.dir/bench/fig19_lb.cpp.o"
  "CMakeFiles/bench_fig19_lb.dir/bench/fig19_lb.cpp.o.d"
  "bench_fig19_lb"
  "bench_fig19_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
