# Empty dependencies file for bench_fig19_lb.
# This may be replaced when dependencies are built.
