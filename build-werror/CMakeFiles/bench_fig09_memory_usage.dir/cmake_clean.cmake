file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_memory_usage.dir/bench/fig09_memory_usage.cpp.o"
  "CMakeFiles/bench_fig09_memory_usage.dir/bench/fig09_memory_usage.cpp.o.d"
  "bench_fig09_memory_usage"
  "bench_fig09_memory_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_memory_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
