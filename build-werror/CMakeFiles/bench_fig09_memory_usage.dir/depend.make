# Empty dependencies file for bench_fig09_memory_usage.
# This may be replaced when dependencies are built.
