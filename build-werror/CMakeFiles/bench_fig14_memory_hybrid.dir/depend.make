# Empty dependencies file for bench_fig14_memory_hybrid.
# This may be replaced when dependencies are built.
