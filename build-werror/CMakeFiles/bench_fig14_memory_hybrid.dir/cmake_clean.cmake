file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_memory_hybrid.dir/bench/fig14_memory_hybrid.cpp.o"
  "CMakeFiles/bench_fig14_memory_hybrid.dir/bench/fig14_memory_hybrid.cpp.o.d"
  "bench_fig14_memory_hybrid"
  "bench_fig14_memory_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_memory_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
