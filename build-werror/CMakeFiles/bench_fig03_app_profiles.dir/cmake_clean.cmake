file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_app_profiles.dir/bench/fig03_app_profiles.cpp.o"
  "CMakeFiles/bench_fig03_app_profiles.dir/bench/fig03_app_profiles.cpp.o.d"
  "bench_fig03_app_profiles"
  "bench_fig03_app_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_app_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
