# Empty dependencies file for bench_fig03_app_profiles.
# This may be replaced when dependencies are built.
