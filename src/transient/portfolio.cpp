#include "transient/portfolio.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace deflate::transient {

namespace {

/// Euclidean projection onto the simplex {w : w >= lower, sum w = 1}
/// (Duchi et al. 2008, shifted by the per-coordinate lower bounds).
std::vector<double> project_simplex(std::vector<double> w,
                                    const std::vector<double>& lower) {
  const std::size_t n = w.size();
  double slack = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    w[i] -= lower[i];
    slack -= lower[i];
  }
  if (slack <= 0.0) {
    // Floors consume everything: return the floors, renormalized.
    std::vector<double> out = lower;
    const double total = std::accumulate(out.begin(), out.end(), 0.0);
    for (double& x : out) x /= total;
    return out;
  }
  // Project the shifted vector onto the scaled simplex {v >= 0, sum = slack}.
  std::vector<double> sorted = w;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  double cumulative = 0.0;
  double theta = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cumulative += sorted[i];
    const double candidate =
        (cumulative - slack) / static_cast<double>(i + 1);
    if (sorted[i] - candidate > 0.0) theta = candidate;
  }
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = std::max(0.0, w[i] - theta) + lower[i];
  }
  return w;
}

}  // namespace

MarketSpec MarketSpec::from_observations(std::string name,
                                         const PriceTrace& trace,
                                         const RevocationEngine& engine) {
  MarketSpec spec;
  spec.name = std::move(name);
  spec.expected_price = trace.mean();
  spec.price_variance = trace.variance();
  spec.revocation_rate_per_hour = engine.expected_rate_per_hour();
  return spec;
}

PortfolioResult PortfolioManager::optimize(
    std::span<const MarketSpec> markets) const {
  const double rho = std::clamp(config_.market_correlation, -1.0, 1.0);
  std::vector<std::vector<double>> correlation(
      markets.size(), std::vector<double>(markets.size(), rho));
  for (std::size_t i = 0; i < markets.size(); ++i) correlation[i][i] = 1.0;
  return optimize(markets, correlation);
}

PortfolioResult PortfolioManager::optimize(
    std::span<const MarketSpec> markets,
    const std::vector<std::vector<double>>& correlation) const {
  if (markets.empty()) {
    throw std::invalid_argument("PortfolioManager: no transient markets");
  }
  if (!correlation.empty() && correlation.size() != markets.size()) {
    throw std::invalid_argument(
        "PortfolioManager: correlation must be K x K over the markets");
  }
  for (const auto& row : correlation) {
    if (row.size() != markets.size()) {
      throw std::invalid_argument(
          "PortfolioManager: correlation must be K x K over the markets");
    }
  }
  const std::size_t n = markets.size() + 1;  // + on-demand asset

  // Effective cost vector: on-demand pays the sticker price; a transient
  // market pays its spot price plus the expected revocation penalty.
  std::vector<double> cost(n, 0.0);
  cost[0] = 1.0;
  for (std::size_t i = 0; i < markets.size(); ++i) {
    cost[i + 1] = markets[i].expected_price +
                  markets[i].revocation_rate_per_hour *
                      config_.revocation_penalty_core_hours;
  }

  // Covariance: on-demand is risk-free; transient markets carry their own
  // price variance plus a revocation-rate variance proxy, coupled by a
  // common correlation (provider-wide capacity crunches).
  std::vector<std::vector<double>> sigma(n, std::vector<double>(n, 0.0));
  std::vector<double> stddev(n, 0.0);
  for (std::size_t i = 0; i < markets.size(); ++i) {
    const double revocation_var = markets[i].revocation_rate_per_hour *
                                  config_.revocation_penalty_core_hours *
                                  config_.revocation_penalty_core_hours;
    const double var = markets[i].price_variance + revocation_var;
    sigma[i + 1][i + 1] = var;
    stddev[i + 1] = std::sqrt(std::max(0.0, var));
  }
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t j = 1; j < n; ++j) {
      if (i == j) continue;
      const double rho =
          correlation.empty()
              ? 0.0
              : std::clamp(correlation[i - 1][j - 1], -1.0, 1.0);
      sigma[i][j] = rho * stddev[i] * stddev[j];
    }
  }

  std::vector<double> lower(n, 0.0);
  lower[0] = std::clamp(config_.on_demand_floor, 0.0, 1.0);

  // Start from uniform and descend cost(w) + alpha w^T Sigma w.
  std::vector<double> w(n, 1.0 / static_cast<double>(n));
  w = project_simplex(std::move(w), lower);
  std::vector<double> grad(n, 0.0);
  for (std::size_t it = 0; it < config_.iterations; ++it) {
    for (std::size_t i = 0; i < n; ++i) {
      double sw = 0.0;
      for (std::size_t j = 0; j < n; ++j) sw += sigma[i][j] * w[j];
      grad[i] = cost[i] + 2.0 * config_.risk_aversion * sw;
    }
    for (std::size_t i = 0; i < n; ++i) {
      w[i] -= config_.learning_rate * grad[i];
    }
    w = project_simplex(std::move(w), lower);
  }

  PortfolioResult result;
  result.weights = w;
  result.expected_cost = 0.0;
  for (std::size_t i = 0; i < n; ++i) result.expected_cost += w[i] * cost[i];
  result.risk = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      result.risk += w[i] * sigma[i][j] * w[j];
    }
  }
  result.expected_saving = 1.0 - result.expected_cost;
  return result;
}

std::vector<double> PortfolioManager::pool_weights(
    const PortfolioResult& result, std::size_t deflatable_pools,
    std::span<const double> priority_mix) const {
  if (deflatable_pools == 0) {
    throw std::invalid_argument("pool_weights: need at least one pool");
  }
  std::vector<double> weights(deflatable_pools + 1, 0.0);
  weights[0] = result.on_demand_weight();
  const double transient = result.transient_weight();
  if (!priority_mix.empty() && priority_mix.size() != deflatable_pools) {
    throw std::invalid_argument("pool_weights: priority_mix size mismatch");
  }
  double mix_total = 0.0;
  for (const double m : priority_mix) mix_total += m;
  for (std::size_t k = 0; k < deflatable_pools; ++k) {
    const double share =
        priority_mix.empty() || mix_total <= 0.0
            ? 1.0 / static_cast<double>(deflatable_pools)
            : priority_mix[k] / mix_total;
    weights[k + 1] = transient * share;
  }
  return weights;
}

}  // namespace deflate::transient
