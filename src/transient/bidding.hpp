// Per-VM-class bid optimization for transient markets (Sharma, Irwin &
// Shenoy, "Portfolio-driven Resource Management for Transient Cloud
// Servers", arXiv:1704.08738 §5).
//
// A spot bid trades acquisition price against revocation risk: bidding low
// keeps the per-core-hour payment near the market floor but loses the
// server on every small spike (and the displaced work must be served from
// on-demand capacity while the market is unaffordable); bidding high holds
// capacity through spikes at the cost of paying them. The right balance
// depends on how much a revocation *hurts*, which differs by VM priority
// class — interactive, high-priority VMs lose far more work per
// interruption than batch-like low-priority ones. This optimizer therefore
// picks one bid per priority class by minimizing, over the observed price
// trace, the expected cost of serving one core-hour of that class's
// demand:
//
//   cost(b) = a(b) * E[p | p <= b]          spot payment while affordable
//           + (1 - a(b)) * p_od             on-demand fallback while not
//           + penalty_c * r(b)              revocation loss (class-scaled)
//
// where a(b) is the fraction of trace time with price <= b, r(b) the rate
// of upward bid-crossings per hour (each crossing revokes the server and
// interrupts its residents — the temporally-constrained revocation
// modeling of arXiv:1911.05160 supplies r for non-price-crossing markets,
// where it is bid-independent), and penalty_c the class's cost of one
// interruption in equivalent on-demand core-hours. The candidate set is
// the trace's distinct price levels plus the on-demand price, so the
// optimum is exact for step-function traces — no search tolerance, and
// bit-identical results across platforms.
#pragma once

#include <cstddef>
#include <vector>

#include "transient/revocation.hpp"
#include "transient/spot_price.hpp"

namespace deflate::transient {

struct BidOptimizerConfig {
  /// Per-core-hour rate of the on-demand fallback that serves demand while
  /// the market trades above the bid (and absorbs revoked work).
  double on_demand_price = 1.0;
  /// Fraction of the on-demand rate the fallback actually costs. A
  /// deflation fleet does not buy replacement capacity for every
  /// unaffordable hour — it deflates the survivors and defers deflatable
  /// launches (src/cluster/admission.hpp), so the realized cost of an
  /// unaffordable window is a fraction of the sticker rate. 1.0 recovers
  /// the classic Sharma-style full-replacement objective.
  double fallback_discount = 0.5;
  /// Cost of one revocation per core, in equivalent on-demand core-hours,
  /// indexed by priority class (0 = on-demand — never bids, entry unused;
  /// 1 = most-deflatable class rising to the least-deflatable). Classes
  /// beyond the vector reuse the last entry. Deflation absorbs most
  /// revocations without killing anything, so the defaults are churn
  /// costs (re-placement, deflation pressure, cold caches), not
  /// total-loss costs.
  std::vector<double> class_penalty_hours{0.0, 0.1, 0.25, 0.5, 1.0};
};

/// One class's optimal bid and the market behavior it buys.
struct ClassBid {
  std::size_t priority_class = 0;
  double bid = 0.0;
  /// Expected per-core-hour cost of serving this class at `bid` (the
  /// minimized objective; on-demand = 1.0).
  double expected_cost = 1.0;
  /// Fraction of trace time the market is affordable at `bid`.
  double availability = 1.0;
  /// Expected revocations per hour at `bid`: upward bid-crossings for
  /// price-crossing markets, the model's bid-independent rate otherwise.
  double revocation_rate_per_hour = 0.0;
};

class BidOptimizer {
 public:
  explicit BidOptimizer(BidOptimizerConfig config) noexcept
      : config_(config) {}

  /// The objective above (with the fallback term scaled by
  /// `fallback_discount`), evaluated exactly on the trace. `revocation`
  /// supplies the revocation semantics: PriceCrossing derives r(b) from
  /// the trace's bid-crossings; every other model contributes its
  /// bid-independent expected rate.
  [[nodiscard]] double expected_cost(const PriceTrace& trace, double bid,
                                     double penalty_hours,
                                     const RevocationConfig& revocation) const;

  /// Minimizes the objective for one class over the trace's distinct price
  /// levels plus the on-demand price. Ties go to the lowest bid
  /// (deterministic; less exposure for equal cost). An empty trace returns
  /// the on-demand price as the bid (degenerate: always affordable).
  [[nodiscard]] ClassBid optimize(const PriceTrace& trace,
                                  std::size_t priority_class,
                                  const RevocationConfig& revocation) const;

  /// One ClassBid per configured class (index-aligned with
  /// config().class_penalty_hours; entry 0 is the on-demand class and
  /// carries the on-demand price as a no-op bid).
  [[nodiscard]] std::vector<ClassBid> optimize_classes(
      const PriceTrace& trace, const RevocationConfig& revocation) const;

  /// Penalty of `priority_class` (clamped to the configured table).
  [[nodiscard]] double penalty_for(std::size_t priority_class) const noexcept;

  [[nodiscard]] const BidOptimizerConfig& config() const noexcept {
    return config_;
  }

 private:
  /// Revocations per hour at `bid` under `revocation`: bid-crossings for
  /// PriceCrossing, the model's bid-independent rate otherwise.
  [[nodiscard]] static double revocation_rate(
      const PriceTrace& trace, double bid, const RevocationConfig& revocation);
  /// The objective with the revocation rate already known (lets
  /// optimize() hoist the bid-independent rate out of its sweep).
  [[nodiscard]] double cost_at_rate(const PriceTrace& trace, double bid,
                                    double penalty_hours, double rate) const;

  BidOptimizerConfig config_;
};

}  // namespace deflate::transient
