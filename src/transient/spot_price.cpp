#include "transient/spot_price.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace deflate::transient {

PriceTrace::PriceTrace(sim::SimTime step, std::vector<double> prices)
    : step_(step), prices_(std::move(prices)) {
  if (step.micros() <= 0) {
    throw std::invalid_argument("PriceTrace: step must be positive");
  }
}

double PriceTrace::at(sim::SimTime t) const noexcept {
  if (prices_.empty()) return 0.0;
  const std::int64_t idx = t.micros() / step_.micros();
  if (idx < 0) return prices_.front();
  if (idx >= static_cast<std::int64_t>(prices_.size())) return prices_.back();
  return prices_[static_cast<std::size_t>(idx)];
}

double PriceTrace::integral_over(sim::SimTime from, sim::SimTime to) const {
  if (prices_.empty() || to <= from) return 0.0;
  // Sum of price * overlap for each step interval [i*step, (i+1)*step).
  double total = 0.0;
  const std::int64_t step_us = step_.micros();
  const std::int64_t lo = std::max<std::int64_t>(0, from.micros() / step_us);
  for (std::int64_t i = lo; i < static_cast<std::int64_t>(prices_.size()); ++i) {
    const sim::SimTime seg_start = sim::SimTime::from_micros(i * step_us);
    if (seg_start >= to) break;
    const sim::SimTime seg_end = sim::SimTime::from_micros((i + 1) * step_us);
    const sim::SimTime a = std::max(seg_start, from);
    const sim::SimTime b = std::min(seg_end, to);
    if (b > a) total += prices_[static_cast<std::size_t>(i)] * (b - a).hours();
  }
  // Beyond the trace end the last price holds (clamped extrapolation).
  const sim::SimTime trace_end = duration();
  if (to > trace_end && !prices_.empty()) {
    const sim::SimTime a = std::max(from, trace_end);
    total += prices_.back() * (to - a).hours();
  }
  return total;
}

double PriceTrace::mean() const noexcept {
  if (prices_.empty()) return 0.0;
  double sum = 0.0;
  for (const double p : prices_) sum += p;
  return sum / static_cast<double>(prices_.size());
}

double PriceTrace::variance() const noexcept {
  if (prices_.size() < 2) return 0.0;
  const double m = mean();
  double sum = 0.0;
  for (const double p : prices_) sum += (p - m) * (p - m);
  return sum / static_cast<double>(prices_.size());
}

double PriceTrace::max() const noexcept {
  return prices_.empty() ? 0.0 : *std::max_element(prices_.begin(), prices_.end());
}

double PriceTrace::min() const noexcept {
  return prices_.empty() ? 0.0 : *std::min_element(prices_.begin(), prices_.end());
}

double PriceTrace::fraction_above(double threshold) const noexcept {
  if (prices_.empty()) return 0.0;
  std::size_t above = 0;
  for (const double p : prices_) {
    if (p > threshold) ++above;
  }
  return static_cast<double>(above) / static_cast<double>(prices_.size());
}

sim::SimTime PriceTrace::duration() const noexcept {
  return sim::SimTime::from_micros(
      static_cast<std::int64_t>(prices_.size()) * step_.micros());
}

std::vector<std::vector<double>> CorrelatedPriceModel::uniform_correlation(
    std::size_t k, double rho) {
  std::vector<std::vector<double>> out(k, std::vector<double>(k, rho));
  for (std::size_t i = 0; i < k; ++i) out[i][i] = 1.0;
  return out;
}

std::vector<std::vector<double>> CorrelatedPriceModel::cholesky(
    const std::vector<std::vector<double>>& matrix) {
  const std::size_t n = matrix.size();
  constexpr double kTolerance = 1e-9;
  for (const auto& row : matrix) {
    if (row.size() != n) {
      throw std::invalid_argument("cholesky: matrix must be square");
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (std::abs(matrix[i][j] - matrix[j][i]) > kTolerance) {
        throw std::invalid_argument("cholesky: matrix must be symmetric");
      }
    }
  }
  std::vector<std::vector<double>> factor(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = matrix[i][j];
      for (std::size_t k = 0; k < j; ++k) sum -= factor[i][k] * factor[j][k];
      if (i == j) {
        // Rank deficiency (e.g. two perfectly correlated markets) drives
        // the pivot to 0; clamp tiny negative round-off, reject genuinely
        // indefinite input.
        if (sum < -kTolerance) {
          throw std::invalid_argument(
              "cholesky: matrix is not positive semidefinite");
        }
        factor[i][i] = std::sqrt(std::max(0.0, sum));
      } else {
        factor[i][j] = factor[j][j] > 0.0 ? sum / factor[j][j] : 0.0;
      }
    }
  }
  return factor;
}

std::vector<PriceTrace> CorrelatedPriceModel::generate(
    sim::SimTime duration) const {
  const std::size_t market_count = config_.markets.size();
  if (market_count == 0) {
    throw std::invalid_argument("CorrelatedPriceModel: no markets");
  }
  const sim::SimTime step = config_.markets.front().step;
  const std::int64_t step_us = step.micros();
  if (step_us <= 0) {
    throw std::invalid_argument("CorrelatedPriceModel: step must be positive");
  }
  for (const SpotPriceConfig& market : config_.markets) {
    if (market.step != step) {
      throw std::invalid_argument(
          "CorrelatedPriceModel: markets must share one sampling step");
    }
  }
  if (!config_.correlation.empty()) {
    if (config_.correlation.size() != market_count) {
      throw std::invalid_argument(
          "CorrelatedPriceModel: correlation must be K x K");
    }
    for (std::size_t i = 0; i < market_count; ++i) {
      if (config_.correlation[i].size() != market_count ||
          std::abs(config_.correlation[i][i] - 1.0) > 1e-9) {
        throw std::invalid_argument(
            "CorrelatedPriceModel: correlation needs a unit diagonal "
            "(got a covariance-like matrix?)");
      }
    }
  }
  const auto factor = cholesky(config_.correlation.empty()
                                   ? uniform_correlation(market_count, 0.0)
                                   : config_.correlation);

  const auto steps = static_cast<std::size_t>(
      std::max<std::int64_t>(1, (duration.micros() + step_us - 1) / step_us));
  const double dt = step.hours();
  const double sqrt_dt = std::sqrt(dt);

  util::Rng rng = util::Rng::keyed(seed_, stream_);
  std::vector<std::vector<double>> prices(market_count);
  for (auto& series : prices) series.reserve(steps);

  // Per-market OU + shock state, exactly as in SpotPriceModel::generate —
  // only the innovation is replaced by the Cholesky-mixed draw, so one
  // market with identity correlation reproduces that trace bit for bit.
  std::vector<double> level(market_count), shock(market_count, 0.0);
  std::vector<double> shock_decay(market_count);
  std::vector<double> z(market_count), innovation(market_count);
  for (std::size_t m = 0; m < market_count; ++m) {
    level[m] = config_.markets[m].mean_price;
    shock_decay[m] = config_.markets[m].shock_decay_hours > 0.0
                         ? std::exp(-dt / config_.markets[m].shock_decay_hours)
                         : 0.0;
  }
  // Provider-wide crunch: a shared normalized level in [0, 1] that jumps
  // to 1 on Poisson arrivals and decays; each market sees it scaled by its
  // own mean. Gated so a zero rate consumes no extra draws.
  const bool has_common = config_.common_shock_rate_per_hour > 0.0;
  const double common_decay =
      config_.common_shock_decay_hours > 0.0
          ? std::exp(-dt / config_.common_shock_decay_hours)
          : 0.0;
  const double common_arrival =
      has_common ? 1.0 - std::exp(-config_.common_shock_rate_per_hour * dt)
                 : 0.0;
  double common = 0.0;

  for (std::size_t i = 0; i < steps; ++i) {
    for (std::size_t m = 0; m < market_count; ++m) z[m] = rng.normal();
    for (std::size_t m = 0; m < market_count; ++m) {
      double mixed = 0.0;
      for (std::size_t j = 0; j <= m; ++j) mixed += factor[m][j] * z[j];
      innovation[m] = mixed;
    }
    for (std::size_t m = 0; m < market_count; ++m) {
      const SpotPriceConfig& c = config_.markets[m];
      level[m] += c.reversion_rate * (c.mean_price - level[m]) * dt +
                  c.volatility * sqrt_dt * innovation[m];
      shock[m] *= shock_decay[m];
      if (c.shock_rate_per_hour > 0.0 &&
          rng.bernoulli(1.0 - std::exp(-c.shock_rate_per_hour * dt))) {
        shock[m] =
            std::max(shock[m], (c.shock_multiplier - 1.0) * c.mean_price);
      }
    }
    if (has_common) {
      common *= common_decay;
      if (rng.bernoulli(common_arrival)) common = 1.0;
    }
    for (std::size_t m = 0; m < market_count; ++m) {
      const SpotPriceConfig& c = config_.markets[m];
      double value = level[m] + shock[m];
      if (has_common) {
        value += common * (config_.common_shock_multiplier - 1.0) * c.mean_price;
      }
      prices[m].push_back(
          std::clamp(value, c.floor_price, c.on_demand_price * 2.0));
    }
  }

  std::vector<PriceTrace> out;
  out.reserve(market_count);
  for (std::size_t m = 0; m < market_count; ++m) {
    out.emplace_back(step, std::move(prices[m]));
  }
  return out;
}

PriceTrace SpotPriceModel::generate(sim::SimTime duration) const {
  const std::int64_t step_us = config_.step.micros();
  if (step_us <= 0) {
    throw std::invalid_argument("SpotPriceModel: step must be positive");
  }
  const auto steps = static_cast<std::size_t>(
      std::max<std::int64_t>(1, (duration.micros() + step_us - 1) / step_us));
  const double dt = config_.step.hours();

  util::Rng rng = util::Rng::keyed(seed_, stream_);
  std::vector<double> prices;
  prices.reserve(steps);

  // Euler-Maruyama discretization of dp = kappa (mu - p) dt + sigma dW,
  // plus an additive shock term that jumps on Poisson arrivals and decays
  // exponentially (capacity-crunch spikes).
  double p = config_.mean_price;
  double shock = 0.0;
  const double shock_decay =
      config_.shock_decay_hours > 0.0
          ? std::exp(-dt / config_.shock_decay_hours)
          : 0.0;
  const double sqrt_dt = std::sqrt(dt);
  for (std::size_t i = 0; i < steps; ++i) {
    p += config_.reversion_rate * (config_.mean_price - p) * dt +
         config_.volatility * sqrt_dt * rng.normal();
    shock *= shock_decay;
    if (config_.shock_rate_per_hour > 0.0 &&
        rng.bernoulli(1.0 - std::exp(-config_.shock_rate_per_hour * dt))) {
      shock = std::max(
          shock, (config_.shock_multiplier - 1.0) * config_.mean_price);
    }
    const double value = std::clamp(p + shock, config_.floor_price,
                                    config_.on_demand_price * 2.0);
    prices.push_back(value);
  }
  return PriceTrace(config_.step, std::move(prices));
}

}  // namespace deflate::transient
