#include "transient/spot_price.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace deflate::transient {

PriceTrace::PriceTrace(sim::SimTime step, std::vector<double> prices)
    : step_(step), prices_(std::move(prices)) {
  if (step.micros() <= 0) {
    throw std::invalid_argument("PriceTrace: step must be positive");
  }
}

double PriceTrace::at(sim::SimTime t) const noexcept {
  if (prices_.empty()) return 0.0;
  const std::int64_t idx = t.micros() / step_.micros();
  if (idx < 0) return prices_.front();
  if (idx >= static_cast<std::int64_t>(prices_.size())) return prices_.back();
  return prices_[static_cast<std::size_t>(idx)];
}

double PriceTrace::integral_over(sim::SimTime from, sim::SimTime to) const {
  if (prices_.empty() || to <= from) return 0.0;
  // Sum of price * overlap for each step interval [i*step, (i+1)*step).
  double total = 0.0;
  const std::int64_t step_us = step_.micros();
  const std::int64_t lo = std::max<std::int64_t>(0, from.micros() / step_us);
  for (std::int64_t i = lo; i < static_cast<std::int64_t>(prices_.size()); ++i) {
    const sim::SimTime seg_start = sim::SimTime::from_micros(i * step_us);
    if (seg_start >= to) break;
    const sim::SimTime seg_end = sim::SimTime::from_micros((i + 1) * step_us);
    const sim::SimTime a = std::max(seg_start, from);
    const sim::SimTime b = std::min(seg_end, to);
    if (b > a) total += prices_[static_cast<std::size_t>(i)] * (b - a).hours();
  }
  // Beyond the trace end the last price holds (clamped extrapolation).
  const sim::SimTime trace_end = duration();
  if (to > trace_end && !prices_.empty()) {
    const sim::SimTime a = std::max(from, trace_end);
    total += prices_.back() * (to - a).hours();
  }
  return total;
}

double PriceTrace::mean() const noexcept {
  if (prices_.empty()) return 0.0;
  double sum = 0.0;
  for (const double p : prices_) sum += p;
  return sum / static_cast<double>(prices_.size());
}

double PriceTrace::variance() const noexcept {
  if (prices_.size() < 2) return 0.0;
  const double m = mean();
  double sum = 0.0;
  for (const double p : prices_) sum += (p - m) * (p - m);
  return sum / static_cast<double>(prices_.size());
}

double PriceTrace::max() const noexcept {
  return prices_.empty() ? 0.0 : *std::max_element(prices_.begin(), prices_.end());
}

double PriceTrace::min() const noexcept {
  return prices_.empty() ? 0.0 : *std::min_element(prices_.begin(), prices_.end());
}

double PriceTrace::fraction_above(double threshold) const noexcept {
  if (prices_.empty()) return 0.0;
  std::size_t above = 0;
  for (const double p : prices_) {
    if (p > threshold) ++above;
  }
  return static_cast<double>(above) / static_cast<double>(prices_.size());
}

sim::SimTime PriceTrace::duration() const noexcept {
  return sim::SimTime::from_micros(
      static_cast<std::int64_t>(prices_.size()) * step_.micros());
}

PriceTrace SpotPriceModel::generate(sim::SimTime duration) const {
  const std::int64_t step_us = config_.step.micros();
  if (step_us <= 0) {
    throw std::invalid_argument("SpotPriceModel: step must be positive");
  }
  const auto steps = static_cast<std::size_t>(
      std::max<std::int64_t>(1, (duration.micros() + step_us - 1) / step_us));
  const double dt = config_.step.hours();

  util::Rng rng = util::Rng::keyed(seed_, stream_);
  std::vector<double> prices;
  prices.reserve(steps);

  // Euler-Maruyama discretization of dp = kappa (mu - p) dt + sigma dW,
  // plus an additive shock term that jumps on Poisson arrivals and decays
  // exponentially (capacity-crunch spikes).
  double p = config_.mean_price;
  double shock = 0.0;
  const double shock_decay =
      config_.shock_decay_hours > 0.0
          ? std::exp(-dt / config_.shock_decay_hours)
          : 0.0;
  const double sqrt_dt = std::sqrt(dt);
  for (std::size_t i = 0; i < steps; ++i) {
    p += config_.reversion_rate * (config_.mean_price - p) * dt +
         config_.volatility * sqrt_dt * rng.normal();
    shock *= shock_decay;
    if (config_.shock_rate_per_hour > 0.0 &&
        rng.bernoulli(1.0 - std::exp(-config_.shock_rate_per_hour * dt))) {
      shock = std::max(
          shock, (config_.shock_multiplier - 1.0) * config_.mean_price);
    }
    const double value = std::clamp(p + shock, config_.floor_price,
                                    config_.on_demand_price * 2.0);
    prices.push_back(value);
  }
  return PriceTrace(config_.step, std::move(prices));
}

}  // namespace deflate::transient
