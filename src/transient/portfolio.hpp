// Portfolio-driven capacity mixing (Sharma, Irwin & Shenoy,
// "Portfolio-driven Resource Management for Transient Cloud Servers",
// arXiv:1704.08738).
//
// The insight of that work is financial: transient markets are risky
// assets (cheap, volatile, revocable) and on-demand capacity is the
// risk-free asset. A cluster operator should hold a *portfolio* of
// markets chosen by Markowitz mean-variance optimization — minimize
//
//   cost(w) = sum_i w_i * c_i  +  alpha * w^T Sigma w
//
// over the probability simplex, where c_i is the effective per-core-hour
// cost of market i (spot price plus the expected cost of its revocations)
// and Sigma couples markets through price variance and a common
// correlation factor. The risk-aversion alpha trades cost for stability,
// and an on-demand floor guarantees a minimum fraction of revocation-free
// capacity for the interactive tier.
//
// The optimizer is a deterministic projected-gradient descent — no RNG —
// so identical inputs give bit-identical weights on every platform.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "transient/revocation.hpp"
#include "transient/spot_price.hpp"

namespace deflate::transient {

/// One purchasable capacity market. Index 0 of every portfolio is
/// implicitly the on-demand market (price 1.0, zero variance, zero
/// revocations); MarketSpec describes the transient alternatives.
struct MarketSpec {
  std::string name = "spot";
  /// Expected spot price per core-hour (on-demand = 1.0).
  double expected_price = 0.25;
  /// Variance of the spot price around its mean.
  double price_variance = 0.01;
  /// Expected server revocations per hour in this market.
  double revocation_rate_per_hour = 1.0 / 24.0;

  /// Estimates a market from an observed price trace and revocation model
  /// (the "portfolio construction from market history" step of Sharma et
  /// al. §4).
  [[nodiscard]] static MarketSpec from_observations(
      std::string name, const PriceTrace& trace, const RevocationEngine& engine);
};

struct PortfolioConfig {
  /// Risk-aversion alpha: 0 = pure cost minimization, larger = flee
  /// volatile markets sooner.
  double risk_aversion = 2.0;
  /// Minimum weight of the on-demand asset (revocation-free floor for the
  /// interactive tier).
  double on_demand_floor = 0.1;
  /// Cost, in equivalent core-hours, of absorbing one revocation on one
  /// core (re-placement, deflation churn, cold caches). Converts
  /// revocation rates into the effective-cost term.
  double revocation_penalty_core_hours = 2.0;
  /// Pairwise correlation of transient markets (capacity crunches are
  /// correlated across markets of one provider).
  double market_correlation = 0.5;
  /// Projected-gradient iterations / step size.
  std::size_t iterations = 2000;
  double learning_rate = 0.05;
};

struct PortfolioResult {
  /// weights[0] = on-demand, weights[1..] = markets, sum to 1.
  std::vector<double> weights;
  /// Expected per-core-hour cost of the mix (on-demand = 1.0).
  double expected_cost = 1.0;
  /// Portfolio variance w^T Sigma w (risk term, without alpha).
  double risk = 0.0;
  /// 1 - expected_cost: fractional saving vs an all-on-demand fleet.
  double expected_saving = 0.0;

  [[nodiscard]] double on_demand_weight() const {
    return weights.empty() ? 1.0 : weights.front();
  }
  [[nodiscard]] double transient_weight() const {
    return 1.0 - on_demand_weight();
  }
};

class PortfolioManager {
 public:
  explicit PortfolioManager(PortfolioConfig config) noexcept
      : config_(config) {}

  /// Mean-variance optimal weights over {on-demand} + markets.
  /// Deterministic; throws if `markets` is empty.
  [[nodiscard]] PortfolioResult optimize(
      std::span<const MarketSpec> markets) const;

  /// Same, with an explicit K x K price correlation across the transient
  /// markets (row/column i maps to markets[i]; the on-demand asset stays
  /// risk-free). Empty = identity. The single-argument overload is this
  /// with a uniform config().market_correlation matrix.
  [[nodiscard]] PortfolioResult optimize(
      std::span<const MarketSpec> markets,
      const std::vector<std::vector<double>>& correlation) const;

  /// Maps a portfolio onto ClusterPartitions pool weights: pool 0 carries
  /// the on-demand weight, and the transient weight is split across
  /// `deflatable_pools` priority pools proportionally to `priority_mix`
  /// (uniform when empty).
  [[nodiscard]] std::vector<double> pool_weights(
      const PortfolioResult& result, std::size_t deflatable_pools,
      std::span<const double> priority_mix = {}) const;

  [[nodiscard]] const PortfolioConfig& config() const noexcept {
    return config_;
  }

 private:
  PortfolioConfig config_;
};

}  // namespace deflate::transient
