// Spot-price process for transient capacity markets.
//
// Transient servers are priced by a dynamic spot market (Sharma et al.,
// "Portfolio-driven Resource Management for Transient Cloud Servers",
// arXiv:1704.08738): prices hover far below the on-demand rate, revert
// towards a long-run mean, and occasionally spike when the provider
// reclaims surplus capacity. We model this as a discretized
// Ornstein-Uhlenbeck process with Poisson shock spikes that decay
// exponentially — the standard mean-reverting + jump model for spot
// markets. All randomness flows through util::Rng keyed by
// (seed, stream), so sweeps are bit-identical across thread counts.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "util/rng.hpp"

namespace deflate::transient {

struct SpotPriceConfig {
  /// Normalized on-demand rate (matches cluster::kOnDemandRate).
  double on_demand_price = 1.0;
  /// Long-run mean of the spot price ("60-90% discount" regime).
  double mean_price = 0.25;
  /// Mean-reversion rate kappa, per hour.
  double reversion_rate = 0.6;
  /// Diffusion volatility sigma, per sqrt(hour).
  double volatility = 0.04;
  /// Poisson rate of capacity-crunch price spikes, per hour.
  double shock_rate_per_hour = 1.0 / 24.0;
  /// Spike peak as a multiple of the long-run mean.
  double shock_multiplier = 4.0;
  /// Exponential decay time-constant of a spike, hours.
  double shock_decay_hours = 1.5;
  /// Hard floor (spot markets never trade at zero).
  double floor_price = 0.05;
  /// Sampling interval of the generated trace.
  sim::SimTime step = sim::SimTime::from_minutes(5);
};

/// Immutable step-function price trace sampled on a fixed interval.
class PriceTrace {
 public:
  PriceTrace() = default;
  PriceTrace(sim::SimTime step, std::vector<double> prices);

  /// Price at time t (clamped to the trace ends).
  [[nodiscard]] double at(sim::SimTime t) const noexcept;
  /// Integral of price over [from, to], in price * hours.
  [[nodiscard]] double integral_over(sim::SimTime from, sim::SimTime to) const;

  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double max() const noexcept;
  [[nodiscard]] double min() const noexcept;

  /// Fraction of trace time with price strictly above `threshold`.
  [[nodiscard]] double fraction_above(double threshold) const noexcept;

  [[nodiscard]] const std::vector<double>& samples() const noexcept {
    return prices_;
  }
  [[nodiscard]] sim::SimTime step() const noexcept { return step_; }
  [[nodiscard]] sim::SimTime duration() const noexcept;
  [[nodiscard]] bool empty() const noexcept { return prices_.empty(); }

 private:
  sim::SimTime step_ = sim::SimTime::from_minutes(5);
  std::vector<double> prices_;
};

/// K correlated spot markets. Each market follows its own OU + shock
/// process (one SpotPriceConfig per market, all sampled on a common step),
/// but the Gaussian innovations are coupled through a correlation matrix:
/// the Cholesky factor L turns K iid draws z into e = L z, which is the
/// "shared market factor plus per-market noise" decomposition — capacity
/// crunches at one provider leak into its other zones/instance types. An
/// optional *common* shock models provider-wide crunches that spike every
/// market simultaneously (scaled by each market's long-run mean).
struct CorrelatedPriceConfig {
  /// Per-market OU/shock parameters. All entries must share `step`.
  std::vector<SpotPriceConfig> markets;
  /// K x K symmetric PSD innovation correlation; empty = identity
  /// (independent markets). Diagonal must be 1.
  std::vector<std::vector<double>> correlation;
  /// Poisson rate of provider-wide crunches hitting all markets at once.
  /// 0 disables the extra draw, keeping K=1 bit-identical to
  /// SpotPriceModel with the same seed/stream.
  double common_shock_rate_per_hour = 0.0;
  /// Peak of a common crunch as a multiple of each market's own mean.
  double common_shock_multiplier = 4.0;
  /// Exponential decay time-constant of a common crunch, hours.
  double common_shock_decay_hours = 1.5;
};

/// Generates the K coupled traces. Deterministic in (config, seed,
/// stream); with one market, identity correlation and no common shocks the
/// trace is bit-identical to SpotPriceModel's.
class CorrelatedPriceModel {
 public:
  explicit CorrelatedPriceModel(CorrelatedPriceConfig config,
                                std::uint64_t seed = 42,
                                std::uint64_t stream = 0)
      : config_(std::move(config)), seed_(seed), stream_(stream) {}

  /// One trace per market, index-aligned with config().markets.
  [[nodiscard]] std::vector<PriceTrace> generate(sim::SimTime duration) const;

  [[nodiscard]] const CorrelatedPriceConfig& config() const noexcept {
    return config_;
  }

  /// Lower-triangular Cholesky factor of a symmetric PSD matrix, tolerant
  /// of rank deficiency (correlation 1.0 between markets is legal: the
  /// deficient column is zeroed). Throws on asymmetric or indefinite input.
  [[nodiscard]] static std::vector<std::vector<double>> cholesky(
      const std::vector<std::vector<double>>& matrix);

  /// Identity + uniform pairwise `rho` off the diagonal.
  [[nodiscard]] static std::vector<std::vector<double>> uniform_correlation(
      std::size_t k, double rho);

 private:
  CorrelatedPriceConfig config_;
  std::uint64_t seed_ = 42;
  std::uint64_t stream_ = 0;
};

/// Mean-reverting + shock spot-price generator. Deterministic in
/// (config, seed, stream); `generate` is const and reusable.
class SpotPriceModel {
 public:
  explicit SpotPriceModel(SpotPriceConfig config, std::uint64_t seed = 42,
                          std::uint64_t stream = 0) noexcept
      : config_(config), seed_(seed), stream_(stream) {}

  [[nodiscard]] PriceTrace generate(sim::SimTime duration) const;

  [[nodiscard]] const SpotPriceConfig& config() const noexcept {
    return config_;
  }

 private:
  SpotPriceConfig config_;
  std::uint64_t seed_ = 42;
  std::uint64_t stream_ = 0;
};

}  // namespace deflate::transient
