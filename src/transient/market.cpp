#include "transient/market.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

namespace deflate::transient {

TransientMarketEngine::TransientMarketEngine(MarketEngineConfig config)
    : config_(config) {}

CapacityPlan TransientMarketEngine::plan(std::size_t server_count,
                                         sim::SimTime horizon,
                                         std::size_t deflatable_pools) const {
  CapacityPlan out;
  if (server_count == 0) return out;

  const SpotPriceModel price_model(config_.price, config_.seed, /*stream=*/0);
  out.prices = price_model.generate(horizon);

  RevocationEngine revocations(config_.revocation, config_.seed);
  revocations.set_price_trace(&out.prices);

  double on_demand_share = std::clamp(config_.on_demand_share, 0.0, 1.0);
  if (config_.use_portfolio) {
    const MarketSpec market = MarketSpec::from_observations(
        "spot", out.prices, revocations);
    const PortfolioManager manager(config_.portfolio);
    out.portfolio = manager.optimize({&market, 1});
    out.pool_weights = manager.pool_weights(out.portfolio, deflatable_pools);
    on_demand_share = out.portfolio.on_demand_weight();
  } else {
    out.portfolio.weights = {on_demand_share, 1.0 - on_demand_share};
    out.portfolio.expected_cost =
        on_demand_share + (1.0 - on_demand_share) * out.prices.mean();
    out.portfolio.expected_saving = 1.0 - out.portfolio.expected_cost;
    out.pool_weights.assign(deflatable_pools + 1, 0.0);
    out.pool_weights[0] = on_demand_share;
    for (std::size_t k = 1; k <= deflatable_pools; ++k) {
      out.pool_weights[k] =
          (1.0 - on_demand_share) / static_cast<double>(deflatable_pools);
    }
  }

  // Round the on-demand share to whole servers; a nonzero share always
  // buys at least one on-demand server (the revocation-free floor).
  out.on_demand_servers = static_cast<std::size_t>(
      std::llround(on_demand_share * static_cast<double>(server_count)));
  if (on_demand_share > 0.0 && out.on_demand_servers == 0) {
    out.on_demand_servers = 1;
  }
  out.on_demand_servers = std::min(out.on_demand_servers, server_count);

  out.transient_servers.clear();
  for (std::size_t s = out.on_demand_servers; s < server_count; ++s) {
    out.transient_servers.push_back(s);
  }
  out.revocations = revocations.schedule(out.transient_servers, horizon);
  return out;
}

CostReport TransientMarketEngine::cost_report(const CapacityPlan& plan,
                                              double cores_per_server,
                                              sim::SimTime horizon) const {
  CostReport report;
  const double hours = horizon.hours();
  if (hours <= 0.0 || cores_per_server <= 0.0) return report;
  const double on_demand_rate = config_.price.on_demand_price;
  const std::size_t fleet =
      plan.on_demand_servers + plan.transient_servers.size();

  report.on_demand_core_hours =
      static_cast<double>(plan.on_demand_servers) * cores_per_server * hours;
  report.on_demand_cost = report.on_demand_core_hours * on_demand_rate;
  report.all_on_demand_cost =
      static_cast<double>(fleet) * cores_per_server * hours * on_demand_rate;

  // Bill each transient server's *held* intervals at the spot price: one
  // pass over the sorted merged schedule, tracking per-server held state.
  // Servers start held at t=0 (any bid-under-water start revokes at t=0).
  struct HeldState {
    sim::SimTime from;
    bool held = true;
  };
  std::unordered_map<std::size_t, HeldState> states;
  states.reserve(plan.transient_servers.size());
  for (const std::size_t server : plan.transient_servers) states[server] = {};

  const auto bill = [&](HeldState& state, sim::SimTime until) {
    report.transient_cost +=
        plan.prices.integral_over(state.from, until) * cores_per_server;
    report.transient_core_hours +=
        (until - state.from).hours() * cores_per_server;
  };
  for (const RevocationEvent& event : plan.revocations) {
    const auto it = states.find(event.server);
    if (it == states.end()) continue;
    HeldState& state = it->second;
    if (event.revoke && state.held) {
      bill(state, event.at);
      state.held = false;
    } else if (!event.revoke && !state.held) {
      state.from = event.at;
      state.held = true;
    }
  }
  // Iterate in server order (not map order) so the floating-point
  // summation order — and thus the report — is bit-stable.
  for (const std::size_t server : plan.transient_servers) {
    HeldState& state = states[server];
    if (state.held) bill(state, horizon);
  }
  return report;
}

}  // namespace deflate::transient
