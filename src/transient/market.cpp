#include "transient/market.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

namespace deflate::transient {

namespace {

/// Seed of market m's revocation engine. Market 0 keeps the plan seed so a
/// one-market plan is bit-identical to the legacy single-market engine.
std::uint64_t market_seed(std::uint64_t seed, std::size_t market) {
  return seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(market);
}

/// Splits `total` servers across markets proportionally to `weights` by
/// largest-remainder rounding (ties to the lower index). A non-positive
/// total weight puts everything in market 0.
std::vector<std::size_t> split_counts(std::size_t total,
                                      const std::vector<double>& weights) {
  const std::size_t k = weights.size();
  std::vector<std::size_t> counts(k, 0);
  if (k == 0 || total == 0) return counts;
  double sum = 0.0;
  for (const double w : weights) sum += std::max(0.0, w);
  if (sum <= 0.0) {
    counts[0] = total;
    return counts;
  }
  std::vector<double> remainder(k, 0.0);
  std::size_t assigned = 0;
  for (std::size_t m = 0; m < k; ++m) {
    const double exact =
        std::max(0.0, weights[m]) / sum * static_cast<double>(total);
    counts[m] = static_cast<std::size_t>(std::floor(exact));
    remainder[m] = exact - std::floor(exact);
    assigned += counts[m];
  }
  std::vector<std::size_t> order(k);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (remainder[a] != remainder[b]) return remainder[a] > remainder[b];
    return a < b;
  });
  for (std::size_t i = 0; assigned < total; ++i) {
    ++counts[order[i % k]];
    ++assigned;
  }
  return counts;
}

/// The on-demand pool and the all-on-demand counterfactual are billed at
/// one rate, so heterogeneous per-market on-demand prices have no
/// well-defined cost report — reject them up front.
void validate_markets(const std::vector<MarketDef>& defs) {
  for (const MarketDef& def : defs) {
    if (def.price.on_demand_price != defs.front().price.on_demand_price) {
      throw std::invalid_argument(
          "TransientMarketEngine: markets must share one on-demand rate");
    }
  }
}

/// Sample correlation of the realized price traces. The optimizer prices
/// the co-movement that actually materialized — the configured generator
/// coupling *and* the common shocks — mirroring how MarketSpec estimates
/// mean/variance from the trace ("portfolio construction from market
/// history", Sharma et al. §4).
std::vector<std::vector<double>> empirical_correlation(
    const std::vector<MarketPlan>& markets) {
  const std::size_t k = markets.size();
  std::vector<std::vector<double>> corr(k, std::vector<double>(k, 0.0));
  std::size_t n = markets.empty() ? 0 : markets[0].prices.samples().size();
  for (const MarketPlan& market : markets) {
    n = std::min(n, market.prices.samples().size());
  }
  std::vector<double> mean(k, 0.0), stddev(k, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    corr[i][i] = 1.0;
    if (n == 0) continue;
    for (std::size_t t = 0; t < n; ++t) {
      mean[i] += markets[i].prices.samples()[t];
    }
    mean[i] /= static_cast<double>(n);
    double var = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      const double d = markets[i].prices.samples()[t] - mean[i];
      var += d * d;
    }
    stddev[i] = std::sqrt(var / static_cast<double>(n));
  }
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      if (stddev[i] <= 0.0 || stddev[j] <= 0.0) continue;
      double cov = 0.0;
      for (std::size_t t = 0; t < n; ++t) {
        cov += (markets[i].prices.samples()[t] - mean[i]) *
               (markets[j].prices.samples()[t] - mean[j]);
      }
      cov /= static_cast<double>(n);
      const double rho =
          std::clamp(cov / (stddev[i] * stddev[j]), -1.0, 1.0);
      corr[i][j] = rho;
      corr[j][i] = rho;
    }
  }
  return corr;
}

}  // namespace

TransientMarketEngine::TransientMarketEngine(MarketEngineConfig config)
    : config_(std::move(config)) {}

void TransientMarketEngine::schedule_markets(CapacityPlan& plan,
                                             sim::SimTime horizon) const {
  std::vector<MarketDef> defs = config_.effective_markets();
  const std::size_t market_count = plan.markets.size();
  if (defs.size() != market_count) {
    throw std::invalid_argument(
        "TransientMarketEngine: plan was made for a different market list");
  }
  // A plan carrying optimized bids reschedules with them (rebinding a
  // realized fleet split must not silently fall back to the static bids).
  for (std::size_t m = 0;
       m < plan.optimized_bids.size() && m < market_count; ++m) {
    defs[m].revocation.bid = plan.optimized_bids[m];
  }

  std::vector<double> weights(market_count, 0.0);
  for (std::size_t m = 0; m < market_count; ++m) {
    weights[m] = plan.markets[m].weight;
  }
  const std::vector<std::size_t> counts =
      split_counts(plan.transient_servers.size(), weights);

  std::size_t next = 0;
  std::size_t total_events = 0;
  for (std::size_t m = 0; m < market_count; ++m) {
    MarketPlan& market = plan.markets[m];
    market.servers.assign(
        plan.transient_servers.begin() + static_cast<std::ptrdiff_t>(next),
        plan.transient_servers.begin() +
            static_cast<std::ptrdiff_t>(next + counts[m]));
    next += counts[m];
    RevocationEngine engine(defs[m].revocation,
                            market_seed(config_.seed, m));
    engine.set_price_trace(&market.prices);
    market.revocations = engine.schedule(market.servers, horizon);
    total_events += market.revocations.size();
  }

  plan.revocations.clear();
  plan.revocations.reserve(total_events);
  for (const MarketPlan& market : plan.markets) {
    plan.revocations.insert(plan.revocations.end(), market.revocations.begin(),
                            market.revocations.end());
  }
  std::sort(plan.revocations.begin(), plan.revocations.end(), schedule_before);
}

CapacityPlan TransientMarketEngine::plan(std::size_t server_count,
                                         sim::SimTime horizon,
                                         std::size_t deflatable_pools) const {
  CapacityPlan out;
  if (server_count == 0) return out;

  std::vector<MarketDef> defs = config_.effective_markets();
  validate_markets(defs);
  const std::size_t market_count = defs.size();

  // K coupled price traces; K = 1 with identity correlation and no common
  // shocks degenerates to the legacy OU + shock process, bit for bit.
  CorrelatedPriceConfig price_config;
  price_config.markets.reserve(market_count);
  for (const MarketDef& def : defs) price_config.markets.push_back(def.price);
  price_config.correlation = config_.correlation;
  price_config.common_shock_rate_per_hour = config_.common_shock_rate_per_hour;
  price_config.common_shock_multiplier = config_.common_shock_multiplier;
  price_config.common_shock_decay_hours = config_.common_shock_decay_hours;
  std::vector<PriceTrace> traces =
      CorrelatedPriceModel(std::move(price_config), config_.seed, /*stream=*/0)
          .generate(horizon);

  out.markets.resize(market_count);
  for (std::size_t m = 0; m < market_count; ++m) {
    out.markets[m].name = defs[m].name;
    out.markets[m].prices = std::move(traces[m]);
  }
  out.prices = out.markets[0].prices;

  // Per-class bid optimization: replace each market's hand-set bid with
  // the mean of that market's per-class optima *before* the estimates
  // below, so the portfolio prices the markets it will actually ride.
  if (config_.optimize_bids) {
    BidOptimizerConfig bidding = config_.bidding;
    bidding.on_demand_price = defs.front().price.on_demand_price;
    const BidOptimizer optimizer(bidding);
    out.optimized_bids.resize(market_count, 0.0);
    for (std::size_t m = 0; m < market_count; ++m) {
      out.markets[m].class_bids = optimizer.optimize_classes(
          out.markets[m].prices, defs[m].revocation);
      double bid_sum = 0.0;
      std::size_t deflatable_classes = 0;
      for (const ClassBid& bid : out.markets[m].class_bids) {
        if (bid.priority_class == 0) continue;  // on-demand never bids
        bid_sum += bid.bid;
        ++deflatable_classes;
      }
      out.optimized_bids[m] =
          deflatable_classes > 0
              ? bid_sum / static_cast<double>(deflatable_classes)
              : defs[m].revocation.bid;
      defs[m].revocation.bid = out.optimized_bids[m];
    }
  }

  // Per-market estimates for the optimizer, from each market's own trace
  // and revocation model.
  std::vector<MarketSpec> specs(market_count);
  for (std::size_t m = 0; m < market_count; ++m) {
    RevocationEngine engine(defs[m].revocation, market_seed(config_.seed, m));
    engine.set_price_trace(&out.markets[m].prices);
    specs[m] = MarketSpec::from_observations(defs[m].name,
                                             out.markets[m].prices, engine);
    out.markets[m].spec = specs[m];
  }

  double on_demand_share = std::clamp(config_.on_demand_share, 0.0, 1.0);
  if (config_.use_portfolio) {
    const PortfolioManager manager(config_.portfolio);
    // Multi-market mode couples price risk with the correlation the
    // traces actually realized (configured coupling + common shocks); the
    // legacy single market keeps the scalar market_correlation path.
    if (!config_.markets.empty()) {
      out.planned_correlation = empirical_correlation(out.markets);
    }
    out.portfolio = config_.markets.empty()
                        ? manager.optimize(specs)
                        : manager.optimize(specs, out.planned_correlation);
    out.pool_weights = manager.pool_weights(out.portfolio, deflatable_pools);
    on_demand_share = out.portfolio.on_demand_weight();
  } else {
    out.portfolio.weights.assign(market_count + 1, 0.0);
    out.portfolio.weights[0] = on_demand_share;
    out.portfolio.expected_cost = on_demand_share;
    const double per_market =
        (1.0 - on_demand_share) / static_cast<double>(market_count);
    for (std::size_t m = 0; m < market_count; ++m) {
      out.portfolio.weights[m + 1] = per_market;
      out.portfolio.expected_cost += per_market * out.markets[m].prices.mean();
    }
    out.portfolio.expected_saving = 1.0 - out.portfolio.expected_cost;
    out.pool_weights.assign(deflatable_pools + 1, 0.0);
    out.pool_weights[0] = on_demand_share;
    for (std::size_t k = 1; k <= deflatable_pools; ++k) {
      out.pool_weights[k] =
          (1.0 - on_demand_share) / static_cast<double>(deflatable_pools);
    }
  }
  for (std::size_t m = 0; m < market_count; ++m) {
    out.markets[m].weight = out.portfolio.weights[m + 1];
  }

  // Admission ceilings: the per-class optimal bids averaged over the
  // markets by portfolio weight (uniform when the transient weight is
  // zero) — the price above which launching class c transiently is worse
  // than waiting.
  if (config_.optimize_bids && market_count > 0) {
    const std::size_t classes = out.markets[0].class_bids.size();
    out.class_ceilings.assign(classes, 0.0);
    double weight_sum = 0.0;
    for (const MarketPlan& market : out.markets) {
      weight_sum += std::max(0.0, market.weight);
    }
    for (std::size_t c = 0; c < classes; ++c) {
      double ceiling = 0.0;
      for (const MarketPlan& market : out.markets) {
        const double w = weight_sum > 0.0
                             ? std::max(0.0, market.weight) / weight_sum
                             : 1.0 / static_cast<double>(market_count);
        ceiling += w * market.class_bids[c].bid;
      }
      out.class_ceilings[c] = ceiling;
    }
  }

  // Round the on-demand share to whole servers; a nonzero share always
  // buys at least one on-demand server (the revocation-free floor).
  out.on_demand_servers = static_cast<std::size_t>(
      std::llround(on_demand_share * static_cast<double>(server_count)));
  if (on_demand_share > 0.0 && out.on_demand_servers == 0) {
    out.on_demand_servers = 1;
  }
  out.on_demand_servers = std::min(out.on_demand_servers, server_count);

  out.transient_servers.clear();
  for (std::size_t s = out.on_demand_servers; s < server_count; ++s) {
    out.transient_servers.push_back(s);
  }
  schedule_markets(out, horizon);
  return out;
}

void TransientMarketEngine::rebind_transient_servers(
    CapacityPlan& plan, std::size_t on_demand_count,
    std::vector<std::size_t> transient_servers, sim::SimTime horizon) const {
  if (plan.markets.empty()) return;  // empty plan (server_count == 0)
  std::sort(transient_servers.begin(), transient_servers.end());
  plan.on_demand_servers = on_demand_count;
  plan.transient_servers = std::move(transient_servers);
  schedule_markets(plan, horizon);
}

CostReport TransientMarketEngine::cost_report(const CapacityPlan& plan,
                                              double cores_per_server,
                                              sim::SimTime horizon) const {
  CostReport report;
  const double hours = horizon.hours();
  if (hours <= 0.0 || cores_per_server <= 0.0) return report;
  const std::vector<MarketDef> defs = config_.effective_markets();
  validate_markets(defs);
  const double on_demand_rate = defs.front().price.on_demand_price;
  const std::size_t fleet =
      plan.on_demand_servers + plan.transient_servers.size();

  report.on_demand_core_hours =
      static_cast<double>(plan.on_demand_servers) * cores_per_server * hours;
  report.on_demand_cost = report.on_demand_core_hours * on_demand_rate;
  report.all_on_demand_cost =
      static_cast<double>(fleet) * cores_per_server * hours * on_demand_rate;

  // Bill each market's servers' *held* intervals at that market's spot
  // price: one pass over its sorted schedule, tracking per-server held
  // state. Servers start held at t=0 (a bid-under-water start revokes at
  // t=0).
  report.per_market.reserve(plan.markets.size());
  for (const MarketPlan& market : plan.markets) {
    CostReport::MarketCost entry;
    entry.name = market.name;
    entry.servers = market.servers.size();

    struct HeldState {
      sim::SimTime from;
      bool held = true;
    };
    std::unordered_map<std::size_t, HeldState> states;
    states.reserve(market.servers.size());
    for (const std::size_t server : market.servers) states[server] = {};

    const auto bill = [&](HeldState& state, sim::SimTime until) {
      entry.cost +=
          market.prices.integral_over(state.from, until) * cores_per_server;
      entry.core_hours += (until - state.from).hours() * cores_per_server;
    };
    for (const RevocationEvent& event : market.revocations) {
      const auto it = states.find(event.server);
      if (it == states.end()) continue;
      HeldState& state = it->second;
      if (event.revoke && state.held) {
        bill(state, event.at);
        state.held = false;
      } else if (!event.revoke && !state.held) {
        state.from = event.at;
        state.held = true;
      }
    }
    // Iterate in server order (not map order) so the floating-point
    // summation order — and thus the report — is bit-stable.
    for (const std::size_t server : market.servers) {
      HeldState& state = states[server];
      if (state.held) bill(state, horizon);
    }
    report.transient_cost += entry.cost;
    report.transient_core_hours += entry.core_hours;
    report.per_market.push_back(std::move(entry));
  }
  return report;
}

}  // namespace deflate::transient
