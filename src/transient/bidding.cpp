#include "transient/bidding.hpp"

#include <algorithm>
#include <cmath>

namespace deflate::transient {

namespace {

/// Upward bid-crossings per hour of the trace: the PriceCrossing
/// revocation rate at this bid (RevocationEngine::expected_rate_per_hour
/// computes the same quantity; duplicated here so the optimizer can sweep
/// candidate bids without re-seating engines).
double crossings_per_hour(const PriceTrace& trace, double bid) {
  const auto& samples = trace.samples();
  std::size_t crossings = 0;
  for (std::size_t i = 1; i < samples.size(); ++i) {
    if (samples[i - 1] <= bid && samples[i] > bid) ++crossings;
  }
  const double hours = trace.duration().hours();
  return hours > 0.0 ? static_cast<double>(crossings) / hours : 0.0;
}

}  // namespace

double BidOptimizer::penalty_for(std::size_t priority_class) const noexcept {
  const auto& table = config_.class_penalty_hours;
  if (table.empty()) return 0.0;
  return table[std::min(priority_class, table.size() - 1)];
}

double BidOptimizer::revocation_rate(const PriceTrace& trace, double bid,
                                     const RevocationConfig& revocation) {
  switch (revocation.model) {
    case RevocationModel::None:
      return 0.0;
    case RevocationModel::PriceCrossing:
      return crossings_per_hour(trace, bid);
    default: {
      // Bid-independent models: one engine evaluation covers every bid.
      RevocationEngine engine(revocation);
      engine.set_price_trace(&trace);
      return engine.expected_rate_per_hour();
    }
  }
}

double BidOptimizer::cost_at_rate(const PriceTrace& trace, double bid,
                                  double penalty_hours, double rate) const {
  const auto& samples = trace.samples();
  if (samples.empty()) return config_.on_demand_price;

  std::size_t held = 0;
  double held_price_sum = 0.0;
  for (const double price : samples) {
    if (price <= bid) {
      ++held;
      held_price_sum += price;
    }
  }
  const double availability =
      static_cast<double>(held) / static_cast<double>(samples.size());
  const double spot_payment = held_price_sum / static_cast<double>(samples.size());
  return spot_payment +
         (1.0 - availability) * config_.on_demand_price *
             std::clamp(config_.fallback_discount, 0.0, 1.0) +
         penalty_hours * rate;
}

double BidOptimizer::expected_cost(const PriceTrace& trace, double bid,
                                   double penalty_hours,
                                   const RevocationConfig& revocation) const {
  return cost_at_rate(trace, bid, penalty_hours,
                      revocation_rate(trace, bid, revocation));
}

ClassBid BidOptimizer::optimize(const PriceTrace& trace,
                                std::size_t priority_class,
                                const RevocationConfig& revocation) const {
  ClassBid best;
  best.priority_class = priority_class;
  best.bid = config_.on_demand_price;
  if (trace.empty()) {
    best.expected_cost = config_.on_demand_price;
    return best;
  }

  // Distinct price levels + the on-demand price: the objective is a step
  // function of the bid that only changes at these points, so this sweep
  // is an exact minimization. Bidding above the on-demand rate is never
  // rational (buy on-demand instead), so spike samples above it are not
  // candidates.
  std::vector<double> candidates;
  candidates.reserve(trace.samples().size() + 1);
  for (const double price : trace.samples()) {
    if (price <= config_.on_demand_price) candidates.push_back(price);
  }
  candidates.push_back(config_.on_demand_price);
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  const double penalty = penalty_for(priority_class);
  const bool price_crossing =
      revocation.model == RevocationModel::PriceCrossing;
  // Bid-independent models contribute one constant rate to every
  // candidate; only price-crossing re-counts crossings per bid.
  const double fixed_rate =
      price_crossing ? 0.0
                     : revocation_rate(trace, candidates.front(), revocation);
  const auto rate_at = [&](double bid) {
    return price_crossing ? crossings_per_hour(trace, bid) : fixed_rate;
  };
  best.bid = candidates.front();
  best.expected_cost =
      cost_at_rate(trace, best.bid, penalty, rate_at(best.bid));
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    const double cost =
        cost_at_rate(trace, candidates[i], penalty, rate_at(candidates[i]));
    if (cost < best.expected_cost) {  // strict: ties keep the lowest bid
      best.expected_cost = cost;
      best.bid = candidates[i];
    }
  }
  best.availability = 1.0 - trace.fraction_above(best.bid);
  best.revocation_rate_per_hour = rate_at(best.bid);
  return best;
}

std::vector<ClassBid> BidOptimizer::optimize_classes(
    const PriceTrace& trace, const RevocationConfig& revocation) const {
  std::vector<ClassBid> bids;
  const std::size_t classes = std::max<std::size_t>(
      config_.class_penalty_hours.size(), 1);
  bids.reserve(classes);
  for (std::size_t c = 0; c < classes; ++c) {
    if (c == 0) {
      // The on-demand class never bids; publish the sticker rate so
      // index-aligned consumers see a well-defined entry.
      ClassBid od;
      od.priority_class = 0;
      od.bid = config_.on_demand_price;
      od.expected_cost = config_.on_demand_price;
      bids.push_back(od);
      continue;
    }
    bids.push_back(optimize(trace, c, revocation));
  }
  return bids;
}

}  // namespace deflate::transient
