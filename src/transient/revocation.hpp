// Server-level revocation engine for transient capacity.
//
// The paper's premise is that servers are *transient*: the provider may
// reclaim them at unilateral notice, and deflation is the graceful answer
// to that reclamation. This engine generates the revocation events. Three
// preemption models are implemented:
//
//   * Poisson — the classic memoryless model: per-server time-to-revocation
//     is exponential with a configurable MTBR (EC2-spot-style analyses
//     commonly assume this).
//   * TemporallyConstrained — Kadupitiya, Jadhao & Sharma, "Modeling The
//     Temporally Constrained Preemptions of Transient Cloud VMs"
//     (arXiv:1911.05160): Google-preemptible-style instances have a hard
//     24 h maximum lifetime, and the preemption hazard is bathtub-shaped —
//     elevated infant mortality in the first hours, a quiet middle, and a
//     steep rise near the lifetime cap where every surviving instance is
//     reclaimed.
//   * PriceCrossing — spot-market semantics: capacity is held while the
//     spot price stays at or below the bid and revoked market-wide when the
//     price crosses above it (Sharma et al., arXiv:1704.08738 §2).
//
// Schedules are keyed per (seed, server id) through util::Rng streams, so
// the schedule of any server is independent of how many other servers
// exist and of the thread count used to generate them.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "policy/registry.hpp"
#include "sim/time.hpp"
#include "transient/spot_price.hpp"

namespace deflate::transient {

/// Thin alias over the revocation policy registry (every value maps to a
/// registered builtin model).
enum class RevocationModel { None, Poisson, TemporallyConstrained, PriceCrossing };

[[nodiscard]] const char* revocation_model_name(RevocationModel m) noexcept;

struct RevocationConfig {
  RevocationModel model = RevocationModel::None;
  /// Registry name of the model (PolicySet path). Empty = resolve the
  /// builtin aliased by `model`. Unknown names throw std::invalid_argument
  /// when the engine is built.
  std::string model_name;

  // --- Poisson ---
  /// Mean time between revocations is 1/rate (default: one per 24 h).
  double poisson_rate_per_hour = 1.0 / 24.0;

  // --- TemporallyConstrained (Kadupitiya et al.) ---
  /// Hard lifetime cap T (24 h for Google preemptible VMs).
  double max_lifetime_hours = 24.0;
  /// Fraction of instances hit by the early (infant-mortality) component.
  double early_fraction = 0.2;
  /// Time constant of the early exponential component, hours.
  double early_tau_hours = 2.0;
  /// Polynomial exponent of the late component; larger = more mass
  /// concentrated at the lifetime cap.
  double late_shape = 8.0;

  // --- PriceCrossing ---
  /// Bid per core-hour; capacity is lost while spot price > bid.
  double bid = 0.5;

  /// Time for the provider to hand back equivalent capacity after a
  /// revocation (re-acquisition delay). Applies to all models.
  double recovery_hours = 0.25;

  /// Advance warning the provider gives before taking a server (EC2 gives
  /// 2 min, GCE 30 s): each revocation is announced warning_hours before
  /// it lands, which is the window the timed migration engine
  /// (src/cluster/migration.hpp) has to stream VMs off the server.
  /// 0 = no warning. Applies to all models; ignored by the legacy instant
  /// migration path (migration bandwidth 0).
  double warning_hours = 0.0;
};

/// One revocation (or restoration) of one server.
struct RevocationEvent {
  sim::SimTime at;
  std::size_t server = 0;
  bool revoke = true;  ///< false: capacity restored (re-acquired)

  [[nodiscard]] bool operator==(const RevocationEvent&) const = default;
};

/// Canonical merged-schedule ordering: (time, revoke-before-restore,
/// server id). Every sorted schedule in the library uses this ordering.
[[nodiscard]] inline bool schedule_before(const RevocationEvent& a,
                                          const RevocationEvent& b) noexcept {
  if (a.at != b.at) return a.at < b.at;
  if (a.revoke != b.revoke) return a.revoke;
  return a.server < b.server;
}

/// Strategy object behind RevocationModel: generates one server's
/// revoke/restore schedule as a pure function of (config, seed, server).
/// Models are stateless and shared; per-call randomness is derived inside
/// schedule_for from the (seed, server)-keyed stream.
class RevocationModelPolicy {
 public:
  virtual ~RevocationModelPolicy() = default;

  /// Sorted schedule over [0, horizon) for one server. `prices` is the
  /// market's step trace (may be null; the price-crossing model throws
  /// std::logic_error without it).
  [[nodiscard]] virtual std::vector<RevocationEvent> schedule_for(
      const RevocationConfig& config, std::uint64_t seed, std::size_t server,
      sim::SimTime horizon, const PriceTrace* prices) const = 0;

  /// Expected revocations per server-hour (portfolio risk estimate).
  [[nodiscard]] virtual double expected_rate_per_hour(
      const RevocationConfig& config,
      const PriceTrace* prices) const noexcept = 0;
};

/// Intermediate base for acquire/revoke renewal models (Poisson,
/// temporally-constrained): owns the renewal loop — keyed rng stream,
/// recovery clamp, horizon cutoffs — so subclasses only sample lifetimes.
/// Draw order is part of the loop, which is what keeps the golden
/// revocation schedules bit-identical across the refactor.
class RenewalRevocationModel : public RevocationModelPolicy {
 public:
  [[nodiscard]] std::vector<RevocationEvent> schedule_for(
      const RevocationConfig& config, std::uint64_t seed, std::size_t server,
      sim::SimTime horizon, const PriceTrace* prices) const final;

 protected:
  /// Samples the next lifetime (hours from acquisition to revocation)
  /// from the renewal stream.
  [[nodiscard]] virtual double sample_lifetime_hours(
      const RevocationConfig& config, util::Rng& rng) const = 0;
};

/// Registry surface for revocation models.
struct RevocationSurface {
  static constexpr const char* kSurfaceName = "revocation";
  static constexpr const char* kSurfaceDescription =
      "how the transient market revokes (and restores) servers";
  using Factory =
      std::function<std::shared_ptr<const RevocationModelPolicy>()>;
  static void register_builtins(policy::PolicyRegistry<RevocationSurface>&);
};

using RevocationRegistry = policy::PolicyRegistry<RevocationSurface>;

/// Resolves a registered model by name (aliases accepted); throws
/// std::invalid_argument naming the valid choices when unknown.
[[nodiscard]] std::shared_ptr<const RevocationModelPolicy>
make_revocation_model(const std::string& name);

/// Reverse mapping for the legacy-enum config surfaces (nullopt for
/// plugin-registered names that have no enum alias).
[[nodiscard]] std::optional<RevocationModel> revocation_model_from_name(
    const std::string& name) noexcept;

class RevocationEngine {
 public:
  /// Resolves the model through the registry (`config.model_name`, falling
  /// back to the builtin aliased by `config.model`); throws
  /// std::invalid_argument on unknown names.
  explicit RevocationEngine(RevocationConfig config, std::uint64_t seed = 42);

  /// Revoke/restore schedule for one server over [0, horizon), sorted by
  /// time. A pure function of (config, seed, server) — bit-identical
  /// regardless of call order or thread count. PriceCrossing requires a
  /// price trace (set_price_trace) and is market-wide, i.e. identical for
  /// every server.
  [[nodiscard]] std::vector<RevocationEvent> schedule_for(
      std::size_t server, sim::SimTime horizon) const;

  /// Merged schedule for a set of transient servers, sorted by
  /// (time, revoke-before-restore, server id).
  [[nodiscard]] std::vector<RevocationEvent> schedule(
      std::span<const std::size_t> transient_servers,
      sim::SimTime horizon) const;

  /// The PriceCrossing model derives its schedule from this trace. The
  /// trace must outlive the engine.
  void set_price_trace(const PriceTrace* trace) noexcept { prices_ = trace; }

  /// Expected revocations per server-hour under the configured model
  /// (used by the portfolio manager's risk estimate).
  [[nodiscard]] double expected_rate_per_hour() const noexcept;

  [[nodiscard]] const RevocationConfig& config() const noexcept {
    return config_;
  }

 private:
  RevocationConfig config_;
  std::uint64_t seed_ = 42;
  const PriceTrace* prices_ = nullptr;
  /// Registry-resolved model implementation.
  std::shared_ptr<const RevocationModelPolicy> model_;
};

}  // namespace deflate::transient
