// TransientMarketEngine: the facade that turns a plain cluster into a
// transient one. It owns the spot-price processes (one per market, coupled
// by a correlation matrix), one revocation engine per market and the
// portfolio manager, and produces a CapacityPlan — which servers are
// bought on-demand vs. on which transient market, the partition pool
// weights implied by the portfolio, the per-market revocation schedules,
// and the per-market cost accounting against an all-on-demand baseline.
//
// One market with identity correlation is the legacy single-market engine,
// decision-for-decision (tests/test_transient_multimarket.cpp pins this).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "transient/bidding.hpp"
#include "transient/portfolio.hpp"
#include "transient/revocation.hpp"
#include "transient/spot_price.hpp"

namespace deflate::transient {

/// One purchasable transient market (a zone / instance type): its own
/// spot-price process and its own revocation model + bid.
struct MarketDef {
  std::string name = "spot";
  SpotPriceConfig price;
  RevocationConfig revocation;
};

struct MarketEngineConfig {
  /// Legacy single-market parameters, used when `markets` is empty.
  SpotPriceConfig price;
  RevocationConfig revocation;
  PortfolioConfig portfolio;
  /// Multi-market mode: when non-empty these markets replace the legacy
  /// price/revocation pair above. One entry reproduces the legacy plan
  /// decision-for-decision (same seed, same trace, same schedule).
  std::vector<MarketDef> markets;
  /// K x K innovation correlation across `markets` (shared market factor
  /// plus per-market noise, via Cholesky). This couples the *generated*
  /// traces; the portfolio optimizer prices the correlation the traces
  /// actually realize — which folds in the common shocks below — in place
  /// of the scalar portfolio.market_correlation of single-market mode.
  /// Empty = identity.
  std::vector<std::vector<double>> correlation;
  /// Provider-wide capacity crunches that spike every market at once
  /// (see CorrelatedPriceConfig); 0 disables.
  double common_shock_rate_per_hour = 0.0;
  double common_shock_multiplier = 4.0;
  double common_shock_decay_hours = 1.5;
  /// Per-class bid optimization (transient/bidding.hpp): replace each
  /// market's hand-set `RevocationConfig::bid` with the optimizer's fleet
  /// bid (the mean of the per-class optima) and publish per-class
  /// admission price ceilings in the plan (`CapacityPlan::class_ceilings`,
  /// consumed by the BidOptimized admission policy in
  /// src/cluster/admission.hpp). Off by default: the legacy static bids
  /// stay bit-identical.
  bool optimize_bids = false;
  BidOptimizerConfig bidding;
  /// When true the on-demand/transient split comes from mean-variance
  /// optimization; when false, from `on_demand_share` directly.
  bool use_portfolio = true;
  /// Fixed on-demand share when the portfolio optimizer is disabled.
  double on_demand_share = 0.0;
  std::uint64_t seed = 42;

  /// The markets actually planned over: `markets`, or the legacy pair
  /// wrapped as a single "spot" market.
  [[nodiscard]] std::vector<MarketDef> effective_markets() const {
    if (!markets.empty()) return markets;
    return {MarketDef{"spot", price, revocation}};
  }

  /// Fills `markets` with `count` copies of the legacy price/revocation
  /// pair (named "<name_prefix>-0" …) coupled by a uniform pairwise
  /// `rho` — the "one market, K zones" setup the CLI, examples and
  /// benches share.
  void replicate_markets(std::size_t count, double rho,
                         const std::string& name_prefix = "spot") {
    markets.clear();
    MarketDef def{name_prefix, price, revocation};
    for (std::size_t m = 0; m < count; ++m) {
      def.name = name_prefix + "-" + std::to_string(m);
      markets.push_back(def);
    }
    correlation = CorrelatedPriceModel::uniform_correlation(count, rho);
  }

  [[nodiscard]] bool enabled() const noexcept {
    if (use_portfolio) return true;
    // A registry name takes precedence over the legacy enum (matching
    // RevocationEngine's resolution), so a plugin-registered model with
    // the enum left at None still counts as revocations-on.
    const auto active = [](const RevocationConfig& rc) noexcept {
      if (!rc.model_name.empty()) return rc.model_name != "none";
      return rc.model != RevocationModel::None;
    };
    if (markets.empty()) return active(revocation);
    for (const MarketDef& market : markets) {
      if (active(market.revocation)) return true;
    }
    return false;
  }
};

/// One market's slice of a CapacityPlan.
struct MarketPlan {
  std::string name = "spot";
  /// Portfolio weight of this market (fraction of the whole fleet).
  double weight = 0.0;
  /// Global ids of the servers riding this market, ascending.
  std::vector<std::size_t> servers;
  /// This market's spot prices over the horizon.
  PriceTrace prices;
  /// Revoke/restore schedule for this market's servers only.
  std::vector<RevocationEvent> revocations;
  /// The estimates this market contributed to the optimizer.
  MarketSpec spec;
  /// Per-class optimal bids for this market (index = priority class;
  /// entry 0 is the on-demand class). Empty unless
  /// `MarketEngineConfig::optimize_bids`.
  std::vector<ClassBid> class_bids;
};

/// The engine's decision for one cluster + horizon.
struct CapacityPlan {
  /// Servers [0, on_demand_servers) are bought on-demand and are never
  /// revoked; the rest ride the transient markets.
  std::size_t on_demand_servers = 0;
  /// Union of every market's servers, ascending.
  std::vector<std::size_t> transient_servers;
  /// Portfolio solution (weights[0] = on-demand, weights[m+1] =
  /// markets[m]); present even with use_portfolio = false (degenerate
  /// fixed-share weights) for reporting.
  PortfolioResult portfolio;
  /// ClusterPartitions-compatible pool weights (pool 0 = on-demand).
  std::vector<double> pool_weights;
  /// Market 0's spot prices (the legacy single-market view).
  PriceTrace prices;
  /// Merged revoke/restore schedule across every market.
  std::vector<RevocationEvent> revocations;
  /// Per-market slices; size >= 1 whenever the plan is non-empty.
  std::vector<MarketPlan> markets;
  /// Bids actually used for the revocation schedules when the bid
  /// optimizer ran, index-aligned with `markets` (each market's mean over
  /// its per-class optima). Empty = the hand-set `MarketDef` bids.
  std::vector<double> optimized_bids;
  /// Per-priority-class admission price ceilings (portfolio-weight-averaged
  /// per-class optimal bids across the markets; index 0 = on-demand,
  /// unused). Empty unless `MarketEngineConfig::optimize_bids` — the
  /// BidOptimized admission policy defers a class while the spot quote
  /// exceeds its entry.
  std::vector<double> class_ceilings;
  /// The correlation matrix the portfolio actually optimized against
  /// (the realized empirical correlation in multi-market mode). Empty in
  /// legacy single-market mode, which uses the scalar
  /// `PortfolioConfig::market_correlation` path. The online control
  /// plane (src/control) seeds its CorrelationEstimator from this so a
  /// `static` forecast reproduces the planned weights bit-exactly.
  std::vector<std::vector<double>> planned_correlation;
};

/// Cost of running the planned fleet over the horizon, against the
/// all-on-demand counterfactual. Prices are per core-hour; servers are
/// billed on their core count while held (a revoked server is not billed).
struct CostReport {
  /// One market's share of the transient bill.
  struct MarketCost {
    std::string name = "spot";
    std::size_t servers = 0;
    double core_hours = 0.0;  ///< held (billable)
    double cost = 0.0;        ///< integral of this market's spot price
  };

  double on_demand_core_hours = 0.0;
  double transient_core_hours = 0.0;  ///< held (billable) core-hours
  double on_demand_cost = 0.0;
  double transient_cost = 0.0;        ///< integral of spot price over held time
  double all_on_demand_cost = 0.0;    ///< same fleet, every server on-demand
  /// Per-market attribution, index-aligned with CapacityPlan::markets;
  /// sums to transient_core_hours / transient_cost.
  std::vector<MarketCost> per_market;
  /// Timed-migration throughput charge (filled by the simulator when the
  /// migration engine runs; zero under instant migration): core-hours the
  /// fleet's VMs spent paused in stop-and-copy / checkpoint-restore
  /// windows, billed at the on-demand rate as lost serving capacity.
  double migration_downtime_core_hours = 0.0;
  double migration_downtime_cost = 0.0;
  /// Admission-layer unserved demand (filled by the simulator): core-hours
  /// of VM demand the admission controller turned away — expired deferrals
  /// in full, plus the arrival→launch delay of deferrals that were
  /// eventually admitted — billed at the on-demand rate as the cost of
  /// buying replacement capacity for the turned-away work. Zero under the
  /// AdmitAll policy (and in every pre-admission run).
  double admission_unserved_core_hours = 0.0;
  double admission_unserved_cost = 0.0;
  [[nodiscard]] double total_cost() const noexcept {
    return on_demand_cost + transient_cost + migration_downtime_cost +
           admission_unserved_cost;
  }
  /// Percent saved vs the all-on-demand fleet (positive = cheaper).
  [[nodiscard]] double saving_percent() const noexcept {
    return all_on_demand_cost > 0.0
               ? 100.0 * (1.0 - total_cost() / all_on_demand_cost)
               : 0.0;
  }
};

class TransientMarketEngine {
 public:
  explicit TransientMarketEngine(MarketEngineConfig config);

  /// Builds the full plan for `server_count` servers over [0, horizon):
  /// generates the price trace, solves the portfolio, splits the fleet and
  /// schedules revocations. Deterministic in (config, server_count,
  /// horizon).
  [[nodiscard]] CapacityPlan plan(std::size_t server_count,
                                  sim::SimTime horizon,
                                  std::size_t deflatable_pools = 4) const;

  /// Bills the planned fleet over [0, horizon): on-demand servers at the
  /// sticker rate, each market's servers at that market's spot price while
  /// held (the plan's own revocation schedules define the down intervals).
  [[nodiscard]] CostReport cost_report(const CapacityPlan& plan,
                                       double cores_per_server,
                                       sim::SimTime horizon) const;

  /// Re-anchors an existing plan on a realized fleet split (e.g. after
  /// ClusterPartitions rounding scattered pool 0 across shards): re-splits
  /// `transient_servers` across the plan's markets proportionally to the
  /// portfolio weights and regenerates every revocation schedule (the
  /// per-server keyed streams keep this deterministic). Price traces and
  /// portfolio weights are untouched.
  void rebind_transient_servers(CapacityPlan& plan,
                                std::size_t on_demand_count,
                                std::vector<std::size_t> transient_servers,
                                sim::SimTime horizon) const;

  [[nodiscard]] const MarketEngineConfig& config() const noexcept {
    return config_;
  }

 private:
  /// Splits plan.transient_servers across plan.markets by weight and
  /// regenerates per-market + merged revocation schedules.
  void schedule_markets(CapacityPlan& plan, sim::SimTime horizon) const;

  MarketEngineConfig config_;
};

}  // namespace deflate::transient
