// TransientMarketEngine: the facade that turns a plain cluster into a
// transient one. It owns the spot-price process, the revocation engine and
// the portfolio manager, and produces a CapacityPlan — which servers are
// bought on-demand vs. on the transient market, the partition pool weights
// implied by the portfolio, the revocation schedule for the transient
// servers, and the cost accounting against an all-on-demand baseline.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/time.hpp"
#include "transient/portfolio.hpp"
#include "transient/revocation.hpp"
#include "transient/spot_price.hpp"

namespace deflate::transient {

struct MarketEngineConfig {
  SpotPriceConfig price;
  RevocationConfig revocation;
  PortfolioConfig portfolio;
  /// When true the on-demand/transient split comes from mean-variance
  /// optimization; when false, from `on_demand_share` directly.
  bool use_portfolio = true;
  /// Fixed on-demand share when the portfolio optimizer is disabled.
  double on_demand_share = 0.0;
  std::uint64_t seed = 42;

  [[nodiscard]] bool enabled() const noexcept {
    return revocation.model != RevocationModel::None || use_portfolio;
  }
};

/// The engine's decision for one cluster + horizon.
struct CapacityPlan {
  /// Servers [0, on_demand_servers) are bought on-demand and are never
  /// revoked; the rest ride the transient market.
  std::size_t on_demand_servers = 0;
  std::vector<std::size_t> transient_servers;
  /// Portfolio solution (weights[0] = on-demand share); present even with
  /// use_portfolio = false (degenerate two-point weights) for reporting.
  PortfolioResult portfolio;
  /// ClusterPartitions-compatible pool weights (pool 0 = on-demand).
  std::vector<double> pool_weights;
  /// Spot prices over the horizon.
  PriceTrace prices;
  /// Merged revoke/restore schedule for the transient servers.
  std::vector<RevocationEvent> revocations;
};

/// Cost of running the planned fleet over the horizon, against the
/// all-on-demand counterfactual. Prices are per core-hour; servers are
/// billed on their core count while held (a revoked server is not billed).
struct CostReport {
  double on_demand_core_hours = 0.0;
  double transient_core_hours = 0.0;  ///< held (billable) core-hours
  double on_demand_cost = 0.0;
  double transient_cost = 0.0;        ///< integral of spot price over held time
  double all_on_demand_cost = 0.0;    ///< same fleet, every server on-demand
  [[nodiscard]] double total_cost() const noexcept {
    return on_demand_cost + transient_cost;
  }
  /// Percent saved vs the all-on-demand fleet (positive = cheaper).
  [[nodiscard]] double saving_percent() const noexcept {
    return all_on_demand_cost > 0.0
               ? 100.0 * (1.0 - total_cost() / all_on_demand_cost)
               : 0.0;
  }
};

class TransientMarketEngine {
 public:
  explicit TransientMarketEngine(MarketEngineConfig config);

  /// Builds the full plan for `server_count` servers over [0, horizon):
  /// generates the price trace, solves the portfolio, splits the fleet and
  /// schedules revocations. Deterministic in (config, server_count,
  /// horizon).
  [[nodiscard]] CapacityPlan plan(std::size_t server_count,
                                  sim::SimTime horizon,
                                  std::size_t deflatable_pools = 4) const;

  /// Bills the planned fleet over [0, horizon): on-demand servers at the
  /// sticker rate, transient servers at the spot price while held (the
  /// plan's own revocation schedule defines the down intervals).
  [[nodiscard]] CostReport cost_report(const CapacityPlan& plan,
                                       double cores_per_server,
                                       sim::SimTime horizon) const;

  [[nodiscard]] const MarketEngineConfig& config() const noexcept {
    return config_;
  }

 private:
  MarketEngineConfig config_;
};

}  // namespace deflate::transient
