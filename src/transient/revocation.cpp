#include "transient/revocation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace deflate::transient {

const char* revocation_model_name(RevocationModel m) noexcept {
  switch (m) {
    case RevocationModel::None: return "none";
    case RevocationModel::Poisson: return "poisson";
    case RevocationModel::TemporallyConstrained: return "temporal";
    case RevocationModel::PriceCrossing: return "price-crossing";
  }
  return "?";
}

double RevocationEngine::sample_constrained_lifetime(util::Rng& rng) const {
  const double T = config_.max_lifetime_hours;
  const double w = std::clamp(config_.early_fraction, 0.0, 1.0);
  const double tau = std::max(1e-6, config_.early_tau_hours);
  const double k = std::max(1.0, config_.late_shape);
  // Bathtub CDF on (0, T]: a truncated-exponential early component (infant
  // mortality) mixed with a polynomial late component whose mass piles up
  // against the lifetime cap. F(T) = 1, so every instance is reclaimed by
  // T — the temporal constraint of Kadupitiya et al.
  const double early_norm = 1.0 - std::exp(-T / tau);
  const auto cdf = [&](double t) {
    const double early = (1.0 - std::exp(-t / tau)) / early_norm;
    const double late = std::pow(t / T, k);
    return w * early + (1.0 - w) * late;
  };
  const double u = rng.u01();
  // Invert by bisection: F is strictly increasing on (0, T].
  double lo = 0.0, hi = T;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (cdf(mid) < u) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

std::vector<RevocationEvent> RevocationEngine::schedule_for(
    std::size_t server, sim::SimTime horizon) const {
  std::vector<RevocationEvent> events;
  if (config_.model == RevocationModel::None || horizon.micros() <= 0) {
    return events;
  }
  // At least one tick so a revoke and its restore never share a timestamp
  // (the simulator orders restores before revokes at equal times).
  const sim::SimTime recovery =
      std::max(sim::SimTime::from_hours(std::max(0.0, config_.recovery_hours)),
               sim::SimTime::from_micros(1));

  if (config_.model == RevocationModel::PriceCrossing) {
    if (prices_ == nullptr || prices_->empty()) {
      throw std::logic_error(
          "RevocationEngine: PriceCrossing needs a price trace");
    }
    // Market-wide: the server is held while price <= bid, revoked on the
    // upward crossing and restored on the downward crossing. Scanning the
    // step function gives exact crossing times. A bid already under water
    // at t=0 revokes immediately — capacity is never held at that price.
    const sim::SimTime step = prices_->step();
    bool held = prices_->at(sim::SimTime{}) <= config_.bid;
    if (!held) events.push_back({sim::SimTime{}, server, /*revoke=*/true});
    for (sim::SimTime t = step; t < horizon; t += step) {
      const bool affordable = prices_->at(t) <= config_.bid;
      if (held && !affordable) {
        events.push_back({t, server, /*revoke=*/true});
        held = false;
      } else if (!held && affordable) {
        events.push_back({t, server, /*revoke=*/false});
        held = true;
      }
    }
    return events;
  }

  // Per-server stochastic models: an acquire/revoke renewal process. The
  // stream is keyed by the server id so the schedule is independent of
  // which other servers exist and of generation order.
  util::Rng rng = util::Rng::keyed(seed_, 0x7261'6e73'6965'6e74ULL ^ server);
  sim::SimTime t;  // current acquisition time
  while (t < horizon) {
    double lifetime_hours = 0.0;
    switch (config_.model) {
      case RevocationModel::Poisson:
        lifetime_hours =
            rng.exponential(std::max(1e-9, config_.poisson_rate_per_hour));
        break;
      case RevocationModel::TemporallyConstrained:
        lifetime_hours = sample_constrained_lifetime(rng);
        break;
      default:
        return events;
    }
    const sim::SimTime down = t + sim::SimTime::from_hours(lifetime_hours);
    if (down >= horizon) break;
    events.push_back({down, server, /*revoke=*/true});
    const sim::SimTime up = down + recovery;
    if (up >= horizon) break;
    events.push_back({up, server, /*revoke=*/false});
    t = up;
  }
  return events;
}

std::vector<RevocationEvent> RevocationEngine::schedule(
    std::span<const std::size_t> transient_servers, sim::SimTime horizon) const {
  std::vector<RevocationEvent> merged;
  for (const std::size_t server : transient_servers) {
    const auto events = schedule_for(server, horizon);
    merged.insert(merged.end(), events.begin(), events.end());
  }
  std::sort(merged.begin(), merged.end(), schedule_before);
  return merged;
}

double RevocationEngine::expected_rate_per_hour() const noexcept {
  switch (config_.model) {
    case RevocationModel::None:
      return 0.0;
    case RevocationModel::Poisson:
      return config_.poisson_rate_per_hour;
    case RevocationModel::TemporallyConstrained: {
      // Renewal rate: one revocation per mean cycle (mean lifetime +
      // recovery). The bathtub mean is dominated by the late component:
      // E[L] ~ w * tau_eff + (1-w) * T * k/(k+1).
      const double T = std::max(1e-9, config_.max_lifetime_hours);
      const double w = std::clamp(config_.early_fraction, 0.0, 1.0);
      const double tau = std::max(1e-6, config_.early_tau_hours);
      const double k = std::max(1.0, config_.late_shape);
      const double early_mean = std::min(tau, T);
      const double late_mean = T * k / (k + 1.0);
      const double mean_lifetime = w * early_mean + (1.0 - w) * late_mean;
      return 1.0 / (mean_lifetime + std::max(0.0, config_.recovery_hours));
    }
    case RevocationModel::PriceCrossing: {
      if (prices_ == nullptr || prices_->empty()) return 0.0;
      // Count upward bid-crossings per traced hour.
      const auto& samples = prices_->samples();
      std::size_t crossings = 0;
      for (std::size_t i = 1; i < samples.size(); ++i) {
        if (samples[i - 1] <= config_.bid && samples[i] > config_.bid) {
          ++crossings;
        }
      }
      const double hours = prices_->duration().hours();
      return hours > 0.0 ? static_cast<double>(crossings) / hours : 0.0;
    }
  }
  return 0.0;
}

}  // namespace deflate::transient
