#include "transient/revocation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace deflate::transient {

const char* revocation_model_name(RevocationModel m) noexcept {
  switch (m) {
    case RevocationModel::None: return "none";
    case RevocationModel::Poisson: return "poisson";
    case RevocationModel::TemporallyConstrained: return "temporal";
    case RevocationModel::PriceCrossing: return "price-crossing";
  }
  return "?";
}

namespace {

/// Samples one temporally-constrained lifetime (hours) by inverting the
/// bathtub CDF; always <= max_lifetime_hours.
double sample_constrained_lifetime(const RevocationConfig& config,
                                   util::Rng& rng) {
  const double T = config.max_lifetime_hours;
  const double w = std::clamp(config.early_fraction, 0.0, 1.0);
  const double tau = std::max(1e-6, config.early_tau_hours);
  const double k = std::max(1.0, config.late_shape);
  // Bathtub CDF on (0, T]: a truncated-exponential early component (infant
  // mortality) mixed with a polynomial late component whose mass piles up
  // against the lifetime cap. F(T) = 1, so every instance is reclaimed by
  // T — the temporal constraint of Kadupitiya et al.
  const double early_norm = 1.0 - std::exp(-T / tau);
  const auto cdf = [&](double t) {
    const double early = (1.0 - std::exp(-t / tau)) / early_norm;
    const double late = std::pow(t / T, k);
    return w * early + (1.0 - w) * late;
  };
  const double u = rng.u01();
  // Invert by bisection: F is strictly increasing on (0, T].
  double lo = 0.0, hi = T;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (cdf(mid) < u) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

std::vector<RevocationEvent> RenewalRevocationModel::schedule_for(
    const RevocationConfig& config, std::uint64_t seed, std::size_t server,
    sim::SimTime horizon, const PriceTrace* /*prices*/) const {
  std::vector<RevocationEvent> events;
  // At least one tick so a revoke and its restore never share a timestamp
  // (the simulator orders restores before revokes at equal times).
  const sim::SimTime recovery =
      std::max(sim::SimTime::from_hours(std::max(0.0, config.recovery_hours)),
               sim::SimTime::from_micros(1));
  // An acquire/revoke renewal process. The stream is keyed by the server
  // id so the schedule is independent of which other servers exist and of
  // generation order.
  util::Rng rng = util::Rng::keyed(seed, 0x7261'6e73'6965'6e74ULL ^ server);
  sim::SimTime t;  // current acquisition time
  while (t < horizon) {
    const double lifetime_hours = sample_lifetime_hours(config, rng);
    const sim::SimTime down = t + sim::SimTime::from_hours(lifetime_hours);
    if (down >= horizon) break;
    events.push_back({down, server, /*revoke=*/true});
    const sim::SimTime up = down + recovery;
    if (up >= horizon) break;
    events.push_back({up, server, /*revoke=*/false});
    t = up;
  }
  return events;
}

namespace {

class NoneModel final : public RevocationModelPolicy {
 public:
  [[nodiscard]] std::vector<RevocationEvent> schedule_for(
      const RevocationConfig&, std::uint64_t, std::size_t, sim::SimTime,
      const PriceTrace*) const override {
    return {};
  }
  [[nodiscard]] double expected_rate_per_hour(
      const RevocationConfig&, const PriceTrace*) const noexcept override {
    return 0.0;
  }
};

class PoissonModel final : public RenewalRevocationModel {
 public:
  [[nodiscard]] double expected_rate_per_hour(
      const RevocationConfig& config,
      const PriceTrace*) const noexcept override {
    return config.poisson_rate_per_hour;
  }

 protected:
  [[nodiscard]] double sample_lifetime_hours(const RevocationConfig& config,
                                             util::Rng& rng) const override {
    return rng.exponential(std::max(1e-9, config.poisson_rate_per_hour));
  }
};

class TemporallyConstrainedModel final : public RenewalRevocationModel {
 public:
  [[nodiscard]] double expected_rate_per_hour(
      const RevocationConfig& config,
      const PriceTrace*) const noexcept override {
    // Renewal rate: one revocation per mean cycle (mean lifetime +
    // recovery). The bathtub mean is dominated by the late component:
    // E[L] ~ w * tau_eff + (1-w) * T * k/(k+1).
    const double T = std::max(1e-9, config.max_lifetime_hours);
    const double w = std::clamp(config.early_fraction, 0.0, 1.0);
    const double tau = std::max(1e-6, config.early_tau_hours);
    const double k = std::max(1.0, config.late_shape);
    const double early_mean = std::min(tau, T);
    const double late_mean = T * k / (k + 1.0);
    const double mean_lifetime = w * early_mean + (1.0 - w) * late_mean;
    return 1.0 / (mean_lifetime + std::max(0.0, config.recovery_hours));
  }

 protected:
  [[nodiscard]] double sample_lifetime_hours(const RevocationConfig& config,
                                             util::Rng& rng) const override {
    return sample_constrained_lifetime(config, rng);
  }
};

class PriceCrossingModel final : public RevocationModelPolicy {
 public:
  [[nodiscard]] std::vector<RevocationEvent> schedule_for(
      const RevocationConfig& config, std::uint64_t /*seed*/,
      std::size_t server, sim::SimTime horizon,
      const PriceTrace* prices) const override {
    std::vector<RevocationEvent> events;
    if (prices == nullptr || prices->empty()) {
      throw std::logic_error(
          "RevocationEngine: PriceCrossing needs a price trace");
    }
    // Market-wide: the server is held while price <= bid, revoked on the
    // upward crossing and restored on the downward crossing. Scanning the
    // step function gives exact crossing times. A bid already under water
    // at t=0 revokes immediately — capacity is never held at that price.
    const sim::SimTime step = prices->step();
    bool held = prices->at(sim::SimTime{}) <= config.bid;
    if (!held) events.push_back({sim::SimTime{}, server, /*revoke=*/true});
    for (sim::SimTime t = step; t < horizon; t += step) {
      const bool affordable = prices->at(t) <= config.bid;
      if (held && !affordable) {
        events.push_back({t, server, /*revoke=*/true});
        held = false;
      } else if (!held && affordable) {
        events.push_back({t, server, /*revoke=*/false});
        held = true;
      }
    }
    return events;
  }

  [[nodiscard]] double expected_rate_per_hour(
      const RevocationConfig& config,
      const PriceTrace* prices) const noexcept override {
    if (prices == nullptr || prices->empty()) return 0.0;
    // Count upward bid-crossings per traced hour.
    const auto& samples = prices->samples();
    std::size_t crossings = 0;
    for (std::size_t i = 1; i < samples.size(); ++i) {
      if (samples[i - 1] <= config.bid && samples[i] > config.bid) {
        ++crossings;
      }
    }
    const double hours = prices->duration().hours();
    return hours > 0.0 ? static_cast<double>(crossings) / hours : 0.0;
  }
};

const NoneModel kNoneModel;
const PoissonModel kPoissonModel;
const TemporallyConstrainedModel kTemporalModel;
const PriceCrossingModel kPriceCrossingModel;

/// Non-owning handle to a static builtin (registry factories return
/// shared_ptr so plugins may hand out owned instances).
std::shared_ptr<const RevocationModelPolicy> borrow(
    const RevocationModelPolicy& model) {
  return {std::shared_ptr<const RevocationModelPolicy>{}, &model};
}

}  // namespace

void RevocationSurface::register_builtins(
    policy::PolicyRegistry<RevocationSurface>& registry) {
  registry.add("none", "servers are never revoked",
               [] { return borrow(kNoneModel); });
  registry.add(
      "poisson", "memoryless per-server revocations with configurable MTBR",
      [] { return borrow(kPoissonModel); }, {},
      {{"poisson_rate_per_hour", "revocations per server-hour", 1.0 / 24.0}});
  registry.add(
      "temporal",
      "bathtub lifetimes under a hard cap (Kadupitiya et al., "
      "arXiv:1911.05160)",
      [] { return borrow(kTemporalModel); }, {},
      {{"max_lifetime_hours", "hard lifetime cap T", 24.0},
       {"early_fraction", "infant-mortality mixture weight", 0.2},
       {"early_tau_hours", "early component time constant", 2.0},
       {"late_shape", "late component polynomial exponent", 8.0}});
  registry.add(
      "price", "market-wide revocation while spot price exceeds the bid",
      [] { return borrow(kPriceCrossingModel); }, {"price-crossing"},
      {{"bid", "bid per core-hour", 0.5}});
}

std::shared_ptr<const RevocationModelPolicy> make_revocation_model(
    const std::string& name) {
  const auto* entry = RevocationRegistry::instance().find(name);
  if (entry == nullptr) {
    throw std::invalid_argument(
        "unknown revocation model '" + name + "' (expected " +
        policy::joined_policy_names<RevocationSurface>() + ")");
  }
  return entry->make();
}

std::optional<RevocationModel> revocation_model_from_name(
    const std::string& name) noexcept {
  if (name == "none") return RevocationModel::None;
  if (name == "poisson") return RevocationModel::Poisson;
  if (name == "temporal") return RevocationModel::TemporallyConstrained;
  if (name == "price" || name == "price-crossing") {
    return RevocationModel::PriceCrossing;
  }
  return std::nullopt;
}

RevocationEngine::RevocationEngine(RevocationConfig config, std::uint64_t seed)
    : config_(std::move(config)),
      seed_(seed),
      model_(make_revocation_model(config_.model_name.empty()
                                       ? revocation_model_name(config_.model)
                                       : config_.model_name)) {}

std::vector<RevocationEvent> RevocationEngine::schedule_for(
    std::size_t server, sim::SimTime horizon) const {
  if (horizon.micros() <= 0) return {};
  return model_->schedule_for(config_, seed_, server, horizon, prices_);
}

std::vector<RevocationEvent> RevocationEngine::schedule(
    std::span<const std::size_t> transient_servers, sim::SimTime horizon) const {
  std::vector<RevocationEvent> merged;
  for (const std::size_t server : transient_servers) {
    const auto events = schedule_for(server, horizon);
    merged.insert(merged.end(), events.begin(), events.end());
  }
  std::sort(merged.begin(), merged.end(), schedule_before);
  return merged;
}

double RevocationEngine::expected_rate_per_hour() const noexcept {
  return model_->expected_rate_per_hour(config_, prices_);
}

}  // namespace deflate::transient
