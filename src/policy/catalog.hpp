// Cross-surface enumeration of every policy registry in the process —
// the single source behind `deflatectl list-policies`, the daemon's Hello
// advertisement and the docs-coverage check (tools/check_policy_docs.sh).
#pragma once

#include <string>
#include <vector>

#include "policy/registry.hpp"

namespace deflate::policy {

struct PolicyInfo {
  std::string name;
  std::string description;
  std::vector<std::string> aliases;
  std::vector<ParamSpec> params;
};

struct SurfaceInfo {
  std::string surface;      ///< e.g. "placement", "shard-selection"
  std::string description;  ///< the surface's one-liner
  /// Registration order (builtins first, then link-time plugins).
  std::vector<PolicyInfo> policies;
};

/// Every registered surface with every registered policy, surfaces in
/// fixed order (admission, placement, shard-selection, migration,
/// revocation). Touching all five registries here also forces their
/// builtins to register, so callers see a complete catalog regardless of
/// what else the process linked.
[[nodiscard]] std::vector<SurfaceInfo> describe_all_surfaces();

}  // namespace deflate::policy
