// Declarative policy selection: names + parameter overrides for every
// pluggable surface, resolved through the typed registries.
//
// A PolicySet travels on SimConfig / ServiceConfig. Empty names mean
// "keep whatever the legacy enum or flag selected" so existing configs
// stay bit-identical; non-empty names are validated against the
// registries up front (validate()) and applied when the owning
// component is constructed or re-bound at a tick barrier.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace deflate::policy {

/// One surface's selection: a registered policy name (or alias) plus
/// optional parameter overrides. Parameter names must match the
/// ParamSpecs the policy registered; values are plain doubles, matching
/// the knobs the builtin configs expose.
struct PolicyChoice {
  std::string name;  ///< empty = surface keeps its legacy default
  std::vector<std::pair<std::string, double>> params;

  [[nodiscard]] bool empty() const noexcept { return name.empty(); }
  /// Value of parameter `key`, or `fallback` when absent.
  [[nodiscard]] double param_or(const std::string& key,
                                double fallback) const noexcept;
};

/// Selections for all six registered surfaces.
struct PolicySet {
  PolicyChoice admission;
  PolicyChoice placement;
  PolicyChoice shard_selection;
  PolicyChoice migration;
  PolicyChoice revocation;
  /// The online control plane's forecast policy (src/control).
  PolicyChoice control;

  [[nodiscard]] bool empty() const noexcept;

  /// One error line per problem, e.g.
  ///   placement: unknown policy 'foo' (expected best-fit|first-fit|...)
  ///   revocation: policy 'poisson' has no parameter 'rate'
  /// Empty vector = the set resolves cleanly against every registry.
  [[nodiscard]] std::vector<std::string> validate() const;
};

}  // namespace deflate::policy
