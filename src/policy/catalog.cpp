#include "policy/catalog.hpp"

#include "cluster/admission.hpp"
#include "cluster/migration.hpp"
#include "cluster/placement.hpp"
#include "cluster/sharded_manager.hpp"
#include "control/forecast.hpp"
#include "transient/revocation.hpp"

namespace deflate::policy {

namespace {

template <typename Surface>
SurfaceInfo describe_surface() {
  const auto& registry = PolicyRegistry<Surface>::instance();
  SurfaceInfo info;
  info.surface = Surface::kSurfaceName;
  info.description = Surface::kSurfaceDescription;
  for (const auto& entry : registry.entries()) {
    info.policies.push_back(PolicyInfo{entry.name, entry.description,
                                       entry.aliases, entry.params});
  }
  return info;
}

}  // namespace

std::vector<SurfaceInfo> describe_all_surfaces() {
  std::vector<SurfaceInfo> surfaces;
  surfaces.push_back(describe_surface<cluster::AdmissionSurface>());
  surfaces.push_back(describe_surface<cluster::PlacementSurface>());
  surfaces.push_back(describe_surface<cluster::ShardSelectionSurface>());
  surfaces.push_back(describe_surface<cluster::MigrationSurface>());
  surfaces.push_back(describe_surface<transient::RevocationSurface>());
  surfaces.push_back(describe_surface<control::ControlSurface>());
  return surfaces;
}

}  // namespace deflate::policy
