// Generic self-describing policy registry: one mechanism for every
// pluggable decision surface in the system.
//
// The paper's deflation mechanism is one point in a large policy space —
// placement scoring, shard routing, migration strategy, revocation
// modeling and admission bidding are all swappable decisions. Before this
// layer each surface hand-rolled its own dispatch (an `enum class` plus a
// switch, a name parser per tool); only admission policies were pluggable
// (the PR-6 `net::AdmissionPolicyRegistry`). `PolicyRegistry<Surface>`
// generalizes that registry: a typed, process-wide, self-describing
// catalog of named policies with descriptions and parameter metadata,
// link-time plugin registration, and exhaustive enumeration (the
// `deflatectl list-policies` / Hello-frame surface).
//
// A *surface* is a traits struct describing one decision point:
//
//   struct ShardSelectionSurface {
//     static constexpr const char* kSurfaceName = "shard-selection";
//     static constexpr const char* kSurfaceDescription = "...";
//     using Factory = std::function<std::unique_ptr<ShardSelector>()>;
//     static void register_builtins(policy::PolicyRegistry<ShardSelectionSurface>&);
//   };
//
// `register_builtins` is invoked exactly once, from the registry's own
// constructor, so the built-in names never depend on static-initialization
// order across translation units. Plugins register at link time through
// `PolicyRegistration<Surface>` at namespace scope; registration and
// lookup are mutex-guarded and the singleton is a Meyers static, so
// concurrent daemon connections (and TSan) see a consistent registry.
//
// Thread-safety / pointer-stability contract: entries are heap-allocated
// and never removed, so a `const Entry*` returned by `find()` stays valid
// for the life of the process even while other threads register plugins.
#pragma once

#include <algorithm>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace deflate::policy {

/// Declarative description of one numeric knob a policy understands
/// (resolution of a PolicySet validates parameter names against these).
struct ParamSpec {
  std::string name;
  std::string description;
  double default_value = 0.0;
};

template <typename Surface>
class PolicyRegistry {
 public:
  using Factory = typename Surface::Factory;

  struct Entry {
    /// Primary name (the CLI / PolicySet / wire vocabulary).
    std::string name;
    /// One-line human description (list-policies, Hello self-description).
    std::string description;
    /// Alternate accepted spellings (e.g. "power-of-two" for "p2c").
    /// Aliases resolve through find() but are not enumerated by names().
    std::vector<std::string> aliases;
    /// Numeric knobs the policy understands (PolicySet params).
    std::vector<ParamSpec> params;
    /// Builds the policy object; the surface defines the signature.
    Factory make;
  };

  /// The process-wide registry for this surface, built-ins pre-registered
  /// by Surface::register_builtins. Initialization-order safe (Meyers
  /// singleton) and thread-safe for concurrent first use.
  [[nodiscard]] static PolicyRegistry& instance() {
    static PolicyRegistry registry;
    return registry;
  }

  /// Registers a policy; returns false (and changes nothing) when the
  /// name is empty, the factory is null, or the name or any alias
  /// collides with an already-registered name or alias.
  bool add(Entry entry) {
    if (entry.name.empty() || !entry.make) return false;
    std::scoped_lock lock(mutex_);
    if (find_locked(entry.name) != nullptr) return false;
    for (const std::string& alias : entry.aliases) {
      if (alias.empty() || find_locked(alias) != nullptr) return false;
    }
    entries_.push_back(std::make_unique<Entry>(std::move(entry)));
    return true;
  }

  /// Convenience registration for the common case (no designated-init
  /// boilerplate for empty alias/param lists).
  bool add(std::string name, std::string description, Factory make,
           std::vector<std::string> aliases = {},
           std::vector<ParamSpec> params = {}) {
    Entry entry;
    entry.name = std::move(name);
    entry.description = std::move(description);
    entry.aliases = std::move(aliases);
    entry.params = std::move(params);
    entry.make = std::move(make);
    return add(std::move(entry));
  }

  /// Looks a policy up by primary name or alias; nullptr when unknown.
  /// The returned pointer stays valid for the life of the process.
  [[nodiscard]] const Entry* find(const std::string& name) const {
    std::scoped_lock lock(mutex_);
    return find_locked(name);
  }

  /// Registered primary names, sorted (the enumeration vocabulary of
  /// list-policies, the Hello frame and error messages).
  [[nodiscard]] std::vector<std::string> names() const {
    std::vector<std::string> out;
    {
      std::scoped_lock lock(mutex_);
      out.reserve(entries_.size());
      for (const auto& entry : entries_) out.push_back(entry->name);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Snapshot of every registered entry, in registration order.
  [[nodiscard]] std::vector<Entry> entries() const {
    std::vector<Entry> out;
    std::scoped_lock lock(mutex_);
    out.reserve(entries_.size());
    for (const auto& entry : entries_) out.push_back(*entry);
    return out;
  }

  [[nodiscard]] std::size_t size() const {
    std::scoped_lock lock(mutex_);
    return entries_.size();
  }

 private:
  PolicyRegistry() { Surface::register_builtins(*this); }

  [[nodiscard]] const Entry* find_locked(const std::string& name) const {
    for (const auto& entry : entries_) {
      if (entry->name == name) return entry.get();
      for (const std::string& alias : entry->aliases) {
        if (alias == name) return entry.get();
      }
    }
    return nullptr;
  }

  /// Guards entries_ against concurrent add/find from daemon connection
  /// handlers and link-time plugin registration.
  mutable std::mutex mutex_;
  /// Heap entries, never erased: find() pointers are stable across adds.
  std::vector<std::unique_ptr<Entry>> entries_;
};

/// Link-time plugin registration: a namespace-scope instance registers the
/// entry before main() without the daemon (or simulator) naming the plugin
/// anywhere in its dispatch code.
///
///   const policy::PolicyRegistration<cluster::ShardSelectionSurface>
///       kRegisterFirstShard{{.name = "first-shard", ...}};
template <typename Surface>
struct PolicyRegistration {
  explicit PolicyRegistration(typename PolicyRegistry<Surface>::Entry entry) {
    registered = PolicyRegistry<Surface>::instance().add(std::move(entry));
  }
  /// False when the name collided with an existing registration.
  bool registered = false;
};

/// "a|b|c" over the registry's sorted names — the one-line error-message
/// vocabulary shared by every CLI flag parser.
template <typename Surface>
[[nodiscard]] std::string joined_policy_names() {
  std::string out;
  for (const std::string& name : PolicyRegistry<Surface>::instance().names()) {
    if (!out.empty()) out += '|';
    out += name;
  }
  return out;
}

}  // namespace deflate::policy
