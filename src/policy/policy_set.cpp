#include "policy/policy_set.hpp"

#include "cluster/admission.hpp"
#include "cluster/migration.hpp"
#include "cluster/placement.hpp"
#include "cluster/sharded_manager.hpp"
#include "control/forecast.hpp"
#include "policy/registry.hpp"
#include "transient/revocation.hpp"

namespace deflate::policy {

double PolicyChoice::param_or(const std::string& key,
                              double fallback) const noexcept {
  for (const auto& [name, value] : params) {
    if (name == key) return value;
  }
  return fallback;
}

bool PolicySet::empty() const noexcept {
  return admission.empty() && placement.empty() && shard_selection.empty() &&
         migration.empty() && revocation.empty() && control.empty();
}

namespace {

template <typename Surface>
void validate_choice(const PolicyChoice& choice,
                     std::vector<std::string>& errors) {
  const std::string surface = Surface::kSurfaceName;
  if (choice.empty()) {
    if (!choice.params.empty()) {
      errors.push_back(surface + ": parameters given without a policy name");
    }
    return;
  }
  const auto* entry = PolicyRegistry<Surface>::instance().find(choice.name);
  if (entry == nullptr) {
    errors.push_back(surface + ": unknown policy '" + choice.name +
                     "' (expected " + joined_policy_names<Surface>() + ")");
    return;
  }
  for (const auto& [key, value] : choice.params) {
    (void)value;
    bool known = false;
    for (const auto& spec : entry->params) {
      if (spec.name == key) {
        known = true;
        break;
      }
    }
    if (known) continue;
    std::string expected;
    for (const auto& spec : entry->params) {
      if (!expected.empty()) expected += '|';
      expected += spec.name;
    }
    errors.push_back(surface + ": policy '" + entry->name +
                     "' has no parameter '" + key + "'" +
                     (expected.empty() ? std::string(" (takes no parameters)")
                                       : " (expected " + expected + ")"));
  }
}

}  // namespace

std::vector<std::string> PolicySet::validate() const {
  std::vector<std::string> errors;
  validate_choice<cluster::AdmissionSurface>(admission, errors);
  validate_choice<cluster::PlacementSurface>(placement, errors);
  validate_choice<cluster::ShardSelectionSurface>(shard_selection, errors);
  validate_choice<cluster::MigrationSurface>(migration, errors);
  validate_choice<transient::RevocationSurface>(revocation, errors);
  validate_choice<control::ControlSurface>(control, errors);
  return errors;
}

}  // namespace deflate::policy
