#include "control/estimators.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace deflate::control {
namespace {

/// Identity matrix of order k (the degenerate / empty-plan correlation).
std::vector<std::vector<double>> identity(std::size_t k) {
  std::vector<std::vector<double>> out(k, std::vector<double>(k, 0.0));
  for (std::size_t i = 0; i < k; ++i) out[i][i] = 1.0;
  return out;
}

/// Cyclic Jacobi eigendecomposition of a small symmetric matrix.
/// Deterministic sweep order (row-major upper triangle), fixed sweep
/// budget; plenty for the <= a-dozen-market matrices this sees.
void jacobi_eigen(std::vector<std::vector<double>> a,
                  std::vector<double>& eigenvalues,
                  std::vector<std::vector<double>>& eigenvectors) {
  const std::size_t n = a.size();
  eigenvectors = identity(n);
  constexpr int kSweeps = 64;
  constexpr double kTolerance = 1e-14;
  for (int sweep = 0; sweep < kSweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off += a[p][q] * a[p][q];
    }
    if (off < kTolerance) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        if (std::abs(a[p][q]) < 1e-18) continue;
        const double theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a[k][p];
          const double akq = a[k][q];
          a[k][p] = c * akp - s * akq;
          a[k][q] = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a[p][k];
          const double aqk = a[q][k];
          a[p][k] = c * apk - s * aqk;
          a[q][k] = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = eigenvectors[k][p];
          const double vkq = eigenvectors[k][q];
          eigenvectors[k][p] = c * vkp - s * vkq;
          eigenvectors[k][q] = s * vkp + c * vkq;
        }
      }
    }
  }
  eigenvalues.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) eigenvalues[i] = a[i][i];
}

/// Pearson correlation of two aligned sample windows; nullopt when the
/// overlap is shorter than two samples or either side is constant.
std::optional<double> window_correlation(const std::vector<double>& x,
                                         const std::vector<double>& y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return std::nullopt;
  double mean_x = 0.0;
  double mean_y = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mean_x += x[i];
    mean_y += y[i];
  }
  mean_x /= static_cast<double>(n);
  mean_y /= static_cast<double>(n);
  double cov = 0.0;
  double var_x = 0.0;
  double var_y = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    cov += dx * dy;
    var_x += dx * dx;
    var_y += dy * dy;
  }
  if (var_x <= 0.0 || var_y <= 0.0) return std::nullopt;
  return std::clamp(cov / std::sqrt(var_x * var_y), -1.0, 1.0);
}

}  // namespace

std::vector<std::vector<double>> psd_project(
    std::vector<std::vector<double>> matrix) {
  const std::size_t n = matrix.size();
  if (n == 0) return matrix;
  if (n == 1) return {{1.0}};
  // Symmetrize first: windowed estimates are symmetric by construction,
  // but blending round-off should not leak into the eigensolver.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double m = 0.5 * (matrix[i][j] + matrix[j][i]);
      matrix[i][j] = m;
      matrix[j][i] = m;
    }
  }
  std::vector<double> eigenvalues;
  std::vector<std::vector<double>> v;
  jacobi_eigen(matrix, eigenvalues, v);
  for (double& lambda : eigenvalues) lambda = std::max(lambda, 0.0);
  std::vector<std::vector<double>> out(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        sum += v[i][k] * eigenvalues[k] * v[j][k];
      }
      out[i][j] = sum;
    }
  }
  // Renormalize to a correlation matrix. A zero diagonal entry means the
  // row was annihilated by the clamp; pin it to the identity row.
  std::vector<double> scale(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    scale[i] = out[i][i] > 1e-12 ? 1.0 / std::sqrt(out[i][i]) : 0.0;
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) {
        out[i][j] = 1.0;
      } else if (scale[i] == 0.0 || scale[j] == 0.0) {
        out[i][j] = 0.0;
      } else {
        out[i][j] = std::clamp(out[i][j] * scale[i] * scale[j], -1.0, 1.0);
      }
    }
  }
  return out;
}

std::optional<std::pair<double, double>> window_mean_variance(
    const std::vector<double>& samples) {
  if (samples.size() < 2) return std::nullopt;
  double mean = 0.0;
  for (double s : samples) mean += s;
  mean /= static_cast<double>(samples.size());
  double variance = 0.0;
  for (double s : samples) variance += (s - mean) * (s - mean);
  variance /= static_cast<double>(samples.size());
  return std::make_pair(mean, variance);
}

RevocationForecaster::RevocationForecaster(
    std::shared_ptr<const ForecastPolicy> policy, double alpha,
    std::vector<double> planned_rates, std::vector<double> planned_uptime_hours)
    : policy_(std::move(policy)),
      alpha_(alpha),
      planned_rates_(std::move(planned_rates)),
      planned_uptimes_(std::move(planned_uptime_hours)),
      rates_(planned_rates_),
      uptimes_(planned_uptimes_) {
  if (planned_uptimes_.size() != planned_rates_.size()) {
    planned_uptimes_.resize(planned_rates_.size(), 0.0);
    uptimes_ = planned_uptimes_;
  }
}

void RevocationForecaster::observe_window(std::size_t market,
                                          std::size_t revocations,
                                          double held_hours,
                                          double uptime_hours_sum,
                                          std::size_t uptime_count) {
  if (market >= rates_.size()) return;
  std::optional<double> realized_rate;
  if (revocations > 0 && held_hours > 0.0) {
    realized_rate = static_cast<double>(revocations) / held_hours;
  }
  rates_[market] = policy_->update(planned_rates_[market], rates_[market],
                                   realized_rate, alpha_);
  std::optional<double> realized_uptime;
  if (uptime_count > 0) {
    realized_uptime = uptime_hours_sum / static_cast<double>(uptime_count);
  }
  uptimes_[market] = policy_->update(planned_uptimes_[market], uptimes_[market],
                                     realized_uptime, alpha_);
}

double RevocationForecaster::rate_per_hour(std::size_t market) const {
  return market < rates_.size() ? rates_[market] : 0.0;
}

double RevocationForecaster::mean_uptime_hours(std::size_t market) const {
  return market < uptimes_.size() ? uptimes_[market] : 0.0;
}

CorrelationEstimator::CorrelationEstimator(
    std::shared_ptr<const ForecastPolicy> policy, double alpha,
    std::size_t markets, std::vector<std::vector<double>> planned)
    : policy_(std::move(policy)), alpha_(alpha), planned_(std::move(planned)) {
  if (planned_.size() != markets) planned_ = identity(markets);
  blended_ = planned_;
  forecast_ = psd_project(blended_);
}

void CorrelationEstimator::observe_window(
    const std::vector<std::vector<double>>& samples) {
  const std::size_t k = blended_.size();
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      std::optional<double> realized;
      if (i < samples.size() && j < samples.size()) {
        realized = window_correlation(samples[i], samples[j]);
      }
      const double next = policy_->update(planned_[i][j], blended_[i][j],
                                          realized, alpha_);
      blended_[i][j] = next;
      blended_[j][i] = next;
    }
  }
  forecast_ = psd_project(blended_);
}

}  // namespace deflate::control
