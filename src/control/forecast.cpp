#include "control/forecast.hpp"

#include <stdexcept>

namespace deflate::control {
namespace {

/// `static`: the t=0 plan is authoritative; realized history is ignored.
/// Feeding planned values back into the optimizer reproduces the planned
/// portfolio bit-for-bit, so a controller running this policy schedules
/// zero moves and pushes unchanged ceilings — the parity baseline.
class StaticForecast final : public ForecastPolicy {
 public:
  [[nodiscard]] double update(double planned, double /*previous*/,
                              std::optional<double> /*realized*/,
                              double /*alpha*/) const override {
    return planned;
  }
};

/// `windowed`: the last window's realized statistic is the forecast.
/// Degenerate windows keep the previous forecast (planned until the
/// first usable window closes).
class WindowedForecast final : public ForecastPolicy {
 public:
  [[nodiscard]] double update(double /*planned*/, double previous,
                              std::optional<double> realized,
                              double /*alpha*/) const override {
    return realized.value_or(previous);
  }
};

/// `ewma`: forecast' = alpha * realized + (1 - alpha) * forecast.
/// Smooths window-to-window noise at the cost of reacting to a genuine
/// regime shift over ~1/alpha windows.
class EwmaForecast final : public ForecastPolicy {
 public:
  [[nodiscard]] double update(double /*planned*/, double previous,
                              std::optional<double> realized,
                              double alpha) const override {
    if (!realized.has_value()) return previous;
    return alpha * *realized + (1.0 - alpha) * previous;
  }
};

}  // namespace

void ControlSurface::register_builtins(
    policy::PolicyRegistry<ControlSurface>& registry) {
  registry.add(
      "static", "trust the t=0 plan; ignore realized history (parity baseline)",
      [] { return std::make_shared<const StaticForecast>(); }, {"planned"});
  registry.add(
      "windowed",
      "last window's realized statistics replace the forecast outright",
      [] { return std::make_shared<const WindowedForecast>(); }, {"window"});
  registry.add(
      "ewma",
      "exponentially weighted blend of realized history into the forecast",
      [] { return std::make_shared<const EwmaForecast>(); }, {},
      {{.name = "alpha",
        .description = "EWMA gain on the newest window (0..1)",
        .default_value = 0.5}});
}

std::shared_ptr<const ForecastPolicy> make_forecast_policy(
    const std::string& name) {
  const auto* entry = ControlRegistry::instance().find(name);
  if (entry == nullptr) {
    throw std::invalid_argument("unknown forecast policy '" + name +
                                "' (expected " +
                                policy::joined_policy_names<ControlSurface>() +
                                ")");
  }
  return entry->make();
}

}  // namespace deflate::control
