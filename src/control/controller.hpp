// FleetController: the online control plane's rolling re-optimization
// loop.
//
// Everything economic in the one-shot pipeline is decided at t=0 from
// the planned trace: the portfolio split (transient/portfolio.hpp), the
// market correlation matrix, the per-class bids and admission ceilings
// (transient/bidding.hpp). A mid-run regime shift — markets
// (de)correlating, a revocation storm, a sustained price spike — is
// invisible to that plan. The controller closes the loop: on a
// configurable window (default 6 simulated hours) it
//
//   1. ingests realized history (price samples per market, revocation
//      counts and survival times, held server-hours) into the online
//      estimators of estimators.hpp, blended through the pluggable
//      ForecastPolicy (forecast.hpp, the registry's "control" surface);
//   2. re-runs PortfolioManager::optimize and BidOptimizer against the
//      forecasts, producing fresh target market weights + class
//      ceilings;
//   3. executes the *delta* against the live fleet as rate-limited
//      drains (at most `max_moves_per_window` servers move per window,
//      never an instant repartition), expressed as synthetic
//      warn/revoke/restore events the simulator's existing
//      MigrationEngine machinery executes, while the new ceilings are
//      pushed into the live AdmissionController at the next tick
//      barrier.
//
// Invariants the simulator's golden tests pin:
//   - controller disabled (or reopt window infinite): the event stream,
//     every decision and every metric are bit-identical to the one-shot
//     path;
//   - `static` forecast: re-optimization reproduces the planned weights
//     and ceilings exactly, so zero moves are scheduled and pushed
//     ceilings equal the planned ones;
//   - zero allowed moves: only admission ceilings change.
//
// The controller owns the authoritative per-server revoke/restore
// timeline (seeded from the plan, rewritten on moves) and can therefore
// bill the realized fleet exactly like TransientMarketEngine::cost_report
// does, but segment-aware: a moved server is billed at its old market's
// spot price until the drain completes and at the new market's price
// after the re-acquisition.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "control/estimators.hpp"
#include "control/forecast.hpp"
#include "sim/time.hpp"
#include "transient/market.hpp"

namespace deflate::control {

/// Mid-run environment change: from `at_hours` on, prices and
/// revocations follow `after` instead of the config the plan was built
/// from. The t=0 plan (weights, bids, ceilings, schedules before the
/// shift) is untouched — the shift changes the world, not the decisions.
/// `at_hours <= 0` disables. Applied by the simulator whether or not the
/// controller is enabled, so a static t=0 plan and a rolling
/// re-optimized run face the same environment (bench/scenario_reopt).
struct RegimeShiftConfig {
  double at_hours = 0.0;
  transient::MarketEngineConfig after;

  [[nodiscard]] bool active() const noexcept { return at_hours > 0.0; }
};

/// SimConfig::control — the online control plane's knobs.
struct ControlConfig {
  /// Off (default) keeps the one-shot t=0 path bit-identical.
  bool enabled = false;
  /// Re-optimization window in simulated hours; infinity (or <= 0)
  /// disables the loop even when `enabled` (estimator-only parity mode).
  double reopt_hours = 6.0;
  /// Server moves the delta executor may schedule per window. 0 =
  /// ceilings-only re-optimization.
  std::size_t max_moves_per_window = 4;
  /// Forecast policy name from the "control" registry surface
  /// (static | ewma | windowed, plugin-capable).
  std::string forecast = "ewma";
  /// EWMA gain (the registry's `alpha` param).
  double ewma_alpha = 0.5;
  /// Optional injected environment change (regime shift).
  RegimeShiftConfig regime_shift;

  [[nodiscard]] bool reopt_active() const noexcept {
    return enabled && std::isfinite(reopt_hours) && reopt_hours > 0.0;
  }
};

/// One future plan event the controller hands back to the simulator —
/// the neutral mirror of the simulator's internal event record, so
/// simcluster depends on control and not the other way around.
struct PlanEvent {
  enum class Kind { Restore, Warn, Revoke };
  sim::SimTime at;
  Kind kind = Kind::Revoke;
  std::size_t server = 0;
  /// Warn only: when the drain window closes (the revocation instant).
  sim::SimTime deadline;
};

/// What one re-optimization produced.
struct ReoptResult {
  /// True when fresh per-class ceilings should be pushed into the live
  /// AdmissionController (at the tick barrier the Reopt event sits on).
  bool ceilings_updated = false;
  std::vector<double> class_ceilings;
  /// Servers scheduled to move this window (<= max_moves_per_window).
  std::size_t moves = 0;
  /// True when the remaining plan-event suffix must be replaced with
  /// `future_events`. Only set when moves were scheduled: a window with
  /// no delta leaves the simulator's queue untouched.
  bool schedule_rewritten = false;
  /// Replacement suffix: every plan event strictly after `now`, sorted
  /// by (time, restore < warn < revoke, server).
  std::vector<PlanEvent> future_events;
};

/// Rewrites the realized environment of an existing plan from
/// `shift.at_hours` on: price-trace suffixes are regenerated from
/// `shift.after` (stitched sample-wise onto the realized prefix) and
/// every transient server's revoke/restore schedule keeps its realized
/// prefix and continues under the new market parameters, with the
/// alternation at the junction repaired. Throws std::invalid_argument
/// when `after` is incompatible (different market count, price step or
/// on-demand rate). No-op when the shift is inactive or at/after the
/// horizon.
void apply_regime_shift(transient::CapacityPlan& plan,
                        const transient::MarketEngineConfig& before,
                        const RegimeShiftConfig& shift, sim::SimTime horizon);

class FleetController {
 public:
  /// `plan` must outlive the controller (the simulator owns both) and
  /// must already be rebound to the realized fleet split and
  /// regime-shifted. `timed_migration` mirrors the simulator: moves
  /// drain through warn windows when true, revoke/restore instantly
  /// when false.
  FleetController(ControlConfig config,
                  const transient::MarketEngineConfig& market,
                  const transient::CapacityPlan& plan, sim::SimTime horizon,
                  bool timed_migration);

  /// Closes the window [last reopt, now), folds its realized history
  /// into the estimators, re-optimizes and returns the delta to execute.
  [[nodiscard]] ReoptResult reoptimize(sim::SimTime now);

  [[nodiscard]] std::uint64_t reopts() const noexcept { return reopts_; }
  [[nodiscard]] std::uint64_t total_moves() const noexcept {
    return total_moves_;
  }

  /// Bills the realized (possibly moved) fleet over [0, horizon) —
  /// TransientMarketEngine::cost_report's algorithm, segment-aware. The
  /// simulator substitutes this report for the engine's only when moves
  /// actually happened, keeping zero-move runs bit-identical.
  [[nodiscard]] transient::CostReport cost_report(double cores_per_server,
                                                  sim::SimTime horizon) const;

 private:
  /// One revoke/restore of one server, tagged with the market the
  /// server occupies when the event fires (moves switch the tag).
  struct TimelineEvent {
    sim::SimTime at;
    bool revoke = true;
    std::size_t market = 0;
    /// Controller-initiated (a move's drain/re-acquire) rather than an
    /// environment revocation: executed and billed like any other event,
    /// but invisible to the estimators — counting our own drains as
    /// market revocations would convince the forecaster an emptied
    /// market is infinitely hostile.
    bool synthetic = false;
  };
  /// The controller's authoritative view of one transient server.
  struct ServerTimeline {
    std::size_t server = 0;
    std::size_t initial_market = 0;
    std::vector<TimelineEvent> events;
    /// A scheduled move's re-acquisition instant; the server is not a
    /// move candidate again until then.
    sim::SimTime move_until;
  };
  /// Snapshot of one server at a re-optimization instant.
  struct ServerStatus {
    bool held = false;
    std::size_t market = 0;
    sim::SimTime prev_event;
    bool has_next_revoke = false;
    sim::SimTime next_revoke;
    std::size_t next_revoke_market = 0;
  };
  /// Realized history of one market over one window.
  struct WindowStats {
    std::size_t revocations = 0;
    double held_hours = 0.0;
    double uptime_hours_sum = 0.0;
    std::size_t uptime_count = 0;
  };

  [[nodiscard]] ServerStatus walk_timeline(const ServerTimeline& timeline,
                                           sim::SimTime from, sim::SimTime now,
                                           std::vector<WindowStats>* stats)
      const;
  [[nodiscard]] std::vector<double> window_samples(std::size_t market,
                                                   sim::SimTime from,
                                                   sim::SimTime now) const;
  /// Market definitions in force at `at` (before vs after the shift),
  /// with the plan's optimized bids applied.
  [[nodiscard]] const std::vector<transient::MarketDef>& defs_at(
      sim::SimTime at) const;
  /// Realized revoke/restore suffix for `server` riding `market` from
  /// `from` on (strictly-after events, alternation-repaired from a held
  /// start), spanning the regime shift when one is configured.
  [[nodiscard]] std::vector<TimelineEvent> environment_schedule(
      std::size_t market, std::size_t server, sim::SimTime from) const;
  /// Schedules one drain+reacquire move; false when the drain would not
  /// complete before the horizon.
  bool schedule_move(ServerTimeline& timeline, std::size_t from_market,
                     std::size_t to_market, sim::SimTime now);
  [[nodiscard]] std::vector<PlanEvent> rebuild_future_events(
      sim::SimTime now) const;

  ControlConfig config_;
  transient::MarketEngineConfig market_;
  const transient::CapacityPlan* plan_;
  sim::SimTime horizon_;
  bool timed_;
  sim::SimTime shift_at_;

  std::shared_ptr<const ForecastPolicy> policy_;
  std::vector<transient::MarketDef> defs_before_;
  std::vector<transient::MarketDef> defs_after_;

  RevocationForecaster forecaster_;
  CorrelationEstimator correlation_;
  /// Blended per-market price forecasts (seeded from the planned specs).
  std::vector<double> price_mean_;
  std::vector<double> price_variance_;
  /// Blended per-class admission ceilings (seeded from the plan).
  std::vector<double> ceilings_;

  std::vector<ServerTimeline> timelines_;
  sim::SimTime window_from_;
  std::uint64_t reopts_ = 0;
  std::uint64_t total_moves_ = 0;
};

}  // namespace deflate::control
