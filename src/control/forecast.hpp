// Forecast blending policies for the online control plane.
//
// The rolling re-optimization loop (controller.hpp) reduces every
// environment statistic it tracks — per-market mean price, price
// variance, revocation rate, pairwise price correlation, per-class bid
// ceilings — to the same scalar question: given the t=0 *planned* value,
// the *previous* forecast, and (maybe) a fresh *realized* observation
// from the window that just closed, what value should the next
// optimization run use? A ForecastPolicy answers that question, and is
// the sixth pluggable decision surface in the policy registry
// (src/policy/registry.hpp):
//
//   static    trust the t=0 plan forever. Realized history is ignored, so
//             re-optimization reproduces the planned portfolio exactly —
//             the controller becomes a no-op (the bit-parity baseline).
//   windowed  trust the last window outright: the realized statistic
//             replaces the forecast whenever the window produced one.
//   ewma      exponentially weighted blend, forecast' = a*realized +
//             (1-a)*forecast (knob `alpha`, default 0.5).
//
// Windows can be degenerate — a constant price trace has zero variance,
// a window shorter than two samples has no variance at all, a calm
// window observes zero revocations. Estimators (estimators.hpp) express
// that as a missing observation (nullopt), and every builtin policy then
// keeps the previous forecast, whose chain bottoms out at the planned
// value. A forecast is therefore always finite and usable; degeneracy
// never produces NaN and never throws.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "policy/registry.hpp"

namespace deflate::control {

/// One scalar step of the forecast recurrence. Stateless and const: the
/// same policy object serves every statistic the controller tracks.
class ForecastPolicy {
 public:
  virtual ~ForecastPolicy() = default;

  /// Next forecast of one statistic. `planned` is the t=0 plan's value,
  /// `previous` the forecast the last window produced (== planned before
  /// any window closed), `realized` the new window's observation — or
  /// nullopt when the window was degenerate (no samples, zero variance,
  /// zero observed revocations). `alpha` is the EWMA gain; policies that
  /// do not blend ignore it.
  [[nodiscard]] virtual double update(double planned, double previous,
                                      std::optional<double> realized,
                                      double alpha) const = 0;
};

/// Registry surface for forecast policies ("control" in list-policies,
/// the Hello frame and PolicySet validation).
struct ControlSurface {
  static constexpr const char* kSurfaceName = "control";
  static constexpr const char* kSurfaceDescription =
      "how the online control plane forecasts market statistics between "
      "re-optimization windows";
  using Factory = std::function<std::shared_ptr<const ForecastPolicy>()>;
  static void register_builtins(policy::PolicyRegistry<ControlSurface>&);
};

using ControlRegistry = policy::PolicyRegistry<ControlSurface>;

/// Resolves a registered forecast policy by name (aliases accepted);
/// throws std::invalid_argument naming the valid choices when unknown.
[[nodiscard]] std::shared_ptr<const ForecastPolicy> make_forecast_policy(
    const std::string& name);

}  // namespace deflate::control
