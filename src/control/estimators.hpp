// Online estimators feeding the rolling re-optimization loop.
//
// Each estimator folds one closed window of realized history into a
// forecast through a pluggable ForecastPolicy (forecast.hpp):
//
//   RevocationForecaster   per-market Poisson revocation rate fitted as
//                          observed revocations / held server-hours, plus
//                          the mean realized uptime (restore-to-revoke
//                          survival) as the temporal-constraint
//                          observable of Kadupitiya et al.
//   CorrelationEstimator   windowed empirical correlation matrix over
//                          realized per-market price samples, projected
//                          to the PSD cone before the portfolio
//                          optimizer may consume it.
//
// Degeneracy contract (tested in tests/test_control.cpp): a window with
// no usable signal — zero revocations, zero held hours, fewer than two
// price samples, a constant (zero-variance) trace, a single market —
// yields a *missing* observation, and the ForecastPolicy falls back to
// the previous forecast (planned at bottom). Estimates are always
// finite; nothing here throws on degenerate input.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "control/forecast.hpp"

namespace deflate::control {

/// Projects a symmetric matrix onto the positive-semidefinite cone and
/// renormalizes it to a correlation matrix (unit diagonal, entries
/// clamped to [-1, 1]). Eigenvalues are found by cyclic Jacobi rotation
/// (the matrices here are tiny — one row per market), negatives clamped
/// to zero, and the matrix reconstructed. Rank-deficient input (e.g. two
/// perfectly correlated markets) is already PSD and passes through
/// unchanged up to round-off.
[[nodiscard]] std::vector<std::vector<double>> psd_project(
    std::vector<std::vector<double>> matrix);

/// Mean and (population) variance of a sample window; nullopt when the
/// window holds fewer than two samples. A constant window reports zero
/// variance but a valid mean.
[[nodiscard]] std::optional<std::pair<double, double>> window_mean_variance(
    const std::vector<double>& samples);

/// Per-market revocation-rate forecaster. Feed one closed window per
/// market per step; read the blended rate back for the optimizer.
class RevocationForecaster {
 public:
  /// `planned_rates` / `planned_uptimes` come from the t=0 plan's
  /// MarketSpec estimates; they seed the forecast chain and remain the
  /// fallback while windows stay empty.
  RevocationForecaster(std::shared_ptr<const ForecastPolicy> policy,
                       double alpha, std::vector<double> planned_rates,
                       std::vector<double> planned_uptime_hours);

  /// Folds one window in: `revocations` observed revoke events,
  /// `held_hours` the integral of held servers over the window,
  /// `uptime_hours_sum` the summed realized uptimes of the spans those
  /// revocations ended (over `uptime_count` spans). Zero observed
  /// revocations is treated as *no* evidence — the realized rate is
  /// missing, not zero — so calm windows fall back to the planned rate
  /// instead of convincing the optimizer revocations stopped.
  void observe_window(std::size_t market, std::size_t revocations,
                      double held_hours, double uptime_hours_sum,
                      std::size_t uptime_count);

  [[nodiscard]] double rate_per_hour(std::size_t market) const;
  [[nodiscard]] double mean_uptime_hours(std::size_t market) const;
  [[nodiscard]] std::size_t markets() const { return rates_.size(); }

 private:
  std::shared_ptr<const ForecastPolicy> policy_;
  double alpha_;
  std::vector<double> planned_rates_;
  std::vector<double> planned_uptimes_;
  std::vector<double> rates_;
  std::vector<double> uptimes_;
};

/// Windowed empirical correlation over realized per-market price
/// samples, blended elementwise through the ForecastPolicy and
/// PSD-projected before use. A 1x1 fleet is always [[1.0]].
class CorrelationEstimator {
 public:
  /// `planned` is the correlation matrix the t=0 plan optimized against
  /// (empty means identity). It seeds the forecast and anchors the
  /// `static` policy.
  CorrelationEstimator(std::shared_ptr<const ForecastPolicy> policy,
                       double alpha, std::size_t markets,
                       std::vector<std::vector<double>> planned);

  /// Folds one window of aligned per-market samples in. Pairs whose
  /// window is degenerate (fewer than two aligned samples, or either
  /// trace constant over the window) keep their previous forecast.
  void observe_window(const std::vector<std::vector<double>>& samples);

  /// The blended, PSD-projected, unit-diagonal forecast.
  [[nodiscard]] const std::vector<std::vector<double>>& forecast() const {
    return forecast_;
  }

 private:
  std::shared_ptr<const ForecastPolicy> policy_;
  double alpha_;
  std::vector<std::vector<double>> planned_;
  /// Raw blended entries (pre-projection) so one noisy window cannot
  /// permanently distort later blends through the projection step.
  std::vector<std::vector<double>> blended_;
  std::vector<std::vector<double>> forecast_;
};

}  // namespace deflate::control
