#include "control/controller.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "transient/bidding.hpp"
#include "transient/portfolio.hpp"
#include "transient/revocation.hpp"
#include "transient/spot_price.hpp"

namespace deflate::control {
namespace {

/// Mirrors TransientMarketEngine's per-market revocation-stream seeding,
/// so schedule suffixes regenerated here continue the exact per-server
/// keyed streams the plan's own schedules were drawn from.
std::uint64_t market_stream_seed(std::uint64_t seed, std::size_t market) {
  return seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(market);
}

/// Mirrors TransientMarketEngine's largest-remainder split (ties to the
/// lower index) so a `static` forecast reproduces the planned partition
/// exactly and therefore schedules zero moves.
std::vector<std::size_t> split_counts(std::size_t total,
                                      const std::vector<double>& weights) {
  const std::size_t k = weights.size();
  std::vector<std::size_t> counts(k, 0);
  if (k == 0 || total == 0) return counts;
  double sum = 0.0;
  for (const double w : weights) sum += std::max(0.0, w);
  if (sum <= 0.0) {
    counts[0] = total;
    return counts;
  }
  std::vector<double> remainder(k, 0.0);
  std::size_t assigned = 0;
  for (std::size_t m = 0; m < k; ++m) {
    const double exact =
        std::max(0.0, weights[m]) / sum * static_cast<double>(total);
    counts[m] = static_cast<std::size_t>(std::floor(exact));
    remainder[m] = exact - std::floor(exact);
    assigned += counts[m];
  }
  std::vector<std::size_t> order(k);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (remainder[a] != remainder[b]) return remainder[a] > remainder[b];
    return a < b;
  });
  for (std::size_t i = 0; assigned < total; ++i) {
    ++counts[order[i % k]];
    ++assigned;
  }
  return counts;
}

/// Applies the plan's optimized bids onto a market-def list (the same
/// re-application TransientMarketEngine::schedule_markets performs).
void apply_optimized_bids(std::vector<transient::MarketDef>& defs,
                          const std::vector<double>& optimized_bids) {
  for (std::size_t m = 0; m < optimized_bids.size() && m < defs.size(); ++m) {
    defs[m].revocation.bid = optimized_bids[m];
  }
}

int plan_event_rank(PlanEvent::Kind kind) noexcept {
  switch (kind) {
    case PlanEvent::Kind::Restore:
      return 0;
    case PlanEvent::Kind::Warn:
      return 1;
    case PlanEvent::Kind::Revoke:
      return 2;
  }
  return 3;
}

}  // namespace

void apply_regime_shift(transient::CapacityPlan& plan,
                        const transient::MarketEngineConfig& before,
                        const RegimeShiftConfig& shift, sim::SimTime horizon) {
  if (!shift.active() || plan.markets.empty()) return;
  const sim::SimTime at = sim::SimTime::from_hours(shift.at_hours);
  if (at >= horizon) return;

  std::vector<transient::MarketDef> defs_after =
      shift.after.effective_markets();
  const std::vector<transient::MarketDef> defs_before =
      before.effective_markets();
  if (defs_after.size() != plan.markets.size()) {
    throw std::invalid_argument(
        "regime shift: the market count must not change mid-run");
  }
  for (std::size_t m = 0; m < defs_after.size(); ++m) {
    if (defs_after[m].price.step != plan.markets[m].prices.step()) {
      throw std::invalid_argument(
          "regime shift: the price sampling step must not change mid-run");
    }
  }
  if (defs_after.front().price.on_demand_price !=
      defs_before.front().price.on_demand_price) {
    throw std::invalid_argument(
        "regime shift: the on-demand rate must not change mid-run");
  }

  // Price traces: realized prefix, new-regime suffix (sample-wise stitch
  // on the shared step grid).
  transient::CorrelatedPriceConfig price_config;
  price_config.markets.reserve(defs_after.size());
  for (const transient::MarketDef& def : defs_after) {
    price_config.markets.push_back(def.price);
  }
  price_config.correlation = shift.after.correlation;
  price_config.common_shock_rate_per_hour =
      shift.after.common_shock_rate_per_hour;
  price_config.common_shock_multiplier = shift.after.common_shock_multiplier;
  price_config.common_shock_decay_hours = shift.after.common_shock_decay_hours;
  const std::vector<transient::PriceTrace> post =
      transient::CorrelatedPriceModel(std::move(price_config),
                                      shift.after.seed,
                                      /*stream=*/0)
          .generate(horizon);

  for (std::size_t m = 0; m < plan.markets.size(); ++m) {
    const sim::SimTime step = plan.markets[m].prices.step();
    std::vector<double> samples = plan.markets[m].prices.samples();
    const std::vector<double>& post_samples = post[m].samples();
    const std::size_t cut =
        static_cast<std::size_t>(at.micros() / step.micros());
    for (std::size_t i = cut; i < samples.size() && i < post_samples.size();
         ++i) {
      samples[i] = post_samples[i];
    }
    plan.markets[m].prices = transient::PriceTrace(step, std::move(samples));
  }
  plan.prices = plan.markets[0].prices;

  // Revocation schedules: keep every realized event before the shift,
  // continue each server under the new regime's keyed stream from the
  // shift on, and repair the held/down alternation at the junction.
  apply_optimized_bids(defs_after, plan.optimized_bids);
  plan.revocations.clear();
  for (std::size_t m = 0; m < plan.markets.size(); ++m) {
    transient::MarketPlan& market = plan.markets[m];
    transient::RevocationEngine engine(
        defs_after[m].revocation, market_stream_seed(shift.after.seed, m));
    engine.set_price_trace(&market.prices);
    std::vector<transient::RevocationEvent> rebuilt;
    rebuilt.reserve(market.revocations.size());
    for (const std::size_t server : market.servers) {
      std::vector<transient::RevocationEvent> events;
      for (const transient::RevocationEvent& event : market.revocations) {
        if (event.server == server && event.at < at) events.push_back(event);
      }
      for (const transient::RevocationEvent& event :
           engine.schedule_for(server, horizon)) {
        if (event.at >= at) events.push_back(event);
      }
      bool held = true;
      for (const transient::RevocationEvent& event : events) {
        if (event.revoke == held) {
          rebuilt.push_back(event);
          held = !held;
        }
      }
    }
    std::sort(rebuilt.begin(), rebuilt.end(), transient::schedule_before);
    market.revocations = std::move(rebuilt);
    plan.revocations.insert(plan.revocations.end(), market.revocations.begin(),
                            market.revocations.end());
  }
  std::sort(plan.revocations.begin(), plan.revocations.end(),
            transient::schedule_before);
}

FleetController::FleetController(ControlConfig config,
                                 const transient::MarketEngineConfig& market,
                                 const transient::CapacityPlan& plan,
                                 sim::SimTime horizon, bool timed_migration)
    : config_(std::move(config)),
      market_(market),
      plan_(&plan),
      horizon_(horizon),
      timed_(timed_migration),
      shift_at_(config_.regime_shift.active() &&
                        sim::SimTime::from_hours(config_.regime_shift.at_hours) <
                            horizon
                    ? sim::SimTime::from_hours(config_.regime_shift.at_hours)
                    : sim::SimTime::max()),
      policy_(make_forecast_policy(config_.forecast)),
      defs_before_(market_.effective_markets()),
      defs_after_(config_.regime_shift.active()
                      ? config_.regime_shift.after.effective_markets()
                      : std::vector<transient::MarketDef>{}),
      forecaster_(policy_, config_.ewma_alpha, {}, {}),
      correlation_(policy_, config_.ewma_alpha, plan.markets.size(),
                   plan.planned_correlation) {
  apply_optimized_bids(defs_before_, plan.optimized_bids);
  apply_optimized_bids(defs_after_, plan.optimized_bids);

  const std::size_t k = plan.markets.size();
  std::vector<double> planned_rates(k, 0.0);
  std::vector<double> planned_uptimes(k, 0.0);
  price_mean_.resize(k, 0.0);
  price_variance_.resize(k, 0.0);
  for (std::size_t m = 0; m < k; ++m) {
    const transient::MarketSpec& spec = plan.markets[m].spec;
    planned_rates[m] = spec.revocation_rate_per_hour;
    planned_uptimes[m] = spec.revocation_rate_per_hour > 0.0
                             ? 1.0 / spec.revocation_rate_per_hour
                             : 0.0;
    price_mean_[m] = spec.expected_price;
    price_variance_[m] = spec.price_variance;
  }
  forecaster_ = RevocationForecaster(policy_, config_.ewma_alpha,
                                     std::move(planned_rates),
                                     std::move(planned_uptimes));
  ceilings_ = plan.class_ceilings;

  timelines_.reserve(plan.transient_servers.size());
  for (std::size_t m = 0; m < k; ++m) {
    for (const std::size_t server : plan.markets[m].servers) {
      ServerTimeline timeline;
      timeline.server = server;
      timeline.initial_market = m;
      for (const transient::RevocationEvent& event :
           plan.markets[m].revocations) {
        if (event.server == server) {
          timeline.events.push_back({event.at, event.revoke, m});
        }
      }
      timelines_.push_back(std::move(timeline));
    }
  }
  std::sort(timelines_.begin(), timelines_.end(),
            [](const ServerTimeline& a, const ServerTimeline& b) {
              return a.server < b.server;
            });
}

FleetController::ServerStatus FleetController::walk_timeline(
    const ServerTimeline& timeline, sim::SimTime from, sim::SimTime now,
    std::vector<WindowStats>* stats) const {
  bool held = true;
  sim::SimTime held_from;
  std::size_t market = timeline.initial_market;
  ServerStatus status;
  const auto credit_held = [&](sim::SimTime a, sim::SimTime b) {
    if (stats == nullptr) return;
    const sim::SimTime lo = std::max(a, from);
    const sim::SimTime hi = std::min(b, now);
    if (hi > lo) (*stats)[market].held_hours += (hi - lo).hours();
  };
  for (std::size_t e = 0; e < timeline.events.size(); ++e) {
    const TimelineEvent& event = timeline.events[e];
    if (event.at > now) {
      if (event.revoke) {
        status.has_next_revoke = true;
        status.next_revoke = event.at;
        status.next_revoke_market = event.market;
      }
      break;
    }
    if (event.revoke && held) {
      credit_held(held_from, event.at);
      if (stats != nullptr && event.at > from && !event.synthetic) {
        ++(*stats)[market].revocations;
        (*stats)[market].uptime_hours_sum += (event.at - held_from).hours();
        ++(*stats)[market].uptime_count;
      }
      held = false;
    } else if (!event.revoke && !held) {
      held = true;
      held_from = event.at;
      market = event.market;
    }
    status.prev_event = event.at;
  }
  if (held) credit_held(held_from, now);
  status.held = held;
  status.market = market;
  return status;
}

std::vector<double> FleetController::window_samples(std::size_t market,
                                                    sim::SimTime from,
                                                    sim::SimTime now) const {
  const transient::PriceTrace& trace = plan_->markets[market].prices;
  if (trace.empty() || trace.step().micros() <= 0) return {};
  const auto step = trace.step().micros();
  const std::size_t begin = static_cast<std::size_t>(from.micros() / step);
  const std::size_t end = std::min(
      trace.samples().size(), static_cast<std::size_t>(now.micros() / step));
  if (begin >= end) return {};
  return {trace.samples().begin() + static_cast<std::ptrdiff_t>(begin),
          trace.samples().begin() + static_cast<std::ptrdiff_t>(end)};
}

const std::vector<transient::MarketDef>& FleetController::defs_at(
    sim::SimTime at) const {
  return (at >= shift_at_ && !defs_after_.empty()) ? defs_after_
                                                   : defs_before_;
}

std::vector<FleetController::TimelineEvent>
FleetController::environment_schedule(std::size_t market, std::size_t server,
                                      sim::SimTime from) const {
  std::vector<transient::RevocationEvent> raw;
  const bool shifted = shift_at_ < horizon_;
  const auto collect = [&](const std::vector<transient::MarketDef>& defs,
                           std::uint64_t seed, sim::SimTime lo,
                           sim::SimTime hi, bool include_lo) {
    transient::RevocationEngine engine(defs[market].revocation,
                                       market_stream_seed(seed, market));
    engine.set_price_trace(&plan_->markets[market].prices);
    for (const transient::RevocationEvent& event :
         engine.schedule_for(server, horizon_)) {
      const bool above = include_lo ? event.at >= lo : event.at > lo;
      if (above && event.at < hi) raw.push_back(event);
    }
  };
  if (!shifted) {
    collect(defs_before_, market_.seed, from, horizon_, false);
  } else if (from >= shift_at_) {
    collect(defs_after_, config_.regime_shift.after.seed, from, horizon_,
            false);
  } else {
    collect(defs_before_, market_.seed, from, shift_at_, false);
    collect(defs_after_, config_.regime_shift.after.seed, shift_at_, horizon_,
            true);
  }
  // The server re-enters the market held; repair the alternation at the
  // junction (and across the shift) by keeping only state-toggling
  // events.
  std::vector<TimelineEvent> out;
  out.reserve(raw.size());
  bool held = true;
  for (const transient::RevocationEvent& event : raw) {
    if (event.revoke == held) {
      out.push_back({event.at, event.revoke, market});
      held = !held;
    }
  }
  return out;
}

bool FleetController::schedule_move(ServerTimeline& timeline,
                                    std::size_t from_market,
                                    std::size_t to_market, sim::SimTime now) {
  const sim::SimTime eps = sim::SimTime::from_micros(1);
  const double warn_hours =
      timed_ ? defs_at(now)[from_market].revocation.warning_hours : 0.0;
  sim::SimTime revoke_at = now + eps;
  if (warn_hours > 0.0) revoke_at += sim::SimTime::from_hours(warn_hours);
  const sim::SimTime restore_at = revoke_at + eps;
  if (restore_at >= horizon_) return false;

  while (!timeline.events.empty() && timeline.events.back().at > now) {
    timeline.events.pop_back();
  }
  timeline.events.push_back({revoke_at, true, from_market, /*synthetic=*/true});
  timeline.events.push_back(
      {restore_at, false, to_market, /*synthetic=*/true});
  std::vector<TimelineEvent> suffix =
      environment_schedule(to_market, timeline.server, restore_at);
  timeline.events.insert(timeline.events.end(), suffix.begin(), suffix.end());
  timeline.move_until = restore_at;
  return true;
}

std::vector<PlanEvent> FleetController::rebuild_future_events(
    sim::SimTime now) const {
  std::vector<PlanEvent> out;
  for (const ServerTimeline& timeline : timelines_) {
    for (std::size_t e = 0; e < timeline.events.size(); ++e) {
      const TimelineEvent& event = timeline.events[e];
      if (event.at <= now) continue;
      out.push_back({event.at,
                     event.revoke ? PlanEvent::Kind::Revoke
                                  : PlanEvent::Kind::Restore,
                     timeline.server,
                     sim::SimTime{}});
      if (event.revoke && timed_) {
        // Mirror the simulator's warn synthesis exactly: warn at
        // deadline minus the market's warning window, clamped to the
        // server's previous event and t=0; a warn that would land at or
        // before `now` already fired and must not be re-emitted.
        const double warn_hours =
            event.market < defs_before_.size()
                ? defs_before_[event.market].revocation.warning_hours
                : 0.0;
        if (warn_hours > 0.0) {
          sim::SimTime warn_at =
              event.at - sim::SimTime::from_hours(warn_hours);
          const sim::SimTime prev =
              e > 0 ? timeline.events[e - 1].at : sim::SimTime{};
          if (warn_at < prev) warn_at = prev;
          if (warn_at < sim::SimTime{}) warn_at = sim::SimTime{};
          if (warn_at > now && warn_at < event.at) {
            out.push_back(
                {warn_at, PlanEvent::Kind::Warn, timeline.server, event.at});
          }
        }
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const PlanEvent& a, const PlanEvent& b) {
    if (a.at != b.at) return a.at < b.at;
    const int ra = plan_event_rank(a.kind);
    const int rb = plan_event_rank(b.kind);
    if (ra != rb) return ra < rb;
    return a.server < b.server;
  });
  return out;
}

ReoptResult FleetController::reoptimize(sim::SimTime now) {
  ++reopts_;
  const sim::SimTime from = window_from_;
  const std::size_t k = plan_->markets.size();
  ReoptResult out;

  // 1. Fold the closed window's realized history into the estimators.
  std::vector<WindowStats> stats(k);
  std::vector<ServerStatus> status(timelines_.size());
  for (std::size_t i = 0; i < timelines_.size(); ++i) {
    status[i] = walk_timeline(timelines_[i], from, now, &stats);
  }
  std::vector<std::vector<double>> samples(k);
  for (std::size_t m = 0; m < k; ++m) {
    samples[m] = window_samples(m, from, now);
  }
  for (std::size_t m = 0; m < k; ++m) {
    forecaster_.observe_window(m, stats[m].revocations, stats[m].held_hours,
                               stats[m].uptime_hours_sum,
                               stats[m].uptime_count);
    std::optional<double> realized_mean;
    std::optional<double> realized_variance;
    if (const auto mv = window_mean_variance(samples[m])) {
      realized_mean = mv->first;
      realized_variance = mv->second;
    }
    const transient::MarketSpec& planned = plan_->markets[m].spec;
    price_mean_[m] = policy_->update(planned.expected_price, price_mean_[m],
                                     realized_mean, config_.ewma_alpha);
    price_variance_[m] =
        policy_->update(planned.price_variance, price_variance_[m],
                        realized_variance, config_.ewma_alpha);
  }
  correlation_.observe_window(samples);

  // 2. Re-run the portfolio against the forecasts. The on-demand /
  // transient split is fixed for the run (on-demand servers are sunk
  // capacity); re-optimization redistributes the transient fleet across
  // the markets by the fresh relative weights.
  std::vector<transient::MarketSpec> specs(k);
  for (std::size_t m = 0; m < k; ++m) {
    specs[m] = plan_->markets[m].spec;
    specs[m].expected_price = price_mean_[m];
    specs[m].price_variance = price_variance_[m];
    specs[m].revocation_rate_per_hour = forecaster_.rate_per_hour(m);
  }
  std::vector<double> target_weights(k, 0.0);
  if (market_.use_portfolio) {
    const transient::PortfolioManager manager(market_.portfolio);
    // Mirror plan(): the legacy single market keeps the scalar
    // correlation path so a `static` forecast reproduces it bit-exactly.
    const transient::PortfolioResult result =
        market_.markets.empty()
            ? manager.optimize(specs)
            : manager.optimize(specs, correlation_.forecast());
    for (std::size_t m = 0; m < k; ++m) {
      target_weights[m] = result.weights[m + 1];
    }
  } else {
    for (std::size_t m = 0; m < k; ++m) {
      target_weights[m] = plan_->markets[m].weight;
    }
  }

  // 3. Fresh per-class admission ceilings from the window's realized
  // prices (pushed at the Reopt tick barrier; identical values under a
  // degenerate window or the `static` policy).
  if (market_.optimize_bids && !ceilings_.empty()) {
    std::vector<std::optional<double>> realized(ceilings_.size());
    bool window_ok = true;
    for (std::size_t m = 0; m < k; ++m) {
      if (samples[m].size() < 2) window_ok = false;
    }
    if (window_ok) {
      transient::BidOptimizerConfig bidding = market_.bidding;
      bidding.on_demand_price = defs_at(now).front().price.on_demand_price;
      const transient::BidOptimizer optimizer(bidding);
      double weight_sum = 0.0;
      for (const double w : target_weights) weight_sum += std::max(0.0, w);
      std::vector<std::vector<transient::ClassBid>> bids(k);
      for (std::size_t m = 0; m < k; ++m) {
        bids[m] = optimizer.optimize_classes(
            transient::PriceTrace(plan_->markets[m].prices.step(), samples[m]),
            defs_at(now)[m].revocation);
      }
      for (std::size_t c = 0; c < realized.size(); ++c) {
        double ceiling = 0.0;
        bool have = true;
        for (std::size_t m = 0; m < k; ++m) {
          if (c >= bids[m].size()) {
            have = false;
            break;
          }
          const double w = weight_sum > 0.0
                               ? std::max(0.0, target_weights[m]) / weight_sum
                               : 1.0 / static_cast<double>(k);
          ceiling += w * bids[m][c].bid;
        }
        if (have) realized[c] = ceiling;
      }
    }
    for (std::size_t c = 0; c < ceilings_.size(); ++c) {
      ceilings_[c] = policy_->update(plan_->class_ceilings[c], ceilings_[c],
                                     realized[c], config_.ewma_alpha);
    }
    out.ceilings_updated = true;
    out.class_ceilings = ceilings_;
  }

  // 4. Delta execution: rate-limited drains toward the fresh partition,
  // never an instant repartition.
  if (market_.use_portfolio && config_.max_moves_per_window > 0 && k > 1 &&
      !timelines_.empty()) {
    std::vector<long long> delta(k, 0);
    for (const ServerStatus& s : status) ++delta[s.market];
    const std::vector<std::size_t> target =
        split_counts(timelines_.size(), target_weights);
    if (std::getenv("DEFLATE_CONTROL_DEBUG") != nullptr) {
      std::fprintf(stderr, "reopt t=%.1fh\n", now.hours());
      for (std::size_t m = 0; m < k; ++m) {
        std::fprintf(stderr,
                     "  m%zu mean=%.3f var=%.4f rate=%.3f w=%.3f cur=%lld "
                     "target=%zu\n",
                     m, price_mean_[m], price_variance_[m],
                     forecaster_.rate_per_hour(m), target_weights[m], delta[m],
                     target[m]);
      }
    }
    for (std::size_t m = 0; m < k; ++m) {
      delta[m] -= static_cast<long long>(target[m]);
    }
    std::size_t budget = config_.max_moves_per_window;
    std::size_t moved = 0;
    for (std::size_t i = 0; i < timelines_.size() && budget > 0; ++i) {
      const ServerStatus& s = status[i];
      if (!s.held || delta[s.market] <= 0) continue;
      if (timelines_[i].move_until > now) continue;
      std::size_t dst = k;
      for (std::size_t m = 0; m < k; ++m) {
        if (delta[m] < 0) {
          dst = m;
          break;
        }
      }
      if (dst == k) break;
      // A server the market itself will revoke before the drain could
      // complete cannot be moved (this also skips drains already in
      // their warning window).
      const double warn_hours =
          timed_ ? defs_at(now)[s.market].revocation.warning_hours : 0.0;
      sim::SimTime drain_end = now + sim::SimTime::from_micros(2);
      if (warn_hours > 0.0) drain_end += sim::SimTime::from_hours(warn_hours);
      if (s.has_next_revoke && s.next_revoke <= drain_end) continue;
      if (!schedule_move(timelines_[i], s.market, dst, now)) continue;
      --delta[s.market];
      ++delta[dst];
      --budget;
      ++moved;
    }
    if (moved > 0) {
      total_moves_ += moved;
      out.moves = moved;
      out.schedule_rewritten = true;
      out.future_events = rebuild_future_events(now);
    }
  }

  window_from_ = now;
  return out;
}

transient::CostReport FleetController::cost_report(double cores_per_server,
                                                   sim::SimTime horizon) const {
  transient::CostReport report;
  const double hours = horizon.hours();
  if (hours <= 0.0 || cores_per_server <= 0.0) return report;
  const double on_demand_rate = defs_before_.front().price.on_demand_price;
  const std::size_t fleet =
      plan_->on_demand_servers + plan_->transient_servers.size();

  report.on_demand_core_hours =
      static_cast<double>(plan_->on_demand_servers) * cores_per_server * hours;
  report.on_demand_cost = report.on_demand_core_hours * on_demand_rate;
  report.all_on_demand_cost =
      static_cast<double>(fleet) * cores_per_server * hours * on_demand_rate;

  const std::size_t k = plan_->markets.size();
  report.per_market.resize(k);
  for (std::size_t m = 0; m < k; ++m) {
    report.per_market[m].name = plan_->markets[m].name;
  }
  // Held-interval billing, segment-aware: each held span is billed at
  // the spot price of the market the server occupied during that span.
  // Timelines iterate in ascending server order, so the summation order
  // — and the report — is deterministic.
  for (const ServerTimeline& timeline : timelines_) {
    bool held = true;
    sim::SimTime held_from;
    std::size_t market = timeline.initial_market;
    const auto bill = [&](sim::SimTime until) {
      transient::CostReport::MarketCost& entry = report.per_market[market];
      entry.cost += plan_->markets[market].prices.integral_over(held_from,
                                                                until) *
                    cores_per_server;
      entry.core_hours += (until - held_from).hours() * cores_per_server;
    };
    for (const TimelineEvent& event : timeline.events) {
      if (event.revoke && held) {
        bill(event.at);
        held = false;
      } else if (!event.revoke && !held) {
        held = true;
        held_from = event.at;
        market = event.market;
      }
    }
    if (held) bill(horizon);
    ++report.per_market[market].servers;
  }
  for (const transient::CostReport::MarketCost& entry : report.per_market) {
    report.transient_cost += entry.cost;
    report.transient_core_hours += entry.core_hours;
  }
  return report;
}

}  // namespace deflate::control
