#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace deflate::util {

std::string format_double(double value, int precision) {
  if (std::isnan(value)) return "-";
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return ss.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(headers_.size());
  rows_.push_back(std::move(row));
}

void Table::add_row_doubles(const std::vector<double>& row, int precision) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (const double v : row) cells.push_back(format_double(v, precision));
  add_row(std::move(cells));
}

void Table::add_row_labeled(const std::string& label, const std::vector<double>& row,
                            int precision) {
  std::vector<std::string> cells;
  cells.reserve(row.size() + 1);
  cells.push_back(label);
  for (const double v : row) cells.push_back(format_double(v, precision));
  add_row(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      out << (i ? "  " : "") << std::left << std::setw(static_cast<int>(widths[i]))
          << cells[i];
    }
    out << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace deflate::util
