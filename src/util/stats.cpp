#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace deflate::util {

void RunningStats::push(double x) noexcept {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  sum_ += other.sum_;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double quantile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) throw std::invalid_argument("quantile of empty range");
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= sorted.size()) return sorted[sorted.size() - 1];
  return sorted[idx] * (1.0 - frac) + sorted[idx + 1] * frac;
}

double quantile(std::span<const double> values, double q) {
  std::vector<double> copy(values.begin(), values.end());
  std::sort(copy.begin(), copy.end());
  return quantile_sorted(copy, q);
}

BoxStats BoxStats::from(std::span<const double> values) {
  BoxStats out;
  if (values.empty()) return out;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  out.min = sorted.front();
  out.q1 = quantile_sorted(sorted, 0.25);
  out.median = quantile_sorted(sorted, 0.50);
  out.q3 = quantile_sorted(sorted, 0.75);
  out.max = sorted.back();
  out.count = sorted.size();
  return out;
}

Summary Summary::from(std::span<const double> values) {
  Summary out;
  if (values.empty()) return out;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  double sum = 0.0;
  for (const double v : sorted) sum += v;
  out.mean = sum / static_cast<double>(sorted.size());
  out.p50 = quantile_sorted(sorted, 0.50);
  out.p90 = quantile_sorted(sorted, 0.90);
  out.p95 = quantile_sorted(sorted, 0.95);
  out.p99 = quantile_sorted(sorted, 0.99);
  out.min = sorted.front();
  out.max = sorted.back();
  out.count = sorted.size();
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram requires hi > lo and bins > 0");
  }
}

void Histogram::add(double x) noexcept {
  auto bin = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  bin = std::clamp<std::ptrdiff_t>(bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_lo(std::size_t bin) const noexcept {
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const noexcept {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

double Histogram::cdf(double x) const noexcept {
  if (total_ == 0) return 0.0;
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  const auto edge = static_cast<std::size_t>((x - lo_) / width_);
  std::uint64_t below = 0;
  for (std::size_t i = 0; i < edge && i < counts_.size(); ++i) below += counts_[i];
  return static_cast<double>(below) / static_cast<double>(total_);
}

}  // namespace deflate::util
