#include "util/cli.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace deflate::util {

namespace {

std::optional<double> parse_double(const std::string& text) {
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0') return std::nullopt;
  return value;
}

/// Compact bound rendering for error messages ("0", "-1", "0.35").
std::string bound(double value) {
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    return std::to_string(static_cast<long long>(value));
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

}  // namespace

double CliArgs::get_double(const std::string& key, double fallback) const {
  const auto it = flags.find(key);
  if (it == flags.end()) return fallback;
  const std::optional<double> value = parse_double(it->second);
  if (!value) {
    throw std::invalid_argument("flag --" + key + ": expected a number, got '" +
                                it->second + "'");
  }
  return *value;
}

CliArgs parse_cli(int argc, const char* const* argv) {
  CliArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      const std::string key = token.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        args.flags[key] = argv[++i];
      } else {
        args.flags[key] = "1";  // boolean flag
      }
    } else {
      args.positional.push_back(token);
    }
  }
  return args;
}

std::optional<double> CliValidator::parsed(const std::string& key) {
  const auto it = args_.flags.find(key);
  if (it == args_.flags.end()) return std::nullopt;
  const std::optional<double> value = parse_double(it->second);
  if (!value) {
    errors_.push_back("flag --" + key + ": expected a number, got '" +
                      it->second + "'");
  }
  return value;
}

CliValidator& CliValidator::allow_only(
    const std::vector<std::string>& allowed) {
  for (const auto& [key, value] : args_.flags) {
    bool known = false;
    for (const std::string& candidate : allowed) {
      if (key == candidate) {
        known = true;
        break;
      }
    }
    if (!known) errors_.push_back("unknown flag --" + key);
  }
  return *this;
}

CliValidator& CliValidator::require_at_least(const std::string& key,
                                             double min) {
  if (const auto value = parsed(key); value && *value < min) {
    errors_.push_back("flag --" + key + ": must be >= " + bound(min) +
                      ", got " + args_.flags.at(key));
  }
  return *this;
}

CliValidator& CliValidator::require_in_range(const std::string& key,
                                             double min, double max) {
  if (const auto value = parsed(key); value && (*value < min || *value > max)) {
    errors_.push_back("flag --" + key + ": must be in [" + bound(min) + ", " +
                      bound(max) + "], got " + args_.flags.at(key));
  }
  return *this;
}

CliValidator& CliValidator::require_integer_at_least(const std::string& key,
                                                     double min) {
  if (const auto value = parsed(key)) {
    if (*value < min || *value != std::floor(*value)) {
      errors_.push_back("flag --" + key + ": must be a whole number >= " +
                        bound(min) + ", got " + args_.flags.at(key));
    }
  }
  return *this;
}

CliValidator& CliValidator::require_together(const std::string& key,
                                             const std::string& requires_key,
                                             const std::string& detail) {
  if (args_.has(key) && !args_.has(requires_key)) {
    errors_.push_back("flag --" + key + " requires --" + requires_key + " (" +
                      detail + ")");
  }
  return *this;
}

CliValidator& CliValidator::check(bool ok, const std::string& error) {
  if (!ok) errors_.push_back(error);
  return *this;
}

}  // namespace deflate::util
