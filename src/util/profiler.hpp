// Lightweight scoped profiler: RAII scopes accumulate wall time into named
// per-phase counters, and every scenario bench prints the breakdown at
// exit. Designed for always-on use in hot simulation paths:
//
//   void ClusterManager::place_vm(...) {
//     DEFLATE_PROFILE_SCOPE("cluster.place");
//     ...
//   }
//
// A scope costs two steady_clock reads plus two relaxed atomic adds; the
// phase lookup happens once per call site (function-local static). All
// phases are process-global and thread-safe: concurrent scopes on the same
// phase accumulate independently via atomics, so pool workers can be
// profiled without locks on the hot path.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace deflate::util {

/// One named accumulator. Addresses are stable for the process lifetime
/// (the registry never erases), so call sites cache a reference.
class ProfilePhase {
 public:
  explicit ProfilePhase(std::string name) : name_(std::move(name)) {}

  void add(std::uint64_t nanos) noexcept {
    nanos_.fetch_add(nanos, std::memory_order_relaxed);
    calls_.fetch_add(1, std::memory_order_relaxed);
  }
  void reset() noexcept {
    nanos_.store(0, std::memory_order_relaxed);
    calls_.store(0, std::memory_order_relaxed);
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint64_t nanos() const noexcept {
    return nanos_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t calls() const noexcept {
    return calls_.load(std::memory_order_relaxed);
  }

 private:
  std::string name_;
  std::atomic<std::uint64_t> nanos_{0};
  std::atomic<std::uint64_t> calls_{0};
};

/// Process-wide phase registry.
class Profiler {
 public:
  static Profiler& instance();

  /// Returns the phase registered under `name`, creating it on first use.
  /// Thread-safe; the returned reference is valid forever.
  ProfilePhase& phase(const char* name);

  /// Zeroes every phase (benches call this between configurations so each
  /// run reports its own breakdown).
  void reset();

  struct PhaseStats {
    std::string name;
    std::uint64_t calls = 0;
    double seconds = 0.0;
  };
  /// Non-zero phases, sorted by total time descending.
  [[nodiscard]] std::vector<PhaseStats> snapshot() const;

  /// Prints the per-phase breakdown as an aligned table (nothing when no
  /// phase has fired — a build with cold paths stays silent).
  void report(std::ostream& out) const;

 private:
  Profiler() = default;
  struct Impl;
  Impl& impl() const;
};

/// RAII timer adding its lifetime to a phase.
class ScopedTimer {
 public:
  explicit ScopedTimer(ProfilePhase& phase) noexcept
      : phase_(phase), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    phase_.add(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  ProfilePhase& phase_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace deflate::util

#define DEFLATE_PROFILE_CONCAT_INNER(a, b) a##b
#define DEFLATE_PROFILE_CONCAT(a, b) DEFLATE_PROFILE_CONCAT_INNER(a, b)

/// Times the enclosing scope under `name` (a string literal).
#define DEFLATE_PROFILE_SCOPE(name)                                     \
  static ::deflate::util::ProfilePhase& DEFLATE_PROFILE_CONCAT(         \
      deflate_profile_phase_, __LINE__) =                               \
      ::deflate::util::Profiler::instance().phase(name);                \
  ::deflate::util::ScopedTimer DEFLATE_PROFILE_CONCAT(                  \
      deflate_profile_timer_,                                           \
      __LINE__)(DEFLATE_PROFILE_CONCAT(deflate_profile_phase_, __LINE__))
