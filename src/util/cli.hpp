// Command-line flag parsing and validation shared by the tools
// (tools/deflatectl.cpp) and unit-testable on its own.
//
// Flags are `--key value` pairs (`--key` alone is a boolean `"1"`).
// Validation is strict where silence used to hide mistakes: numeric flags
// that fail to parse, values outside their documented range, flags the
// subcommand does not know, and conflicting combinations all produce a
// one-line error instead of silently falling back to a default.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace deflate::util {

struct CliArgs {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  /// Parses the flag as a double; throws std::invalid_argument with a
  /// one-line message naming the flag on a malformed value.
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool has(const std::string& key) const {
    return flags.count(key) > 0;
  }
};

[[nodiscard]] CliArgs parse_cli(int argc, const char* const* argv);

/// One-line validation errors, accumulated across checks so the user sees
/// every problem at once; empty = the flag set is valid.
class CliValidator {
 public:
  explicit CliValidator(const CliArgs& args) : args_(args) {}

  /// Flags outside `allowed` are an error ("unknown flag --x"): a typo'd
  /// flag must not silently become a default.
  CliValidator& allow_only(const std::vector<std::string>& allowed);
  /// Numeric flag must parse and satisfy value >= min.
  CliValidator& require_at_least(const std::string& key, double min);
  /// Numeric flag must parse and satisfy min <= value <= max.
  CliValidator& require_in_range(const std::string& key, double min,
                                 double max);
  /// Numeric flag must parse to a whole number >= min.
  CliValidator& require_integer_at_least(const std::string& key, double min);
  /// `key` only makes sense together with `requires_key` ("--correlation
  /// requires --markets"); `detail` explains why.
  CliValidator& require_together(const std::string& key,
                                 const std::string& requires_key,
                                 const std::string& detail);
  /// Free-form check: record `error` when `ok` is false.
  CliValidator& check(bool ok, const std::string& error);

  [[nodiscard]] const std::vector<std::string>& errors() const noexcept {
    return errors_;
  }
  [[nodiscard]] bool ok() const noexcept { return errors_.empty(); }

 private:
  /// Parses flag `key` if present; records an error and returns nullopt on
  /// a malformed value.
  [[nodiscard]] std::optional<double> parsed(const std::string& key);

  const CliArgs& args_;
  std::vector<std::string> errors_;
};

}  // namespace deflate::util
