// Deterministic random-number generation for simulations.
//
// Every stochastic component in the library draws from an Rng that is keyed
// by (global seed, stream id). Parallel sweeps hand each work item its own
// derived stream, so results are bit-identical regardless of thread count
// or iteration order (see DESIGN.md §6).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <numbers>
#include <span>
#include <stdexcept>
#include <vector>

namespace deflate::util {

/// SplitMix64: fast 64-bit mixer used for seeding and stream derivation.
/// Reference: Steele, Lea, Flood — "Fast Splittable Pseudorandom Number
/// Generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Good statistical quality, tiny
/// state, and cheap enough to give every VM/request its own generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 mixer(seed);
    for (auto& word : state_) word = mixer.next();
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::uint64_t operator()() noexcept { return next(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

/// High-level generator with the distributions the simulators need.
/// All sampling is implemented in-repo (not via <random> distributions) so
/// sequences are reproducible across standard libraries.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : engine_(seed) {}

  /// Derives an independent stream for work item `id`; the mapping is a
  /// bijective mix so streams do not overlap in practice.
  [[nodiscard]] Rng derive(std::uint64_t id) const noexcept {
    SplitMix64 mixer(base_seed_mix_ ^ (id * 0x9e3779b97f4a7c15ULL + 0x1ULL));
    return Rng(mixer.next());
  }

  /// Remembers the seed-material so `derive` is a pure function of
  /// (seed, id), independent of how many numbers were drawn.
  static Rng keyed(std::uint64_t seed, std::uint64_t stream) noexcept {
    Rng r(seed);
    return r.derive(stream);
  }

  std::uint64_t next_u64() noexcept { return engine_.next(); }

  /// Uniform in [0, 1): 53-bit mantissa resolution.
  double u01() noexcept {
    return static_cast<double>(engine_.next() >> 11) * 0x1.0p-53;
  }

  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * u01(); }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto range = static_cast<std::uint64_t>(hi - lo) + 1ULL;
    // Modulo bias is < 2^-40 for ranges under 2^24; acceptable for sims.
    return lo + static_cast<std::int64_t>(engine_.next() % range);
  }

  bool bernoulli(double p) noexcept { return u01() < p; }

  /// Standard normal via Box-Muller (cached spare for the pair).
  double normal() noexcept {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u1 = u01();
    while (u1 <= 0.0) u1 = u01();
    const double u2 = u01();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * std::numbers::pi * u2);
    have_spare_ = true;
    return mag * std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mu, double sigma) noexcept { return mu + sigma * normal(); }

  double lognormal(double mu, double sigma) noexcept {
    return std::exp(normal(mu, sigma));
  }

  /// Exponential with the given rate (mean = 1/rate).
  double exponential(double rate) noexcept {
    double u = u01();
    while (u <= 0.0) u = u01();
    return -std::log(u) / rate;
  }

  /// Pareto with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha) noexcept {
    double u = u01();
    while (u <= 0.0) u = u01();
    return xm / std::pow(u, 1.0 / alpha);
  }

  /// Bounded Pareto on [lo, hi]; heavy-tailed lifetimes/page sizes.
  double bounded_pareto(double lo, double hi, double alpha) noexcept {
    const double la = std::pow(lo, alpha);
    const double ha = std::pow(hi, alpha);
    double u = u01();
    while (u >= 1.0) u = u01();
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
  }

  /// Samples an index from non-negative weights. Throws if all weights
  /// are zero or the span is empty.
  std::size_t weighted_index(std::span<const double> weights) {
    double total = 0.0;
    for (const double w : weights) total += w;
    if (weights.empty() || total <= 0.0) {
      throw std::invalid_argument("weighted_index: no positive weight");
    }
    double x = u01() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      x -= weights[i];
      if (x < 0.0) return i;
    }
    return weights.size() - 1;
  }

  /// Beta-like sampler in [0,1] built from a clamped logit-normal; used for
  /// per-VM base utilizations where we need unimodal bounded draws.
  double logit_normal(double mu, double sigma) noexcept {
    const double z = normal(mu, sigma);
    return 1.0 / (1.0 + std::exp(-z));
  }

 private:
  explicit Rng(Xoshiro256 engine) noexcept : engine_(engine) {}

  Xoshiro256 engine_;
  std::uint64_t base_seed_mix_ = engine_.next();
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace deflate::util
