#include "util/csv.hpp"

#include <istream>
#include <ostream>
#include <sstream>

namespace deflate::util {

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row_doubles(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (const double v : values) {
    std::ostringstream ss;
    ss << v;
    fields.push_back(ss.str());
  }
  write_row(fields);
}

bool CsvReader::read_row(std::vector<std::string>& fields) {
  fields.clear();
  std::string field;
  bool in_quotes = false;
  bool saw_any = false;
  char c = 0;
  while (in_.get(c)) {
    saw_any = true;
    if (in_quotes) {
      if (c == '"') {
        if (in_.peek() == '"') {
          in_.get(c);
          field += '"';
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c == '\n') {
      fields.push_back(std::move(field));
      return true;
    } else if (c != '\r') {
      field += c;
    }
  }
  if (saw_any) {
    fields.push_back(std::move(field));
    return true;
  }
  return false;
}

}  // namespace deflate::util
