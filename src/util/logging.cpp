#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <iostream>
#include <mutex>

namespace deflate::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  static const auto start = std::chrono::steady_clock::now();
  const auto elapsed = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - start).count();
  std::scoped_lock lock(g_mutex);
  std::clog << '[' << level_name(level) << ' ' << elapsed << "s] " << message
            << '\n';
}

}  // namespace deflate::util
