#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <stdexcept>

namespace deflate::util {

namespace {

/// The pool whose worker_loop the current thread is running (nullptr on
/// non-pool threads). Lets parallel_for detect nested invocations.
thread_local const ThreadPool* current_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  // Workers drain the queue before exiting and submit() rejects once stop_
  // is set, so the queue is normally empty here. Defensively fail whatever
  // is left: destroying an unrun packaged_task breaks its promise, so a
  // waiter gets std::future_error instead of blocking forever.
  std::scoped_lock lock(mutex_);
  while (!tasks_.empty()) tasks_.pop();
  idle_cv_.notify_all();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::scoped_lock lock(mutex_);
    if (stop_) {
      throw std::runtime_error(
          "ThreadPool: submit after shutdown (task would never run)");
    }
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

bool ThreadPool::on_worker_thread() const noexcept {
  return current_worker_pool == this;
}

void ThreadPool::worker_loop() {
  current_worker_pool = this;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    task();
    {
      std::scoped_lock lock(mutex_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool(env_threads());
  return pool;
}

std::size_t env_threads() {
  const char* env = std::getenv("DEFLATE_THREADS");
  if (env == nullptr) return 0;
  const long parsed = std::atol(env);
  if (parsed <= 0) return 0;
  return static_cast<std::size_t>(parsed);
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  parallel_for(&global_pool(), n, body);
}

void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (pool == nullptr) {
    body(0, n);
    return;
  }
  const std::size_t chunks = std::min(n, pool->size() * 4);
  const std::size_t chunk = (n + chunks - 1) / chunks;

  if (pool->on_worker_thread()) {
    // Nested invocation from one of this pool's own workers: enqueueing
    // would block this worker on chunks that may need its slot (classic
    // self-deadlock once every worker waits). Run the same chunks inline;
    // chunking is identical, so results are too.
    for (std::size_t begin = 0; begin < n; begin += chunk) {
      body(begin, std::min(n, begin + chunk));
    }
    return;
  }

  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(n, begin + chunk);
    futures.push_back(pool->submit([&body, begin, end] { body(begin, end); }));
  }
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace deflate::util
