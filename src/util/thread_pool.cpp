#include "util/thread_pool.hpp"

#include <algorithm>
#include <exception>

namespace deflate::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::scoped_lock lock(mutex_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    task();
    {
      std::scoped_lock lock(mutex_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  ThreadPool& pool = global_pool();
  const std::size_t chunks = std::min(n, pool.size() * 4);
  const std::size_t chunk = (n + chunks - 1) / chunks;

  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(n, begin + chunk);
    futures.push_back(pool.submit([&body, begin, end] { body(begin, end); }));
  }
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace deflate::util
