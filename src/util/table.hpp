// Console table printer used by every figure harness so benchmark output
// mirrors the rows/series reported in the paper.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace deflate::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> row);
  /// Formats doubles with the given precision; NaN prints as "-".
  void add_row_doubles(const std::vector<double>& row, int precision = 3);
  /// First cell is a label, the rest are numeric.
  void add_row_labeled(const std::string& label, const std::vector<double>& row,
                       int precision = 3);

  void print(std::ostream& out) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for harnesses).
std::string format_double(double value, int precision = 3);

}  // namespace deflate::util
