#include "util/profiler.hpp"

#include <algorithm>
#include <deque>
#include <iomanip>
#include <mutex>
#include <ostream>
#include <unordered_map>

namespace deflate::util {

struct Profiler::Impl {
  mutable std::mutex mutex;
  /// Deque keeps phase addresses stable across registrations.
  std::deque<ProfilePhase> phases;
  std::unordered_map<std::string, ProfilePhase*> by_name;
};

Profiler& Profiler::instance() {
  static Profiler profiler;
  return profiler;
}

Profiler::Impl& Profiler::impl() const {
  static Impl impl;
  return impl;
}

ProfilePhase& Profiler::phase(const char* name) {
  Impl& state = impl();
  std::scoped_lock lock(state.mutex);
  const auto it = state.by_name.find(name);
  if (it != state.by_name.end()) return *it->second;
  state.phases.emplace_back(name);
  ProfilePhase& created = state.phases.back();
  state.by_name.emplace(created.name(), &created);
  return created;
}

void Profiler::reset() {
  Impl& state = impl();
  std::scoped_lock lock(state.mutex);
  for (ProfilePhase& phase : state.phases) phase.reset();
}

std::vector<Profiler::PhaseStats> Profiler::snapshot() const {
  Impl& state = impl();
  std::vector<PhaseStats> stats;
  {
    std::scoped_lock lock(state.mutex);
    stats.reserve(state.phases.size());
    for (const ProfilePhase& phase : state.phases) {
      if (phase.calls() == 0) continue;
      stats.push_back({phase.name(), phase.calls(),
                       static_cast<double>(phase.nanos()) * 1e-9});
    }
  }
  std::sort(stats.begin(), stats.end(),
            [](const PhaseStats& a, const PhaseStats& b) {
              if (a.seconds != b.seconds) return a.seconds > b.seconds;
              return a.name < b.name;
            });
  return stats;
}

void Profiler::report(std::ostream& out) const {
  const std::vector<PhaseStats> stats = snapshot();
  if (stats.empty()) return;
  double total = 0.0;
  std::size_t width = 5;
  for (const PhaseStats& s : stats) {
    total += s.seconds;
    width = std::max(width, s.name.size());
  }
  out << "profile (per-phase wall time; concurrent scopes sum, so shares "
         "can exceed 100%):\n";
  const auto flags = out.flags();
  for (const PhaseStats& s : stats) {
    out << "  " << std::left << std::setw(static_cast<int>(width)) << s.name
        << std::right << std::fixed << "  " << std::setw(10)
        << std::setprecision(3) << s.seconds * 1e3 << " ms  " << std::setw(10)
        << s.calls << " calls  " << std::setw(5) << std::setprecision(1)
        << (total > 0.0 ? 100.0 * s.seconds / total : 0.0) << "%\n";
  }
  out.flags(flags);
}

}  // namespace deflate::util
