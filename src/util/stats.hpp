// Streaming and batch statistics used by the feasibility analysis and the
// benchmark harnesses (box plots, percentiles, histograms).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace deflate::util {

/// Welford single-pass mean/variance with min/max tracking.
class RunningStats {
 public:
  void push(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Linear-interpolated quantile of a *sorted* sequence, q in [0, 1].
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double q);

/// Convenience: copies, sorts, and evaluates one quantile.
[[nodiscard]] double quantile(std::span<const double> values, double q);

/// Five-number summary for box plots (Figs 5-12 are box plots in the paper).
struct BoxStats {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  std::size_t count = 0;

  /// Computes the summary; returns all-zero stats for empty input.
  static BoxStats from(std::span<const double> values);
};

/// Common percentile bundle for latency reporting (Figs 16, 18, 19).
struct Summary {
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t count = 0;

  static Summary from(std::span<const double> values);
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins so mass is never silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count_at(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t bin) const noexcept;
  /// Fraction of samples with value < x (piecewise-constant CDF).
  [[nodiscard]] double cdf(double x) const noexcept;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace deflate::util
