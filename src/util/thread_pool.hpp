// Fixed-size worker pool plus a deterministic parallel_for.
//
// HPC-guide alignment: parallelism is explicit and structured — callers
// decompose work into independent ranges; there is no work stealing, and
// every item owns a derived RNG stream, so numeric results do not depend on
// the number of workers (DESIGN.md §6).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace deflate::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; the future resolves when it finishes.
  std::future<void> submit(std::function<void()> task);

  /// Blocks until every task submitted so far has completed.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Returns the process-wide pool (lazily constructed).
ThreadPool& global_pool();

/// Splits [0, n) into contiguous chunks and runs `body(begin, end)` on the
/// pool. Blocks until all chunks finish. Exceptions from the body propagate
/// (first one wins). With n == 0 this is a no-op.
void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace deflate::util
