// Fixed-size worker pool plus a deterministic parallel_for.
//
// HPC-guide alignment: parallelism is explicit and structured — callers
// decompose work into independent ranges; there is no work stealing, and
// every item owns a derived RNG stream, so numeric results do not depend on
// the number of workers (DESIGN.md §6).
//
// Reentrancy: a task running on a pool worker may itself call parallel_for
// on the same pool. The nested call detects that it is on a worker thread
// and runs its chunks inline instead of enqueueing them — enqueueing would
// deadlock, with the worker blocked on chunks that need its own slot.
// Chunk boundaries are the same either way, so results are identical.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace deflate::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; the future resolves when it finishes. Throws
  /// std::runtime_error once shutdown has begun: a task enqueued after the
  /// workers were told to stop would never run, leaving its future
  /// unresolved and wait_idle() hung (the daemon-shutdown race).
  std::future<void> submit(std::function<void()> task);

  /// Blocks until every task submitted so far has completed.
  void wait_idle();

  /// Stops accepting work, drains the queued tasks (workers finish what
  /// was already submitted) and joins the workers. Any task somehow left
  /// unrun has its promise broken, so no future ever blocks forever.
  /// Idempotent; the destructor calls it.
  void shutdown();

  /// True when the calling thread is one of *this* pool's workers. Used by
  /// parallel_for to run nested invocations inline instead of deadlocking.
  [[nodiscard]] bool on_worker_thread() const noexcept;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Returns the process-wide pool (lazily constructed). Its size honors the
/// DEFLATE_THREADS environment variable when set to a positive integer,
/// falling back to hardware concurrency.
ThreadPool& global_pool();

/// DEFLATE_THREADS as a worker count: 0 when unset or not a positive
/// integer. Components that default to serial execution use this as their
/// opt-in knob (results are thread-count independent by design, so the
/// variable only changes speed, never output).
[[nodiscard]] std::size_t env_threads();

/// Splits [0, n) into contiguous chunks and runs `body(begin, end)` on the
/// pool. Blocks until all chunks finish. Exceptions from the body propagate
/// (first one wins). With n == 0 this is a no-op. Safe to call from a task
/// already running on the pool: the nested call executes inline.
void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& body);

/// Pool-explicit variant: `pool == nullptr` runs the whole range inline on
/// the calling thread (the serial degenerate case — one chunk, zero
/// threading overhead). Deterministic components thread an optional pool
/// through to here so the same build serves serial and parallel callers.
void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace deflate::util
