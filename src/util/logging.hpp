// Tiny leveled logger. Controllers log deflation decisions at Info; the
// simulators default to Warn so harness output stays clean.
#pragma once

#include <sstream>
#include <string>

namespace deflate::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Thread-safe; prepends level + monotonic timestamp.
void log(LogLevel level, const std::string& message);

namespace detail {
inline void append(std::ostringstream&) {}
template <typename T, typename... Rest>
void append(std::ostringstream& ss, T&& first, Rest&&... rest) {
  ss << std::forward<T>(first);
  append(ss, std::forward<Rest>(rest)...);
}
}  // namespace detail

template <typename... Args>
void logf(LogLevel level, Args&&... args) {
  if (level < log_level()) return;
  std::ostringstream ss;
  detail::append(ss, std::forward<Args>(args)...);
  log(level, ss.str());
}

}  // namespace deflate::util
