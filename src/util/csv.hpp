// Minimal CSV reader/writer for trace persistence and harness output.
// Handles quoting of fields containing commas/quotes/newlines; that is all
// the trace formats in this repo need.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace deflate::util {

class CsvWriter {
 public:
  /// Writes to the given stream; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void write_row(const std::vector<std::string>& fields);

  /// Convenience for mixed numeric rows.
  void write_row_doubles(const std::vector<double>& values);

 private:
  static std::string escape(const std::string& field);
  std::ostream& out_;
};

class CsvReader {
 public:
  explicit CsvReader(std::istream& in) : in_(in) {}

  /// Reads the next record (handles quoted fields spanning commas).
  /// Returns false at end of input.
  bool read_row(std::vector<std::string>& fields);

 private:
  std::istream& in_;
};

}  // namespace deflate::util
