#include "mechanisms/mechanism.hpp"

namespace deflate::mech {

std::unique_ptr<DeflationMechanism> make_mechanism(MechanismKind kind) {
  switch (kind) {
    case MechanismKind::Transparent:
      return std::make_unique<TransparentDeflation>();
    case MechanismKind::Explicit: return std::make_unique<ExplicitDeflation>();
    case MechanismKind::Hybrid: return std::make_unique<HybridDeflation>();
    case MechanismKind::Balloon: return std::make_unique<BalloonDeflation>();
  }
  return std::make_unique<HybridDeflation>();
}

const char* mechanism_kind_name(MechanismKind kind) noexcept {
  switch (kind) {
    case MechanismKind::Transparent: return "transparent";
    case MechanismKind::Explicit: return "explicit";
    case MechanismKind::Hybrid: return "hybrid";
    case MechanismKind::Balloon: return "balloon";
  }
  return "?";
}

res::ResourceVector DeflationMechanism::clamp_target(
    const virt::Domain& domain, const res::ResourceVector& target) noexcept {
  return target.clamped_nonneg().elementwise_min(domain.vm().spec().vector());
}

MechanismReport DeflationMechanism::finish(
    const virt::Domain& domain, const res::ResourceVector& target) noexcept {
  MechanismReport report;
  report.target = target;
  report.achieved = domain.vm().effective_allocation();
  report.plugged = domain.vm().plugged();
  constexpr double kTol = 1e-6;
  report.met_target = true;
  for (const res::Resource r : res::all_resources) {
    if (report.achieved[r] > target[r] + kTol ||
        report.achieved[r] < target[r] - kTol) {
      report.met_target = false;
      break;
    }
  }
  return report;
}

}  // namespace deflate::mech
