#include "mechanisms/mechanism.hpp"

namespace deflate::mech {

MechanismReport TransparentDeflation::apply(virt::Domain& domain,
                                            const res::ResourceVector& target) {
  const res::ResourceVector goal = clamp_target(domain, target);

  // Pure multiplexing: adjust cgroup quotas/limits; the guest keeps seeing
  // its full plugged resources and simply runs slower (§4.2). When the VM
  // was previously hot-unplugged, re-plug first so the cgroup limit is the
  // only constraint (the mechanisms compose — hybrid relies on this).
  const auto info = domain.info();
  if (info.online_vcpus < info.max_vcpus) {
    domain.agent_set_vcpus(info.max_vcpus);
  }
  if (info.memory_mib < info.max_memory_mib) {
    domain.agent_set_memory(info.max_memory_mib);
  }
  domain.balloon_set_memory(info.max_memory_mib);  // deflate any balloon

  domain.set_scheduler_cpu_quota(goal[res::Resource::Cpu]);
  domain.set_memory_hard_limit(goal[res::Resource::Memory]);
  domain.set_blkio_bandwidth(goal[res::Resource::DiskBw]);
  domain.set_interface_bandwidth(goal[res::Resource::NetBw]);
  return finish(domain, goal);
}

}  // namespace deflate::mech
