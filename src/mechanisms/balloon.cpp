#include "mechanisms/mechanism.hpp"

namespace deflate::mech {

MechanismReport BalloonDeflation::apply(virt::Domain& domain,
                                        const res::ResourceVector& target) {
  const res::ResourceVector goal = clamp_target(domain, target);
  const auto& spec = domain.vm().spec();

  // Memory via the balloon driver: inflate to pin (spec - target) pages.
  // No block alignment and no RSS floor — the guest swaps if squeezed too
  // far, exactly like transparent deflation, but without the cgroup limit.
  domain.balloon_set_memory(goal[res::Resource::Memory]);
  domain.set_memory_hard_limit(spec.memory_mib);

  // Everything else multiplexes transparently.
  domain.set_scheduler_cpu_quota(goal[res::Resource::Cpu]);
  domain.set_blkio_bandwidth(goal[res::Resource::DiskBw]);
  domain.set_interface_bandwidth(goal[res::Resource::NetBw]);
  return finish(domain, goal);
}

}  // namespace deflate::mech
