#include <algorithm>
#include <cmath>

#include "mechanisms/mechanism.hpp"

namespace deflate::mech {

// Direct transliteration of Fig. 13:
//
//   def deflate_hybrid(target):
//       hotplug_val = max(get_hp_threshold(), round_up(target))
//       deflate_hotplug(hotplug_val)
//       deflate_multiplexing(target)
//
// per resource: hotplug as far as the guest's safety threshold allows, then
// cgroup multiplexing covers the (fractional or refused) remainder.
MechanismReport HybridDeflation::apply(virt::Domain& domain,
                                       const res::ResourceVector& target) {
  const res::ResourceVector goal = clamp_target(domain, target);
  const hv::GuestOs& guest = domain.vm().guest();

  // --- CPU ---
  const double cpu_target = goal[res::Resource::Cpu];
  const int cpu_hotplug_val =
      std::max(guest.vcpu_unplug_floor(),
               static_cast<int>(std::ceil(cpu_target)));
  domain.agent_set_vcpus(cpu_hotplug_val);
  domain.set_scheduler_cpu_quota(cpu_target);

  // --- Memory --- (hp threshold = RSS-derived floor, §4.4: "we presume it
  // is safe to unplug as long as the VM has more memory than the current
  // RSS value")
  const double mem_target = goal[res::Resource::Memory];
  const double mem_hotplug_val =
      std::max(guest.memory_unplug_floor_mib(),
               std::ceil(mem_target / hv::kMemoryBlockMib) * hv::kMemoryBlockMib);
  domain.balloon_set_memory(domain.vm().spec().memory_mib);  // no balloon
  domain.agent_set_memory(mem_hotplug_val);
  domain.set_memory_hard_limit(mem_target);

  // --- I/O --- (transparent only; no unplug path exists)
  domain.set_blkio_bandwidth(goal[res::Resource::DiskBw]);
  domain.set_interface_bandwidth(goal[res::Resource::NetBw]);

  return finish(domain, goal);
}

}  // namespace deflate::mech
