#include <cmath>

#include "mechanisms/mechanism.hpp"

namespace deflate::mech {

MechanismReport ExplicitDeflation::apply(virt::Domain& domain,
                                         const res::ResourceVector& target) {
  const res::ResourceVector goal = clamp_target(domain, target);
  const auto& spec = domain.vm().spec();

  // Hotplug is coarse: round the CPU target up to whole vCPUs and let the
  // guest apply its own safety floor. Lift any cgroup caps so the plugged
  // amount *is* the effective allocation (this mechanism is hotplug-only).
  const int cpu_request =
      static_cast<int>(std::ceil(goal[res::Resource::Cpu]));
  domain.agent_set_vcpus(cpu_request);
  domain.set_scheduler_cpu_quota(static_cast<double>(spec.vcpus));

  domain.balloon_set_memory(spec.memory_mib);  // hotplug path: no balloon
  domain.agent_set_memory(goal[res::Resource::Memory]);
  domain.set_memory_hard_limit(spec.memory_mib);

  // NIC/disk unplug is unsafe (§4.3); a pure explicit mechanism leaves I/O
  // at the spec allocation.
  domain.set_blkio_bandwidth(spec.disk_bw_mbps);
  domain.set_interface_bandwidth(spec.net_bw_mbps);

  return finish(domain, goal);
}

}  // namespace deflate::mech
