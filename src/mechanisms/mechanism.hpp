// VM deflation mechanisms (§4).
//
// A mechanism moves a VM's *effective allocation* to a target vector, by
// hypervisor-level multiplexing (transparent, §4.2), guest-visible hotplug
// (explicit, §4.3), or the paper's hybrid combination (§4.4, Fig. 13).
// Mechanisms are also used in reverse for reinflation: targets above the
// current allocation re-plug / relax limits.
#pragma once

#include <memory>

#include "hypervisor/virt.hpp"
#include "resources/resource_vector.hpp"

namespace deflate::mech {

struct MechanismReport {
  res::ResourceVector target;    ///< requested effective allocation
  res::ResourceVector achieved;  ///< effective allocation after the call
  res::ResourceVector plugged;   ///< guest-visible allocation after the call
  /// True when every dimension reached the target within tolerance. Pure
  /// explicit deflation frequently cannot (coarse units, safety floors,
  /// no disk/net unplug).
  bool met_target = false;
};

class DeflationMechanism {
 public:
  virtual ~DeflationMechanism() = default;

  /// Drives `domain` towards effective allocation `target` (clamped to
  /// [0, spec] per dimension). Returns what actually happened.
  virtual MechanismReport apply(virt::Domain& domain,
                                const res::ResourceVector& target) = 0;

  /// Human-readable mechanism name for logs/benchmarks.
  [[nodiscard]] virtual const char* name() const noexcept = 0;

 protected:
  /// Clamps the request to the spec and fills in the report skeleton.
  static res::ResourceVector clamp_target(const virt::Domain& domain,
                                          const res::ResourceVector& target) noexcept;
  static MechanismReport finish(const virt::Domain& domain,
                                const res::ResourceVector& target) noexcept;
};

/// Transparent deflation: cgroup multiplexing only. Fine-grained, works on
/// all four resources, invisible to the guest (the VM just runs "slower").
class TransparentDeflation final : public DeflationMechanism {
 public:
  MechanismReport apply(virt::Domain& domain,
                        const res::ResourceVector& target) override;
  [[nodiscard]] const char* name() const noexcept override { return "transparent"; }
};

/// Explicit deflation: agent-mediated hotplug only. Guest-visible, coarse
/// units (whole vCPUs, 128 MiB blocks), bounded by guest safety thresholds;
/// disk and network cannot be unplugged (§4.3) and are left at spec.
class ExplicitDeflation final : public DeflationMechanism {
 public:
  MechanismReport apply(virt::Domain& domain,
                        const res::ResourceVector& target) override;
  [[nodiscard]] const char* name() const noexcept override { return "explicit"; }
};

/// Hybrid deflation (Fig. 13): hotplug down to
/// max(get_hp_threshold(), round_up(target)), then multiplex the rest of
/// the way. Gets the guest-cooperation benefits of explicit deflation with
/// the range and granularity of transparent deflation.
class HybridDeflation final : public DeflationMechanism {
 public:
  MechanismReport apply(virt::Domain& domain,
                        const res::ResourceVector& target) override;
  [[nodiscard]] const char* name() const noexcept override { return "hybrid"; }
};

/// Ballooning-based memory deflation (§2/§8: the classic alternative to
/// hotplug [Waldspurger '02]; "generally inferior performance to hotplug"
/// [Liu et al., TPDS'15]). Page-granular — the balloon can squeeze past
/// the hotplug safety threshold into the resident set — but the pinned
/// pages keep stressing the guest's memory management, which the memory
/// performance model charges for (bench/ablation_balloon). CPU and I/O
/// fall back to transparent multiplexing.
class BalloonDeflation final : public DeflationMechanism {
 public:
  MechanismReport apply(virt::Domain& domain,
                        const res::ResourceVector& target) override;
  [[nodiscard]] const char* name() const noexcept override { return "balloon"; }
};

enum class MechanismKind { Transparent, Explicit, Hybrid, Balloon };

[[nodiscard]] std::unique_ptr<DeflationMechanism> make_mechanism(
    MechanismKind kind);
[[nodiscard]] const char* mechanism_kind_name(MechanismKind kind) noexcept;

}  // namespace deflate::mech
