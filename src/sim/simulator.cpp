#include "sim/simulator.hpp"

#include <stdexcept>

namespace deflate::sim {

EventHandle Simulator::schedule_at(SimTime at, Callback fn) {
  if (at < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  auto alive = std::make_shared<bool>(true);
  queue_.push(Scheduled{at, next_seq_++, std::move(fn), alive});
  return EventHandle(std::move(alive));
}

bool Simulator::step() {
  while (!queue_.empty()) {
    if (!*queue_.top().alive) {  // lazily drop cancelled events
      queue_.pop();
      continue;
    }
    // priority_queue::top is const; the closure must be moved out before
    // pop, so we cast — the element is removed immediately afterwards.
    auto& top = const_cast<Scheduled&>(queue_.top());
    now_ = top.at;
    Callback fn = std::move(top.fn);
    queue_.pop();
    ++executed_;
    fn();
    return true;
  }
  return false;
}

std::uint64_t Simulator::run_until(SimTime until) {
  std::uint64_t ran = 0;
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_) {
    if (!*queue_.top().alive) {
      queue_.pop();
      continue;
    }
    if (queue_.top().at > until) break;
    if (step()) ++ran;
  }
  if (now_ < until && until < SimTime::max()) now_ = until;
  return ran;
}

}  // namespace deflate::sim
