// Discrete-event simulation kernel.
//
// Events are closures scheduled at absolute or relative SimTimes; ties break
// by schedule order (a strict FIFO among equal timestamps), which keeps
// trace-driven runs deterministic. Cancellation is O(1) via shared handles
// with lazy removal from the heap.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace deflate::sim {

/// Cancellation handle returned by Simulator::schedule.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired; safe to call repeatedly.
  void cancel() noexcept {
    if (alive_) *alive_ = false;
  }
  [[nodiscard]] bool pending() const noexcept { return alive_ && *alive_; }

 private:
  friend class Simulator;
  explicit EventHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

class Simulator {
 public:
  using Callback = std::function<void()>;

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] std::uint64_t events_executed() const noexcept { return executed_; }
  [[nodiscard]] std::size_t events_pending() const noexcept { return queue_.size(); }

  /// Schedules `fn` at absolute time `at` (must be >= now()).
  EventHandle schedule_at(SimTime at, Callback fn);

  /// Schedules `fn` after `delay` relative to now().
  EventHandle schedule_in(SimTime delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Runs events until the queue is empty or `until` is reached. The clock
  /// ends at min(until, last event time). Returns number of events run.
  std::uint64_t run_until(SimTime until);

  /// Runs until the queue drains.
  std::uint64_t run() { return run_until(SimTime::max()); }

  /// Executes the single next event, if any; returns whether one ran.
  bool step();

  /// Requests run loops to return after the current event.
  void stop() noexcept { stop_requested_ = true; }

 private:
  struct Scheduled {
    SimTime at;
    std::uint64_t seq;
    Callback fn;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Scheduled& a, const Scheduled& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Scheduled, std::vector<Scheduled>, Later> queue_;
  SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stop_requested_ = false;
};

}  // namespace deflate::sim
