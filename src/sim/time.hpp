// Simulation time as integer microseconds. Integer ticks keep event
// ordering exact (no floating-point drift when thousands of 5-minute trace
// intervals are accumulated) and make runs reproducible.
#pragma once

#include <compare>
#include <cstdint>

namespace deflate::sim {

class SimTime {
 public:
  constexpr SimTime() noexcept = default;

  [[nodiscard]] static constexpr SimTime from_micros(std::int64_t us) noexcept {
    SimTime t;
    t.micros_ = us;
    return t;
  }
  [[nodiscard]] static constexpr SimTime from_millis(double ms) noexcept {
    return from_micros(static_cast<std::int64_t>(ms * 1e3));
  }
  [[nodiscard]] static constexpr SimTime from_seconds(double s) noexcept {
    return from_micros(static_cast<std::int64_t>(s * 1e6));
  }
  [[nodiscard]] static constexpr SimTime from_minutes(double m) noexcept {
    return from_seconds(m * 60.0);
  }
  [[nodiscard]] static constexpr SimTime from_hours(double h) noexcept {
    return from_seconds(h * 3600.0);
  }
  [[nodiscard]] static constexpr SimTime max() noexcept {
    return from_micros(INT64_MAX);
  }

  [[nodiscard]] constexpr std::int64_t micros() const noexcept { return micros_; }
  [[nodiscard]] constexpr double millis() const noexcept {
    return static_cast<double>(micros_) / 1e3;
  }
  [[nodiscard]] constexpr double seconds() const noexcept {
    return static_cast<double>(micros_) / 1e6;
  }
  [[nodiscard]] constexpr double hours() const noexcept { return seconds() / 3600.0; }

  constexpr auto operator<=>(const SimTime&) const noexcept = default;

  constexpr SimTime operator+(SimTime rhs) const noexcept {
    return from_micros(micros_ + rhs.micros_);
  }
  constexpr SimTime operator-(SimTime rhs) const noexcept {
    return from_micros(micros_ - rhs.micros_);
  }
  constexpr SimTime& operator+=(SimTime rhs) noexcept {
    micros_ += rhs.micros_;
    return *this;
  }

 private:
  std::int64_t micros_ = 0;
};

}  // namespace deflate::sim
