// Trace-driven cluster simulation (§7.1.2, §7.4).
//
// Replays Azure-style VM arrivals/departures against a ClusterManager:
// interactive VMs are deflatable (with P95-derived priorities), the rest
// are on-demand. Deflation/reinflation happen on arrival pressure and
// departure slack, exactly as in the paper's evaluation. The simulator
// produces the three cluster-level metrics of Figs. 20-22:
//   * reclamation-failure probability (or preemption probability for the
//     preemption baseline),
//   * throughput loss — the time-integrated utilization above the deflated
//     allocation (Fig. 4's shaded area) over all deflatable VMs,
//   * revenue integrals for the §5.2.2 pricing schemes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "cluster/admission.hpp"
#include "cluster/cluster_manager.hpp"
#include "cluster/migration.hpp"
#include "cluster/pricing.hpp"
#include "cluster/sharded_manager.hpp"
#include "cluster/wire.hpp"
#include "control/controller.hpp"
#include "policy/policy_set.hpp"
#include "trace/replay.hpp"
#include "trace/vm_record.hpp"
#include "transient/market.hpp"

namespace deflate::simcluster {

/// Bus topic the per-tick per-server UtilizationReports are published on
/// (SimConfig::telemetry_bus).
inline constexpr const char* kUtilizationTopic = "utilization";

struct SimConfig {
  core::PolicyKind policy = core::PolicyKind::Proportional;
  cluster::ReclamationMode mode = cluster::ReclamationMode::Deflation;
  mech::MechanismKind mechanism = mech::MechanismKind::Hybrid;
  cluster::PlacementStrategy placement = cluster::PlacementStrategy::Fitness;
  bool reinflate_on_departure = true;
  bool partitioned = false;
  std::size_t server_count = 40;
  res::ResourceVector server_capacity{48.0, 128.0 * 1024.0, 1e9, 1e9};

  // --- fleet sharding (src/cluster/sharded_manager) ---
  /// Number of placement shards; 1 = the flat ClusterManager (the sharded
  /// scheduler's degenerate case, bit-identical decisions).
  std::size_t shard_count = 1;
  cluster::ShardSelectionPolicy shard_selection =
      cluster::ShardSelectionPolicy::PowerOfTwoChoices;
  std::uint64_t shard_routing_seed = 42;
  /// Worker threads for the manager's placement scans and tick-barrier
  /// view drains. 0 = take DEFLATE_THREADS from the environment (unset =
  /// serial). Never changes results — only wall-clock time.
  std::size_t worker_threads = 0;

  // --- transient market (src/transient) ---
  /// Enables the spot-price / revocation / portfolio layer. With
  /// `market.revocation.model == None` and `market.use_portfolio == false`
  /// the simulation is identical to the non-market one. Multi-market
  /// fleets configure `market.markets` (one MarketDef per zone/instance
  /// type) plus `market.correlation`; the plan then spreads the transient
  /// servers across the markets by portfolio weight, with one revocation
  /// stream per market.
  bool market_enabled = false;
  transient::MarketEngineConfig market;

  // --- admission (src/cluster/admission) ---
  /// Admission API v2: every arrival flows through an AdmissionController
  /// before placement. The default AdmitAll policy is bit-identical to
  /// pre-admission behavior; PriceThreshold/BidOptimized defer deflatable
  /// launches while the spot quote exceeds the per-class ceiling, with
  /// deferred arrivals re-entering the event loop as retry events and
  /// expired deferrals counted as rejections (their unserved demand billed
  /// into the cost report at the on-demand rate). The BidOptimized policy
  /// takes its ceilings from `market.optimize_bids`' per-class optima
  /// (`CapacityPlan::class_ceilings`); without a market plan the
  /// price-aware policies degrade to AdmitAll.
  cluster::AdmissionConfig admission;

  // --- wire telemetry (src/cluster/wire) ---
  /// When set, the simulator stands in for the per-server controllers of
  /// the paper's §6 REST boundary: at every tick boundary (the same
  /// cadence as flush_views) it publishes one versioned, encoded
  /// `UtilizationReport` per active server on topic
  /// `kUtilizationTopic` — "each server updates the central master about
  /// all changes in server utilization". Null (default) publishes
  /// nothing and costs nothing. Non-owning; must outlive run().
  cluster::wire::MessageBus* telemetry_bus = nullptr;

  // --- trace-driven arrivals (src/trace/replay) ---
  /// When set, `TraceDrivenSimulator(SimConfig)` replaces the materialized
  /// record vector with a bounded-memory streaming arrival source: VMs are
  /// generated in time order from the configured trace (Azure, Alibaba or
  /// a PR-6 capture file), held only while active, and released at
  /// departure. Results are bit-identical across `replay->window` and
  /// `worker_threads` (tests/test_trace_replay.cpp). Ignored by the
  /// record-vector constructor.
  std::optional<trace::ReplayConfig> replay;

  // --- declarative policy selection (src/policy) ---
  /// Registry names (+ per-policy parameter overrides) for the five
  /// pluggable surfaces. Empty choices leave the legacy enum/flag fields
  /// above in charge, so default-constructed configs are bit-identical to
  /// earlier releases. Non-empty choices are validated against the
  /// registries at construction (std::invalid_argument lists the valid
  /// names) and then take precedence over the matching enum — which is
  /// how link-time plugin policies, having no enum value, are selected.
  policy::PolicySet policies;

  // --- online control plane (src/control) ---
  /// Rolling re-optimization: with `control.enabled`, a FleetController
  /// wakes every `control.reopt_hours` of simulated time, refits its
  /// revocation/price/correlation estimators on the realized window,
  /// re-runs the portfolio + bid optimizers against the forecasts, pushes
  /// updated per-class ceilings into the live admission controller at a
  /// tick barrier, and executes the plan delta as rate-limited drains
  /// through the migration machinery. `control.regime_shift` optionally
  /// rewrites the market environment mid-run (applied whether or not the
  /// controller is enabled, so enabled/disabled runs face the same
  /// world). Disabled (default) keeps the one-shot t=0 plan,
  /// bit-identical to earlier releases.
  control::ControlConfig control;

  // --- timed migration (src/cluster/migration) ---
  /// With `migration.model.bandwidth_mib_per_sec > 0` (and a deflation-mode
  /// market), revocations become *timed*: each market's
  /// `revocation.warning_hours` opens a drain window in which VMs stream
  /// off the doomed server, in-flight migrations advance across ticks, and
  /// stop-and-copy / checkpoint downtime is charged to throughput loss and
  /// the cost report. Bandwidth 0 (default) is the instant sentinel: the
  /// legacy free re-place path, bit-identical to earlier behavior.
  cluster::MigrationEngineConfig migration;
};

struct SimMetrics {
  // --- Fig. 20 ---
  std::uint64_t reclamation_attempts = 0;
  std::uint64_t reclamation_failures = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t rejections = 0;
  /// Reclamation failures per deflatable VM — directly comparable to the
  /// preemption probability ("for traditional preemptible instances, it is
  /// the same as preemption probability", §7.4.1).
  double failure_probability = 0.0;
  /// failures / reclamation attempts (conditional failure rate).
  double failure_rate_per_attempt = 0.0;
  /// preempted deflatable VMs / all deflatable VMs (preemption mode).
  double preemption_probability = 0.0;

  // --- Fig. 21 ---
  /// sum over deflatable VMs of usage above allocation, / total usage.
  double throughput_loss = 0.0;

  // --- Fig. 22 ---
  cluster::RevenueTotals revenue;

  // --- transient market ---
  std::uint64_t revocations = 0;            ///< server-revocation events
  std::uint64_t revocation_migrations = 0;  ///< VMs re-placed off revoked servers
  std::uint64_t revocation_kills = 0;       ///< VMs lost to revocations

  // --- admission (cluster::AdmissionController; all zero under AdmitAll) ---
  std::uint64_t admission_deferrals = 0;  ///< requests deferred at least once
  std::uint64_t admission_retries = 0;    ///< deferrals re-deferred by a drain
  std::uint64_t admission_expired = 0;    ///< deadline hits; also in rejections
  /// Total arrival→launch delay of deferrals that were eventually admitted.
  double admission_delay_hours = 0.0;
  /// Demand the fleet failed to serve for non-admission reasons (capacity
  /// rejections in full, the unserved remainder of preempted/killed VMs),
  /// in committed core-hours. Admission-caused unserved demand is billed
  /// separately in `cost.admission_unserved_core_hours`.
  double unserved_core_hours = 0.0;

  // --- timed migration (cluster::MigrationEngine; all zero when instant) ---
  std::uint64_t live_migrations = 0;      ///< finished streaming inside the warning
  std::uint64_t checkpoint_restores = 0;  ///< missed it; checkpointed + relaunched
  std::uint64_t checkpoint_kills = 0;     ///< missed it; no survivor could take them
  double migration_downtime_hours = 0.0;  ///< VM-paused transfer windows
  /// Fraction of the fleet bought on the transient market.
  double transient_server_share = 0.0;
  /// Fleet cost over the horizon (per-core-hour prices, on-demand = 1.0).
  transient::CostReport cost;
  /// Mean per-core-hour cost of the portfolio mix (1.0 = all on-demand).
  double portfolio_expected_cost = 1.0;

  // --- online control plane (src/control; zero when disabled) ---
  std::uint64_t control_reopts = 0;  ///< re-optimization windows executed
  std::uint64_t control_moves = 0;   ///< cross-market server moves scheduled

  // --- context ---
  double achieved_overcommit = 0.0;  ///< peak committed / capacity - 1
  double mean_cpu_deflation = 0.0;   ///< time-weighted over deflatable VMs
  std::uint64_t vm_count = 0;
  std::uint64_t deflatable_count = 0;
};

class TraceDrivenSimulator {
 public:
  TraceDrivenSimulator(std::vector<trace::VmRecord> records, SimConfig config);

  /// Streaming mode: replays arrivals from `stream` (non-owning; must
  /// outlive the simulator, and must be freshly constructed or reset()).
  /// Only active VMs are resident; memory is O(active + stream window)
  /// instead of O(fleet).
  TraceDrivenSimulator(trace::VmArrivalStream& stream, SimConfig config);

  /// Streaming mode from `config.replay` (the simulator owns the stream).
  /// Throws std::invalid_argument when `config.replay` is unset.
  explicit TraceDrivenSimulator(SimConfig config);

  /// Replays the whole trace; single-shot (construct a new simulator for
  /// another run).
  SimMetrics run();

  /// Streaming mode: high-water mark of concurrently-resident VM records.
  /// The megafleet bench gates on this staying far below the stream's
  /// total size (the bounded-memory claim, made measurable). Zero in
  /// record-vector mode.
  [[nodiscard]] std::size_t peak_active_records() const noexcept {
    return peak_active_;
  }

  // --- sizing helpers --------------------------------------------------------
  /// Peak concurrently-committed resources of the trace (the paper sizes
  /// the baseline cluster so this peak fits without any reclamation).
  [[nodiscard]] static res::ResourceVector peak_committed(
      const std::vector<trace::VmRecord>& records);

  /// Number of servers that sets cluster overcommitment to `overcommit`
  /// (0.5 = 50%): capacity = peak / (1 + overcommit), per the paper's
  /// protocol of shrinking the minimum-feasible cluster.
  [[nodiscard]] static std::size_t servers_for_overcommit(
      const std::vector<trace::VmRecord>& records,
      const res::ResourceVector& server_capacity, double overcommit);

  /// The paper's baseline sizing (§7.1.2): "the minimum cluster size
  /// capable of running all VMs without any preemptions or
  /// admission-controlled rejections" — found by simulation, starting from
  /// the peak-committed lower bound and growing until a full replay shows
  /// zero failures (bin-packing fragmentation can make the lower bound
  /// infeasible).
  [[nodiscard]] static std::size_t minimum_feasible_servers(
      const std::vector<trace::VmRecord>& records, const SimConfig& base_config);

  /// Prefix of the deflatable records whose total committed core-time is at
  /// most `core_hours` (arrival order). Used by the revenue experiment to
  /// scale the admitted low-priority pool with the overcommitment target.
  [[nodiscard]] static std::vector<trace::VmRecord> select_deflatable_subset(
      const std::vector<trace::VmRecord>& records, double core_hours);

  /// Trace horizon (latest record end); the market plan and the cost
  /// accounting bill the fleet over [0, horizon).
  [[nodiscard]] static sim::SimTime horizon_of(
      const std::vector<trace::VmRecord>& records);

 private:
  struct VmRuntime {
    const trace::VmRecord* record = nullptr;
    bool running = false;
    bool preempted = false;
    bool rejected = false;
    bool deferred = false;  ///< admission deferred it at least once
    bool expired = false;   ///< the deferral window ran out (a rejection)
    sim::SimTime placed_at;
    sim::SimTime finished_at;
    /// (time, cpu allocation fraction) change-points while running.
    std::vector<std::pair<sim::SimTime, double>> alloc_timeline;
    /// Bumped each time the VM is displaced again (new migration or
    /// suspension); queued cutover events from an earlier displacement
    /// carry the old epoch and are dropped as stale.
    std::uint32_t displacement_epoch = 0;
  };

  /// Shared constructor tail: market plan, manager, admission controller
  /// and the manager callbacks. Requires horizon_/peak_committed_ and the
  /// per-mode VM storage to be initialized.
  void init_common();

  /// The VM's runtime state, or nullptr when unknown/already released —
  /// the one lookup both storage modes (record vector / streaming active
  /// set) sit behind.
  [[nodiscard]] VmRuntime* runtime_of(std::uint64_t id);

  void on_vm_start(VmRuntime& vm);
  void on_vm_end(VmRuntime& vm);
  void finalize(VmRuntime& vm, sim::SimTime at);

  // --- admission plumbing -----------------------------------------------------
  /// Applies an admission decision (fresh or drained from the deferral
  /// queue) to the VM's runtime: start it, remember the deferral, or
  /// reject it (billing an expired deferral's whole demand as unserved).
  void apply_admission(VmRuntime& vm,
                       const cluster::AdmissionDecision& decision);
  /// Charges the full usage series of a VM that never ran (expired
  /// deferral) as lost throughput.
  void charge_never_served(const VmRuntime& vm);

  // --- wire telemetry plumbing -----------------------------------------------
  /// Publishes one encoded UtilizationReport per active server on
  /// `config_.telemetry_bus` (no-op when the bus is null). Called at every
  /// tick boundary, right after flush_views.
  void publish_utilization();

  // --- timed migration plumbing ---------------------------------------------
  /// Timed revocations are in effect: a deflation-mode market with a
  /// non-instant migration model.
  [[nodiscard]] bool timed_migration() const noexcept;
  /// Books an in-flight migration: allocation moves now, the VM pauses for
  /// the cutover window (pause/resume scheduled as future sim events; the
  /// pause bills downtime when it actually fires).
  void track_migration(const cluster::MigrationRecord& record);
  /// Bills [from, min(until, record end)) as migration downtime.
  void charge_downtime(const VmRuntime& vm, sim::SimTime from,
                       sim::SimTime until);
  /// Charges the usage a killed VM would have served after `at` as lost
  /// throughput (timed mode only: instant-mode kill semantics unchanged).
  void charge_unserved_tail(const VmRuntime& vm, sim::SimTime at);

  // --- event loop -------------------------------------------------------------
  /// Static (pre-computable) simulation events. Canonical order at equal
  /// timestamps: departures free capacity first, then restores add it,
  /// then revocation warnings (migrations start before the tick's final
  /// loss), then revocations (arrivals see the reduced fleet), then
  /// re-optimization wakeups (the controller sees the post-revocation
  /// fleet but re-plans before the tick's arrivals are admitted), then
  /// arrivals; ties broken by VM/server id.
  struct Event {
    sim::SimTime at;
    enum class Kind { VmEnd, Restore, Warn, Revoke, Reopt, VmStart } kind;
    std::size_t idx;        ///< VM index or server id
    sim::SimTime deadline;  ///< Warn only: when the server actually dies
  };

  /// The market plan's Restore/Warn/Revoke events, sorted canonically.
  [[nodiscard]] std::vector<Event> build_plan_events() const;

  /// Replays the materialized record vector (the classic mode).
  void run_vector();
  /// Replays the arrival stream with only active VMs resident.
  void run_streaming();
  /// Folds the accumulators into the returned metrics (both modes).
  [[nodiscard]] SimMetrics build_metrics();

  void handle_warn(std::size_t server, sim::SimTime deadline);
  void handle_revoke(std::size_t server);
  /// One re-optimization window: refit estimators on the realized window,
  /// re-plan, push new ceilings into the live admission controller and
  /// splice the rewritten revocation schedule into plan_queue_'s
  /// not-yet-consumed suffix. Advances next_reopt_.
  void run_reopt();

  std::vector<trace::VmRecord> records_;
  SimConfig config_;
  /// Market plan computed before the manager so portfolio pool weights can
  /// shape the cluster partitions. Empty when the market is disabled.
  std::optional<transient::CapacityPlan> plan_;
  /// Flat for shard_count <= 1, sharded otherwise; the simulator only uses
  /// the common interface.
  std::unique_ptr<cluster::ClusterManagerBase> manager_;
  /// Present only in timed-migration mode (references *manager_).
  std::optional<cluster::MigrationEngine> migration_engine_;
  /// Admission stage in front of *manager_ (always present; AdmitAll by
  /// default). Quotes prices off plan_'s market traces.
  std::unique_ptr<cluster::AdmissionController> admission_;
  /// Online control plane (src/control). Present only when
  /// `config_.control.enabled` and a market plan exists; owns the online
  /// estimators and the authoritative revocation timeline once moves have
  /// been scheduled.
  std::unique_ptr<control::FleetController> controller_;
  /// Plan-driven Restore/Warn/Revoke events. Both event loops consume
  /// this via next_plan_ so a re-optimization can splice a rewritten
  /// future (everything strictly after `now_`) into the unconsumed
  /// suffix. Events already consumed are never touched.
  std::vector<Event> plan_queue_;
  std::size_t next_plan_ = 0;
  /// Next re-optimization wakeup; SimTime::max() = controller inactive
  /// (disabled, reopt_hours = inf, or no further window fits the
  /// horizon).
  sim::SimTime next_reopt_ = sim::SimTime::max();
  std::vector<VmRuntime> runtimes_;
  std::unordered_map<std::uint64_t, std::size_t> id_to_idx_;
  /// Suspended (checkpointed-awaiting-destination) VM ids per doomed
  /// server, between a warning and its deadline.
  std::unordered_map<std::size_t, std::vector<std::uint64_t>> suspended_;
  /// Future allocation change-points from in-flight migrations (cutover
  /// pauses/resumes), merged into the event loop as they come due.
  struct AllocEvent {
    sim::SimTime at;
    std::uint64_t vm_id = 0;
    double fraction = 0.0;
    std::uint32_t epoch = 0;  ///< must match the VM's displacement_epoch
    /// Pause events only: scheduled end of the VM-paused window. Downtime
    /// is billed when the pause actually fires (a later displacement can
    /// cancel it), clipped to the VM's lifetime.
    sim::SimTime pause_until;
    [[nodiscard]] bool operator>(const AllocEvent& other) const noexcept {
      if (at != other.at) return at > other.at;
      if (vm_id != other.vm_id) return vm_id > other.vm_id;
      return fraction > other.fraction;
    }
  };
  std::priority_queue<AllocEvent, std::vector<AllocEvent>,
                      std::greater<AllocEvent>>
      pending_allocs_;
  /// Applies a due cutover pause/resume to the VM's allocation timeline
  /// (stale epochs dropped); shared by both event loops.
  void apply_alloc_event(const AllocEvent& alloc);
  sim::SimTime now_;

  // --- streaming-mode state ---------------------------------------------------
  /// Arrival source (null in record-vector mode). Non-owning; points at
  /// owned_stream_ when the SimConfig-level constructor built it.
  trace::VmArrivalStream* stream_ = nullptr;
  std::unique_ptr<trace::VmArrivalStream> owned_stream_;
  /// An active VM: the materialized record plus its runtime. Erased at
  /// departure — the unordered_map's node-based storage keeps the record
  /// pointer in VmRuntime stable meanwhile.
  struct OwnedVm {
    trace::VmRecord record;
    VmRuntime rt;
  };
  std::unordered_map<std::uint64_t, OwnedVm> active_;
  std::size_t peak_active_ = 0;

  // --- shared per-run context (set per mode, read by build_metrics) -----------
  sim::SimTime horizon_;
  res::ResourceVector trace_peak_committed_;
  std::uint64_t vm_count_ = 0;
  std::uint64_t deflatable_count_ = 0;
  /// Non-admission unserved demand (vector mode: final index-order pass;
  /// streaming mode: accumulated as VMs are released).
  double unserved_core_hours_ = 0.0;

  // accumulators
  double lost_ = 0.0;
  double used_ = 0.0;
  /// Exact VM-paused migration windows (cutover pauses that actually
  /// fired plus checkpoint suspensions), clipped to each VM's remaining
  /// lifetime (a VM that departs before its cutover never pauses).
  double migration_downtime_hours_ = 0.0;
  double migration_downtime_core_hours_ = 0.0;
  /// Admission-caused unserved demand (expired deferrals in full, plus the
  /// arrival→launch delay of late-admitted ones), billed at the on-demand
  /// rate into the cost report.
  double admission_unserved_core_hours_ = 0.0;
  double admission_delay_hours_ = 0.0;
  double deflation_fraction_time_ = 0.0;  ///< integral of (1 - alloc frac) dt
  double deflatable_time_ = 0.0;          ///< total deflatable running time
  cluster::RevenueTotals revenue_;
  bool ran_ = false;
};

}  // namespace deflate::simcluster
