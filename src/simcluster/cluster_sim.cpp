#include "simcluster/cluster_sim.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace deflate::simcluster {

namespace {

cluster::ClusterConfig make_cluster_config(
    const SimConfig& config,
    const std::optional<transient::CapacityPlan>& plan) {
  cluster::ClusterConfig out;
  out.server_count = config.server_count;
  out.server_capacity = config.server_capacity;
  out.policy = config.policy;
  out.mode = config.mode;
  out.mechanism = config.mechanism;
  out.placement = config.placement;
  out.reinflate_on_departure = config.reinflate_on_departure;
  out.partitioned = config.partitioned;
  // Portfolio-driven capacity mixing: the mean-variance weights size the
  // on-demand pool and the deflatable priority pools.
  if (plan && config.market_enabled && config.market.use_portfolio &&
      config.partitioned && !plan->pool_weights.empty()) {
    out.pool_weights = plan->pool_weights;
  }
  return out;
}

std::optional<transient::CapacityPlan> make_plan(
    const std::vector<trace::VmRecord>& records, const SimConfig& config) {
  if (!config.market_enabled) return std::nullopt;
  const transient::TransientMarketEngine engine(config.market);
  return engine.plan(config.server_count,
                     TraceDrivenSimulator::horizon_of(records),
                     /*deflatable_pools=*/4);
}

std::unique_ptr<cluster::ClusterManagerBase> make_manager(
    const SimConfig& config,
    const std::optional<transient::CapacityPlan>& plan) {
  cluster::ShardedClusterConfig sharded;
  sharded.cluster = make_cluster_config(config, plan);
  sharded.shard_count = config.shard_count;
  sharded.selection = config.shard_selection;
  sharded.routing_seed = config.shard_routing_seed;
  return cluster::make_cluster_manager(std::move(sharded));
}

}  // namespace

sim::SimTime TraceDrivenSimulator::horizon_of(
    const std::vector<trace::VmRecord>& records) {
  sim::SimTime horizon;
  for (const trace::VmRecord& record : records) {
    horizon = std::max(horizon, record.end);
  }
  return horizon;
}

TraceDrivenSimulator::TraceDrivenSimulator(std::vector<trace::VmRecord> records,
                                           SimConfig config)
    : records_(std::move(records)),
      config_(config),
      plan_(make_plan(records_, config_)),
      manager_(make_manager(config_, plan_)),
      runtimes_(records_.size()) {
  for (std::size_t i = 0; i < records_.size(); ++i) {
    runtimes_[i].record = &records_[i];
    id_to_idx_[records_[i].id] = i;
  }

  // Partitioned market: the never-revoked set must be exactly the
  // on-demand pool (pool 0). ClusterPartitions rounds pool sizes (one
  // server per pool + largest remainder) and a sharded fleet scatters
  // pool 0 across the shards, so realign the plan's split with the
  // realized pool-0 server set: the engine re-splits the transient set
  // across its markets by portfolio weight and regenerates every
  // revocation schedule (per-server keyed streams keep this
  // deterministic).
  if (plan_ && config_.partitioned) {
    const std::vector<std::size_t> pool0 = manager_->pool_servers(0);
    std::vector<std::size_t> transient;
    transient.reserve(config_.server_count - pool0.size());
    std::vector<std::uint8_t> on_demand(config_.server_count, 0);
    for (const std::size_t s : pool0) on_demand[s] = 1;
    for (std::size_t s = 0; s < config_.server_count; ++s) {
      if (!on_demand[s]) transient.push_back(s);
    }
    if (transient != plan_->transient_servers) {
      const transient::TransientMarketEngine engine(config_.market);
      engine.rebind_transient_servers(*plan_, pool0.size(),
                                      std::move(transient),
                                      horizon_of(records_));
    }
  }

  // Track allocation changes (deflation *and* reinflation) per VM.
  manager_->subscribe_deflation([this](const hv::Vm& vm,
                                      const res::ResourceVector& /*old_alloc*/,
                                      const res::ResourceVector& new_alloc) {
    const auto it = id_to_idx_.find(vm.spec().id);
    if (it == id_to_idx_.end() || !runtimes_[it->second].running) return;
    const double spec_cores = static_cast<double>(vm.spec().vcpus);
    const double fraction =
        spec_cores > 0.0 ? new_alloc[res::Resource::Cpu] / spec_cores : 1.0;
    runtimes_[it->second].alloc_timeline.emplace_back(now_, fraction);
  });

  manager_->subscribe_preemption(
      [this](const hv::VmSpec& spec, std::uint64_t /*host*/) {
        const auto it = id_to_idx_.find(spec.id);
        if (it == id_to_idx_.end() || !runtimes_[it->second].running) return;
        runtimes_[it->second].preempted = true;
        finalize(runtimes_[it->second], now_);
      });

  // Migrations keep running through a revocation, possibly at a deflated
  // launch fraction on the new server; extend the allocation timeline.
  manager_->subscribe_migration([this](const hv::VmSpec& spec,
                                      std::uint64_t /*from*/,
                                      std::uint64_t /*to*/, double fraction) {
    const auto it = id_to_idx_.find(spec.id);
    if (it == id_to_idx_.end() || !runtimes_[it->second].running) return;
    runtimes_[it->second].alloc_timeline.emplace_back(now_, fraction);
  });
}

void TraceDrivenSimulator::on_vm_start(std::size_t idx) {
  VmRuntime& vm = runtimes_[idx];
  const hv::VmSpec spec = vm.record->to_spec();
  const cluster::PlacementResult placement = manager_->place_vm(spec);
  if (!placement.ok()) {
    vm.rejected = true;
    return;
  }
  vm.running = true;
  vm.placed_at = now_;
  vm.alloc_timeline.clear();
  vm.alloc_timeline.emplace_back(now_, placement.launch_fraction);
}

void TraceDrivenSimulator::finalize(VmRuntime& vm, sim::SimTime at) {
  vm.running = false;
  vm.finished_at = at;
  const trace::VmRecord& record = *vm.record;
  const double cores = static_cast<double>(record.vcpus);
  const double hours = (at - vm.placed_at).hours();
  if (hours <= 0.0) return;

  if (!record.deflatable()) {
    revenue_.od_committed_core_hours += cores * hours;
    return;
  }

  // --- revenue integrals ---
  revenue_.df_committed_core_hours += cores * hours;
  revenue_.df_priority_committed_core_hours +=
      record.priority_level() * cores * hours;
  double allocated_core_hours = 0.0;
  for (std::size_t k = 0; k < vm.alloc_timeline.size(); ++k) {
    const sim::SimTime seg_start = vm.alloc_timeline[k].first;
    const sim::SimTime seg_end =
        k + 1 < vm.alloc_timeline.size() ? vm.alloc_timeline[k + 1].first : at;
    const double seg_hours = (seg_end - seg_start).hours();
    if (seg_hours <= 0.0) continue;
    allocated_core_hours += vm.alloc_timeline[k].second * cores * seg_hours;
    deflation_fraction_time_ +=
        (1.0 - vm.alloc_timeline[k].second) * seg_hours;
  }
  revenue_.df_allocated_core_hours += allocated_core_hours;
  deflatable_time_ += hours;

  // --- throughput loss (Fig. 4 / Fig. 21) ---
  // Align the allocation step-function with the VM's 5-minute usage series.
  const auto& samples = record.cpu.samples();
  const std::int64_t interval_us = record.cpu.interval().micros();
  const auto ran_intervals = static_cast<std::size_t>(std::min<std::int64_t>(
      static_cast<std::int64_t>(samples.size()),
      (at - vm.placed_at).micros() / std::max<std::int64_t>(1, interval_us)));
  std::size_t seg = 0;
  for (std::size_t i = 0; i < ran_intervals; ++i) {
    const sim::SimTime t =
        vm.placed_at + sim::SimTime::from_micros(
                           static_cast<std::int64_t>(i) * interval_us);
    while (seg + 1 < vm.alloc_timeline.size() &&
           vm.alloc_timeline[seg + 1].first <= t) {
      ++seg;
    }
    const double alloc = vm.alloc_timeline[seg].second;
    const double usage = samples[i];
    used_ += usage;
    lost_ += std::max(0.0, usage - alloc);
  }
}

void TraceDrivenSimulator::on_vm_end(std::size_t idx) {
  VmRuntime& vm = runtimes_[idx];
  if (!vm.running) return;  // rejected or already preempted
  finalize(vm, now_);
  manager_->remove_vm(vm.record->id);
}

SimMetrics TraceDrivenSimulator::run() {
  if (ran_) {
    throw std::logic_error("TraceDrivenSimulator::run is single-shot");
  }
  ran_ = true;

  // Event order at equal timestamps: departures first (frees capacity),
  // then server restorations (adds capacity), then server revocations
  // (arriving VMs see the reduced fleet), then arrivals; ties broken by
  // VM id / server id for determinism.
  struct Event {
    sim::SimTime at;
    enum class Kind { VmEnd, Restore, Revoke, VmStart } kind;
    std::size_t idx;  ///< VM index or server id
  };
  std::vector<Event> events;
  events.reserve(records_.size() * 2 +
                 (plan_ ? plan_->revocations.size() : 0));
  for (std::size_t i = 0; i < records_.size(); ++i) {
    events.push_back({records_[i].start, Event::Kind::VmStart, i});
    events.push_back({records_[i].end, Event::Kind::VmEnd, i});
  }
  if (plan_) {
    for (const transient::RevocationEvent& rev : plan_->revocations) {
      events.push_back({rev.at,
                        rev.revoke ? Event::Kind::Revoke : Event::Kind::Restore,
                        rev.server});
    }
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.idx < b.idx;
  });

  for (const Event& event : events) {
    // Batched view maintenance: dirty views/aggregates accumulated by the
    // events of one simulated tick are flushed once at the tick boundary
    // instead of once per event (placement stays exact either way).
    if (event.at != now_) manager_->flush_views();
    now_ = event.at;
    switch (event.kind) {
      case Event::Kind::VmStart: on_vm_start(event.idx); break;
      case Event::Kind::VmEnd: on_vm_end(event.idx); break;
      case Event::Kind::Revoke: manager_->revoke_server(event.idx); break;
      case Event::Kind::Restore: manager_->restore_server(event.idx); break;
    }
  }

  SimMetrics metrics;
  const cluster::ClusterStats& stats = manager_->stats();
  metrics.reclamation_attempts = stats.reclamation_attempts;
  metrics.reclamation_failures = stats.reclamation_failures;
  metrics.preemptions = stats.preemptions;
  metrics.rejections = stats.rejections;
  metrics.failure_rate_per_attempt =
      stats.reclamation_attempts > 0
          ? static_cast<double>(stats.reclamation_failures) /
                static_cast<double>(stats.reclamation_attempts)
          : 0.0;

  metrics.vm_count = records_.size();
  for (const trace::VmRecord& record : records_) {
    if (record.deflatable()) ++metrics.deflatable_count;
  }
  metrics.failure_probability =
      metrics.deflatable_count > 0
          ? static_cast<double>(stats.reclamation_failures) /
                static_cast<double>(metrics.deflatable_count)
          : 0.0;
  metrics.preemption_probability =
      metrics.deflatable_count > 0
          ? static_cast<double>(stats.preemptions) /
                static_cast<double>(metrics.deflatable_count)
          : 0.0;

  metrics.throughput_loss = used_ > 0.0 ? lost_ / used_ : 0.0;
  metrics.revenue = revenue_;

  metrics.revocations = stats.revocations;
  metrics.revocation_migrations = stats.revocation_migrations;
  metrics.revocation_kills = stats.revocation_kills;
  if (plan_ && config_.server_count > 0) {
    metrics.transient_server_share =
        static_cast<double>(plan_->transient_servers.size()) /
        static_cast<double>(config_.server_count);
    metrics.portfolio_expected_cost = plan_->portfolio.expected_cost;
    const transient::TransientMarketEngine engine(config_.market);
    metrics.cost = engine.cost_report(
        *plan_, config_.server_capacity[res::Resource::Cpu],
        horizon_of(records_));
  }
  metrics.mean_cpu_deflation =
      deflatable_time_ > 0.0 ? deflation_fraction_time_ / deflatable_time_ : 0.0;

  const res::ResourceVector peak = peak_committed(records_);
  const res::ResourceVector capacity = manager_->total_capacity();
  double oc = 0.0;
  for (const res::Resource r : {res::Resource::Cpu, res::Resource::Memory}) {
    if (capacity[r] > 0.0) oc = std::max(oc, peak[r] / capacity[r] - 1.0);
  }
  metrics.achieved_overcommit = oc;
  return metrics;
}

res::ResourceVector TraceDrivenSimulator::peak_committed(
    const std::vector<trace::VmRecord>& records) {
  struct Change {
    sim::SimTime at;
    bool add;
    res::ResourceVector amount;
  };
  std::vector<Change> changes;
  changes.reserve(records.size() * 2);
  for (const trace::VmRecord& record : records) {
    const res::ResourceVector v = record.to_spec().vector();
    changes.push_back({record.start, true, v});
    changes.push_back({record.end, false, v});
  }
  std::sort(changes.begin(), changes.end(), [](const Change& a, const Change& b) {
    if (a.at != b.at) return a.at < b.at;
    return !a.add && b.add;  // removals first
  });
  res::ResourceVector current, peak;
  for (const Change& change : changes) {
    if (change.add) {
      current += change.amount;
    } else {
      current -= change.amount;
    }
    peak = peak.elementwise_max(current);
  }
  return peak;
}

std::size_t TraceDrivenSimulator::servers_for_overcommit(
    const std::vector<trace::VmRecord>& records,
    const res::ResourceVector& server_capacity, double overcommit) {
  const res::ResourceVector peak = peak_committed(records);
  double servers = 1.0;
  for (const res::Resource r : {res::Resource::Cpu, res::Resource::Memory}) {
    if (server_capacity[r] > 0.0) {
      servers = std::max(servers,
                         peak[r] / (server_capacity[r] * (1.0 + overcommit)));
    }
  }
  return static_cast<std::size_t>(std::ceil(servers));
}

std::size_t TraceDrivenSimulator::minimum_feasible_servers(
    const std::vector<trace::VmRecord>& records, const SimConfig& base_config) {
  std::size_t servers =
      servers_for_overcommit(records, base_config.server_capacity, 0.0);
  const std::size_t limit = servers * 2 + 8;  // fragmentation bound
  for (; servers < limit; ++servers) {
    SimConfig config = base_config;
    config.server_count = servers;
    TraceDrivenSimulator simulator(records, config);
    const SimMetrics metrics = simulator.run();
    if (metrics.reclamation_failures == 0 && metrics.rejections == 0 &&
        metrics.preemptions == 0) {
      return servers;
    }
  }
  return limit;
}

std::vector<trace::VmRecord> TraceDrivenSimulator::select_deflatable_subset(
    const std::vector<trace::VmRecord>& records, double core_hours) {
  std::vector<trace::VmRecord> out;
  double budget = core_hours;
  for (const trace::VmRecord& record : records) {
    if (!record.deflatable()) {
      out.push_back(record);
      continue;
    }
    const double cost =
        static_cast<double>(record.vcpus) * record.lifetime().hours();
    if (cost <= budget) {
      budget -= cost;
      out.push_back(record);
    }
  }
  return out;
}

}  // namespace deflate::simcluster
