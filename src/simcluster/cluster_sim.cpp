#include "simcluster/cluster_sim.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace deflate::simcluster {

namespace {

/// Resolves SimConfig::policies onto the legacy config fields: validated
/// up front (one std::invalid_argument naming every problem), then each
/// named choice is written into the owning subsystem's `*_name` field —
/// those take precedence over the enums at construction time. Builtin
/// names additionally sync the enum so code that still branches on it
/// (bid optimization, market.enabled()) sees the same selection; plugin
/// names leave the enum alone.
void apply_policy_set(SimConfig& config) {
  const policy::PolicySet& set = config.policies;
  const std::vector<std::string> errors = set.validate();
  if (!errors.empty()) {
    std::string message = "SimConfig.policies: " + errors.front();
    for (std::size_t i = 1; i < errors.size(); ++i) {
      message += "; " + errors[i];
    }
    throw std::invalid_argument(message);
  }
  if (!set.placement.empty()) {
    if (const auto kind = cluster::placement_strategy_from_name(set.placement.name)) {
      config.placement = *kind;
    }
  }
  if (!set.shard_selection.empty()) {
    if (const auto kind = cluster::shard_selection_from_name(set.shard_selection.name)) {
      config.shard_selection = *kind;
    }
  }
  if (!set.migration.empty()) {
    config.migration.strategy_name = set.migration.name;
  }
  if (!set.revocation.empty()) {
    const auto apply = [&set](transient::RevocationConfig& rc) {
      rc.model_name = set.revocation.name;
      if (const auto kind = transient::revocation_model_from_name(set.revocation.name)) {
        rc.model = *kind;
      }
      rc.poisson_rate_per_hour =
          set.revocation.param_or("poisson_rate_per_hour", rc.poisson_rate_per_hour);
      rc.max_lifetime_hours =
          set.revocation.param_or("max_lifetime_hours", rc.max_lifetime_hours);
      rc.early_fraction = set.revocation.param_or("early_fraction", rc.early_fraction);
      rc.early_tau_hours = set.revocation.param_or("early_tau_hours", rc.early_tau_hours);
      rc.late_shape = set.revocation.param_or("late_shape", rc.late_shape);
      rc.bid = set.revocation.param_or("bid", rc.bid);
    };
    apply(config.market.revocation);
    for (transient::MarketDef& market : config.market.markets) {
      apply(market.revocation);
    }
  }
  if (!set.admission.empty()) {
    if (const auto kind = cluster::admission_policy_from_name(set.admission.name)) {
      config.admission.policy = *kind;
    }
    config.admission.default_ceiling =
        set.admission.param_or("default_ceiling", config.admission.default_ceiling);
    config.admission.max_defer_hours =
        set.admission.param_or("max_defer_hours", config.admission.max_defer_hours);
  }
  if (!set.control.empty()) {
    config.control.forecast = set.control.name;
    config.control.ewma_alpha =
        set.control.param_or("alpha", config.control.ewma_alpha);
  }
}

cluster::ClusterConfig make_cluster_config(
    const SimConfig& config,
    const std::optional<transient::CapacityPlan>& plan) {
  cluster::ClusterConfig out;
  out.server_count = config.server_count;
  out.server_capacity = config.server_capacity;
  out.policy = config.policy;
  out.mode = config.mode;
  out.mechanism = config.mechanism;
  out.placement = config.placement;
  out.placement_name = config.policies.placement.name;
  out.reinflate_on_departure = config.reinflate_on_departure;
  out.partitioned = config.partitioned;
  // Portfolio-driven capacity mixing: the mean-variance weights size the
  // on-demand pool and the deflatable priority pools.
  if (plan && config.market_enabled && config.market.use_portfolio &&
      config.partitioned && !plan->pool_weights.empty()) {
    out.pool_weights = plan->pool_weights;
  }
  return out;
}

std::optional<transient::CapacityPlan> make_plan(sim::SimTime horizon,
                                                 const SimConfig& config) {
  if (!config.market_enabled) return std::nullopt;
  const transient::TransientMarketEngine engine(config.market);
  return engine.plan(config.server_count, horizon, /*deflatable_pools=*/4);
}

std::unique_ptr<cluster::ClusterManagerBase> make_manager(
    const SimConfig& config,
    const std::optional<transient::CapacityPlan>& plan) {
  cluster::ShardedClusterConfig sharded;
  sharded.cluster = make_cluster_config(config, plan);
  sharded.shard_count = config.shard_count;
  sharded.selection = config.shard_selection;
  sharded.selection_name = config.policies.shard_selection.name;
  sharded.routing_seed = config.shard_routing_seed;
  sharded.worker_threads = config.worker_threads != 0
                               ? config.worker_threads
                               : util::env_threads();
  return cluster::make_cluster_manager(std::move(sharded));
}

}  // namespace

sim::SimTime TraceDrivenSimulator::horizon_of(
    const std::vector<trace::VmRecord>& records) {
  sim::SimTime horizon;
  for (const trace::VmRecord& record : records) {
    horizon = std::max(horizon, record.end);
  }
  return horizon;
}

TraceDrivenSimulator::TraceDrivenSimulator(std::vector<trace::VmRecord> records,
                                           SimConfig config)
    : records_(std::move(records)),
      config_(std::move(config)),
      runtimes_(records_.size()) {
  horizon_ = horizon_of(records_);
  trace_peak_committed_ = peak_committed(records_);
  for (std::size_t i = 0; i < records_.size(); ++i) {
    runtimes_[i].record = &records_[i];
    id_to_idx_[records_[i].id] = i;
  }
  init_common();
}

TraceDrivenSimulator::TraceDrivenSimulator(trace::VmArrivalStream& stream,
                                           SimConfig config)
    : config_(std::move(config)), stream_(&stream) {
  horizon_ = stream_->horizon();
  trace_peak_committed_ = stream_->peak_committed();
  init_common();
}

TraceDrivenSimulator::TraceDrivenSimulator(SimConfig config)
    : config_(std::move(config)) {
  if (!config_.replay.has_value()) {
    throw std::invalid_argument(
        "TraceDrivenSimulator(SimConfig): config.replay is unset");
  }
  owned_stream_ = trace::make_arrival_stream(*config_.replay);
  stream_ = owned_stream_.get();
  horizon_ = stream_->horizon();
  trace_peak_committed_ = stream_->peak_committed();
  init_common();
}

void TraceDrivenSimulator::init_common() {
  apply_policy_set(config_);
  plan_ = make_plan(horizon_, config_);
  manager_ = make_manager(config_, plan_);
  if (timed_migration()) {
    migration_engine_.emplace(config_.migration, *manager_);
  }

  // Partitioned market: the never-revoked set must be exactly the
  // on-demand pool (pool 0). ClusterPartitions rounds pool sizes (one
  // server per pool + largest remainder) and a sharded fleet scatters
  // pool 0 across the shards, so realign the plan's split with the
  // realized pool-0 server set: the engine re-splits the transient set
  // across its markets by portfolio weight and regenerates every
  // revocation schedule (per-server keyed streams keep this
  // deterministic).
  if (plan_ && config_.partitioned) {
    const std::vector<std::size_t> pool0 = manager_->pool_servers(0);
    std::vector<std::size_t> transient;
    transient.reserve(config_.server_count - pool0.size());
    std::vector<std::uint8_t> on_demand(config_.server_count, 0);
    for (const std::size_t s : pool0) on_demand[s] = 1;
    for (std::size_t s = 0; s < config_.server_count; ++s) {
      if (!on_demand[s]) transient.push_back(s);
    }
    if (transient != plan_->transient_servers) {
      const transient::TransientMarketEngine engine(config_.market);
      engine.rebind_transient_servers(*plan_, pool0.size(),
                                      std::move(transient), horizon_);
    }
  }

  // Mid-run regime shift: stitch the environment change into the plan's
  // price traces and revocation schedules *before* anything downstream
  // (the admission price feed, the plan-event queue, the controller)
  // captures pointers into them. Applied whether or not the controller
  // is enabled, so a static t=0 plan and a rolling re-optimized run face
  // the same realized world.
  if (plan_ && config_.control.regime_shift.active()) {
    control::apply_regime_shift(*plan_, config_.market,
                                config_.control.regime_shift, horizon_);
  }

  // Admission stage: AdmitAll quotes prices but defers nothing; the
  // price-aware policies quote off the plan's market traces (pointers into
  // plan_, which outlives the controller). BidOptimized pulls its ceilings
  // from the plan's per-class bid optima when the engine computed them.
  {
    cluster::AdmissionConfig admission = config_.admission;
    std::vector<const transient::PriceTrace*> traces;
    if (plan_) {
      traces.reserve(plan_->markets.size());
      for (const transient::MarketPlan& market : plan_->markets) {
        traces.push_back(&market.prices);
      }
      if (admission.policy == cluster::AdmissionPolicyKind::BidOptimized &&
          !plan_->class_ceilings.empty()) {
        admission.class_ceilings = plan_->class_ceilings;
      }
    }
    const double on_demand_rate =
        config_.market.effective_markets().front().price.on_demand_price;
    cluster::PriceFeed feed(std::move(traces), on_demand_rate);
    // A registry name routes through the admission registry (the only way
    // a link-time plugin policy can be selected); empty keeps the enum
    // dispatch, bit-identical to before the policy layer existed.
    admission_ =
        config_.policies.admission.empty()
            ? cluster::make_admission_controller(std::move(admission),
                                                 *manager_, std::move(feed))
            : cluster::make_admission_controller_by_name(
                  config_.policies.admission.name, admission, *manager_,
                  std::move(feed));
  }

  // Online control plane: wakes every `control.reopt_hours` of simulated
  // time (Reopt events, canonically ordered after the tick's
  // revocations, before its arrivals). Needs a market plan with at least
  // one market to re-optimize against; with none the controller is
  // simply absent and the run takes the legacy one-shot path.
  if (config_.control.enabled && plan_ && !plan_->markets.empty()) {
    controller_ = std::make_unique<control::FleetController>(
        config_.control, config_.market, *plan_, horizon_, timed_migration());
    if (config_.control.reopt_active()) {
      const sim::SimTime window =
          sim::SimTime::from_hours(config_.control.reopt_hours);
      // A window that rounds to zero microseconds would re-optimize
      // forever at t=0; treat it as inactive, like reopt_hours <= 0.
      if (window > sim::SimTime{} && window < horizon_) next_reopt_ = window;
    }
  }

  // Track allocation changes (deflation *and* reinflation) per VM.
  manager_->subscribe_deflation([this](const hv::Vm& vm,
                                      const res::ResourceVector& /*old_alloc*/,
                                      const res::ResourceVector& new_alloc) {
    VmRuntime* rt = runtime_of(vm.spec().id);
    if (rt == nullptr || !rt->running) return;
    const double spec_cores = static_cast<double>(vm.spec().vcpus);
    const double fraction =
        spec_cores > 0.0 ? new_alloc[res::Resource::Cpu] / spec_cores : 1.0;
    rt->alloc_timeline.emplace_back(now_, fraction);
  });

  manager_->subscribe_preemption(
      [this](const hv::VmSpec& spec, std::uint64_t /*host*/) {
        VmRuntime* rt = runtime_of(spec.id);
        if (rt == nullptr || !rt->running) return;
        rt->preempted = true;
        finalize(*rt, now_);
      });

  // Migrations keep running through a revocation, possibly at a deflated
  // launch fraction on the new server; extend the allocation timeline.
  manager_->subscribe_migration([this](const hv::VmSpec& spec,
                                      std::uint64_t /*from*/,
                                      std::uint64_t /*to*/, double fraction) {
    VmRuntime* rt = runtime_of(spec.id);
    if (rt == nullptr || !rt->running) return;
    rt->alloc_timeline.emplace_back(now_, fraction);
  });
}

TraceDrivenSimulator::VmRuntime* TraceDrivenSimulator::runtime_of(
    std::uint64_t id) {
  if (stream_ != nullptr) {
    const auto it = active_.find(id);
    return it == active_.end() ? nullptr : &it->second.rt;
  }
  const auto it = id_to_idx_.find(id);
  return it == id_to_idx_.end() ? nullptr : &runtimes_[it->second];
}

bool TraceDrivenSimulator::timed_migration() const noexcept {
  return config_.market_enabled &&
         config_.mode == cluster::ReclamationMode::Deflation &&
         config_.migration.model.bandwidth_mib_per_sec > 0.0;
}

void TraceDrivenSimulator::charge_downtime(const VmRuntime& vm,
                                           sim::SimTime from,
                                           sim::SimTime until) {
  const sim::SimTime end = std::min(until, vm.record->end);
  if (end <= from) return;
  const double hours = (end - from).hours();
  migration_downtime_hours_ += hours;
  migration_downtime_core_hours_ +=
      hours * static_cast<double>(vm.record->vcpus);
}

void TraceDrivenSimulator::track_migration(
    const cluster::MigrationRecord& record) {
  VmRuntime* rt = runtime_of(record.spec.id);
  if (rt == nullptr || !rt->running) return;
  // A fresh displacement supersedes any still-queued cutover events from
  // an earlier one (e.g. the destination server is revoked mid-transfer).
  const std::uint32_t epoch = ++rt->displacement_epoch;
  // The VM's allocation moves to the destination at stream start (the
  // placement may have deflated it); it pauses for the cutover window and
  // resumes at its destination fraction when the transfer lands. Downtime
  // is billed by the pause event, when the pause is known to happen.
  rt->alloc_timeline.emplace_back(record.start, record.launch_fraction);
  pending_allocs_.push({record.cutover_begin, record.spec.id, 0.0, epoch,
                        record.cutover_end});
  pending_allocs_.push(
      {record.cutover_end, record.spec.id, record.launch_fraction, epoch, {}});
}

void TraceDrivenSimulator::charge_unserved_tail(const VmRuntime& vm,
                                                sim::SimTime at) {
  // finalize() integrates usage for deflatable VMs only; keep the two
  // populations consistent or throughput_loss mixes denominators.
  if (!vm.record->deflatable()) return;
  const trace::VmRecord& record = *vm.record;
  const auto& samples = record.cpu.samples();
  const std::int64_t interval_us = record.cpu.interval().micros();
  const auto served = static_cast<std::size_t>(std::min<std::int64_t>(
      static_cast<std::int64_t>(samples.size()),
      (at - vm.placed_at).micros() / std::max<std::int64_t>(1, interval_us)));
  for (std::size_t i = served; i < samples.size(); ++i) {
    used_ += samples[i];
    lost_ += samples[i];
  }
}

void TraceDrivenSimulator::charge_never_served(const VmRuntime& vm) {
  // Mirror of charge_unserved_tail for a VM that never launched: the whole
  // series is demand the fleet failed to serve. Deflatable only, to keep
  // the throughput denominators consistent (see charge_unserved_tail).
  if (!vm.record->deflatable()) return;
  for (const double sample : vm.record->cpu.samples()) {
    used_ += sample;
    lost_ += sample;
  }
}

void TraceDrivenSimulator::apply_admission(
    VmRuntime& vm, const cluster::AdmissionDecision& decision) {
  if (decision.admitted()) {
    vm.running = true;
    vm.placed_at = now_;
    vm.alloc_timeline.clear();
    vm.alloc_timeline.emplace_back(now_, decision.placement.launch_fraction);
    if (vm.deferred) {
      // The arrival→launch window went unserved: bill it as replacement
      // capacity. (The displaced tail samples are charged to throughput
      // loss when the VM finalizes.)
      const double delay_hours = (now_ - vm.record->start).hours();
      admission_delay_hours_ += delay_hours;
      admission_unserved_core_hours_ +=
          delay_hours * static_cast<double>(vm.record->vcpus);
    }
    return;
  }
  if (decision.status == cluster::AdmissionDecision::Status::Deferred) {
    vm.deferred = true;  // queued inside the controller; a drain resolves it
    return;
  }
  vm.rejected = true;
  if (decision.reason == cluster::AdmissionDecision::Reason::DeadlineExpired) {
    vm.expired = true;
    charge_never_served(vm);
    admission_unserved_core_hours_ +=
        static_cast<double>(vm.record->vcpus) * vm.record->lifetime().hours();
  }
}

void TraceDrivenSimulator::on_vm_start(VmRuntime& vm) {
  cluster::AdmissionRequest request =
      cluster::AdmissionRequest::from_spec(vm.record->to_spec(), now_);
  // A VM admitted at (or after) its departure would never be removed:
  // clamp the deferral window strictly inside the record's lifetime, so
  // expiry always resolves before the (already ignored) VmEnd event.
  const sim::SimTime latest =
      vm.record->end - sim::SimTime::from_micros(1);
  const sim::SimTime window =
      now_ + sim::SimTime::from_hours(
                 std::max(0.0, admission_->config().max_defer_hours));
  request.deadline = std::max(now_, std::min(window, latest));
  apply_admission(vm, admission_->decide(request, now_));
}

void TraceDrivenSimulator::finalize(VmRuntime& vm, sim::SimTime at) {
  vm.running = false;
  vm.finished_at = at;
  const trace::VmRecord& record = *vm.record;
  const double cores = static_cast<double>(record.vcpus);
  const double hours = (at - vm.placed_at).hours();
  if (hours <= 0.0) return;

  // In-flight migration cutovers can interleave with deflation events out
  // of order when a VM is displaced twice in quick succession; the
  // integrations below assume a time-sorted step function.
  std::stable_sort(vm.alloc_timeline.begin(), vm.alloc_timeline.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  if (!record.deflatable()) {
    revenue_.od_committed_core_hours += cores * hours;
    return;
  }

  // --- revenue integrals ---
  revenue_.df_committed_core_hours += cores * hours;
  revenue_.df_priority_committed_core_hours +=
      record.priority_level() * cores * hours;
  double allocated_core_hours = 0.0;
  for (std::size_t k = 0; k < vm.alloc_timeline.size(); ++k) {
    const sim::SimTime seg_start = vm.alloc_timeline[k].first;
    const sim::SimTime seg_end =
        k + 1 < vm.alloc_timeline.size() ? vm.alloc_timeline[k + 1].first : at;
    const double seg_hours = (seg_end - seg_start).hours();
    if (seg_hours <= 0.0) continue;
    allocated_core_hours += vm.alloc_timeline[k].second * cores * seg_hours;
    deflation_fraction_time_ +=
        (1.0 - vm.alloc_timeline[k].second) * seg_hours;
  }
  revenue_.df_allocated_core_hours += allocated_core_hours;
  deflatable_time_ += hours;

  // --- throughput loss (Fig. 4 / Fig. 21) ---
  // Align the allocation step-function with the VM's 5-minute usage series.
  const auto& samples = record.cpu.samples();
  const std::int64_t interval_us = record.cpu.interval().micros();
  const auto ran_intervals = static_cast<std::size_t>(std::min<std::int64_t>(
      static_cast<std::int64_t>(samples.size()),
      (at - vm.placed_at).micros() / std::max<std::int64_t>(1, interval_us)));
  std::size_t seg = 0;
  for (std::size_t i = 0; i < ran_intervals; ++i) {
    const sim::SimTime t =
        vm.placed_at + sim::SimTime::from_micros(
                           static_cast<std::int64_t>(i) * interval_us);
    while (seg + 1 < vm.alloc_timeline.size() &&
           vm.alloc_timeline[seg + 1].first <= t) {
      ++seg;
    }
    const double alloc = vm.alloc_timeline[seg].second;
    const double usage = samples[i];
    used_ += usage;
    lost_ += std::max(0.0, usage - alloc);
  }
}

void TraceDrivenSimulator::on_vm_end(VmRuntime& vm) {
  if (!vm.running) return;  // rejected, deferred-in-queue or already preempted
  const bool launched_late = vm.deferred;
  finalize(vm, now_);
  if (launched_late) {
    // finalize() integrated the samples the late launch actually served;
    // the displaced tail is demand the deferral pushed past the VM's
    // departure — lost throughput.
    charge_unserved_tail(vm, now_);
  }
  manager_->remove_vm(vm.record->id);
}

void TraceDrivenSimulator::publish_utilization() {
  if (config_.telemetry_bus == nullptr) return;
  for (std::size_t s = 0; s < manager_->server_count(); ++s) {
    if (!manager_->server_active(s)) continue;
    const hv::Host& host = manager_->host(s);
    cluster::wire::UtilizationReport report;
    report.host_id = s;
    report.available = host.available();
    report.committed = host.committed();
    report.overcommit_ratio = host.overcommit_ratio();
    config_.telemetry_bus->publish(kUtilizationTopic, report.encode());
  }
}

std::vector<TraceDrivenSimulator::Event>
TraceDrivenSimulator::build_plan_events() const {
  std::vector<Event> events;
  if (plan_) {
    events.reserve(plan_->revocations.size());
    for (const transient::RevocationEvent& rev : plan_->revocations) {
      events.push_back({rev.at,
                        rev.revoke ? Event::Kind::Revoke : Event::Kind::Restore,
                        rev.server,
                        {}});
    }
  }
  if (plan_ && timed_migration()) {
    // Advance warnings, per market (each market has its own warning time).
    // A warning never precedes the server's previous restore: a server the
    // provider has not yet handed back cannot be announced as doomed.
    const std::vector<transient::MarketDef> defs =
        config_.market.effective_markets();
    for (std::size_t m = 0;
         m < plan_->markets.size() && m < defs.size(); ++m) {
      const double warning_hours = defs[m].revocation.warning_hours;
      if (warning_hours <= 0.0) continue;
      const sim::SimTime warning = sim::SimTime::from_hours(warning_hours);
      std::unordered_map<std::size_t, sim::SimTime> prev_event_at;
      for (const transient::RevocationEvent& rev :
           plan_->markets[m].revocations) {
        if (rev.revoke) {
          sim::SimTime warn_at = rev.at - warning;
          const auto prev = prev_event_at.find(rev.server);
          if (prev != prev_event_at.end() && warn_at < prev->second) {
            warn_at = prev->second;
          }
          if (warn_at < sim::SimTime{}) warn_at = sim::SimTime{};
          if (warn_at < rev.at) {
            events.push_back({warn_at, Event::Kind::Warn, rev.server, rev.at});
          }
        }
        prev_event_at[rev.server] = rev.at;
      }
    }
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.idx < b.idx;
  });
  return events;
}

void TraceDrivenSimulator::handle_warn(std::size_t server,
                                       sim::SimTime deadline) {
  const cluster::WarningResult warned =
      migration_engine_->begin_warning(server, now_, deadline);
  for (const cluster::MigrationRecord& record : warned.started) {
    track_migration(record);
  }
  for (const hv::VmSpec& spec : warned.suspended) {
    VmRuntime* rt = runtime_of(spec.id);
    if (rt != nullptr && rt->running) {
      // Checkpointed: paused from now until the deadline resolves
      // it (restore or kill); supersedes queued cutovers. The
      // suspension pause is certain, so it bills immediately.
      ++rt->displacement_epoch;
      rt->alloc_timeline.emplace_back(now_, 0.0);
      charge_downtime(*rt, now_, deadline);
    }
    suspended_[server].push_back(spec.id);
  }
}

void TraceDrivenSimulator::handle_revoke(std::size_t server) {
  if (!timed_migration()) {
    manager_->revoke_server(server);
    return;
  }
  // Present the still-alive suspended VMs (checkpointed at the warning
  // for lack of a destination) for one last placement attempt.
  std::vector<hv::VmSpec> suspended;
  if (const auto it = suspended_.find(server); it != suspended_.end()) {
    for (const std::uint64_t id : it->second) {
      VmRuntime* rt = runtime_of(id);
      if (rt != nullptr && rt->running) {
        suspended.push_back(rt->record->to_spec());
      }
    }
    suspended_.erase(it);
  }
  const cluster::RevocationFinish finish =
      migration_engine_->finish_revocation(server, now_, suspended);
  for (const cluster::MigrationRecord& record : finish.restored) {
    track_migration(record);
  }
  for (const hv::VmSpec& spec : finish.killed) {
    VmRuntime* rt = runtime_of(spec.id);
    if (rt == nullptr || !rt->running) continue;
    rt->preempted = true;
    charge_unserved_tail(*rt, now_);
    finalize(*rt, now_);
  }
}

void TraceDrivenSimulator::run_reopt() {
  const control::ReoptResult result = controller_->reoptimize(now_);
  if (result.ceilings_updated) {
    // The Reopt event sits on a tick barrier (views were flushed before
    // dispatch) and ranks ahead of same-instant retries and arrivals, so
    // every request from this tick on sees the re-optimized table.
    admission_->set_class_ceilings(result.class_ceilings);
  }
  if (result.schedule_rewritten) {
    // Replace the unconsumed plan-event suffix with the controller's
    // rewritten future. Everything at or before now_ has already been
    // consumed (future_events are strictly after now_), so the splice
    // never revises history.
    plan_queue_.resize(next_plan_);
    plan_queue_.reserve(next_plan_ + result.future_events.size());
    for (const control::PlanEvent& event : result.future_events) {
      Event::Kind kind = Event::Kind::Revoke;
      switch (event.kind) {
        case control::PlanEvent::Kind::Restore:
          kind = Event::Kind::Restore;
          break;
        case control::PlanEvent::Kind::Warn: kind = Event::Kind::Warn; break;
        case control::PlanEvent::Kind::Revoke:
          kind = Event::Kind::Revoke;
          break;
      }
      plan_queue_.push_back({event.at, kind, event.server, event.deadline});
    }
  }
  next_reopt_ += sim::SimTime::from_hours(config_.control.reopt_hours);
  if (next_reopt_ >= horizon_) next_reopt_ = sim::SimTime::max();
}

void TraceDrivenSimulator::apply_alloc_event(const AllocEvent& alloc) {
  now_ = std::max(now_, alloc.at);
  VmRuntime* rt = runtime_of(alloc.vm_id);
  if (rt != nullptr && rt->running &&
      rt->displacement_epoch == alloc.epoch) {
    rt->alloc_timeline.emplace_back(alloc.at, alloc.fraction);
    // A pause that actually fired bills its window (a superseded one
    // was dropped by the epoch guard above and costs nothing).
    charge_downtime(*rt, alloc.at, alloc.pause_until);
  }
}

SimMetrics TraceDrivenSimulator::run() {
  if (ran_) {
    throw std::logic_error("TraceDrivenSimulator::run is single-shot");
  }
  ran_ = true;
  if (stream_ != nullptr) {
    run_streaming();
  } else {
    run_vector();
  }
  return build_metrics();
}

void TraceDrivenSimulator::run_vector() {
  // Controller-enabled runs keep the plan's Restore/Warn/Revoke schedule
  // in the spliceable member queue (a re-optimization may rewrite its
  // unconsumed suffix); disabled runs merge it into the static vector
  // exactly as before. Either way the three sources' kinds are disjoint,
  // so merging by (at, kind) reproduces the single sorted vector's
  // canonical (at, kind, idx) order bit-for-bit.
  std::vector<Event> events;
  if (controller_) {
    plan_queue_ = build_plan_events();
  } else {
    events = build_plan_events();
  }
  events.reserve(events.size() + records_.size() * 2);
  for (std::size_t i = 0; i < records_.size(); ++i) {
    events.push_back({records_[i].start, Event::Kind::VmStart, i, {}});
    events.push_back({records_[i].end, Event::Kind::VmEnd, i, {}});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.idx < b.idx;
  });

  std::size_t next_event = 0;
  while (next_event < events.size() || next_plan_ < plan_queue_.size() ||
         next_reopt_ != sim::SimTime::max() || !pending_allocs_.empty() ||
         admission_->next_retry()) {
    // Earliest static event across the sources: the arrival/departure
    // vector, the plan queue and the controller's next wakeup.
    const Event reopt_event{next_reopt_, Event::Kind::Reopt, 0, {}};
    const Event* candidate =
        next_event < events.size() ? &events[next_event] : nullptr;
    int candidate_source = 0;  // 0 = events, 1 = plan queue, 2 = reopt
    const auto consider = [&](const Event& event, int source) {
      if (candidate == nullptr || event.at < candidate->at ||
          (event.at == candidate->at && event.kind < candidate->kind)) {
        candidate = &event;
        candidate_source = source;
      }
    };
    if (next_plan_ < plan_queue_.size()) consider(plan_queue_[next_plan_], 1);
    if (next_reopt_ != sim::SimTime::max()) consider(reopt_event, 2);

    // Deferral-queue retries come due between static events. A retry is an
    // arrival (of an older request): at equal timestamps it slots into the
    // canonical event order *after* departures/restores/revocations and
    // re-optimizations — price-crossing restores land exactly on the
    // price-drop step the retry waited for, the re-entry must see the
    // restored fleet, and a drained request re-evaluates against freshly
    // pushed ceilings — but *ahead* of same-instant fresh arrivals.
    const sim::SimTime next_static =
        candidate != nullptr ? candidate->at : sim::SimTime::max();
    const bool retry_before_static =
        candidate == nullptr || candidate->kind == Event::Kind::VmStart;
    if (const auto retry = admission_->next_retry();
        retry &&
        (*retry < next_static ||
         (*retry == next_static && retry_before_static)) &&
        (pending_allocs_.empty() || *retry <= pending_allocs_.top().at)) {
      now_ = std::max(now_, *retry);
      for (const cluster::AdmissionController::Resolved& resolved :
           admission_->drain(now_)) {
        if (VmRuntime* rt = runtime_of(resolved.request.spec.id)) {
          apply_admission(*rt, resolved.decision);
        }
      }
      continue;
    }
    // In-flight migration cutovers come due between static events; they
    // only touch allocation timelines, never the manager.
    if (!pending_allocs_.empty() &&
        (candidate == nullptr || pending_allocs_.top().at <= next_static)) {
      const AllocEvent alloc = pending_allocs_.top();
      pending_allocs_.pop();
      apply_alloc_event(alloc);
      continue;
    }
    // Copy, not reference: a Reopt may splice plan_queue_ under us.
    const Event event = *candidate;
    if (candidate_source == 0) {
      ++next_event;
    } else if (candidate_source == 1) {
      ++next_plan_;
    }
    // Batched view maintenance: dirty views/aggregates accumulated by the
    // events of one simulated tick are flushed once at the tick boundary
    // instead of once per event (placement stays exact either way). The
    // telemetry bus reports on the same cadence: one UtilizationReport per
    // active server per tick, from the freshly flushed state.
    if (event.at != now_) {
      manager_->flush_views();
      publish_utilization();
    }
    now_ = event.at;
    switch (event.kind) {
      case Event::Kind::VmStart: on_vm_start(runtimes_[event.idx]); break;
      case Event::Kind::VmEnd: on_vm_end(runtimes_[event.idx]); break;
      case Event::Kind::Warn: handle_warn(event.idx, event.deadline); break;
      case Event::Kind::Revoke: handle_revoke(event.idx); break;
      case Event::Kind::Reopt: run_reopt(); break;
      case Event::Kind::Restore: manager_->restore_server(event.idx); break;
    }
  }

  vm_count_ = records_.size();
  for (const trace::VmRecord& record : records_) {
    if (record.deflatable()) ++deflatable_count_;
  }
  // Non-admission unserved demand, in committed core-hours: capacity
  // rejections in full, preempted/killed VMs from their eviction onwards.
  // (Admission-caused unserved demand is billed into the cost report.)
  for (const VmRuntime& vm : runtimes_) {
    const double cores = static_cast<double>(vm.record->vcpus);
    if (vm.rejected && !vm.expired) {
      unserved_core_hours_ += cores * vm.record->lifetime().hours();
    } else if (vm.preempted) {
      unserved_core_hours_ +=
          cores *
          std::max(0.0, (vm.record->end - vm.finished_at).hours());
    }
  }
}

void TraceDrivenSimulator::run_streaming() {
  // Static events come from four ordered sources merged on the fly:
  //   * the plan's Restore/Warn/Revoke schedule (the spliceable member
  //     queue — a re-optimization may rewrite its unconsumed suffix),
  //   * departures of VMs admitted so far (a min-heap fed at arrival),
  //   * the arrival stream itself (one-record lookahead),
  //   * the controller's next re-optimization wakeup.
  // Ids never collide across same-kind sources, so ordering candidates by
  // (at, kind) reproduces the vector loop's canonical (at, kind, id) order
  // — which is what keeps streaming results consistent with vector-mode
  // replays of the same trace.
  plan_queue_ = build_plan_events();

  struct EndEvent {
    sim::SimTime at;
    std::uint64_t id;
    [[nodiscard]] bool operator>(const EndEvent& other) const noexcept {
      if (at != other.at) return at > other.at;
      return id > other.id;
    }
  };
  std::priority_queue<EndEvent, std::vector<EndEvent>, std::greater<EndEvent>>
      ends;

  std::optional<trace::VmRecord> next_arrival = stream_->next();

  constexpr int kSourceEnd = 0, kSourcePlan = 1, kSourceArrival = 2,
                kSourceReopt = 3;
  constexpr int kArrivalRank = static_cast<int>(Event::Kind::VmStart);
  constexpr int kReoptRank = static_cast<int>(Event::Kind::Reopt);

  const auto release_vm = [&](std::uint64_t id) {
    const auto it = active_.find(id);
    if (it == active_.end()) return;
    VmRuntime& vm = it->second.rt;
    on_vm_end(vm);
    // The vector loop bills non-admission unserved demand in a final pass
    // over all runtimes; a streaming run cannot revisit released VMs, so
    // bill it here, before the record leaves memory.
    const double cores = static_cast<double>(vm.record->vcpus);
    if (vm.rejected && !vm.expired) {
      unserved_core_hours_ += cores * vm.record->lifetime().hours();
    } else if (vm.preempted) {
      unserved_core_hours_ +=
          cores * std::max(0.0, (vm.record->end - vm.finished_at).hours());
    }
    active_.erase(it);
  };

  while (true) {
    // Pick the earliest static event by (at, kind rank).
    int source = -1;
    sim::SimTime at;
    int rank = 0;
    const auto consider = [&](sim::SimTime t, int k, int s) {
      if (source < 0 || t < at || (t == at && k < rank)) {
        at = t;
        rank = k;
        source = s;
      }
    };
    if (!ends.empty()) {
      consider(ends.top().at, static_cast<int>(Event::Kind::VmEnd),
               kSourceEnd);
    }
    if (next_plan_ < plan_queue_.size()) {
      consider(plan_queue_[next_plan_].at,
               static_cast<int>(plan_queue_[next_plan_].kind), kSourcePlan);
    }
    if (next_arrival.has_value()) {
      consider(next_arrival->start, kArrivalRank, kSourceArrival);
    }
    if (next_reopt_ != sim::SimTime::max()) {
      consider(next_reopt_, kReoptRank, kSourceReopt);
    }
    if (source < 0 && pending_allocs_.empty() && !admission_->next_retry()) {
      break;
    }

    // Retry/cutover interleaving: identical rules to the vector loop.
    const sim::SimTime next_static = source >= 0 ? at : sim::SimTime::max();
    const bool retry_before_static = source < 0 || rank == kArrivalRank;
    if (const auto retry = admission_->next_retry();
        retry &&
        (*retry < next_static ||
         (*retry == next_static && retry_before_static)) &&
        (pending_allocs_.empty() || *retry <= pending_allocs_.top().at)) {
      now_ = std::max(now_, *retry);
      for (const cluster::AdmissionController::Resolved& resolved :
           admission_->drain(now_)) {
        if (VmRuntime* rt = runtime_of(resolved.request.spec.id)) {
          apply_admission(*rt, resolved.decision);
        }
      }
      continue;
    }
    if (!pending_allocs_.empty() &&
        (source < 0 || pending_allocs_.top().at <= next_static)) {
      const AllocEvent alloc = pending_allocs_.top();
      pending_allocs_.pop();
      apply_alloc_event(alloc);
      continue;
    }

    // Tick boundary: same batched view/telemetry cadence as the vector
    // loop.
    if (at != now_) {
      manager_->flush_views();
      publish_utilization();
    }
    now_ = at;
    switch (source) {
      case kSourceEnd: {
        const std::uint64_t id = ends.top().id;
        ends.pop();
        release_vm(id);
        break;
      }
      case kSourcePlan: {
        const Event& event = plan_queue_[next_plan_++];
        switch (event.kind) {
          case Event::Kind::Warn:
            handle_warn(event.idx, event.deadline);
            break;
          case Event::Kind::Revoke: handle_revoke(event.idx); break;
          case Event::Kind::Restore:
            manager_->restore_server(event.idx);
            break;
          default: break;  // plan events are never VmStart/VmEnd
        }
        break;
      }
      case kSourceArrival: {
        trace::VmRecord record = std::move(*next_arrival);
        next_arrival = stream_->next();
        const std::uint64_t id = record.id;
        const auto [it, inserted] = active_.try_emplace(id);
        if (!inserted) {
          throw std::runtime_error(
              "trace replay: duplicate vm id " + std::to_string(id) +
              " in arrival stream");
        }
        OwnedVm& owned = it->second;
        owned.record = std::move(record);
        owned.rt.record = &owned.record;
        peak_active_ = std::max(peak_active_, active_.size());
        ++vm_count_;
        if (owned.record.deflatable()) ++deflatable_count_;
        ends.push({owned.record.end, id});
        on_vm_start(owned.rt);
        break;
      }
      case kSourceReopt: run_reopt(); break;
      default: break;
    }
  }

  // The loop can only exit with `ends` empty (a pending departure keeps a
  // static source alive), so every admitted VM has been released and
  // active_ holds nothing but never-materialized entries — there are none.
}

SimMetrics TraceDrivenSimulator::build_metrics() {
  SimMetrics metrics;
  // The admission controller folds its deferral breakdown into the
  // manager's counters (expired deferrals count as rejections).
  const cluster::ClusterStats stats = admission_->cluster_stats();
  metrics.admission_deferrals = stats.admission_deferrals;
  metrics.admission_expired = stats.admission_expired;
  metrics.admission_retries = admission_->stats().retries;
  metrics.admission_delay_hours = admission_delay_hours_;
  metrics.reclamation_attempts = stats.reclamation_attempts;
  metrics.reclamation_failures = stats.reclamation_failures;
  metrics.preemptions = stats.preemptions;
  metrics.rejections = stats.rejections;
  metrics.failure_rate_per_attempt =
      stats.reclamation_attempts > 0
          ? static_cast<double>(stats.reclamation_failures) /
                static_cast<double>(stats.reclamation_attempts)
          : 0.0;

  metrics.vm_count = vm_count_;
  metrics.deflatable_count = deflatable_count_;
  metrics.unserved_core_hours = unserved_core_hours_;
  metrics.failure_probability =
      metrics.deflatable_count > 0
          ? static_cast<double>(stats.reclamation_failures) /
                static_cast<double>(metrics.deflatable_count)
          : 0.0;
  metrics.preemption_probability =
      metrics.deflatable_count > 0
          ? static_cast<double>(stats.preemptions) /
                static_cast<double>(metrics.deflatable_count)
          : 0.0;

  metrics.throughput_loss = used_ > 0.0 ? lost_ / used_ : 0.0;
  metrics.revenue = revenue_;

  metrics.revocations = stats.revocations;
  metrics.revocation_migrations = stats.revocation_migrations;
  metrics.revocation_kills = stats.revocation_kills;
  if (migration_engine_) {
    // Timed displacement ran outside the manager; fold it into the
    // headline counters so instant and timed runs read the same way.
    const cluster::MigrationEngineStats& mig = migration_engine_->stats();
    metrics.live_migrations = mig.live_migrations;
    metrics.checkpoint_restores = mig.checkpoint_restores;
    metrics.checkpoint_kills = mig.checkpoint_kills;
    metrics.migration_downtime_hours = migration_downtime_hours_;
    metrics.revocation_migrations +=
        mig.live_migrations + mig.checkpoint_restores;
    metrics.revocation_kills += mig.checkpoint_kills;
    metrics.preemptions += mig.checkpoint_kills;
    // Keep the derived probability consistent with the folded count.
    metrics.preemption_probability =
        metrics.deflatable_count > 0
            ? static_cast<double>(metrics.preemptions) /
                  static_cast<double>(metrics.deflatable_count)
            : 0.0;
  }
  if (plan_ && config_.server_count > 0) {
    metrics.transient_server_share =
        static_cast<double>(plan_->transient_servers.size()) /
        static_cast<double>(config_.server_count);
    metrics.portfolio_expected_cost = plan_->portfolio.expected_cost;
    const transient::TransientMarketEngine engine(config_.market);
    // The controller's segment-aware bill replaces the engine's only
    // when servers actually moved markets; zero-move controlled runs
    // stay bit-identical to the one-shot report.
    metrics.cost =
        controller_ && controller_->total_moves() > 0
            ? controller_->cost_report(
                  config_.server_capacity[res::Resource::Cpu], horizon_)
            : engine.cost_report(
                  *plan_, config_.server_capacity[res::Resource::Cpu],
                  horizon_);
    const double on_demand_rate =
        config_.market.effective_markets().front().price.on_demand_price;
    if (migration_engine_) {
      // Migration downtime is lost serving capacity: bill it at the
      // on-demand rate on top of the fleet bill.
      metrics.cost.migration_downtime_core_hours =
          migration_downtime_core_hours_;
      metrics.cost.migration_downtime_cost =
          migration_downtime_core_hours_ * on_demand_rate;
    }
    // Admission-caused unserved demand: replacement capacity bought at
    // the sticker rate for the work the deferral queue turned away.
    metrics.cost.admission_unserved_core_hours =
        admission_unserved_core_hours_;
    metrics.cost.admission_unserved_cost =
        admission_unserved_core_hours_ * on_demand_rate;
  }
  if (controller_) {
    metrics.control_reopts = controller_->reopts();
    metrics.control_moves = controller_->total_moves();
  }
  metrics.mean_cpu_deflation =
      deflatable_time_ > 0.0 ? deflation_fraction_time_ / deflatable_time_ : 0.0;

  const res::ResourceVector capacity = manager_->total_capacity();
  double oc = 0.0;
  for (const res::Resource r : {res::Resource::Cpu, res::Resource::Memory}) {
    if (capacity[r] > 0.0) {
      oc = std::max(oc, trace_peak_committed_[r] / capacity[r] - 1.0);
    }
  }
  metrics.achieved_overcommit = oc;
  return metrics;
}

res::ResourceVector TraceDrivenSimulator::peak_committed(
    const std::vector<trace::VmRecord>& records) {
  struct Change {
    sim::SimTime at;
    bool add;
    res::ResourceVector amount;
  };
  std::vector<Change> changes;
  changes.reserve(records.size() * 2);
  for (const trace::VmRecord& record : records) {
    const res::ResourceVector v = record.to_spec().vector();
    changes.push_back({record.start, true, v});
    changes.push_back({record.end, false, v});
  }
  std::sort(changes.begin(), changes.end(), [](const Change& a, const Change& b) {
    if (a.at != b.at) return a.at < b.at;
    return !a.add && b.add;  // removals first
  });
  res::ResourceVector current, peak;
  for (const Change& change : changes) {
    if (change.add) {
      current += change.amount;
    } else {
      current -= change.amount;
    }
    peak = peak.elementwise_max(current);
  }
  return peak;
}

std::size_t TraceDrivenSimulator::servers_for_overcommit(
    const std::vector<trace::VmRecord>& records,
    const res::ResourceVector& server_capacity, double overcommit) {
  const res::ResourceVector peak = peak_committed(records);
  double servers = 1.0;
  for (const res::Resource r : {res::Resource::Cpu, res::Resource::Memory}) {
    if (server_capacity[r] > 0.0) {
      servers = std::max(servers,
                         peak[r] / (server_capacity[r] * (1.0 + overcommit)));
    }
  }
  return static_cast<std::size_t>(std::ceil(servers));
}

std::size_t TraceDrivenSimulator::minimum_feasible_servers(
    const std::vector<trace::VmRecord>& records, const SimConfig& base_config) {
  std::size_t servers =
      servers_for_overcommit(records, base_config.server_capacity, 0.0);
  const std::size_t limit = servers * 2 + 8;  // fragmentation bound
  for (; servers < limit; ++servers) {
    SimConfig config = base_config;
    config.server_count = servers;
    TraceDrivenSimulator simulator(records, config);
    const SimMetrics metrics = simulator.run();
    if (metrics.reclamation_failures == 0 && metrics.rejections == 0 &&
        metrics.preemptions == 0) {
      return servers;
    }
  }
  return limit;
}

std::vector<trace::VmRecord> TraceDrivenSimulator::select_deflatable_subset(
    const std::vector<trace::VmRecord>& records, double core_hours) {
  std::vector<trace::VmRecord> out;
  double budget = core_hours;
  for (const trace::VmRecord& record : records) {
    if (!record.deflatable()) {
      out.push_back(record);
      continue;
    }
    const double cost =
        static_cast<double>(record.vcpus) * record.lifetime().hours();
    if (cost <= budget) {
      budget -= cost;
      out.push_back(record);
    }
  }
  return out;
}

}  // namespace deflate::simcluster
