// Bounded-memory streaming trace replay (ROADMAP: "production-trace
// megafleet scenario").
//
// The generators in this directory key every draw by (seed, vm id), so a
// trace never has to exist in memory to be replayed. This layer keeps only
// a sorted *arrival index* of cheap ArrivalStubs (id, start, end, size)
// and materializes the heavyweight VmRecords — the 5-minute utilization
// series — lazily, a fixed-size window at a time, in arrival order.
// Memory is O(index) + O(window); the full fleet is never resident.
//
// Three sources share the index machinery:
//   * Azure:   AzureTraceGenerator::arrival_of / generate_vm
//   * Alibaba: container records adapted to VMs (class/size/lifetime drawn
//     from a separate keyed stream; the CPU series is synthesized from the
//     container's bandwidth series, which correlate with request load)
//   * Capture: PR-6 `deflated --capture` session files — the captured
//     AdmissionRequests replayed as arrivals with keyed synthetic lifetimes
//
// Determinism contract: the record sequence produced by next() is a pure
// function of the source config, ordered by (start, id). The streaming
// window and worker_threads only change prefetch batching — each record is
// generated from its own (seed, id)-keyed stream — so replay results are
// bit-identical across both knobs (pinned by tests/test_trace_replay.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "resources/resource_vector.hpp"
#include "trace/alibaba.hpp"
#include "trace/azure.hpp"
#include "trace/vm_record.hpp"

namespace deflate::util {
class ThreadPool;
}

namespace deflate::trace {

/// Time-ordered VM arrival source. Single-pass with rewind: next() yields
/// records in (start, id) order until exhausted; reset() rewinds to the
/// first arrival.
class VmArrivalStream {
 public:
  virtual ~VmArrivalStream() = default;

  /// The next record in (start, id) order; nullopt when exhausted.
  [[nodiscard]] virtual std::optional<VmRecord> next() = 0;

  /// Rewinds to the first arrival (the prefetch window is rebuilt).
  virtual void reset() = 0;

  /// Total number of arrivals the stream yields per pass.
  [[nodiscard]] virtual std::size_t size() const noexcept = 0;

  /// Latest record end across all arrivals (the replay horizon).
  [[nodiscard]] virtual sim::SimTime horizon() const noexcept = 0;

  /// Peak concurrently-committed resources over the whole trace, computed
  /// from the stub index (placement commits CPU + memory only, matching
  /// VmRecord::to_spec).
  [[nodiscard]] virtual res::ResourceVector peak_committed() const noexcept = 0;
};

/// The one concrete stream: a sorted stub index plus a windowed
/// materializer. All three sources are an index + a (seed, id)-keyed
/// record function.
class IndexedArrivalStream final : public VmArrivalStream {
 public:
  using Materializer = std::function<VmRecord(std::uint64_t id)>;

  /// Sorts `stubs` by (start, id); `materialize(id)` must return the full
  /// record for a stub's id (header fields equal to the stub). `window` is
  /// the number of records prefetched per batch (min 1); `worker_threads`
  /// parallelizes the batch (0 = DEFLATE_THREADS, never changes results).
  IndexedArrivalStream(std::vector<ArrivalStub> stubs,
                       Materializer materialize, std::size_t window,
                       std::size_t worker_threads);
  ~IndexedArrivalStream() override;  // out-of-line: ThreadPool is incomplete

  [[nodiscard]] std::optional<VmRecord> next() override;
  void reset() override;
  [[nodiscard]] std::size_t size() const noexcept override {
    return stubs_.size();
  }
  [[nodiscard]] sim::SimTime horizon() const noexcept override {
    return horizon_;
  }
  [[nodiscard]] res::ResourceVector peak_committed() const noexcept override {
    return peak_;
  }

  /// The arrival index, sorted by (start, id).
  [[nodiscard]] const std::vector<ArrivalStub>& stubs() const noexcept {
    return stubs_;
  }

 private:
  void refill();
  [[nodiscard]] util::ThreadPool& prefetch_pool();

  std::vector<ArrivalStub> stubs_;
  Materializer materialize_;
  std::size_t window_;
  std::size_t threads_;
  /// Lazily built only when threads_ > 1 and a window actually refills.
  std::unique_ptr<util::ThreadPool> pool_;
  std::size_t cursor_ = 0;  ///< next stub to materialize
  std::vector<VmRecord> buffer_;
  std::size_t buffer_pos_ = 0;
  sim::SimTime horizon_;
  res::ResourceVector peak_;
};

enum class ArrivalSource { Azure, Alibaba, Capture };
[[nodiscard]] const char* arrival_source_name(ArrivalSource s) noexcept;

/// Adapter knobs for replaying Alibaba-style container records as VMs. The
/// container trace has no arrival times, sizes or CPU series of its own:
/// class/size/lifetime come from a keyed stream separate from the container
/// generator's (so the container series stay bit-identical to the
/// standalone generator), and the CPU series is synthesized from the
/// container's memory-bandwidth / disk / network series — the signals that
/// track request load in the Alibaba data (§3.2.2).
struct AlibabaReplayConfig {
  AlibabaTraceConfig containers;
  /// Lifetimes: bounded Pareto on [min_lifetime, containers.duration].
  sim::SimTime min_lifetime = sim::SimTime::from_hours(1);
  /// Long-running services dominate the Alibaba cluster.
  double interactive_share = 0.55;
  double delay_insensitive_share = 0.35;  ///< remainder is "unknown"
};

/// Replays a PR-6 capture file (`deflated --capture`) as an arrival
/// source: every captured AdmissionRequest becomes one VM, arriving at its
/// captured request arrival time. The capture carries no departures, so
/// lifetimes are synthesized keyed by (seed, record index); the CPU series
/// is flat at a level that round-trips the captured priority class through
/// VmRecord::priority_from_p95.
struct CaptureReplayConfig {
  std::string path;
  std::uint64_t seed = 7;
  sim::SimTime min_lifetime = sim::SimTime::from_hours(1);
  sim::SimTime max_lifetime = sim::SimTime::from_hours(24);
};

struct ReplayConfig {
  ArrivalSource source = ArrivalSource::Azure;
  AzureTraceConfig azure;
  AlibabaReplayConfig alibaba;
  CaptureReplayConfig capture;
  /// Arrival-rate multiplier: scales the number of VMs offered per unit
  /// time. Generated sources scale their population count (fresh ids draw
  /// fresh keyed streams, so the class and lifetime mixes are invariant —
  /// pinned by the generator property tests); the capture source replays
  /// the captured sequence ceil(multiplier) times with remapped ids.
  double rate_multiplier = 1.0;
  /// Horizon multiplier: stretches the trace duration at constant arrival
  /// rate (generated sources scale duration *and* population together; the
  /// capture source stretches its captured arrival times).
  double duration_scale = 1.0;
  /// Streaming window: records materialized per prefetch batch.
  std::size_t window = 1024;
  /// Worker threads for window prefetch (0 = DEFLATE_THREADS). Never
  /// changes the stream, only wall-clock time.
  std::size_t worker_threads = 0;
};

/// Builds the configured stream. Throws std::runtime_error on an
/// unreadable or corrupt capture file (truncated, bit-flipped or oversized
/// frames all fail cleanly — never a partial fleet).
[[nodiscard]] std::unique_ptr<VmArrivalStream> make_arrival_stream(
    const ReplayConfig& config);

/// Servers that set cluster overcommitment to `overcommit` for the
/// stream's trace — the stub-index equivalent of
/// TraceDrivenSimulator::servers_for_overcommit, O(index) memory.
[[nodiscard]] std::size_t servers_for_overcommit(
    const VmArrivalStream& stream, const res::ResourceVector& server_capacity,
    double overcommit);

}  // namespace deflate::trace
