#include "trace/replay.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <fstream>
#include <queue>
#include <stdexcept>
#include <utility>

#include "net/capture.hpp"
#include "net/codec.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace deflate::trace {

namespace {

/// (cpu, memory) a stub commits while running — placement ignores I/O
/// bandwidth (VmRecord::to_spec zeroes it).
res::ResourceVector stub_committed(const ArrivalStub& stub) noexcept {
  return {static_cast<double>(stub.vcpus), stub.memory_mib, 0.0, 0.0};
}

void check_scaling(const ReplayConfig& config) {
  if (!(config.rate_multiplier > 0.0) || !(config.duration_scale > 0.0)) {
    throw std::invalid_argument(
        "replay: rate_multiplier and duration_scale must be positive");
  }
}

std::size_t scaled_count(std::size_t base, double factor) {
  const auto scaled = std::llround(static_cast<double>(base) * factor);
  return scaled > 0 ? static_cast<std::size_t>(scaled) : 1;
}

// --- Azure ------------------------------------------------------------------

AzureTraceConfig scaled_azure(const ReplayConfig& config) {
  AzureTraceConfig azure = config.azure;
  azure.duration = sim::SimTime::from_micros(static_cast<std::int64_t>(
      static_cast<double>(azure.duration.micros()) * config.duration_scale));
  // Rate scales VMs per unit time; duration scaling adds proportionally
  // more VMs so the offered rate stays constant over the longer horizon.
  azure.vm_count = scaled_count(
      azure.vm_count, config.rate_multiplier * config.duration_scale);
  return azure;
}

std::unique_ptr<VmArrivalStream> make_azure_stream(const ReplayConfig& config) {
  const AzureTraceConfig azure = scaled_azure(config);
  AzureTraceGenerator generator(azure);
  std::vector<ArrivalStub> stubs(azure.vm_count);
  util::parallel_for(azure.vm_count, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      stubs[i] = generator.arrival_of(static_cast<std::uint64_t>(i));
    }
  });
  return std::make_unique<IndexedArrivalStream>(
      std::move(stubs),
      [generator](std::uint64_t id) { return generator.generate_vm(id); },
      config.window, config.worker_threads);
}

// --- Alibaba ----------------------------------------------------------------

/// Stream-id salt for the adapter's own draws, distinct from the container
/// generator's (seed ^ 0xa11baba) so the container series stay
/// bit-identical to the standalone AlibabaTraceGenerator.
constexpr std::uint64_t kAlibabaAdapterSalt = 0x5ba17e91accaULL;

/// Container-shaped VM size menu: (vcpus, memory GiB, weight). Alibaba
/// containers skew smaller than Azure VMs.
struct ContainerSize {
  int vcpus;
  double memory_gib;
  double weight;
};
constexpr std::array<ContainerSize, 5> kContainerMenu{{
    {1, 2.0, 0.30}, {2, 4.0, 0.30}, {4, 8.0, 0.22},
    {8, 16.0, 0.12}, {16, 32.0, 0.06},
}};

struct AlibabaDraws {
  hv::WorkloadClass workload = hv::WorkloadClass::Unknown;
  int vcpus = 1;
  double memory_gib = 2.0;
  double start_hours = 0.0;
  double lifetime_hours = 1.0;
  double cpu_base = 0.1;
};

/// The adapter's arrival-side draws, keyed by (seed, id): the stub and the
/// materializer both call this, so they always agree.
AlibabaDraws draw_alibaba(const AlibabaReplayConfig& config, std::uint64_t id) {
  util::Rng rng =
      util::Rng::keyed(config.containers.seed ^ kAlibabaAdapterSalt, id);
  AlibabaDraws d;
  const double class_draw = rng.u01();
  if (class_draw < config.interactive_share) {
    d.workload = hv::WorkloadClass::Interactive;
  } else if (class_draw <
             config.interactive_share + config.delay_insensitive_share) {
    d.workload = hv::WorkloadClass::DelayInsensitive;
  } else {
    d.workload = hv::WorkloadClass::Unknown;
  }
  std::array<double, kContainerMenu.size()> weights{};
  for (std::size_t i = 0; i < kContainerMenu.size(); ++i) {
    weights[i] = kContainerMenu[i].weight;
  }
  const ContainerSize& size = kContainerMenu[rng.weighted_index(weights)];
  d.vcpus = size.vcpus;
  d.memory_gib = size.memory_gib;
  const double min_hours = config.min_lifetime.hours();
  const double max_hours = config.containers.duration.hours();
  d.lifetime_hours =
      std::min(max_hours, rng.bounded_pareto(min_hours, max_hours, 1.2));
  d.start_hours = rng.uniform(0.0, max_hours - d.lifetime_hours);
  // Services idle low; batch containers run hotter (§3.2.2's mix).
  d.cpu_base = d.workload == hv::WorkloadClass::Interactive
                   ? rng.logit_normal(-2.0, 0.5)
                   : rng.logit_normal(-1.2, 0.5);
  return d;
}

VmRecord materialize_alibaba(const AlibabaReplayConfig& config,
                             std::uint64_t id) {
  const AlibabaDraws d = draw_alibaba(config, id);
  const AlibabaTraceGenerator generator(config.containers);
  const ContainerRecord container = generator.generate_container(id);

  VmRecord record;
  record.id = id;
  record.workload = d.workload;
  record.vcpus = d.vcpus;
  record.memory_mib = d.memory_gib * 1024.0;
  record.disk_bw_mbps = 50.0 + 20.0 * d.vcpus;
  record.net_bw_mbps = 500.0 + 125.0 * d.vcpus;
  record.start = sim::SimTime::from_hours(d.start_hours);
  record.end = sim::SimTime::from_hours(d.start_hours + d.lifetime_hours);

  // The container trace has no CPU series; synthesize one from the
  // bandwidth series, which track request load (memory *usage* does not —
  // that is Fig. 9's point). Offset by the arrival so co-arriving
  // containers do not share a phase.
  const auto& net = container.net_bw.samples();
  const auto& disk = container.disk_bw.samples();
  const auto& membw = container.memory_bw.samples();
  const std::size_t period = std::max<std::size_t>(1, net.size());
  const auto samples = static_cast<std::size_t>(
      std::max<std::int64_t>(1, record.lifetime().micros() /
                                    kTraceInterval.micros()));
  const auto offset = static_cast<std::size_t>(
      std::max(0.0, d.start_hours) * 12.0);  // 5-minute intervals per hour
  std::vector<float> cpu;
  cpu.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    const std::size_t j = (offset + i) % period;
    const double u = d.cpu_base + 2.0 * net[j % net.size()] +
                     1.5 * disk[j % disk.size()] + 60.0 * membw[j % membw.size()];
    cpu.push_back(static_cast<float>(std::clamp(u, 0.0, 1.0)));
  }
  record.cpu = UtilizationSeries(std::move(cpu));
  return record;
}

std::unique_ptr<VmArrivalStream> make_alibaba_stream(
    const ReplayConfig& config) {
  AlibabaReplayConfig alibaba = config.alibaba;
  alibaba.containers.duration =
      sim::SimTime::from_micros(static_cast<std::int64_t>(
          static_cast<double>(alibaba.containers.duration.micros()) *
          config.duration_scale));
  alibaba.containers.container_count =
      scaled_count(alibaba.containers.container_count,
                   config.rate_multiplier * config.duration_scale);

  const std::size_t n = alibaba.containers.container_count;
  std::vector<ArrivalStub> stubs(n);
  util::parallel_for(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const auto id = static_cast<std::uint64_t>(i);
      const AlibabaDraws d = draw_alibaba(alibaba, id);
      stubs[i] = {id, sim::SimTime::from_hours(d.start_hours),
                  sim::SimTime::from_hours(d.start_hours + d.lifetime_hours),
                  d.vcpus, d.memory_gib * 1024.0};
    }
  });
  return std::make_unique<IndexedArrivalStream>(
      std::move(stubs),
      [alibaba](std::uint64_t id) { return materialize_alibaba(alibaba, id); },
      config.window, config.worker_threads);
}

// --- Capture ----------------------------------------------------------------

/// Flat-series level that round-trips a captured priority class through
/// VmRecord::priority_from_p95 (each level sits inside the p95 bucket the
/// priority came from).
double flat_level_for_priority(double priority, bool deflatable) noexcept {
  if (!deflatable) return 0.5;
  if (priority <= 0.25) return 0.2;  // Low bucket: p95 < 0.33
  if (priority <= 0.45) return 0.5;  // Moderate: [0.33, 0.66)
  if (priority <= 0.65) return 0.7;  // High: [0.66, 0.80)
  return 0.9;                        // VeryHigh: >= 0.80
}

[[noreturn]] void capture_error(const std::string& path,
                                const std::string& what) {
  throw std::runtime_error("replay capture '" + path + "': " + what);
}

/// Walks the capture file and returns the AdmissionRequests in captured
/// order. Every structural defect — missing/garbled header, truncated
/// record or frame, oversized length, codec-rejected payload — throws; a
/// partial fleet is never returned.
std::vector<cluster::AdmissionRequest> read_capture_requests(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) capture_error(path, "cannot open");
  std::string header_line;
  if (!std::getline(in, header_line)) capture_error(path, "empty file");
  if (!net::decode_capture_header(header_line).has_value()) {
    capture_error(path, "bad capture header");
  }

  std::vector<cluster::AdmissionRequest> requests;
  for (std::size_t record = 0;; ++record) {
    const auto at_record = [&](const char* what) {
      capture_error(path, std::string(what) + " at record " +
                              std::to_string(record));
    };
    char id_bytes[4];
    in.read(id_bytes, sizeof(id_bytes));
    if (in.gcount() == 0) break;  // clean EOF between records
    if (in.gcount() != sizeof(id_bytes)) at_record("truncated record header");

    std::vector<std::uint8_t> frame(net::kHeaderSize);
    in.read(reinterpret_cast<char*>(frame.data()), net::kHeaderSize);
    if (in.gcount() != static_cast<std::streamsize>(net::kHeaderSize)) {
      at_record("truncated frame header");
    }
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(frame[3 + i]) << (8 * i);
    }
    if (len > net::kMaxPayload) at_record("oversized frame");
    frame.resize(net::kHeaderSize + len);
    in.read(reinterpret_cast<char*>(frame.data() + net::kHeaderSize), len);
    if (in.gcount() != static_cast<std::streamsize>(len)) {
      at_record("truncated frame payload");
    }
    const net::DecodeResult decoded =
        net::decode_frame(frame.data(), frame.size());
    if (decoded.status != net::DecodeStatus::Ok) {
      capture_error(path, "corrupt frame at record " + std::to_string(record) +
                              ": " + decoded.error);
    }
    if (const auto* request =
            std::get_if<net::AdmissionRequestMsg>(&decoded.message)) {
      // Semantic validation: the codec only checks structure, but a bit
      // flip inside a payload can decode into an impossible request (a
      // negative arrival time, zero cores). Reject those here — a stream
      // must never carry an invalid VM.
      const cluster::AdmissionRequest& r = request->request;
      if (r.arrival < sim::SimTime{}) at_record("negative arrival time");
      if (r.spec.vcpus < 1) at_record("non-positive vcpus");
      if (!std::isfinite(r.spec.memory_mib) || r.spec.memory_mib < 0.0) {
        at_record("invalid memory size");
      }
      if (!std::isfinite(r.spec.priority)) at_record("non-finite priority");
      requests.push_back(r);
    } else if (!std::holds_alternative<net::AdmissionDecisionMsg>(
                   decoded.message)) {
      at_record("unexpected frame type");
    }
  }
  if (requests.empty()) capture_error(path, "no admission requests");
  return requests;
}

std::unique_ptr<VmArrivalStream> make_capture_stream(
    const ReplayConfig& config) {
  const CaptureReplayConfig& capture = config.capture;
  const std::vector<cluster::AdmissionRequest> requests =
      read_capture_requests(capture.path);

  // rate_multiplier replays the captured sequence with remapped ids until
  // round(n * multiplier) arrivals exist; duration_scale stretches the
  // captured arrival times.
  const std::size_t total =
      scaled_count(requests.size(), config.rate_multiplier);
  const double min_hours = capture.min_lifetime.hours();
  const double max_hours =
      std::max(min_hours + 1e-9, capture.max_lifetime.hours());

  struct CaptureVm {
    hv::VmSpec spec;
    sim::SimTime start;
    sim::SimTime end;
  };
  auto vms = std::make_shared<std::vector<CaptureVm>>();
  vms->reserve(total);
  std::vector<ArrivalStub> stubs;
  stubs.reserve(total);
  for (std::size_t k = 0; k < total; ++k) {
    const cluster::AdmissionRequest& base = requests[k % requests.size()];
    CaptureVm vm;
    vm.spec = base.spec;
    vm.spec.id = static_cast<std::uint64_t>(k);  // replicas need fresh ids
    vm.start = sim::SimTime::from_micros(static_cast<std::int64_t>(
        static_cast<double>(base.arrival.micros()) * config.duration_scale));
    // The capture has no departures: synthesize a keyed heavy-tailed
    // lifetime, a pure function of (seed, index).
    util::Rng rng = util::Rng::keyed(capture.seed, vm.spec.id);
    const double lifetime_hours = std::min(
        max_hours, rng.bounded_pareto(min_hours, max_hours, 1.2));
    vm.end = vm.start + sim::SimTime::from_hours(lifetime_hours);
    stubs.push_back(
        {vm.spec.id, vm.start, vm.end, vm.spec.vcpus, vm.spec.memory_mib});
    vms->push_back(std::move(vm));
  }

  auto materialize = [vms](std::uint64_t id) {
    const CaptureVm& vm = (*vms)[static_cast<std::size_t>(id)];
    VmRecord record;
    record.id = vm.spec.id;
    // to_spec() re-derives deflatability from the class label, so force
    // the label consistent with the captured deflatable flag.
    record.workload = vm.spec.deflatable ? hv::WorkloadClass::Interactive
                      : vm.spec.workload == hv::WorkloadClass::Interactive
                          ? hv::WorkloadClass::Unknown
                          : vm.spec.workload;
    record.vcpus = vm.spec.vcpus;
    record.memory_mib = vm.spec.memory_mib;
    record.disk_bw_mbps = vm.spec.disk_bw_mbps;
    record.net_bw_mbps = vm.spec.net_bw_mbps;
    record.start = vm.start;
    record.end = vm.end;
    const auto samples = static_cast<std::size_t>(
        std::max<std::int64_t>(1, record.lifetime().micros() /
                                      kTraceInterval.micros()));
    record.cpu = UtilizationSeries(std::vector<float>(
        samples, static_cast<float>(flat_level_for_priority(
                     vm.spec.priority, vm.spec.deflatable))));
    return record;
  };
  return std::make_unique<IndexedArrivalStream>(
      std::move(stubs), std::move(materialize), config.window,
      config.worker_threads);
}

}  // namespace

const char* arrival_source_name(ArrivalSource s) noexcept {
  switch (s) {
    case ArrivalSource::Azure: return "azure";
    case ArrivalSource::Alibaba: return "alibaba";
    case ArrivalSource::Capture: return "capture";
  }
  return "?";
}

IndexedArrivalStream::IndexedArrivalStream(std::vector<ArrivalStub> stubs,
                                           Materializer materialize,
                                           std::size_t window,
                                           std::size_t worker_threads)
    : stubs_(std::move(stubs)),
      materialize_(std::move(materialize)),
      window_(std::max<std::size_t>(1, window)),
      threads_(worker_threads != 0 ? worker_threads : util::env_threads()) {
  std::sort(stubs_.begin(), stubs_.end(),
            [](const ArrivalStub& a, const ArrivalStub& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.id < b.id;
            });
  // Horizon + peak sweep over the index: arrivals in start order, with a
  // min-heap retiring departures before each arrival (departures at the
  // same instant free capacity first, matching
  // TraceDrivenSimulator::peak_committed).
  using Departure = std::pair<sim::SimTime, res::ResourceVector>;
  const auto later = [](const Departure& a, const Departure& b) {
    return a.first > b.first;
  };
  std::priority_queue<Departure, std::vector<Departure>, decltype(later)>
      departures(later);
  res::ResourceVector current;
  for (const ArrivalStub& stub : stubs_) {
    horizon_ = std::max(horizon_, stub.end);
    while (!departures.empty() && departures.top().first <= stub.start) {
      current -= departures.top().second;
      departures.pop();
    }
    const res::ResourceVector committed = stub_committed(stub);
    current += committed;
    departures.push({stub.end, committed});
    peak_ = peak_.elementwise_max(current);
  }
}

IndexedArrivalStream::~IndexedArrivalStream() = default;

std::optional<VmRecord> IndexedArrivalStream::next() {
  if (buffer_pos_ >= buffer_.size()) {
    if (cursor_ >= stubs_.size()) return std::nullopt;
    refill();
  }
  return std::move(buffer_[buffer_pos_++]);
}

void IndexedArrivalStream::refill() {
  const std::size_t n = std::min(window_, stubs_.size() - cursor_);
  buffer_.assign(n, VmRecord{});
  const std::size_t base = cursor_;
  // Each record is generated from its own keyed stream: chunking across
  // threads cannot change any record, only how fast the window fills.
  util::ThreadPool* pool = threads_ > 1 ? &prefetch_pool() : nullptr;
  util::parallel_for(pool, n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      buffer_[i] = materialize_(stubs_[base + i].id);
    }
  });
  cursor_ += n;
  buffer_pos_ = 0;
}

util::ThreadPool& IndexedArrivalStream::prefetch_pool() {
  if (!pool_) pool_ = std::make_unique<util::ThreadPool>(threads_);
  return *pool_;
}

void IndexedArrivalStream::reset() {
  cursor_ = 0;
  buffer_.clear();
  buffer_pos_ = 0;
}

std::unique_ptr<VmArrivalStream> make_arrival_stream(
    const ReplayConfig& config) {
  check_scaling(config);
  switch (config.source) {
    case ArrivalSource::Azure: return make_azure_stream(config);
    case ArrivalSource::Alibaba: return make_alibaba_stream(config);
    case ArrivalSource::Capture: return make_capture_stream(config);
  }
  throw std::invalid_argument("replay: unknown arrival source");
}

std::size_t servers_for_overcommit(const VmArrivalStream& stream,
                                   const res::ResourceVector& server_capacity,
                                   double overcommit) {
  const res::ResourceVector peak = stream.peak_committed();
  double servers = 1.0;
  for (const res::Resource r : {res::Resource::Cpu, res::Resource::Memory}) {
    if (server_capacity[r] > 0.0) {
      servers = std::max(
          servers, peak[r] / (server_capacity[r] * (1.0 + overcommit)));
    }
  }
  return static_cast<std::size_t>(std::ceil(servers));
}

}  // namespace deflate::trace
