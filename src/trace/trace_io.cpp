#include "trace/trace_io.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "util/csv.hpp"

namespace deflate::trace {

namespace {

const char* class_token(hv::WorkloadClass c) {
  switch (c) {
    case hv::WorkloadClass::Interactive: return "interactive";
    case hv::WorkloadClass::DelayInsensitive: return "delay-insensitive";
    case hv::WorkloadClass::Unknown: return "unknown";
  }
  return "unknown";
}

// --- strict field parsing ---
//
// std::stoull & friends accept leading whitespace, ignore trailing junk and
// throw std::invalid_argument / std::out_of_range with no context; a
// bit-flipped or truncated file deserves a clean std::runtime_error that
// names the row and field instead. Every helper requires the token to be
// consumed in full and the value to be finite.

[[noreturn]] void row_error(std::size_t row, const std::string& field,
                            const std::string& what) {
  throw std::runtime_error("trace CSV: row " + std::to_string(row) +
                           ", field '" + field + "': " + what);
}

template <typename T, typename Parse>
T parse_field(const std::string& token, std::size_t row,
              const std::string& field, Parse parse) {
  std::size_t consumed = 0;
  T value{};
  try {
    value = parse(token, &consumed);
  } catch (const std::exception&) {
    row_error(row, field, "unparseable value '" + token + "'");
  }
  if (consumed != token.size()) {
    row_error(row, field, "trailing junk in '" + token + "'");
  }
  return value;
}

std::uint64_t parse_u64(const std::string& t, std::size_t row,
                        const std::string& field) {
  if (!t.empty() && t.front() == '-') row_error(row, field, "negative value");
  return parse_field<std::uint64_t>(
      t, row, field,
      [](const std::string& s, std::size_t* n) { return std::stoull(s, n); });
}

std::int64_t parse_i64(const std::string& t, std::size_t row,
                       const std::string& field) {
  return parse_field<std::int64_t>(
      t, row, field,
      [](const std::string& s, std::size_t* n) { return std::stoll(s, n); });
}

int parse_i32(const std::string& t, std::size_t row,
              const std::string& field) {
  return parse_field<int>(
      t, row, field,
      [](const std::string& s, std::size_t* n) { return std::stoi(s, n); });
}

double parse_f64(const std::string& t, std::size_t row,
                 const std::string& field) {
  const double value = parse_field<double>(
      t, row, field,
      [](const std::string& s, std::size_t* n) { return std::stod(s, n); });
  if (!std::isfinite(value)) row_error(row, field, "non-finite value");
  return value;
}

// Unrecognized tokens map to Unknown rather than erroring: the class
// column is advisory (foreign traces carry labels we don't model), and
// Unknown already means "no class information".
hv::WorkloadClass parse_class(const std::string& token) {
  if (token == "interactive") return hv::WorkloadClass::Interactive;
  if (token == "delay-insensitive") return hv::WorkloadClass::DelayInsensitive;
  return hv::WorkloadClass::Unknown;
}

}  // namespace

void write_trace_csv(std::ostream& out, const std::vector<VmRecord>& records) {
  util::CsvWriter writer(out);
  writer.write_row({"id", "class", "vcpus", "memory_mib", "disk_bw_mbps",
                    "net_bw_mbps", "start_us", "end_us", "cpu_series"});
  for (const VmRecord& record : records) {
    std::ostringstream series;
    const auto& samples = record.cpu.samples();
    for (std::size_t i = 0; i < samples.size(); ++i) {
      if (i) series << ';';
      series << samples[i];
    }
    writer.write_row({std::to_string(record.id), class_token(record.workload),
                      std::to_string(record.vcpus),
                      std::to_string(record.memory_mib),
                      std::to_string(record.disk_bw_mbps),
                      std::to_string(record.net_bw_mbps),
                      std::to_string(record.start.micros()),
                      std::to_string(record.end.micros()), series.str()});
  }
}

std::vector<VmRecord> read_trace_csv(std::istream& in) {
  util::CsvReader reader(in);
  std::vector<std::string> row;
  std::vector<VmRecord> records;
  std::unordered_set<std::uint64_t> seen_ids;
  bool header = true;
  std::size_t row_index = 0;
  while (reader.read_row(row)) {
    ++row_index;
    if (header) {  // skip column names
      header = false;
      continue;
    }
    // Exactly nine columns: a short row is a truncation, an extra column a
    // corruption — both are rejected rather than half-loaded.
    if (row.size() != 9) {
      throw std::runtime_error("trace CSV: row " + std::to_string(row_index) +
                               ": expected 9 fields, got " +
                               std::to_string(row.size()));
    }
    VmRecord record;
    record.id = parse_u64(row[0], row_index, "id");
    if (!seen_ids.insert(record.id).second) {
      row_error(row_index, "id",
                "duplicate vm id " + std::to_string(record.id));
    }
    record.workload = parse_class(row[1]);
    record.vcpus = parse_i32(row[2], row_index, "vcpus");
    if (record.vcpus < 1) row_error(row_index, "vcpus", "must be >= 1");
    record.memory_mib = parse_f64(row[3], row_index, "memory_mib");
    if (record.memory_mib < 0.0) row_error(row_index, "memory_mib", "negative");
    record.disk_bw_mbps = parse_f64(row[4], row_index, "disk_bw_mbps");
    if (record.disk_bw_mbps < 0.0) {
      row_error(row_index, "disk_bw_mbps", "negative");
    }
    record.net_bw_mbps = parse_f64(row[5], row_index, "net_bw_mbps");
    if (record.net_bw_mbps < 0.0) row_error(row_index, "net_bw_mbps", "negative");
    const std::int64_t start_us = parse_i64(row[6], row_index, "start_us");
    const std::int64_t end_us = parse_i64(row[7], row_index, "end_us");
    if (start_us < 0) row_error(row_index, "start_us", "negative");
    if (end_us < start_us) row_error(row_index, "end_us", "precedes start_us");
    record.start = sim::SimTime::from_micros(start_us);
    record.end = sim::SimTime::from_micros(end_us);
    std::vector<float> samples;
    std::istringstream series(row[8]);
    std::string token;
    while (std::getline(series, token, ';')) {
      if (token.empty()) continue;
      const double sample = parse_f64(token, row_index, "cpu_series");
      if (sample < 0.0 || sample > 1.0) {
        row_error(row_index, "cpu_series",
                  "utilization sample out of [0,1]: " + token);
      }
      samples.push_back(static_cast<float>(sample));
    }
    if (samples.empty()) row_error(row_index, "cpu_series", "empty series");
    record.cpu = UtilizationSeries(std::move(samples));
    records.push_back(std::move(record));
  }
  return records;
}

void save_trace(const std::string& path, const std::vector<VmRecord>& records) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_trace: cannot open " + path);
  write_trace_csv(out, records);
}

std::vector<VmRecord> load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_trace: cannot open " + path);
  return read_trace_csv(in);
}

}  // namespace deflate::trace
