#include "trace/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace deflate::trace {

namespace {

const char* class_token(hv::WorkloadClass c) {
  switch (c) {
    case hv::WorkloadClass::Interactive: return "interactive";
    case hv::WorkloadClass::DelayInsensitive: return "delay-insensitive";
    case hv::WorkloadClass::Unknown: return "unknown";
  }
  return "unknown";
}

hv::WorkloadClass parse_class(const std::string& token) {
  if (token == "interactive") return hv::WorkloadClass::Interactive;
  if (token == "delay-insensitive") return hv::WorkloadClass::DelayInsensitive;
  return hv::WorkloadClass::Unknown;
}

}  // namespace

void write_trace_csv(std::ostream& out, const std::vector<VmRecord>& records) {
  util::CsvWriter writer(out);
  writer.write_row({"id", "class", "vcpus", "memory_mib", "disk_bw_mbps",
                    "net_bw_mbps", "start_us", "end_us", "cpu_series"});
  for (const VmRecord& record : records) {
    std::ostringstream series;
    const auto& samples = record.cpu.samples();
    for (std::size_t i = 0; i < samples.size(); ++i) {
      if (i) series << ';';
      series << samples[i];
    }
    writer.write_row({std::to_string(record.id), class_token(record.workload),
                      std::to_string(record.vcpus),
                      std::to_string(record.memory_mib),
                      std::to_string(record.disk_bw_mbps),
                      std::to_string(record.net_bw_mbps),
                      std::to_string(record.start.micros()),
                      std::to_string(record.end.micros()), series.str()});
  }
}

std::vector<VmRecord> read_trace_csv(std::istream& in) {
  util::CsvReader reader(in);
  std::vector<std::string> row;
  std::vector<VmRecord> records;
  bool header = true;
  while (reader.read_row(row)) {
    if (header) {  // skip column names
      header = false;
      continue;
    }
    if (row.size() < 9) {
      throw std::runtime_error("trace CSV: malformed row");
    }
    VmRecord record;
    record.id = std::stoull(row[0]);
    record.workload = parse_class(row[1]);
    record.vcpus = std::stoi(row[2]);
    record.memory_mib = std::stod(row[3]);
    record.disk_bw_mbps = std::stod(row[4]);
    record.net_bw_mbps = std::stod(row[5]);
    record.start = sim::SimTime::from_micros(std::stoll(row[6]));
    record.end = sim::SimTime::from_micros(std::stoll(row[7]));
    std::vector<float> samples;
    std::istringstream series(row[8]);
    std::string token;
    while (std::getline(series, token, ';')) {
      if (!token.empty()) samples.push_back(std::stof(token));
    }
    record.cpu = UtilizationSeries(std::move(samples));
    records.push_back(std::move(record));
  }
  return records;
}

void save_trace(const std::string& path, const std::vector<VmRecord>& records) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_trace: cannot open " + path);
  write_trace_csv(out, records);
}

std::vector<VmRecord> load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_trace: cannot open " + path);
  return read_trace_csv(in);
}

}  // namespace deflate::trace
