// Synthetic Alibaba-style container trace generator.
//
// The Alibaba cluster trace [Guo et al., IWQoS'19] provides per-container
// utilization series for memory, memory bandwidth, disk I/O, and network.
// The paper's §3.2.2 analysis needs these statistical facts, which this
// generator reproduces:
//   * memory *usage* is high (JVM services pre-allocate heap), so naive
//     usage-based deflation headroom looks small (Fig. 9);
//   * memory *bandwidth* utilization is tiny — mean below 0.1%, maxima
//     around 1% — revealing the real deflation headroom (Fig. 10);
//   * disk and network bandwidth usage are very low, with rare spikes
//     (Figs. 11-12).
#pragma once

#include <cstdint>
#include <vector>

#include "trace/series.hpp"

namespace deflate::trace {

struct ContainerRecord {
  std::uint64_t id = 0;
  UtilizationSeries memory;     ///< used/limit per interval
  UtilizationSeries memory_bw;  ///< memory-bus bandwidth fraction
  UtilizationSeries disk_bw;    ///< disk bandwidth fraction
  UtilizationSeries net_bw;     ///< in+out network fraction of NIC allocation
};

struct AlibabaTraceConfig {
  std::size_t container_count = 4000;
  std::uint64_t seed = 2020;
  sim::SimTime duration = sim::SimTime::from_hours(24);
};

class AlibabaTraceGenerator {
 public:
  explicit AlibabaTraceGenerator(AlibabaTraceConfig config) : config_(config) {}

  [[nodiscard]] std::vector<ContainerRecord> generate() const;
  [[nodiscard]] ContainerRecord generate_container(std::uint64_t id) const;

  [[nodiscard]] const AlibabaTraceConfig& config() const noexcept {
    return config_;
  }

 private:
  AlibabaTraceConfig config_;
};

}  // namespace deflate::trace
