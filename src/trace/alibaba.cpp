#include "trace/alibaba.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace deflate::trace {

ContainerRecord AlibabaTraceGenerator::generate_container(std::uint64_t id) const {
  util::Rng rng = util::Rng::keyed(config_.seed ^ 0xa11babaULL, id);
  ContainerRecord record;
  record.id = id;

  const auto samples = static_cast<std::size_t>(std::max<std::int64_t>(
      1, config_.duration.micros() / kTraceInterval.micros()));

  // Memory: JVM-style heap pre-allocation — high, nearly flat usage with a
  // slow random walk and rare dips (container restarts / GC compaction).
  const double mem_level = std::clamp(rng.normal(0.92, 0.035), 0.70, 0.99);
  // Memory bandwidth: per-container scale such that the population mean is
  // ~0.05-0.1% and maxima ~1% (Fig. 10's headline numbers).
  const double membw_scale = rng.lognormal(std::log(4e-4), 0.8);
  // Disk: low base with rare spikes.
  const double disk_base = rng.uniform(0.01, 0.08);
  const double disk_spike_prob = rng.uniform(0.002, 0.01);
  // Network: low base, occasional moderate spikes.
  const double net_base = rng.uniform(0.02, 0.12);
  const double net_spike_prob = rng.uniform(0.004, 0.02);

  std::vector<float> mem, membw, disk, net;
  mem.reserve(samples);
  membw.reserve(samples);
  disk.reserve(samples);
  net.reserve(samples);

  double walk = 0.0;
  for (std::size_t i = 0; i < samples; ++i) {
    walk = std::clamp(walk + rng.normal(0.0, 0.004), -0.05, 0.05);
    double m = mem_level + walk;
    if (rng.u01() < 0.002) m -= rng.uniform(0.1, 0.3);  // restart dip
    mem.push_back(static_cast<float>(std::clamp(m, 0.0, 1.0)));

    const double bw = membw_scale * rng.lognormal(0.0, 0.7);
    membw.push_back(static_cast<float>(std::clamp(bw, 0.0, 0.012)));

    double d = disk_base * rng.lognormal(0.0, 0.5);
    if (rng.u01() < disk_spike_prob) d += rng.uniform(0.25, 0.75);
    disk.push_back(static_cast<float>(std::clamp(d, 0.0, 1.0)));

    double n = net_base * rng.lognormal(0.0, 0.4);
    if (rng.u01() < net_spike_prob) n += rng.uniform(0.10, 0.30);
    net.push_back(static_cast<float>(std::clamp(n, 0.0, 1.0)));
  }

  record.memory = UtilizationSeries(std::move(mem));
  record.memory_bw = UtilizationSeries(std::move(membw));
  record.disk_bw = UtilizationSeries(std::move(disk));
  record.net_bw = UtilizationSeries(std::move(net));
  return record;
}

std::vector<ContainerRecord> AlibabaTraceGenerator::generate() const {
  std::vector<ContainerRecord> records(config_.container_count);
  util::parallel_for(config_.container_count,
                     [&](std::size_t begin, std::size_t end) {
                       for (std::size_t i = begin; i < end; ++i) {
                         records[i] = generate_container(i);
                       }
                     });
  return records;
}

}  // namespace deflate::trace
