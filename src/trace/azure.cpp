#include "trace/azure.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numbers>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace deflate::trace {

namespace {

/// Azure-like VM size menu: (vcpus, memory GiB, popularity weight).
struct SizeOption {
  int vcpus;
  double memory_gib;
  double weight;
};

// Largest size stays below the 48-core/128-GiB host (Azure's biggest
// standard sizes leave hypervisor headroom on the machine).
constexpr std::array<SizeOption, 12> kSizeMenu{{
    {1, 1.75, 0.16}, {1, 2.0, 0.12}, {2, 3.5, 0.16}, {2, 4.0, 0.12},
    {2, 8.0, 0.08},  {4, 8.0, 0.12}, {4, 16.0, 0.08}, {8, 16.0, 0.06},
    {8, 32.0, 0.04}, {16, 64.0, 0.03}, {24, 64.0, 0.02}, {32, 112.0, 0.01},
}};

/// Per-VM stochastic utilization parameters.
struct UtilModel {
  double base;        ///< always-on utilization floor
  double diurnal_amp; ///< day/night swing amplitude
  double phase_hours; ///< diurnal phase offset
  double burst_prob;  ///< per-interval probability of an interval-max spike
  double burst_hi;    ///< spike ceiling
  double burst_mean_len;  ///< mean burst length in intervals
  double severe_prob;     ///< rare near-saturation interval-max spikes
  double noise_sigma;
};

UtilModel sample_model(hv::WorkloadClass workload, util::Rng& rng) {
  UtilModel m{};
  // "activity" couples burstiness and peak height so the population spans
  // Fig. 8's four P95 buckets.
  const double activity = rng.u01();
  switch (workload) {
    case hv::WorkloadClass::Interactive:
      m.base = rng.logit_normal(-1.8, 0.55);            // median ~0.14
      m.diurnal_amp = rng.uniform(0.10, 0.40);
      m.burst_prob = 0.05 + 0.40 * activity * activity; // median ~0.15
      m.burst_hi = 0.60 + 0.40 * activity;
      m.burst_mean_len = 2.0;
      m.severe_prob = 0.010;
      break;
    case hv::WorkloadClass::DelayInsensitive: {
      const double batch_activity = std::pow(activity, 0.7);  // skew busier
      m.base = rng.logit_normal(-1.0, 0.55);            // median ~0.27
      m.diurnal_amp = rng.uniform(0.02, 0.15);          // batch barely diurnal
      m.burst_prob = 0.08 + 0.45 * batch_activity * batch_activity;
      m.burst_hi = 0.55 + 0.45 * batch_activity;
      m.burst_mean_len = 6.0;                           // long busy phases
      m.severe_prob = 0.015;
      break;
    }
    case hv::WorkloadClass::Unknown:
      m.base = rng.logit_normal(-1.4, 0.60);
      m.diurnal_amp = rng.uniform(0.05, 0.30);
      m.burst_prob = 0.05 + 0.38 * activity * activity;
      m.burst_hi = 0.50 + 0.48 * activity;
      m.burst_mean_len = 3.0;
      m.severe_prob = 0.012;
      break;
  }
  m.phase_hours = rng.uniform(0.0, 24.0);
  m.noise_sigma = 0.02;
  return m;
}

float sample_interval(const UtilModel& m, double hours_of_day, bool in_burst,
                      double burst_level, util::Rng& rng) {
  // Positive half-sine sharpened to concentrate the daily peak.
  const double angle =
      2.0 * std::numbers::pi * (hours_of_day - m.phase_hours) / 24.0;
  const double s = std::max(0.0, std::sin(angle));
  double u = m.base + m.diurnal_amp * std::pow(s, 1.5);
  if (in_burst) u = std::max(u, burst_level);
  // Rare near-saturation spikes (cron, GC, load flaps). The trace records
  // the per-interval *maximum*, which amplifies such transients.
  if (rng.u01() < m.severe_prob) {
    u = std::max(u, rng.uniform(0.85, 1.0));
  }
  u += rng.normal(0.0, m.noise_sigma);
  return static_cast<float>(std::clamp(u, 0.0, 1.0));
}

}  // namespace

double AzureTraceGenerator::draw_arrival(util::Rng& rng,
                                         VmRecord& record) const {
  // Class label.
  const double class_draw = rng.u01();
  if (class_draw < config_.interactive_share) {
    record.workload = hv::WorkloadClass::Interactive;
  } else if (class_draw < config_.interactive_share + config_.delay_insensitive_share) {
    record.workload = hv::WorkloadClass::DelayInsensitive;
  } else {
    record.workload = hv::WorkloadClass::Unknown;
  }

  // Size, independent of utilization (Fig. 7 finds no correlation).
  std::array<double, kSizeMenu.size()> weights{};
  for (std::size_t i = 0; i < kSizeMenu.size(); ++i) weights[i] = kSizeMenu[i].weight;
  const SizeOption& size = kSizeMenu[rng.weighted_index(weights)];
  record.vcpus = size.vcpus;
  record.memory_mib = size.memory_gib * 1024.0;
  record.disk_bw_mbps = 50.0 + 20.0 * size.vcpus;
  record.net_bw_mbps = 500.0 + 125.0 * size.vcpus;

  // Lifetime & arrival cohort (see AzureTraceConfig).
  const double min_hours = config_.min_lifetime.seconds() / 3600.0;
  const double max_hours = config_.duration.seconds() / 3600.0;
  double start_hours = 0.0;
  double lifetime_hours = max_hours;
  const double cohort = rng.u01();
  if (cohort < config_.persistent_share) {
    // Always-on base load: full horizon.
  } else if (cohort < config_.persistent_share + config_.diurnal_share) {
    // Business-hours cohort: short-lived, arrivals clustered mid-day.
    const double diurnal_max =
        std::min(max_hours, config_.diurnal_max_lifetime.seconds() / 3600.0);
    lifetime_hours = std::min(
        diurnal_max, rng.bounded_pareto(min_hours, diurnal_max, 1.3));
    const auto days = std::max<std::int64_t>(1, static_cast<std::int64_t>(
                                                    max_hours / 24.0));
    const double day = static_cast<double>(rng.uniform_int(0, days - 1));
    const double hour_of_day =
        std::clamp(rng.normal(config_.diurnal_peak_hour,
                              config_.diurnal_spread_hours),
                   0.0, 23.0);
    start_hours = std::clamp(day * 24.0 + hour_of_day, 0.0,
                             max_hours - lifetime_hours);
  } else {
    // Background churn: heavy-tailed lifetimes, uniform arrivals.
    lifetime_hours =
        std::min(max_hours, rng.bounded_pareto(min_hours, max_hours, 1.1));
    start_hours = rng.uniform(0.0, max_hours - lifetime_hours);
  }
  record.start = sim::SimTime::from_hours(start_hours);
  record.end = sim::SimTime::from_hours(start_hours + lifetime_hours);
  return start_hours;
}

ArrivalStub AzureTraceGenerator::arrival_of(std::uint64_t vm_id) const {
  util::Rng rng = util::Rng::keyed(config_.seed, vm_id);
  VmRecord record;
  record.id = vm_id;
  draw_arrival(rng, record);
  return {record.id, record.start, record.end, record.vcpus,
          record.memory_mib};
}

VmRecord AzureTraceGenerator::generate_vm(std::uint64_t vm_id) const {
  util::Rng rng = util::Rng::keyed(config_.seed, vm_id);
  VmRecord record;
  record.id = vm_id;
  // The series model continues on the same rng the arrival draws consumed
  // from — the draw sequence is identical to the pre-split generator, so
  // traces (and every golden pinned on them) are bit-identical.
  const double start_hours = draw_arrival(rng, record);

  // Utilization series.
  const UtilModel model = sample_model(record.workload, rng);
  const auto samples = static_cast<std::size_t>(
      std::max<std::int64_t>(1, record.lifetime().micros() /
                                    kTraceInterval.micros()));
  std::vector<float> series;
  series.reserve(samples);
  bool in_burst = false;
  double burst_level = 0.0;
  const double exit_prob = 1.0 / std::max(1.0, model.burst_mean_len);
  for (std::size_t i = 0; i < samples; ++i) {
    if (in_burst) {
      if (rng.u01() < exit_prob) in_burst = false;
    } else if (rng.u01() < model.burst_prob) {
      in_burst = true;
      burst_level = rng.uniform(model.base, model.burst_hi);
    }
    const double hours_of_day =
        std::fmod(start_hours + static_cast<double>(i) * 5.0 / 60.0, 24.0);
    series.push_back(
        sample_interval(model, hours_of_day, in_burst, burst_level, rng));
  }
  record.cpu = UtilizationSeries(std::move(series));
  return record;
}

std::vector<VmRecord> AzureTraceGenerator::generate() const {
  std::vector<VmRecord> records(config_.vm_count);
  util::parallel_for(config_.vm_count, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      records[i] = generate_vm(static_cast<std::uint64_t>(i));
    }
  });
  return records;
}

}  // namespace deflate::trace
