#include "trace/vm_record.hpp"

#include <string>

namespace deflate::trace {

const char* size_bucket_name(SizeBucket b) noexcept {
  switch (b) {
    case SizeBucket::Small: return "small(<=2GB)";
    case SizeBucket::Medium: return "medium(<=8GB)";
    case SizeBucket::Large: return "large(>8GB)";
  }
  return "?";
}

SizeBucket size_bucket_for_memory(double memory_mib) noexcept {
  if (memory_mib <= 2048.0) return SizeBucket::Small;
  if (memory_mib <= 8192.0) return SizeBucket::Medium;
  return SizeBucket::Large;
}

const char* peak_bucket_name(PeakBucket b) noexcept {
  switch (b) {
    case PeakBucket::Low: return "p95<33%";
    case PeakBucket::Moderate: return "33-66%";
    case PeakBucket::High: return "66-80%";
    case PeakBucket::VeryHigh: return ">80%";
  }
  return "?";
}

PeakBucket peak_bucket_for_p95(double p95) noexcept {
  if (p95 < 0.33) return PeakBucket::Low;
  if (p95 < 0.66) return PeakBucket::Moderate;
  if (p95 < 0.80) return PeakBucket::High;
  return PeakBucket::VeryHigh;
}

double VmRecord::priority_from_p95(double p95) noexcept {
  switch (peak_bucket_for_p95(p95)) {
    case PeakBucket::Low: return 0.2;
    case PeakBucket::Moderate: return 0.4;
    case PeakBucket::High: return 0.6;
    case PeakBucket::VeryHigh: return 0.8;
  }
  return 0.4;
}

hv::VmSpec VmRecord::to_spec() const {
  hv::VmSpec spec;
  spec.id = id;
  spec.name = "vm-" + std::to_string(id);
  spec.vcpus = vcpus;
  spec.memory_mib = memory_mib;
  // The cluster evaluation bin-packs and deflates on CPU cores and memory
  // only (§7.1.2); I/O stays out of the placement constraint set.
  spec.disk_bw_mbps = 0.0;
  spec.net_bw_mbps = 0.0;
  spec.workload = workload;
  spec.deflatable = deflatable();
  spec.priority = deflatable() ? priority_level() : 1.0;
  return spec;
}

}  // namespace deflate::trace
