#include "trace/series.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace deflate::trace {

float UtilizationSeries::at_time(sim::SimTime t) const {
  if (samples_.empty()) return 0.0F;
  const auto idx = static_cast<std::size_t>(
      std::max<std::int64_t>(0, t.micros() / interval_.micros()));
  return samples_[std::min(idx, samples_.size() - 1)];
}

double UtilizationSeries::fraction_above(double threshold) const noexcept {
  if (samples_.empty()) return 0.0;
  std::size_t above = 0;
  for (const float s : samples_) {
    if (s > threshold) ++above;
  }
  return static_cast<double>(above) / static_cast<double>(samples_.size());
}

double UtilizationSeries::percentile(double q) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> values(samples_.begin(), samples_.end());
  return util::quantile(values, q);
}

double UtilizationSeries::mean() const noexcept {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (const float s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double UtilizationSeries::peak() const noexcept {
  double peak = 0.0;
  for (const float s : samples_) peak = std::max(peak, static_cast<double>(s));
  return peak;
}

UtilizationSeries::Underallocation UtilizationSeries::underallocation(
    const std::vector<float>& allocation) const noexcept {
  Underallocation out;
  const std::size_t n = std::min(samples_.size(), allocation.size());
  for (std::size_t i = 0; i < n; ++i) {
    out.used += samples_[i];
    out.lost += std::max(0.0F, samples_[i] - allocation[i]);
  }
  return out;
}

}  // namespace deflate::trace
