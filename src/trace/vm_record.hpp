// VM-level trace records in the shape of the Azure Resource Central
// dataset: per-VM metadata (class label, size, lifetime) plus a 5-minute
// max-CPU utilization series (§3.2.1, §7.1.2).
#pragma once

#include <cstdint>
#include <vector>

#include "hypervisor/vm.hpp"
#include "sim/time.hpp"
#include "trace/series.hpp"

namespace deflate::trace {

/// Fig. 7's size buckets.
enum class SizeBucket { Small, Medium, Large };
[[nodiscard]] const char* size_bucket_name(SizeBucket b) noexcept;
[[nodiscard]] SizeBucket size_bucket_for_memory(double memory_mib) noexcept;

/// Fig. 8's 95th-percentile CPU buckets.
enum class PeakBucket { Low, Moderate, High, VeryHigh };
[[nodiscard]] const char* peak_bucket_name(PeakBucket b) noexcept;
[[nodiscard]] PeakBucket peak_bucket_for_p95(double p95) noexcept;

/// The cheap arrival-side header of a VmRecord: everything the streaming
/// replay index (src/trace/replay.hpp) needs to order and size arrivals
/// without materializing the 5-minute utilization series.
struct ArrivalStub {
  std::uint64_t id = 0;
  sim::SimTime start;
  sim::SimTime end;
  int vcpus = 0;
  double memory_mib = 0.0;
};

struct VmRecord {
  std::uint64_t id = 0;
  hv::WorkloadClass workload = hv::WorkloadClass::Unknown;
  int vcpus = 2;
  double memory_mib = 4096.0;
  double disk_bw_mbps = 100.0;
  double net_bw_mbps = 1000.0;
  sim::SimTime start;
  sim::SimTime end;
  UtilizationSeries cpu;  ///< fraction of the VM's CPU allocation, per 5 min

  [[nodiscard]] sim::SimTime lifetime() const noexcept { return end - start; }
  [[nodiscard]] double p95_cpu() const { return cpu.percentile(0.95); }
  [[nodiscard]] SizeBucket size_bucket() const noexcept {
    return size_bucket_for_memory(memory_mib);
  }

  /// The paper marks interactive VMs as the deflatable pool (§7.1.2).
  [[nodiscard]] bool deflatable() const noexcept {
    return workload == hv::WorkloadClass::Interactive;
  }

  /// "We determine VM priorities based on their 95-th percentile CPU usage
  /// and use 4 priority levels" (§7.1.2). Higher peak usage -> higher
  /// priority -> deflated less.
  [[nodiscard]] double priority_level() const {
    return priority_from_p95(p95_cpu());
  }
  [[nodiscard]] static double priority_from_p95(double p95) noexcept;

  /// Builds a VmSpec for placing this trace VM in the cluster simulator.
  [[nodiscard]] hv::VmSpec to_spec() const;
};

}  // namespace deflate::trace
