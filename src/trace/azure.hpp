// Synthetic Azure-style VM trace generator (DESIGN.md §1).
//
// The Azure Resource Central dataset [Cortez et al., SOSP'17] provides, per
// VM: a workload-class label (interactive / delay-insensitive / unknown),
// size, lifetime, and a 5-minute max-CPU-utilization series. This generator
// reproduces the *statistical shape* the paper's feasibility analysis
// depends on:
//   * interactive VMs: low base utilization, pronounced diurnal swing, and
//     bursty interval-max spikes — substantial slack (Fig. 6);
//   * delay-insensitive (batch) VMs: higher sustained utilization with long
//     busy phases — less slack (Fig. 6);
//   * utilization independent of VM size (Fig. 7);
//   * a wide spread of 95th-percentile peaks across VMs (Fig. 8).
// All draws are keyed by (seed, vm id): generation order and thread count
// do not change the trace.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/vm_record.hpp"

namespace deflate::util {
class Rng;
}

namespace deflate::trace {

struct AzureTraceConfig {
  std::size_t vm_count = 10000;
  std::uint64_t seed = 42;
  /// Trace horizon; VM lifetimes fall within [0, duration].
  sim::SimTime duration = sim::SimTime::from_hours(24 * 3);
  /// Workload mix. The paper reports its sampled trace as roughly 50%
  /// interactive (deflatable), the rest batch/unknown (§7.1.2).
  double interactive_share = 0.50;
  double delay_insensitive_share = 0.30;  ///< remainder is "unknown"
  /// Minimum VM lifetime; Azure VMs shorter than this are not interesting
  /// for deflation studies.
  sim::SimTime min_lifetime = sim::SimTime::from_hours(1);
  /// Arrival cohorts. Cloud commitment is a small always-on base, a large
  /// business-hours cohort of short-lived VMs (this produces the sharp
  /// daily committed-capacity peak that providers size for, §7.1.2), and
  /// uniform background churn. The resulting average/peak commitment ratio
  /// (~0.5-0.6) is what keeps deflation episodes brief at moderate
  /// overcommitment — the precondition for the paper's low throughput
  /// losses (Fig. 21).
  double persistent_share = 0.05;
  double diurnal_share = 0.70;
  /// Diurnal-cohort arrival time-of-day: Normal(peak_hour, spread).
  double diurnal_peak_hour = 13.0;
  double diurnal_spread_hours = 1.8;
  sim::SimTime diurnal_max_lifetime = sim::SimTime::from_hours(10);
};

class AzureTraceGenerator {
 public:
  explicit AzureTraceGenerator(AzureTraceConfig config) : config_(config) {}

  /// Generates the whole trace (parallelized across VMs, deterministic).
  [[nodiscard]] std::vector<VmRecord> generate() const;

  /// Generates a single VM record (id in [0, vm_count)); the unit other
  /// generators and tests build on.
  [[nodiscard]] VmRecord generate_vm(std::uint64_t vm_id) const;

  /// The arrival-side header of `generate_vm(vm_id)` — same class, size and
  /// lifetime draws, without the utilization series. Costs O(1) instead of
  /// O(lifetime), which is what lets the streaming replay index a
  /// million-VM trace without materializing it.
  [[nodiscard]] ArrivalStub arrival_of(std::uint64_t vm_id) const;

  [[nodiscard]] const AzureTraceConfig& config() const noexcept { return config_; }

 private:
  /// Consumes the arrival-side draws (class, size, cohort, lifetime) from
  /// `rng`, filling the record's header fields. Returns the unquantized
  /// start in hours: generate_vm's series loop needs the exact double, not
  /// the micro-rounded record.start, to stay bit-identical.
  double draw_arrival(util::Rng& rng, VmRecord& record) const;

  AzureTraceConfig config_;
};

}  // namespace deflate::trace
