// Resource-utilization time series: per-interval maximum usage expressed as
// a fraction of the VM/container's allocated (spec) size, sampled at the
// Azure trace's 5-minute granularity (§3.2.1).
#pragma once

#include <cstddef>
#include <vector>

#include "sim/time.hpp"

namespace deflate::trace {

inline constexpr auto kTraceInterval = sim::SimTime::from_minutes(5);

class UtilizationSeries {
 public:
  UtilizationSeries() = default;
  explicit UtilizationSeries(std::vector<float> samples,
                             sim::SimTime interval = kTraceInterval)
      : samples_(std::move(samples)), interval_(interval) {}

  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] sim::SimTime interval() const noexcept { return interval_; }
  [[nodiscard]] const std::vector<float>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] float at(std::size_t i) const { return samples_.at(i); }

  /// Utilization fraction at absolute offset `t` from the series start
  /// (piecewise constant per interval; clamps to the last sample).
  [[nodiscard]] float at_time(sim::SimTime t) const;

  void push(float sample) { samples_.push_back(sample); }

  /// Fraction of intervals with usage strictly above `threshold` — the
  /// paper's "fraction of time spent above the deflated allocation".
  [[nodiscard]] double fraction_above(double threshold) const noexcept;

  /// q-quantile of the samples (q in [0,1]); 0 for an empty series.
  [[nodiscard]] double percentile(double q) const;

  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double peak() const noexcept;

  /// Integral of max(0, usage - allocation(t)) dt over the series, where
  /// `allocation` is a fraction-of-spec step function aligned to this
  /// series (Fig. 4's "total underallocation"). Returns (loss, total usage)
  /// in units of fraction*intervals, for throughput-loss ratios.
  struct Underallocation {
    double lost = 0.0;
    double used = 0.0;
  };
  [[nodiscard]] Underallocation underallocation(
      const std::vector<float>& allocation) const noexcept;

 private:
  std::vector<float> samples_;
  sim::SimTime interval_ = kTraceInterval;
};

}  // namespace deflate::trace
