// CSV persistence for VM traces, so generated traces can be inspected,
// archived, and replayed byte-identically across tool versions.
//
// Format (one row per VM):
//   id,class,vcpus,memory_mib,disk_bw,net_bw,start_us,end_us,u0;u1;...;uN
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/vm_record.hpp"

namespace deflate::trace {

void write_trace_csv(std::ostream& out, const std::vector<VmRecord>& records);
[[nodiscard]] std::vector<VmRecord> read_trace_csv(std::istream& in);

/// Convenience file wrappers; throw std::runtime_error on I/O failure.
void save_trace(const std::string& path, const std::vector<VmRecord>& records);
[[nodiscard]] std::vector<VmRecord> load_trace(const std::string& path);

}  // namespace deflate::trace
