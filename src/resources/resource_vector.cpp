#include "resources/resource_vector.hpp"

#include <cmath>
#include <ostream>

namespace deflate::res {

std::string_view resource_name(Resource r) noexcept {
  switch (r) {
    case Resource::Cpu: return "cpu";
    case Resource::Memory: return "memory";
    case Resource::DiskBw: return "disk_bw";
    case Resource::NetBw: return "net_bw";
  }
  return "unknown";
}

double ResourceVector::dot(const ResourceVector& rhs) const noexcept {
  double sum = 0.0;
  for (const Resource r : all_resources) sum += (*this)[r] * rhs[r];
  return sum;
}

double ResourceVector::norm() const noexcept { return std::sqrt(dot(*this)); }

double cosine_similarity(const ResourceVector& a, const ResourceVector& b) noexcept {
  constexpr double kEps = 1e-12;
  const double denom = a.norm() * b.norm();
  return a.dot(b) / (denom > kEps ? denom : kEps);
}

std::ostream& operator<<(std::ostream& out, const ResourceVector& v) {
  out << "{cpu=" << v.cpu() << ", mem=" << v.memory() << "MiB, disk=" << v.disk_bw()
      << "MB/s, net=" << v.net_bw() << "Mbps}";
  return out;
}

}  // namespace deflate::res
