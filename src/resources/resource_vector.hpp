// Multi-dimensional resource vectors: CPU cores, memory MiB, disk MB/s,
// network Mbps. The paper deflates each resource individually (§5.1.1) and
// places VMs by cosine similarity of demand/availability vectors (§5.2).
#pragma once

#include <array>
#include <cstddef>
#include <iosfwd>
#include <string_view>

namespace deflate::res {

enum class Resource : std::size_t { Cpu = 0, Memory = 1, DiskBw = 2, NetBw = 3 };

inline constexpr std::size_t kNumResources = 4;

[[nodiscard]] std::string_view resource_name(Resource r) noexcept;

inline constexpr std::array<Resource, kNumResources> all_resources{
    Resource::Cpu, Resource::Memory, Resource::DiskBw, Resource::NetBw};

/// Units: Cpu in cores, Memory in MiB, DiskBw in MB/s, NetBw in Mbps.
class ResourceVector {
 public:
  constexpr ResourceVector() noexcept = default;
  constexpr ResourceVector(double cpu, double memory_mib, double disk_bw,
                           double net_bw) noexcept
      : values_{cpu, memory_mib, disk_bw, net_bw} {}

  /// Vector with the same value in every dimension.
  [[nodiscard]] static constexpr ResourceVector uniform(double v) noexcept {
    return ResourceVector(v, v, v, v);
  }

  [[nodiscard]] constexpr double operator[](Resource r) const noexcept {
    return values_[static_cast<std::size_t>(r)];
  }
  constexpr double& operator[](Resource r) noexcept {
    return values_[static_cast<std::size_t>(r)];
  }

  [[nodiscard]] constexpr double cpu() const noexcept { return (*this)[Resource::Cpu]; }
  [[nodiscard]] constexpr double memory() const noexcept {
    return (*this)[Resource::Memory];
  }
  [[nodiscard]] constexpr double disk_bw() const noexcept {
    return (*this)[Resource::DiskBw];
  }
  [[nodiscard]] constexpr double net_bw() const noexcept {
    return (*this)[Resource::NetBw];
  }

  constexpr ResourceVector& operator+=(const ResourceVector& rhs) noexcept {
    for (std::size_t i = 0; i < kNumResources; ++i) values_[i] += rhs.values_[i];
    return *this;
  }
  constexpr ResourceVector& operator-=(const ResourceVector& rhs) noexcept {
    for (std::size_t i = 0; i < kNumResources; ++i) values_[i] -= rhs.values_[i];
    return *this;
  }
  constexpr ResourceVector& operator*=(double s) noexcept {
    for (auto& v : values_) v *= s;
    return *this;
  }

  friend constexpr ResourceVector operator+(ResourceVector a,
                                            const ResourceVector& b) noexcept {
    return a += b;
  }
  friend constexpr ResourceVector operator-(ResourceVector a,
                                            const ResourceVector& b) noexcept {
    return a -= b;
  }
  friend constexpr ResourceVector operator*(ResourceVector a, double s) noexcept {
    return a *= s;
  }
  friend constexpr ResourceVector operator*(double s, ResourceVector a) noexcept {
    return a *= s;
  }

  friend constexpr bool operator==(const ResourceVector&,
                                   const ResourceVector&) noexcept = default;

  /// Elementwise tests.
  [[nodiscard]] constexpr bool all_leq(const ResourceVector& rhs,
                                       double eps = 1e-9) const noexcept {
    for (std::size_t i = 0; i < kNumResources; ++i) {
      if (values_[i] > rhs.values_[i] + eps) return false;
    }
    return true;
  }
  [[nodiscard]] constexpr bool any_negative(double eps = 1e-9) const noexcept {
    for (const double v : values_) {
      if (v < -eps) return true;
    }
    return false;
  }
  [[nodiscard]] constexpr bool is_zero(double eps = 1e-9) const noexcept {
    for (const double v : values_) {
      if (v > eps || v < -eps) return false;
    }
    return true;
  }

  [[nodiscard]] constexpr ResourceVector elementwise_min(
      const ResourceVector& rhs) const noexcept {
    ResourceVector out;
    for (std::size_t i = 0; i < kNumResources; ++i) {
      out.values_[i] = values_[i] < rhs.values_[i] ? values_[i] : rhs.values_[i];
    }
    return out;
  }
  [[nodiscard]] constexpr ResourceVector elementwise_max(
      const ResourceVector& rhs) const noexcept {
    ResourceVector out;
    for (std::size_t i = 0; i < kNumResources; ++i) {
      out.values_[i] = values_[i] > rhs.values_[i] ? values_[i] : rhs.values_[i];
    }
    return out;
  }
  /// Clamps negatives to zero (availability vectors must stay physical).
  [[nodiscard]] constexpr ResourceVector clamped_nonneg() const noexcept {
    ResourceVector out = *this;
    for (auto& v : out.values_) {
      if (v < 0.0) v = 0.0;
    }
    return out;
  }

  [[nodiscard]] double dot(const ResourceVector& rhs) const noexcept;
  [[nodiscard]] double norm() const noexcept;

 private:
  std::array<double, kNumResources> values_{};
};

/// Cosine similarity as in §5.2 (fitness). If either vector has zero norm a
/// small epsilon is used, mirroring the paper's division-by-zero guard.
[[nodiscard]] double cosine_similarity(const ResourceVector& a,
                                       const ResourceVector& b) noexcept;

std::ostream& operator<<(std::ostream& out, const ResourceVector& v);

}  // namespace deflate::res
