#include "cluster/migration.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace deflate::cluster {

void MigrationSurface::register_builtins(
    policy::PolicyRegistry<MigrationSurface>& registry) {
  registry.add("migrate",
               "full-footprint pre-copy; a missed deadline kills the VM",
               [] {
                 return MigrationStrategy{.deflate_before_transfer = false,
                                          .checkpoint_fallback = false};
               });
  registry.add("deflate",
               "stream the deflated footprint; a missed deadline kills the VM",
               [] {
                 return MigrationStrategy{.deflate_before_transfer = true,
                                          .checkpoint_fallback = false};
               });
  registry.add("hybrid",
               "deflated transfer + checkpoint-relaunch fallback (the paper's "
               "deflation + checkpointing hybrid)",
               [] {
                 return MigrationStrategy{.deflate_before_transfer = true,
                                          .checkpoint_fallback = true};
               });
}

MigrationStrategy make_migration_strategy(const std::string& name) {
  const auto* entry = MigrationRegistry::instance().find(name);
  if (entry == nullptr) {
    throw std::invalid_argument(
        "unknown migration strategy '" + name + "' (expected " +
        policy::joined_policy_names<MigrationSurface>() + ")");
  }
  return entry->make();
}

MigrationEngineConfig resolve_migration_strategy(MigrationEngineConfig config) {
  if (!config.strategy_name.empty()) {
    const MigrationStrategy strategy =
        make_migration_strategy(config.strategy_name);
    config.deflate_before_transfer = strategy.deflate_before_transfer;
    config.checkpoint_fallback = strategy.checkpoint_fallback;
  }
  return config;
}

MigrationEstimate MigrationModel::precopy(double memory_mib,
                                          int concurrent_streams) const {
  MigrationEstimate estimate;
  if (instant()) return estimate;
  const double streams =
      config_.share_bandwidth ? std::max(1, concurrent_streams) : 1;
  const double bandwidth = config_.bandwidth_mib_per_sec / streams;
  const double dirty = std::max(0.0, config_.dirty_mib_per_sec);
  double remaining = std::max(0.0, memory_mib);

  if (dirty >= bandwidth) {
    // Pre-copy cannot drain: the guest redirties memory as fast as the
    // link streams it. One bulk round, then stop-and-copy of a fully
    // redirtied footprint.
    estimate.converged = false;
    const double bulk_seconds = remaining / bandwidth;
    estimate.downtime = sim::SimTime::from_seconds(bulk_seconds);
    estimate.duration = sim::SimTime::from_seconds(2.0 * bulk_seconds);
    return estimate;
  }

  double total_seconds = 0.0;
  int round = 0;
  while (remaining > config_.stop_copy_threshold_mib &&
         round < config_.max_precopy_rounds) {
    const double round_seconds = remaining / bandwidth;
    total_seconds += round_seconds;
    remaining = round_seconds * dirty;  // redirtied while this round streamed
    ++round;
  }
  const double stop_copy_seconds = remaining / bandwidth;
  estimate.downtime = sim::SimTime::from_seconds(stop_copy_seconds);
  estimate.duration =
      sim::SimTime::from_seconds(total_seconds + stop_copy_seconds);
  return estimate;
}

MigrationEstimate MigrationModel::checkpoint(double memory_mib,
                                             int concurrent_streams) const {
  MigrationEstimate estimate;
  if (instant()) return estimate;
  const double streams =
      config_.share_bandwidth ? std::max(1, concurrent_streams) : 1;
  const double seconds =
      std::max(0.0, memory_mib) * streams / config_.bandwidth_mib_per_sec;
  estimate.duration = sim::SimTime::from_seconds(seconds);
  estimate.downtime = estimate.duration;
  return estimate;
}

int MigrationEngine::contention_streams(std::size_t residents) const noexcept {
  if (!config_.model.share_bandwidth) return 1;
  return static_cast<int>(std::max<std::size_t>(1, residents));
}

double MigrationEngine::transfer_mib(const hv::VmSpec& spec) const {
  if (!config_.deflate_before_transfer) return spec.memory_mib;
  const double fraction = std::clamp(
      std::max(spec.min_fraction, config_.model.deflated_transfer_fraction),
      0.0, 1.0);
  return spec.memory_mib * fraction;
}

void MigrationEngine::charge_downtime(const hv::VmSpec& spec,
                                      sim::SimTime window) {
  const double hours = std::max(0.0, window.hours());
  stats_.downtime_hours += hours;
  stats_.downtime_core_hours += hours * static_cast<double>(spec.vcpus);
}

WarningResult MigrationEngine::begin_warning(std::size_t server,
                                             sim::SimTime now,
                                             sim::SimTime deadline) {
  WarningResult result;
  if (model_.instant() || !manager_.server_active(server)) return result;
  manager_.drain_server(server);
  ++stats_.warnings;

  std::vector<hv::VmSpec> residents;
  for (const hv::Vm* vm : manager_.host(server).vms()) {
    residents.push_back(vm->spec());
  }
  std::sort(residents.begin(), residents.end(), displacement_before);

  RevocationOutcome& pending = pending_[server];
  const int streams = contention_streams(residents.size());
  for (const hv::VmSpec& spec : residents) {
    const MigrationEstimate estimate =
        model_.precopy(transfer_mib(spec), streams);
    if (!estimate.converged || now + estimate.duration > deadline) {
      // Streaming would outlive the server; it keeps running until the
      // deadline decides between checkpoint-relaunch and kill.
      continue;
    }
    manager_.remove_vm(spec.id);
    const PlacementResult placed = manager_.place_vm(spec);
    ++pending.vms_displaced;
    if (!placed.ok()) {
      // Fits the warning but no destination today: checkpoint it and let
      // the deadline retry (capacity may free up in between).
      result.suspended.push_back(spec);
      continue;
    }
    ++pending.vms_migrated;
    ++stats_.live_migrations;
    MigrationRecord record;
    record.spec = spec;
    record.from = server;
    record.to = placed.host_id;
    record.launch_fraction = placed.launch_fraction;
    record.start = now;
    record.cutover_end = now + estimate.duration;
    record.cutover_begin = record.cutover_end - estimate.downtime;
    record.live = true;
    charge_downtime(spec, estimate.downtime);
    result.started.push_back(record);
  }
  return result;
}

RevocationFinish MigrationEngine::finish_revocation(
    std::size_t server, sim::SimTime now,
    std::span<const hv::VmSpec> suspended) {
  RevocationFinish result;
  if (const auto it = pending_.find(server); it != pending_.end()) {
    result.outcome = it->second;
    pending_.erase(it);
  }
  if (model_.instant()) {  // defensive: callers gate on timed()
    result.outcome = manager_.revoke_server(server);
    return result;
  }
  if (!manager_.server_active(server)) return result;

  // Zero-warning revocations reach here without a begin_warning; make sure
  // the fallback placements below cannot land on the doomed server.
  manager_.drain_server(server);

  struct Candidate {
    hv::VmSpec spec;
    bool was_suspended = false;
  };
  std::vector<Candidate> candidates;
  for (const hv::Vm* vm : manager_.host(server).vms()) {
    candidates.push_back({vm->spec(), false});
  }
  for (const hv::VmSpec& spec : suspended) candidates.push_back({spec, true});
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return displacement_before(a.spec, b.spec);
            });

  const int streams = contention_streams(candidates.size());
  for (const Candidate& candidate : candidates) {
    const hv::VmSpec& spec = candidate.spec;
    if (!candidate.was_suspended) {
      ++result.outcome.vms_displaced;  // suspended were counted at warning
      manager_.remove_vm(spec.id);
    }
    PlacementResult placed;
    if (config_.checkpoint_fallback) placed = manager_.place_vm(spec);
    if (config_.checkpoint_fallback && placed.ok()) {
      ++result.outcome.vms_migrated;
      ++stats_.checkpoint_restores;
      MigrationRecord record;
      record.spec = spec;
      record.from = server;
      record.to = placed.host_id;
      record.launch_fraction = placed.launch_fraction;
      record.start = now;
      record.cutover_begin = now;
      record.cutover_end =
          now + model_.checkpoint(transfer_mib(spec), streams).duration;
      record.live = false;
      charge_downtime(spec, record.cutover_end - record.cutover_begin);
      result.restored.push_back(record);
    } else {
      ++result.outcome.vms_killed;
      ++stats_.checkpoint_kills;
      result.killed.push_back(spec);
    }
  }

  // The server is empty now; this flips it inactive, counts the
  // revocation and fires the manager's revocation callbacks.
  manager_.revoke_server(server);
  return result;
}

}  // namespace deflate::cluster
