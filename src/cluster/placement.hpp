// Deflation-aware VM placement (§5.2).
//
// Fitness of server j for demand D is the cosine similarity between D and
// the server's availability vector
//   A_j = Total_j - Used_j + deflatable_j / overcommitted_j,
// where deflatable_j is what deflation could reclaim and overcommitted_j
// discounts servers that are already squeezed — preferring less-
// overcommitted servers and thus balancing load (§5.2).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "resources/resource_vector.hpp"

namespace deflate::cluster {

/// Cheap per-server snapshot maintained by the cluster manager.
struct HostView {
  std::uint64_t host_id = 0;
  res::ResourceVector capacity;
  res::ResourceVector available;   ///< Total - Used (allocation-based)
  res::ResourceVector deflatable;  ///< policy-reclaimable headroom
  double overcommit_ratio = 0.0;   ///< committed / capacity (max of cpu, mem)
  bool feasible = false;           ///< can_fit(demand) on this server
};

/// Availability vector A_j as defined above.
[[nodiscard]] res::ResourceVector availability_vector(const HostView& host);

/// Fitness score; larger is better.
[[nodiscard]] double fitness(const res::ResourceVector& demand,
                             const HostView& host);

/// Magnitude-aware fitness used when a placement *requires* deflation:
/// the projection of the (per-dimension capacity-normalized) availability
/// vector onto the demand direction. Cosine similarity is scale-invariant,
/// so by itself it cannot express the paper's "prefers servers with lower
/// overcommitment" behaviour; ranking pressured placements by projected
/// availability spreads the reclamation across the servers with the most
/// deflatable headroom, keeping per-VM deflation shallow (§5.2's load
/// balancing intent; Tetris [19], which the paper builds on, scores with
/// the dot product for the same reason).
[[nodiscard]] double pressure_fitness(const res::ResourceVector& demand,
                                      const HostView& host);

/// Index of the feasible host with the highest fitness (ties -> lower
/// host_id), or nullopt if no host is feasible. `under_pressure` selects
/// the magnitude-aware score.
[[nodiscard]] std::optional<std::size_t> pick_best_host(
    const res::ResourceVector& demand, std::span<const HostView> hosts,
    bool under_pressure = false);

/// Placement-strategy ablation (DESIGN.md §5): the paper's fitness policy
/// vs the classic bin-packing heuristics it competes with (§5.2 "policies
/// such as best-fit or first-fit can be used").
enum class PlacementStrategy { Fitness, FirstFit, BestFit, WorstFit };

[[nodiscard]] const char* placement_strategy_name(PlacementStrategy s) noexcept;

/// Strategy-parameterized host selection over the same feasibility mask:
///   FirstFit — lowest host id; BestFit — least leftover capacity (tightest
///   pack); WorstFit — most leftover capacity (max spreading).
[[nodiscard]] std::optional<std::size_t> pick_host(
    PlacementStrategy strategy, const res::ResourceVector& demand,
    std::span<const HostView> hosts, bool under_pressure = false);

}  // namespace deflate::cluster
