// Deflation-aware VM placement (§5.2).
//
// Fitness of server j for demand D is the cosine similarity between D and
// the server's availability vector
//   A_j = Total_j - Used_j + deflatable_j / overcommitted_j,
// where deflatable_j is what deflation could reclaim and overcommitted_j
// discounts servers that are already squeezed — preferring less-
// overcommitted servers and thus balancing load (§5.2).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "policy/registry.hpp"
#include "resources/resource_vector.hpp"
#include "util/thread_pool.hpp"

namespace deflate::cluster {

/// Cheap per-server snapshot maintained by the cluster manager.
struct HostView {
  std::uint64_t host_id = 0;
  res::ResourceVector capacity;
  res::ResourceVector available;   ///< Total - Used (allocation-based)
  res::ResourceVector deflatable;  ///< policy-reclaimable headroom
  double overcommit_ratio = 0.0;   ///< committed / capacity (max of cpu, mem)
  bool feasible = false;           ///< can_fit(demand) on this server
};

/// Availability vector A_j as defined above.
[[nodiscard]] res::ResourceVector availability_vector(const HostView& host);

/// Fitness score; larger is better.
[[nodiscard]] double fitness(const res::ResourceVector& demand,
                             const HostView& host);

/// Magnitude-aware fitness used when a placement *requires* deflation:
/// the projection of the (per-dimension capacity-normalized) availability
/// vector onto the demand direction. Cosine similarity is scale-invariant,
/// so by itself it cannot express the paper's "prefers servers with lower
/// overcommitment" behaviour; ranking pressured placements by projected
/// availability spreads the reclamation across the servers with the most
/// deflatable headroom, keeping per-VM deflation shallow (§5.2's load
/// balancing intent; Tetris [19], which the paper builds on, scores with
/// the dot product for the same reason).
[[nodiscard]] double pressure_fitness(const res::ResourceVector& demand,
                                      const HostView& host);

/// Index of the feasible host with the highest fitness (ties -> lower
/// host_id), or nullopt if no host is feasible. `under_pressure` selects
/// the magnitude-aware score.
[[nodiscard]] std::optional<std::size_t> pick_best_host(
    const res::ResourceVector& demand, std::span<const HostView> hosts,
    bool under_pressure = false);

/// Placement-strategy ablation (DESIGN.md §5): the paper's fitness policy
/// vs the classic bin-packing heuristics it competes with (§5.2 "policies
/// such as best-fit or first-fit can be used"). Kept as a thin alias over
/// the placement policy registry: every enum value maps to a registered
/// builtin scorer, and all legacy config paths resolve through it.
enum class PlacementStrategy { Fitness, FirstFit, BestFit, WorstFit };

[[nodiscard]] const char* placement_strategy_name(PlacementStrategy s) noexcept;

/// Strategy object behind PlacementStrategy: scores one (demand, host)
/// pair; the shared selection loops (pick_host / scan_pick_host) own the
/// feasibility mask and the deterministic tie order. Scorers are stateless
/// and shared across threads.
class PlacementScorer {
 public:
  /// How the selection loop ranks scores. ById skips scoring entirely
  /// (FirstFit: lowest host id wins).
  enum class Order { HigherBetter, LowerBetter, ById };

  virtual ~PlacementScorer() = default;

  [[nodiscard]] virtual Order order() const noexcept = 0;

  /// Whether the span-path loop breaks score ties by lower host id.
  /// Historically only Fitness did (BestFit/WorstFit keep the first-seen
  /// winner); the SoA scan path *always* ties by id regardless — that
  /// total order is what makes the chunked scan thread-count invariant.
  [[nodiscard]] virtual bool prefer_lower_id_on_tie() const noexcept {
    return false;
  }

  [[nodiscard]] virtual double score(const res::ResourceVector& demand,
                                     const HostView& host,
                                     bool under_pressure) const = 0;
};

/// Registry surface for placement scoring policies.
struct PlacementSurface {
  static constexpr const char* kSurfaceName = "placement";
  static constexpr const char* kSurfaceDescription =
      "VM placement scoring over the host scan table";
  using Factory = std::function<std::shared_ptr<const PlacementScorer>()>;
  static void register_builtins(policy::PolicyRegistry<PlacementSurface>&);
};

using PlacementRegistry = policy::PolicyRegistry<PlacementSurface>;

/// The builtin scorer a legacy enum value aliases (static lifetime).
[[nodiscard]] const PlacementScorer& builtin_placement_scorer(
    PlacementStrategy s) noexcept;

/// Resolves a registered scorer by name; throws std::invalid_argument
/// naming the valid choices when unknown.
[[nodiscard]] std::shared_ptr<const PlacementScorer> make_placement_scorer(
    const std::string& name);

/// Reverse mapping for the legacy-enum config surfaces (nullopt for
/// plugin-registered names that have no enum alias).
[[nodiscard]] std::optional<PlacementStrategy> placement_strategy_from_name(
    const std::string& name) noexcept;

/// Strategy-parameterized host selection over the same feasibility mask:
///   FirstFit — lowest host id; BestFit — least leftover capacity (tightest
///   pack); WorstFit — most leftover capacity (max spreading).
[[nodiscard]] std::optional<std::size_t> pick_host(
    PlacementStrategy strategy, const res::ResourceVector& demand,
    std::span<const HostView> hosts, bool under_pressure = false);

/// Scorer-driven selection; the enum overload forwards here with the
/// builtin scorer, bit-identical per strategy.
[[nodiscard]] std::optional<std::size_t> pick_host(
    const PlacementScorer& scorer, const res::ResourceVector& demand,
    std::span<const HostView> hosts, bool under_pressure = false);

/// SoA (structure-of-arrays) per-server scan storage: one dense column per
/// view field, indexed by server id. The placement scoring loop and the
/// deflation sweeps read a handful of sequential double streams instead of
/// striding over per-server structs behind pointers, so the hot scan is
/// cache-linear and trivially chunkable across worker threads.
struct HostScanTable {
  /// Fleet-uniform server capacity (every server shares the config's).
  res::ResourceVector capacity;
  std::array<std::vector<double>, res::kNumResources> available;
  std::array<std::vector<double>, res::kNumResources> deflatable;
  std::vector<double> overcommit;
  /// active && accepting: the scan considers only eligible servers.
  std::vector<std::uint8_t> eligible;

  void resize(std::size_t servers);
  [[nodiscard]] std::size_t size() const noexcept { return overcommit.size(); }

  void set_available(std::size_t i, const res::ResourceVector& v) noexcept;
  void set_deflatable(std::size_t i, const res::ResourceVector& v) noexcept;
  [[nodiscard]] res::ResourceVector available_of(std::size_t i) const noexcept;
  [[nodiscard]] res::ResourceVector deflatable_of(std::size_t i) const noexcept;
  /// Materializes the classic HostView for server `i` (bit-identical to
  /// what the old per-node views held — the columns store the same
  /// doubles), for the cold paths that still want the struct form.
  [[nodiscard]] HostView view_of(std::size_t i) const noexcept;
};

/// Which feasibility test the scan applies (the two passes of place_vm):
/// free capacity alone, or free capacity plus policy-deflatable headroom.
enum class ScanFeasibility { FreeCapacity, WithDeflation };

/// Strategy scan over the SoA table restricted to `candidates` (ineligible
/// servers are skipped). Returns the winning *server id*. Semantics are
/// identical to filtering the candidates and calling pick_host: same
/// feasibility epsilons, same scores, ties broken by lowest host id.
///
/// When `pool` is non-null and the candidate set is large, the scan is
/// chunked across the pool's workers. The reduction merges chunk winners
/// under the same total order (score, then lowest id), so the result is
/// bit-identical for any thread count — including zero (serial).
[[nodiscard]] std::optional<std::size_t> scan_pick_host(
    PlacementStrategy strategy, const res::ResourceVector& demand,
    const HostScanTable& table, std::span<const std::size_t> candidates,
    ScanFeasibility feasibility, bool under_pressure,
    util::ThreadPool* pool = nullptr);

/// Scorer-driven scan; the enum overload forwards here with the builtin
/// scorer. Ties always break by lowest host id (the scan's total order),
/// independent of the scorer's span-path tie preference.
[[nodiscard]] std::optional<std::size_t> scan_pick_host(
    const PlacementScorer& scorer, const res::ResourceVector& demand,
    const HostScanTable& table, std::span<const std::size_t> candidates,
    ScanFeasibility feasibility, bool under_pressure,
    util::ThreadPool* pool = nullptr);

}  // namespace deflate::cluster
