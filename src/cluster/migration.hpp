// Timed migration engine with cost accounting (ROADMAP: "Live migration
// with cost").
//
// The paper argues deflation beats checkpoint/migration for transient
// revocations *because* migration has a real time cost: streaming a VM's
// memory over a finite link takes longer than the provider's revocation
// warning, so a pure-migration strategy loses VMs that deflation saves.
// This engine models that cost. `MigrationModel` turns a memory footprint
// into a pre-copy duration and a stop-and-copy downtime window using the
// standard dirty-page/memory-streaming shape (arXiv:1406.5760): round i
// retransmits the pages dirtied while round i-1 streamed, converging
// geometrically while the dirty rate stays below the link bandwidth.
// `MigrationEngine` drives it against a `ClusterManagerBase` when a
// revocation *warning* fires (see `transient::RevocationConfig::
// warning_hours`): VMs whose transfer fits inside the warning live-migrate
// (reserved on the destination at stream start, paused only for the
// stop-and-copy window); VMs that cannot finish streaming in time fall
// back at the deadline to a checkpoint + (possibly deflated) relaunch —
// the deflation + checkpointing hybrid — or are checkpoint-killed when no
// surviving server can take them.
//
// A bandwidth of 0 is the *instant* sentinel: migrations take no time and
// charge nothing, reproducing the pre-engine `revoke_server` behavior bit
// for bit (the simulator skips the warning machinery entirely, so
// `test_golden_revocation` pins the sentinel).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/cluster_manager.hpp"
#include "policy/registry.hpp"
#include "sim/time.hpp"

namespace deflate::cluster {

struct MigrationModelConfig {
  /// Memory-streaming link bandwidth, MiB/s. <= 0 is the *instant*
  /// sentinel: migrations take no time and cost nothing (legacy behavior).
  double bandwidth_mib_per_sec = 0.0;
  /// Rate at which a running VM redirties its memory during pre-copy,
  /// MiB/s. At or above the bandwidth, pre-copy cannot converge.
  double dirty_mib_per_sec = 64.0;
  /// Pre-copy rounds before the model forces stop-and-copy.
  int max_precopy_rounds = 16;
  /// Stop-and-copy as soon as the remaining dirty set is this small (MiB).
  double stop_copy_threshold_mib = 64.0;
  /// Footprint fraction streamed when the engine deflates a VM before
  /// transfer (floored by the VM's own `min_fraction`).
  double deflated_transfer_fraction = 0.25;
  /// Bandwidth contention: N simultaneous cutover streams leaving one
  /// server share the uplink, so each stream sees bandwidth / N and
  /// stretches accordingly. Off by default (each transfer priced
  /// independently — the pre-contention behavior, bit for bit).
  bool share_bandwidth = false;
};

struct MigrationEstimate {
  sim::SimTime duration;  ///< stream start to cutover (pre-copy + stop-and-copy)
  sim::SimTime downtime;  ///< stop-and-copy window: the VM is paused
  bool converged = true;  ///< false: dirty rate >= bandwidth, pre-copy can't drain
};

class MigrationModel {
 public:
  explicit MigrationModel(MigrationModelConfig config) noexcept
      : config_(config) {}

  /// Instant sentinel: migrations are free and immediate.
  [[nodiscard]] bool instant() const noexcept {
    return config_.bandwidth_mib_per_sec <= 0.0;
  }

  /// Live (pre-copy) migration of `memory_mib` of guest state.
  /// `concurrent_streams` > 1 divides the link `share_bandwidth`-ways when
  /// contention is enabled (ignored otherwise).
  [[nodiscard]] MigrationEstimate precopy(double memory_mib,
                                          int concurrent_streams = 1) const;

  /// Checkpoint/restore: the VM is paused for the whole transfer
  /// (duration == downtime).
  [[nodiscard]] MigrationEstimate checkpoint(double memory_mib,
                                             int concurrent_streams = 1) const;

  [[nodiscard]] const MigrationModelConfig& config() const noexcept {
    return config_;
  }

 private:
  MigrationModelConfig config_;
};

/// What the engine does inside a revocation warning — the registry-visible
/// "mode" of the MigrationEngine. The builtin strategies are the paper's
/// ablation: pure migration, deflated transfer, and the deflation +
/// checkpointing hybrid.
struct MigrationStrategy {
  /// Deflate the VM and stream only the deflated footprint (the paper's
  /// answer: a deflated VM migrates inside warnings a full-size VM
  /// cannot). Applies to live transfers and checkpoint fallbacks alike.
  bool deflate_before_transfer = false;
  /// VMs that cannot finish streaming before the deadline are checkpointed
  /// and relaunched (possibly deflated) on a surviving server instead of
  /// being killed — the deflation + checkpointing hybrid. When false,
  /// missing the deadline is fatal (pure-migration baseline).
  bool checkpoint_fallback = true;
};

/// Registry surface for migration strategies.
struct MigrationSurface {
  static constexpr const char* kSurfaceName = "migration";
  static constexpr const char* kSurfaceDescription =
      "what the migration engine does inside a revocation warning";
  using Factory = std::function<MigrationStrategy()>;
  static void register_builtins(policy::PolicyRegistry<MigrationSurface>&);
};

using MigrationRegistry = policy::PolicyRegistry<MigrationSurface>;

/// Resolves a registered strategy by name; throws std::invalid_argument
/// naming the valid choices when unknown.
[[nodiscard]] MigrationStrategy make_migration_strategy(
    const std::string& name);

struct MigrationEngineConfig {
  MigrationModelConfig model;
  /// Legacy flag pair; thin alias of MigrationStrategy (ignored when
  /// `strategy_name` is set).
  bool deflate_before_transfer = false;
  bool checkpoint_fallback = true;
  /// Registry name of the strategy (PolicySet path). Empty = keep the flag
  /// pair above. Unknown names throw std::invalid_argument when the engine
  /// is built.
  std::string strategy_name;
};

/// Applies `strategy_name` (when set) onto the legacy flag pair; the form
/// every engine construction site funnels through.
[[nodiscard]] MigrationEngineConfig resolve_migration_strategy(
    MigrationEngineConfig config);

/// One in-flight migration: the VM holds resources on the destination from
/// `start`, pauses during [cutover_begin, cutover_end), and runs on the
/// destination afterwards.
struct MigrationRecord {
  hv::VmSpec spec;
  std::uint64_t from = 0;
  std::uint64_t to = 0;
  double launch_fraction = 1.0;  ///< (possibly deflated) relaunch fraction
  sim::SimTime start;
  sim::SimTime cutover_begin;
  sim::SimTime cutover_end;
  bool live = true;  ///< false: checkpoint/restore fallback
};

/// What `begin_warning` set in motion. VMs in neither list keep running on
/// the doomed server until the deadline (their transfer would not finish
/// in time anyway); their fate is decided by `finish_revocation`.
struct WarningResult {
  std::vector<MigrationRecord> started;
  /// Transfer fits the warning but no destination exists today: the VM is
  /// checkpointed (paused, resources released) and retried at the
  /// deadline. The caller re-presents these to `finish_revocation`.
  std::vector<hv::VmSpec> suspended;
};

struct RevocationFinish {
  RevocationOutcome outcome;  ///< across warning + deadline phases
  std::vector<MigrationRecord> restored;  ///< checkpoint restores begun now
  std::vector<hv::VmSpec> killed;
};

struct MigrationEngineStats {
  std::uint64_t warnings = 0;
  std::uint64_t live_migrations = 0;
  std::uint64_t checkpoint_restores = 0;
  std::uint64_t checkpoint_kills = 0;
  /// Sum of scheduled VM-paused windows (stop-and-copy + checkpoint
  /// restores), as estimated when each transfer started. The simulator
  /// bills `transient::CostReport` from its own lifetime-clipped
  /// accounting (a VM that departs before its cutover never pauses).
  double downtime_hours = 0.0;
  /// The same windows weighted by the VM's core count.
  double downtime_core_hours = 0.0;
};

/// Drives timed revocations against any ClusterManagerBase. Placement of
/// displaced VMs goes through the manager's *top-level* `place_vm`, so on
/// a sharded fleet migrations land cross-shard exactly like fresh
/// arrivals. Deflation-mode only: the preemption baseline kills residents
/// at the revocation instant by design.
class MigrationEngine {
 public:
  MigrationEngine(MigrationEngineConfig config, ClusterManagerBase& manager)
      : config_(resolve_migration_strategy(std::move(config))),
        model_(config_.model),
        manager_(manager) {}

  [[nodiscard]] bool timed() const noexcept { return !model_.instant(); }

  /// The provider announced that `server` dies at `deadline`. Drains the
  /// server (no new placements; residents keep running) and starts every
  /// live migration that can finish streaming by the deadline,
  /// highest-priority VMs first.
  WarningResult begin_warning(std::size_t server, sim::SimTime now,
                              sim::SimTime deadline);

  /// The deadline arrived: checkpoint-relaunch (or kill) every VM still on
  /// `server` plus the still-alive `suspended` VMs from the warning phase,
  /// then take the (now empty) server offline via the manager.
  RevocationFinish finish_revocation(std::size_t server, sim::SimTime now,
                                     std::span<const hv::VmSpec> suspended);

  [[nodiscard]] const MigrationEngineStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] const MigrationModel& model() const noexcept { return model_; }
  [[nodiscard]] const MigrationEngineConfig& config() const noexcept {
    return config_;
  }

 private:
  /// MiB actually streamed for `spec` (deflated footprint when
  /// `deflate_before_transfer`).
  [[nodiscard]] double transfer_mib(const hv::VmSpec& spec) const;
  /// Streams contending for the doomed server's uplink: the resident
  /// count under `share_bandwidth` (every displacement nominally streams
  /// out together — a conservative contention stub), 1 otherwise.
  [[nodiscard]] int contention_streams(std::size_t residents) const noexcept;
  void charge_downtime(const hv::VmSpec& spec, sim::SimTime window);

  MigrationEngineConfig config_;
  MigrationModel model_;
  ClusterManagerBase& manager_;
  MigrationEngineStats stats_;
  /// Partial outcome of servers between warning and deadline.
  std::unordered_map<std::size_t, RevocationOutcome> pending_;
};

}  // namespace deflate::cluster
