#include "cluster/wire.hpp"

#include <sstream>

namespace deflate::cluster::wire {

namespace {

std::string escape(const std::string& text) {
  std::string out;
  for (const char c : text) {
    if (c == '&' || c == '=' || c == '%') {
      static const char* hex = "0123456789ABCDEF";
      out += '%';
      out += hex[(static_cast<unsigned char>(c) >> 4) & 0xF];
      out += hex[static_cast<unsigned char>(c) & 0xF];
    } else {
      out += c;
    }
  }
  return out;
}

std::string unescape(const std::string& text) {
  std::string out;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '%' && i + 2 < text.size()) {
      const auto nibble = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        return 0;
      };
      out += static_cast<char>(nibble(text[i + 1]) * 16 + nibble(text[i + 2]));
      i += 2;
    } else {
      out += text[i];
    }
  }
  return out;
}

double field_double(const std::map<std::string, std::string>& fields,
                    const std::string& key, double fallback = 0.0) {
  const auto it = fields.find(key);
  return it == fields.end() ? fallback : std::stod(it->second);
}

std::uint64_t field_u64(const std::map<std::string, std::string>& fields,
                        const std::string& key) {
  const auto it = fields.find(key);
  return it == fields.end() ? 0 : std::stoull(it->second);
}

bool has_fields(const std::map<std::string, std::string>& fields,
                std::initializer_list<const char*> keys) {
  for (const char* key : keys) {
    if (fields.find(key) == fields.end()) return false;
  }
  return true;
}

}  // namespace

std::string encode_fields(const std::map<std::string, std::string>& fields) {
  std::string out;
  for (const auto& [key, value] : fields) {
    if (!out.empty()) out += '&';
    out += escape(key) + '=' + escape(value);
  }
  return out;
}

std::map<std::string, std::string> decode_fields(const std::string& line) {
  std::map<std::string, std::string> fields;
  std::istringstream stream(line);
  std::string pair;
  while (std::getline(stream, pair, '&')) {
    const auto eq = pair.find('=');
    if (eq == std::string::npos) continue;
    fields[unescape(pair.substr(0, eq))] = unescape(pair.substr(eq + 1));
  }
  return fields;
}

std::string encode_envelope(const std::string& type,
                            std::map<std::string, std::string> fields) {
  fields["type"] = type;
  fields["v"] = std::to_string(kWireVersion);
  return encode_fields(fields);
}

std::optional<std::map<std::string, std::string>> decode_envelope(
    const std::string& type, const std::string& line) {
  auto fields = decode_fields(line);
  const auto version = fields.find("v");
  if (version == fields.end() ||
      version->second != std::to_string(kWireVersion)) {
    return std::nullopt;
  }
  const auto tag = fields.find("type");
  if (tag == fields.end() || tag->second != type) return std::nullopt;
  return fields;
}

std::string encode_vector(const res::ResourceVector& v) {
  std::ostringstream out;
  out << v.cpu() << ',' << v.memory() << ',' << v.disk_bw() << ','
      << v.net_bw();
  return out.str();
}

std::optional<res::ResourceVector> decode_vector(const std::string& text) {
  std::istringstream stream(text);
  std::string token;
  double values[res::kNumResources];
  for (double& value : values) {
    if (!std::getline(stream, token, ',')) return std::nullopt;
    try {
      value = std::stod(token);
    } catch (...) {
      return std::nullopt;
    }
  }
  return res::ResourceVector(values[0], values[1], values[2], values[3]);
}

std::string PlaceRequest::encode() const {
  return encode_envelope("place_request",
                         {{"vm", std::to_string(vm_id)},
                          {"demand", encode_vector(demand)},
                          {"priority", std::to_string(priority)},
                          {"deflatable", deflatable ? "1" : "0"}});
}

std::optional<PlaceRequest> PlaceRequest::decode(const std::string& line) {
  const auto fields = decode_envelope("place_request", line);
  if (!fields || !has_fields(*fields, {"vm", "demand"})) return std::nullopt;
  const auto demand = decode_vector(fields->at("demand"));
  if (!demand) return std::nullopt;
  PlaceRequest request;
  request.vm_id = field_u64(*fields, "vm");
  request.demand = *demand;
  request.priority = field_double(*fields, "priority", 1.0);
  request.deflatable =
      fields->count("deflatable") && fields->at("deflatable") == "1";
  return request;
}

std::string PlaceResponse::encode() const {
  return encode_envelope("place_response",
                         {{"vm", std::to_string(vm_id)},
                          {"accepted", accepted ? "1" : "0"},
                          {"host", std::to_string(host_id)},
                          {"fraction", std::to_string(launch_fraction)}});
}

std::optional<PlaceResponse> PlaceResponse::decode(const std::string& line) {
  const auto fields = decode_envelope("place_response", line);
  if (!fields || !has_fields(*fields, {"vm", "accepted"})) return std::nullopt;
  PlaceResponse response;
  response.vm_id = field_u64(*fields, "vm");
  response.accepted = fields->at("accepted") == "1";
  response.host_id = field_u64(*fields, "host");
  response.launch_fraction = field_double(*fields, "fraction", 1.0);
  return response;
}

std::string DeflateCommand::encode() const {
  return encode_envelope("deflate", {{"vm", std::to_string(vm_id)},
                                     {"target", encode_vector(target)}});
}

std::optional<DeflateCommand> DeflateCommand::decode(const std::string& line) {
  const auto fields = decode_envelope("deflate", line);
  if (!fields || !has_fields(*fields, {"vm", "target"})) return std::nullopt;
  const auto target = decode_vector(fields->at("target"));
  if (!target) return std::nullopt;
  DeflateCommand command;
  command.vm_id = field_u64(*fields, "vm");
  command.target = *target;
  return command;
}

std::string DeflationNotice::encode() const {
  return encode_envelope("deflation_notice",
                         {{"vm", std::to_string(vm_id)},
                          {"old", encode_vector(old_alloc)},
                          {"new", encode_vector(new_alloc)}});
}

std::optional<DeflationNotice> DeflationNotice::decode(const std::string& line) {
  const auto fields = decode_envelope("deflation_notice", line);
  if (!fields || !has_fields(*fields, {"vm", "old", "new"})) {
    return std::nullopt;
  }
  const auto old_alloc = decode_vector(fields->at("old"));
  const auto new_alloc = decode_vector(fields->at("new"));
  if (!old_alloc || !new_alloc) return std::nullopt;
  DeflationNotice notice;
  notice.vm_id = field_u64(*fields, "vm");
  notice.old_alloc = *old_alloc;
  notice.new_alloc = *new_alloc;
  return notice;
}

std::string UtilizationReport::encode() const {
  return encode_envelope("utilization",
                         {{"host", std::to_string(host_id)},
                          {"available", encode_vector(available)},
                          {"committed", encode_vector(committed)},
                          {"overcommit", std::to_string(overcommit_ratio)}});
}

std::optional<UtilizationReport> UtilizationReport::decode(
    const std::string& line) {
  const auto fields = decode_envelope("utilization", line);
  if (!fields || !has_fields(*fields, {"host", "available", "committed"})) {
    return std::nullopt;
  }
  const auto available = decode_vector(fields->at("available"));
  const auto committed = decode_vector(fields->at("committed"));
  if (!available || !committed) return std::nullopt;
  UtilizationReport report;
  report.host_id = field_u64(*fields, "host");
  report.available = *available;
  report.committed = *committed;
  report.overcommit_ratio = field_double(*fields, "overcommit");
  return report;
}

void MessageBus::subscribe(const std::string& topic, Handler handler) {
  topics_[topic].push_back(std::move(handler));
}

std::size_t MessageBus::publish(const std::string& topic,
                                const std::string& line) {
  ++published_;
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return 0;
  for (const Handler& handler : it->second) handler(line);
  return it->second.size();
}

}  // namespace deflate::cluster::wire
