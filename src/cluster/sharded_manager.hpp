// Sharded cluster manager: scales placement to 10k+ servers.
//
// The flat ClusterManager scans every candidate server per placement,
// which caps fleets at a few hundred servers. ShardedClusterManager splits
// the fleet into contiguous shards of servers, each owned by an ordinary
// ClusterManager, and routes placements with a cheap shard-selection
// policy (power-of-two-choices by default) over *cached* per-shard
// aggregate free capacity. The expensive exact scan then runs only inside
// the chosen shard, so placement cost drops from O(fleet) to
// O(fleet / shards) + O(shards).
//
// Aggregates are maintained as a dirty set: mutations apply a cheap
// incremental estimate and mark the shard dirty; exact recomputation is
// batched into flush_views(), which the simulator calls once per simulated
// tick. Stale aggregates only ever affect routing *order* — every shard
// remains a fallback candidate, and the shard-internal scan is always
// exact — so a placement is rejected only when every shard rejects it.
//
// Server ids: shard s owns the contiguous global range
// [first_s, first_s + size_s). All public parameters, PlacementResults and
// callbacks carry global ids (the flat manager's contract); translation
// to shard-local ids happens entirely inside this class. With
// shard_count == 1 the scheduler degenerates to the flat manager:
// identical decisions, identical stats.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster_manager.hpp"
#include "policy/registry.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace deflate::cluster {

/// How the scheduler picks the shard that gets to attempt a placement
/// first. All policies fall back to the remaining shards (ordered by
/// cached aggregate capacity) when the preferred shard rejects. Thin alias
/// over the shard-selection policy registry (every value maps to a
/// registered builtin ShardSelector).
enum class ShardSelectionPolicy {
  /// Sample two distinct shards, route to the one whose cached aggregate
  /// fits more copies of the demand. O(1) per placement and within a
  /// constant of least-loaded balance (the classic two-choices result).
  PowerOfTwoChoices,
  /// Scan every shard's cached aggregate and take the best. O(shards).
  LeastLoaded,
  /// Rotate through shards regardless of load.
  RoundRobin,
};

[[nodiscard]] const char* shard_selection_name(ShardSelectionPolicy p) noexcept;

/// Read-only per-shard routing scores for one placement. score(s) is how
/// many copies of the demand shard s's cached aggregate could hold (the
/// scheduler's shard_score); >= 1.0 means the shard fits the demand.
class ShardScores {
 public:
  virtual ~ShardScores() = default;
  [[nodiscard]] virtual std::size_t count() const noexcept = 0;
  [[nodiscard]] virtual double score(std::size_t shard) const = 0;
};

/// Strategy object behind ShardSelectionPolicy: appends the shards that
/// should attempt the placement ahead of the score-sorted fallback tail,
/// in preference order, via push_if_fits (which enforces the shared
/// contract: a pick must fit the demand and may not repeat). Selectors may
/// hold per-manager state (round-robin's cursor); randomness always comes
/// from the scheduler's routing rng so the deterministic routing stream is
/// policy-owned, never selector-owned.
class ShardSelector {
 public:
  virtual ~ShardSelector() = default;
  virtual void route(const ShardScores& scores, util::Rng& rng,
                     std::vector<std::size_t>& picks) = 0;

 protected:
  /// A policy pick only jumps the fallback queue when its cached aggregate
  /// fits the demand (score >= 1); duplicates are dropped.
  static void push_if_fits(const ShardScores& scores, std::size_t shard,
                           std::vector<std::size_t>& picks);
};

/// Registry surface for shard-selection policies. Factories build a fresh
/// selector per scheduler (selectors may be stateful).
struct ShardSelectionSurface {
  static constexpr const char* kSurfaceName = "shard-selection";
  static constexpr const char* kSurfaceDescription =
      "which shard attempts a placement first (sharded scheduler routing)";
  using Factory = std::function<std::unique_ptr<ShardSelector>()>;
  static void register_builtins(policy::PolicyRegistry<ShardSelectionSurface>&);
};

using ShardSelectionRegistry = policy::PolicyRegistry<ShardSelectionSurface>;

/// Builds a registered selector by name (aliases accepted); throws
/// std::invalid_argument naming the valid choices when unknown.
[[nodiscard]] std::unique_ptr<ShardSelector> make_shard_selector(
    const std::string& name);

/// Reverse mapping for the legacy-enum config surfaces (nullopt for
/// plugin-registered names that have no enum alias).
[[nodiscard]] std::optional<ShardSelectionPolicy> shard_selection_from_name(
    const std::string& name) noexcept;

struct ShardedClusterConfig {
  /// Fleet-wide configuration; `cluster.server_count` is the total fleet
  /// size, split near-evenly across shards.
  ClusterConfig cluster;
  std::size_t shard_count = 16;
  ShardSelectionPolicy selection = ShardSelectionPolicy::PowerOfTwoChoices;
  /// Registry name of the shard selector (PolicySet path; plugins land
  /// here). Empty = resolve the builtin aliased by `selection`. Unknown
  /// names throw std::invalid_argument at construction.
  std::string selection_name;
  /// Seed of the (deterministic) routing stream used by power-of-two
  /// sampling; independent of the market / trace seeds.
  std::uint64_t routing_seed = 42;
  /// Size of the worker pool shared by every shard: dirty shards refresh
  /// concurrently at the flush barrier and the in-shard placement scans
  /// chunk across the same workers. 0 or 1 = fully serial. Results are
  /// identical for every value — all reductions merge under a fixed total
  /// order — so this knob (like DEFLATE_THREADS, which the simulator feeds
  /// into it) only changes wall-clock time.
  std::size_t worker_threads = 0;
};

/// Builds the manager a config calls for: the flat ClusterManager when
/// `shard_count <= 1` (the degenerate case, without the wrapper), the
/// sharded scheduler otherwise. The one factory every fleet-construction
/// site shares (simulator, benches, tools).
[[nodiscard]] std::unique_ptr<ClusterManagerBase> make_cluster_manager(
    ShardedClusterConfig config);

class ShardedClusterManager : public ClusterManagerBase {
 public:
  explicit ShardedClusterManager(ShardedClusterConfig config);

  PlacementResult place_vm(const hv::VmSpec& spec) override;
  bool remove_vm(std::uint64_t vm_id) override;
  /// Displaces the revoked server's VMs through the *top-level* scheduler:
  /// the shard that lost the server gets first refusal via normal routing,
  /// but a full home shard no longer kills VMs the rest of the fleet could
  /// absorb — the score-ordered fallback shops every shard, exactly like a
  /// fresh arrival (flat-manager kill parity; see test_sharded_manager).
  RevocationOutcome revoke_server(std::size_t server) override;
  void restore_server(std::size_t server) override;
  void drain_server(std::size_t server) override;

  [[nodiscard]] bool server_active(std::size_t server) const override;
  [[nodiscard]] std::size_t active_server_count() const override;
  [[nodiscard]] std::size_t server_count() const override {
    return total_servers_;
  }
  [[nodiscard]] hv::Host& host(std::size_t server) override;
  [[nodiscard]] hv::Vm* find_vm(std::uint64_t vm_id) override;
  [[nodiscard]] std::optional<std::size_t> server_of(
      std::uint64_t vm_id) const override;

  /// Aggregated over shards, with routing noise removed: when a placement
  /// shops across several shards, only one attempt's rejection/reclamation
  /// counts survive (the successful one, or the first failed one on a
  /// full rejection), so rejections, reclamation_attempts and
  /// reclamation_failures keep the flat manager's end-to-end semantics
  /// and the derived failure probabilities stay comparable.
  [[nodiscard]] const ClusterStats& stats() const override;
  [[nodiscard]] res::ResourceVector total_capacity() const override;
  [[nodiscard]] res::ResourceVector total_allocated() const override;
  [[nodiscard]] res::ResourceVector total_committed() const override;

  [[nodiscard]] std::vector<std::size_t> pool_servers(
      std::size_t pool) const override;

  void subscribe_deflation(const DeflationCallback& callback) override;
  void subscribe_preemption(PreemptionCallback callback) override {
    preemption_callbacks_.push_back(std::move(callback));
  }
  void subscribe_revocation(RevocationCallback callback) override {
    revocation_callbacks_.push_back(std::move(callback));
  }
  void subscribe_migration(MigrationCallback callback) override {
    migration_callbacks_.push_back(std::move(callback));
  }

  /// Tick-boundary barrier: recomputes the cached aggregate of every shard
  /// marked dirty since the last flush (and flushes the shards' own
  /// per-server views), draining the dirty set *to a fixpoint* — shards
  /// dirtied while a refresh pass runs are picked up by another pass
  /// before the barrier completes. Dirty shards refresh concurrently on
  /// the worker pool; each shard touches only its own state, so the
  /// refreshed aggregates are identical for any thread count.
  void flush_views() override;

  /// Re-resolves the shard selector from the registry by name (PolicySet
  /// re-binding). Only call at a tick barrier — selector state (e.g. the
  /// round-robin cursor) resets, and no in-flight placement may straddle
  /// two policies. Throws std::invalid_argument on unknown names (state
  /// unchanged).
  void rebind_shard_selection(const std::string& name);

  // --- shard topology (introspection / tests) -------------------------------
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] std::size_t shard_of_server(std::size_t server) const;
  [[nodiscard]] ClusterManager& shard(std::size_t s) {
    return *shards_.at(s).manager;
  }

 private:
  struct Shard {
    std::size_t first = 0;  ///< global id of the shard's server 0
    std::size_t size = 0;
    std::unique_ptr<ClusterManager> manager;
    /// Cached available + deflatable aggregate over the shard's active
    /// servers; incrementally estimated between flushes.
    res::ResourceVector free;
    bool dirty = false;
  };

  /// Thread-safe (guarded by dirty_mutex_): pool workers may mark shards
  /// dirty while a flush pass is in flight; the fixpoint loop picks the
  /// late arrivals up before the barrier returns.
  void mark_dirty(std::size_t s);
  /// Recomputes the cached aggregate. Does NOT clear the dirty flag — the
  /// flush barrier owns flag lifecycle (clearing inside the refresh raced
  /// with concurrent mark_dirty and lost updates); direct callers outside
  /// the barrier at worst schedule one redundant exact refresh.
  void refresh_shard(Shard& shard);
  /// Copies of the demand the shard's cached aggregate could hold; the
  /// routing score (larger = more headroom).
  [[nodiscard]] static double shard_score(const Shard& shard,
                                          const res::ResourceVector& demand);
  /// The selection policy's preferred shards for one placement (only those
  /// whose cached aggregate fits the demand); at most two for
  /// power-of-two. The sorted fallback tail is built separately — and only
  /// when every pick rejected — by route_tail.
  [[nodiscard]] std::vector<std::size_t> route_picks(
      const res::ResourceVector& demand);
  /// Every shard not in `tried`, by descending cached score (ties by
  /// index).
  [[nodiscard]] std::vector<std::size_t> route_tail(
      const res::ResourceVector& demand,
      const std::vector<std::size_t>& tried);

  ShardedClusterConfig config_;
  std::size_t total_servers_ = 0;
  /// Worker pool shared by every shard (scan_pool) and by the flush
  /// barrier's concurrent shard refresh. Null when worker_threads <= 1.
  std::unique_ptr<util::ThreadPool> pool_;
  std::vector<Shard> shards_;
  /// Guards dirty flags + queue (mutated from pool workers mid-flush).
  std::mutex dirty_mutex_;
  std::vector<std::size_t> dirty_queue_;
  std::unordered_map<std::uint64_t, std::size_t> vm_shard_;
  util::Rng routing_rng_;
  /// Registry-resolved routing policy (owns its own state, e.g. the
  /// round-robin cursor); see rebind_shard_selection.
  std::unique_ptr<ShardSelector> selector_;
  /// Stats increments from failed shard attempts that were routing noise
  /// (the placement landed elsewhere, or duplicated a rejection already
  /// charged to the first attempt): subtracted from the per-shard sums so
  /// stats() stays end-to-end comparable with the flat manager.
  std::uint64_t spurious_rejections_ = 0;
  std::uint64_t spurious_reclamation_attempts_ = 0;
  std::uint64_t spurious_reclamation_failures_ = 0;
  /// Revocation displacement runs at this level (cross-shard), not inside
  /// the shards, so its migration/kill/preemption counts live here and are
  /// added to the per-shard sums by stats().
  ClusterStats overlay_;
  mutable ClusterStats stats_;
  std::vector<PreemptionCallback> preemption_callbacks_;
  std::vector<RevocationCallback> revocation_callbacks_;
  std::vector<MigrationCallback> migration_callbacks_;
};

}  // namespace deflate::cluster
