// Centralized cluster manager (§6): places VMs on servers with the
// deflation-aware fitness policy, drives per-server local deflation
// controllers, and — for the paper's baseline comparison — can instead run
// classic transient-server *preemption* as its reclamation mode.
//
// Placement is the paper's three-step protocol: (1) the manager ranks
// servers by fitness; (2) the chosen server's local controller computes the
// deflation needed to accommodate the VM and rejects it if any constraint
// is violated; (3) the deflation is performed and the VM launched —
// possibly *starting deflated* (§5.1.1) when no server can host its full
// size.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cluster/partitions.hpp"
#include "cluster/placement.hpp"
#include "core/local_controller.hpp"
#include "core/policy.hpp"
#include "util/thread_pool.hpp"

namespace deflate::cluster {

enum class ReclamationMode { Deflation, Preemption };

struct ClusterConfig {
  std::size_t server_count = 40;
  /// §7.1.2: 48 CPUs and 128 GB RAM per server; disk/net sized generously.
  res::ResourceVector server_capacity{48.0, 128.0 * 1024.0, 4000.0, 40000.0};
  core::PolicyKind policy = core::PolicyKind::Proportional;
  ReclamationMode mode = ReclamationMode::Deflation;
  /// Which mechanism the local controllers drive (ablation: hybrid vs
  /// transparent vs explicit vs balloon).
  mech::MechanismKind mechanism = mech::MechanismKind::Hybrid;
  /// Host-ranking heuristic (ablation: paper's fitness vs first/best/worst
  /// fit). Thin alias into the placement policy registry; ignored when
  /// `placement_name` is set.
  PlacementStrategy placement = PlacementStrategy::Fitness;
  /// Registry name of the placement scorer (PolicySet path). Empty =
  /// resolve the builtin aliased by `placement`. Unknown names throw
  /// std::invalid_argument at construction.
  std::string placement_name;
  /// When false, departures do not trigger reinflation (ablation for the
  /// §5.1.3 reinflation rule).
  bool reinflate_on_departure = true;
  bool partitioned = false;
  /// Pool weights when partitioned: pool 0 = on-demand, then one pool per
  /// deflatable priority level.
  std::vector<double> pool_weights{0.5, 0.125, 0.125, 0.125, 0.125};
  /// Granularity of deflated-launch attempts (fraction steps).
  double deflated_launch_step = 0.05;
  /// Worker threads for the placement scan and dirty-view drains. 0 or 1 =
  /// serial. Ignored when `scan_pool` is set. Thread count never changes
  /// decisions — the scan reduction is order-independent — only speed.
  std::size_t worker_threads = 0;
  /// Non-owning pool override: the sharded scheduler points every shard at
  /// one shared pool instead of letting each shard spawn its own workers.
  util::ThreadPool* scan_pool = nullptr;
};

struct PlacementResult {
  enum class Status {
    Placed,
    PlacedDeflated,   ///< admitted, but launched below its full size
    Rejected,         ///< reclamation failure / partition full
  };
  Status status = Status::Rejected;
  std::uint64_t host_id = 0;
  bool needed_reclamation = false;  ///< free capacity alone was insufficient
  double launch_fraction = 1.0;

  [[nodiscard]] bool ok() const noexcept { return status != Status::Rejected; }
};

struct ClusterStats {
  std::uint64_t placements = 0;
  std::uint64_t reclamation_attempts = 0;
  std::uint64_t reclamation_failures = 0;
  std::uint64_t deflated_launches = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t rejections = 0;
  // --- transient-market revocations (server-level reclamation) ---
  std::uint64_t revocations = 0;           ///< servers taken away
  std::uint64_t restorations = 0;          ///< servers handed back
  std::uint64_t revocation_migrations = 0; ///< VMs re-placed off a revoked server
  std::uint64_t revocation_kills = 0;      ///< VMs lost to a revocation
  // --- admission layer (src/cluster/admission.hpp) ---
  // The managers never touch these; AdmissionController::cluster_stats()
  // folds its deferral-queue counters into this breakdown (expired
  // deferrals are also added to `rejections` there).
  std::uint64_t admission_deferrals = 0;  ///< requests deferred at least once
  std::uint64_t admission_expired = 0;    ///< deferrals that hit their deadline
};

/// Displacement order shared by every revocation path: protect the most
/// valuable VMs with the scarce surviving capacity (or warning time)
/// first; ties by id for determinism.
[[nodiscard]] inline bool displacement_before(const hv::VmSpec& a,
                                              const hv::VmSpec& b) noexcept {
  if (a.priority != b.priority) return a.priority > b.priority;
  return a.id < b.id;
}

/// What happened to the VMs resident on a revoked server.
struct RevocationOutcome {
  std::size_t vms_displaced = 0;  ///< resident at revocation time
  std::size_t vms_migrated = 0;   ///< re-placed on surviving servers
  std::size_t vms_killed = 0;     ///< no surviving server could take them
};

/// Aggregate placement capacity of a (sub-)fleet, computed from the cached
/// per-server views; the sharded scheduler routes on this.
struct FleetAggregate {
  res::ResourceVector available;   ///< sum of free capacity, active servers
  res::ResourceVector deflatable;  ///< sum of reclaimable headroom
  std::size_t active_servers = 0;
};

/// Common interface of the flat ClusterManager and the sharded scheduler
/// layered on top of it (src/cluster/sharded_manager.hpp). The simulator,
/// the transient-market wiring and deflatectl operate exclusively against
/// this interface, so fleets switch between flat and sharded transparently.
/// Every `server` parameter and every server id carried by a callback or a
/// PlacementResult is a *global* fleet id in [0, server_count()).
class ClusterManagerBase {
 public:
  /// Preemption/revocation-kill observer; `host_id` is the server the VM
  /// was evicted from.
  using PreemptionCallback =
      std::function<void(const hv::VmSpec&, std::uint64_t host_id)>;
  using DeflationCallback = core::LocalDeflationController::DeflationEvent;
  /// Fired after a server-level revocation has been fully absorbed.
  using RevocationCallback =
      std::function<void(std::uint64_t host_id, const RevocationOutcome&)>;
  /// Fired when a revocation migrates a VM to a surviving server;
  /// `fraction` is the (possibly deflated) re-launch fraction.
  using MigrationCallback = std::function<void(
      const hv::VmSpec&, std::uint64_t from, std::uint64_t to, double fraction)>;

  virtual ~ClusterManagerBase() = default;

  /// Places a VM per the three-step protocol; see PlacementResult.
  virtual PlacementResult place_vm(const hv::VmSpec& spec) = 0;

  /// Terminates a VM and reinflates survivors on its server. Returns false
  /// if the VM is unknown (e.g. already preempted).
  virtual bool remove_vm(std::uint64_t vm_id) = 0;

  /// Server-level revocation (transient market): the server goes offline
  /// and stops accepting placements. In Deflation mode its VMs are
  /// migrated to surviving servers — deflating them and the hosts they
  /// land on as needed — and killed only when no server can absorb them;
  /// in Preemption mode every resident VM is killed. Idempotent on an
  /// already-revoked server.
  virtual RevocationOutcome revoke_server(std::size_t server) = 0;

  /// The provider hands equivalent capacity back: the (empty) server
  /// rejoins the placement pool. Lost VMs do not return.
  virtual void restore_server(std::size_t server) = 0;

  /// Advance-warning drain (timed migration, src/cluster/migration.hpp):
  /// the server stops accepting new placements but its residents keep
  /// running until revoke_server. Cleared by revoke_server and
  /// restore_server.
  virtual void drain_server(std::size_t server) = 0;

  [[nodiscard]] virtual bool server_active(std::size_t server) const = 0;
  [[nodiscard]] virtual std::size_t active_server_count() const = 0;
  [[nodiscard]] virtual std::size_t server_count() const = 0;
  [[nodiscard]] virtual hv::Host& host(std::size_t server) = 0;
  [[nodiscard]] virtual hv::Vm* find_vm(std::uint64_t vm_id) = 0;
  [[nodiscard]] virtual std::optional<std::size_t> server_of(
      std::uint64_t vm_id) const = 0;

  [[nodiscard]] virtual const ClusterStats& stats() const = 0;
  [[nodiscard]] virtual res::ResourceVector total_capacity() const = 0;
  [[nodiscard]] virtual res::ResourceVector total_allocated() const = 0;
  [[nodiscard]] virtual res::ResourceVector total_committed() const = 0;

  /// Global ids of the servers in partition pool `k` (pool 0 = on-demand).
  /// An unpartitioned fleet has a single pool owning every server.
  [[nodiscard]] virtual std::vector<std::size_t> pool_servers(
      std::size_t pool) const = 0;

  /// Observers: deflation events from any server; preemption events when
  /// running in Preemption mode.
  virtual void subscribe_deflation(const DeflationCallback& callback) = 0;
  virtual void subscribe_preemption(PreemptionCallback callback) = 0;
  virtual void subscribe_revocation(RevocationCallback callback) = 0;
  virtual void subscribe_migration(MigrationCallback callback) = 0;

  /// Flushes batched view/aggregate maintenance. Mutations only mark
  /// servers dirty; the simulator calls this once per simulated tick so a
  /// burst of events between ticks costs one rescan per touched server
  /// instead of one per event. Placement flushes on demand regardless, so
  /// skipping this never changes decisions — only when the work happens.
  virtual void flush_views() = 0;
};

class ClusterManager : public ClusterManagerBase {
 public:
  explicit ClusterManager(ClusterConfig config);

  PlacementResult place_vm(const hv::VmSpec& spec) override;
  bool remove_vm(std::uint64_t vm_id) override;
  RevocationOutcome revoke_server(std::size_t server) override;
  void restore_server(std::size_t server) override;
  void drain_server(std::size_t server) override;

  /// Scheduler plumbing for revocations: takes `server` offline and strips
  /// its residents *without* re-placing them — counts the revocation and
  /// returns the displaced specs in migration order (priority descending,
  /// id ascending). The caller owns their fate: `revoke_server` re-places
  /// or kills them inside this manager; the sharded scheduler routes them
  /// through the fleet-wide scheduler instead. Empty optional when the
  /// server was already inactive (idempotency).
  std::optional<std::vector<hv::VmSpec>> take_server_offline(
      std::size_t server);

  [[nodiscard]] bool server_active(std::size_t server) const override {
    return nodes_.at(server)->active;
  }
  [[nodiscard]] std::size_t active_server_count() const override;

  [[nodiscard]] std::size_t server_count() const override {
    return nodes_.size();
  }
  [[nodiscard]] hv::Host& host(std::size_t i) override {
    return nodes_.at(i)->hypervisor.host();
  }
  [[nodiscard]] core::LocalDeflationController& controller(std::size_t i) {
    return *nodes_.at(i)->controller;
  }
  [[nodiscard]] hv::Vm* find_vm(std::uint64_t vm_id) override;
  [[nodiscard]] std::optional<std::size_t> server_of(
      std::uint64_t vm_id) const override;

  [[nodiscard]] const ClusterStats& stats() const override { return stats_; }
  [[nodiscard]] res::ResourceVector total_capacity() const override;
  [[nodiscard]] res::ResourceVector total_allocated() const override;
  [[nodiscard]] res::ResourceVector total_committed() const override;

  void subscribe_deflation(const DeflationCallback& callback) override;
  void subscribe_preemption(PreemptionCallback callback) override {
    preemption_callbacks_.push_back(std::move(callback));
  }
  void subscribe_revocation(RevocationCallback callback) override {
    revocation_callbacks_.push_back(std::move(callback));
  }
  void subscribe_migration(MigrationCallback callback) override {
    migration_callbacks_.push_back(std::move(callback));
  }

  [[nodiscard]] const ClusterPartitions& partitions() const noexcept {
    return partitions_;
  }
  [[nodiscard]] std::vector<std::size_t> pool_servers(
      std::size_t pool) const override {
    return partitions_.pool(pool);
  }

  /// Refreshes the cached views of every server marked dirty since the
  /// last flush. Mutations (placements, departures, revocations) no longer
  /// rescan eagerly; the views are exact whenever a placement consults
  /// them because place_vm flushes first.
  void flush_views() override;

  /// Fleet-wide free + reclaimable capacity from the cached views (exact:
  /// flushes first). O(server_count); the sharded scheduler calls this per
  /// shard on its own flush cadence, not per placement.
  [[nodiscard]] FleetAggregate aggregate_free();

  /// Re-resolves the placement scorer from the registry by name (PolicySet
  /// re-binding). Only call at a tick barrier — between flush_views and the
  /// next place_vm — so no in-flight placement straddles two policies.
  /// Throws std::invalid_argument on unknown names (state unchanged).
  void rebind_placement(const std::string& name);

  [[nodiscard]] const PlacementScorer& placement_scorer() const noexcept {
    return *scorer_;
  }

 private:
  struct ServerNode {
    explicit ServerNode(std::uint64_t id, const ClusterConfig& config);
    hv::SimHypervisor hypervisor;
    std::unique_ptr<core::LocalDeflationController> controller;
    bool active = true;  ///< false while revoked by the transient market
    /// false while draining ahead of an announced revocation: residents
    /// keep running but no new placements land here.
    bool accepting = true;
  };

  void refresh_view(std::size_t server);
  /// Queues `server` for a view rescan at the next flush (dedups repeated
  /// mutations of the same server between placements).
  void mark_view_dirty(std::size_t server);
  /// Mirrors active && accepting into the scan table's eligibility column.
  void update_eligible(std::size_t server);
  [[nodiscard]] std::vector<std::size_t> candidate_servers(
      const hv::VmSpec& spec) const;
  PlacementResult admit(const hv::VmSpec& spec, std::size_t server,
                        double fraction);
  PlacementResult place_with_preemption(const hv::VmSpec& spec,
                                        const std::vector<std::size_t>& candidates);
  /// Smallest launch fraction the configured policy would ever leave the
  /// VM with (deflated-launch lower bound).
  [[nodiscard]] double min_launch_fraction(const hv::VmSpec& spec) const;

  ClusterConfig config_;
  std::shared_ptr<core::DeflationPolicy> policy_;
  /// Resolved placement scorer (registry-backed; see rebind_placement).
  std::shared_ptr<const PlacementScorer> scorer_;
  std::vector<std::unique_ptr<ServerNode>> nodes_;
  ClusterPartitions partitions_;
  std::unordered_map<std::uint64_t, std::size_t> vm_locations_;
  /// SoA per-server scan state: the placement loops and deflation sweeps
  /// read these dense columns instead of chasing per-node structs.
  HostScanTable scan_;
  std::unique_ptr<util::ThreadPool> owned_pool_;
  util::ThreadPool* pool_ = nullptr;  ///< scan/drain pool (nullptr = serial)
  std::vector<std::uint8_t> view_dirty_;   ///< per-server dirty flag
  std::vector<std::size_t> dirty_queue_;   ///< servers awaiting a rescan
  ClusterStats stats_;
  std::vector<PreemptionCallback> preemption_callbacks_;
  std::vector<RevocationCallback> revocation_callbacks_;
  std::vector<MigrationCallback> migration_callbacks_;
};

}  // namespace deflate::cluster
