#include "cluster/partitions.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace deflate::cluster {

ClusterPartitions::ClusterPartitions(std::size_t server_count,
                                     const std::vector<double>& pool_weights) {
  if (pool_weights.empty() || server_count < pool_weights.size()) {
    throw std::invalid_argument(
        "ClusterPartitions: need at least one server per pool");
  }
  double total = 0.0;
  for (const double w : pool_weights) total += std::max(0.0, w);
  if (total <= 0.0) {
    throw std::invalid_argument("ClusterPartitions: weights must be positive");
  }

  // Give every pool one server up front, then distribute the rest by
  // largest remainder so the split tracks the weights.
  const std::size_t pools = pool_weights.size();
  std::vector<std::size_t> counts(pools, 1);
  std::size_t assigned = pools;
  std::vector<double> fractional(pools);
  for (std::size_t k = 0; k < pools; ++k) {
    fractional[k] =
        std::max(0.0, pool_weights[k]) / total * static_cast<double>(server_count);
  }
  while (assigned < server_count) {
    std::size_t best = 0;
    double best_deficit = -1e300;
    for (std::size_t k = 0; k < pools; ++k) {
      const double deficit = fractional[k] - static_cast<double>(counts[k]);
      if (deficit > best_deficit) {
        best_deficit = deficit;
        best = k;
      }
    }
    ++counts[best];
    ++assigned;
  }

  pools_.resize(pools);
  std::size_t next_server = 0;
  for (std::size_t k = 0; k < pools; ++k) {
    for (std::size_t i = 0; i < counts[k]; ++i) {
      pools_[k].push_back(next_server++);
    }
  }
}

ClusterPartitions ClusterPartitions::single_pool(std::size_t server_count) {
  ClusterPartitions partitions(std::max<std::size_t>(1, server_count), {1.0});
  return partitions;
}

std::size_t pool_for_priority(bool deflatable, double priority,
                              std::size_t pool_count) noexcept {
  if (pool_count <= 1) return 0;
  if (!deflatable) return 0;
  // Deflatable pools 1..pool_count-1 split the (0,1] priority range evenly.
  const std::size_t deflatable_pools = pool_count - 1;
  const double clamped = std::clamp(priority, 0.0, 1.0);
  auto idx = static_cast<std::size_t>(clamped * static_cast<double>(deflatable_pools));
  idx = std::min(idx, deflatable_pools - 1);
  return 1 + idx;
}

}  // namespace deflate::cluster
