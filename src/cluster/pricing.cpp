#include "cluster/pricing.hpp"

namespace deflate::cluster {

const char* pricing_scheme_name(PricingScheme s) noexcept {
  switch (s) {
    case PricingScheme::Static: return "static";
    case PricingScheme::PriorityBased: return "priority-based";
    case PricingScheme::AllocationBased: return "allocation-based";
  }
  return "?";
}

RevenueTotals& RevenueTotals::operator+=(const RevenueTotals& rhs) noexcept {
  od_committed_core_hours += rhs.od_committed_core_hours;
  df_committed_core_hours += rhs.df_committed_core_hours;
  df_allocated_core_hours += rhs.df_allocated_core_hours;
  df_priority_committed_core_hours += rhs.df_priority_committed_core_hours;
  return *this;
}

double on_demand_revenue(const RevenueTotals& totals) noexcept {
  return kOnDemandRate * totals.od_committed_core_hours;
}

double deflatable_revenue(const RevenueTotals& totals,
                          PricingScheme scheme) noexcept {
  switch (scheme) {
    case PricingScheme::Static:
      return kStaticDeflatableRate * kOnDemandRate *
             totals.df_committed_core_hours;
    case PricingScheme::PriorityBased:
      // Price per core-hour equals the priority level (§5.2.2).
      return kOnDemandRate * totals.df_priority_committed_core_hours;
    case PricingScheme::AllocationBased:
      return kStaticDeflatableRate * kOnDemandRate *
             totals.df_allocated_core_hours;
  }
  return 0.0;
}

double revenue_increase_percent(const RevenueTotals& totals,
                                PricingScheme scheme) noexcept {
  const double base = on_demand_revenue(totals);
  if (base <= 0.0) return 0.0;
  return 100.0 * deflatable_revenue(totals, scheme) / base;
}

}  // namespace deflate::cluster
