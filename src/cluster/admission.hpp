// Admission API v2: the price-aware request/decision protocol layered in
// front of placement (ROADMAP: "price-aware admission & bidding
// policies").
//
// `ClusterManagerBase::place_vm` admits every VM the moment it arrives —
// a bare spec in, Placed/PlacedDeflated/Rejected out, with no price
// context and no "not now, retry later" outcome. This header upgrades the
// admission surface to a request/decision protocol: an `AdmissionRequest`
// carries the spec *plus* its priority class, arrival time and an
// optional deadline (maximum deferral window), and an `AdmissionDecision`
// adds two outcomes placement alone cannot express — `Deferred` (come
// back when the market is cheaper) and a reason code — along with the
// per-core-hour spot price quoted at decision time. Sharma et al.
// (arXiv:1704.08738 §5) show that deferring low-priority launches while
// the spot price is high is where much of the transient cost saving
// lives; the policies here implement exactly that:
//
//   * AdmitAll       — the legacy contract, bit for bit: every request
//                      goes straight to place_vm (`place_vm` remains the
//                      compatibility shim for spec-only callers).
//   * PriceThreshold — deflatable classes are deferred while the spot
//                      quote exceeds their per-class price ceiling; the
//                      deferral queue is drained by the simulation loop
//                      when the price drops or the deadline hits (expired
//                      deferrals become rejections). A queued request that
//                      finds the price affordable but the fleet
//                      momentarily full re-defers one price step instead
//                      of dying — revoked capacity returns recovery_hours
//                      after the price drop.
//   * BidOptimized   — PriceThreshold with ceilings supplied by the
//                      per-class bid optimizer (src/transient/bidding.hpp
//                      via `transient::CapacityPlan::class_ceilings`)
//                      instead of hand-set values.
//
// Deferral-queue invariants (the simulator relies on these):
//   * every queued entry has retry_at <= deadline, and deadline is
//     clamped by the caller so a request can never be admitted after its
//     demand window closed;
//   * drain(now) resolves every entry with retry_at <= now — to a
//     placement, a re-deferral (strictly later retry_at) or a
//     DeadlineExpired rejection — so the queue never holds an entry whose
//     retry time is in the past;
//   * entries due at the same instant resolve in (arrival, vm id) order,
//     ahead of any same-instant fresh arrival the caller processes after
//     drain — deterministic replay, independent of queue internals.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster_manager.hpp"
#include "policy/registry.hpp"
#include "sim/time.hpp"
#include "transient/spot_price.hpp"

namespace deflate::cluster {

/// Priority classes mirror the partition pools (partitions.hpp): class 0
/// is on-demand, classes 1..4 the deflatable priority levels (§7.1.2),
/// rising with priority.
inline constexpr std::size_t kAdmissionClasses = 5;

struct AdmissionRequest {
  hv::VmSpec spec;
  /// 0 = on-demand, 1..kAdmissionClasses-1 = deflatable classes.
  std::size_t priority_class = 0;
  sim::SimTime arrival;
  /// Latest admit time; unset = arrival + AdmissionConfig::max_defer_hours.
  std::optional<sim::SimTime> deadline;

  /// Builds a request from a spec, deriving the priority class the same
  /// way partitioned placement does (pool_for_priority).
  [[nodiscard]] static AdmissionRequest from_spec(const hv::VmSpec& spec,
                                                  sim::SimTime arrival);
};

struct AdmissionDecision {
  enum class Status {
    Placed,
    PlacedDeflated,  ///< admitted, launched below full size
    Deferred,        ///< not now: retry at `retry_at`
    Rejected,
  };
  enum class Reason {
    Admitted,          ///< placed (possibly deflated)
    CapacityRejected,  ///< the placement layer rejected the VM
    PriceDeferred,     ///< spot quote above the class ceiling
    CapacityDeferred,  ///< price fine, fleet momentarily full; window left
    DeadlineExpired,   ///< deferral window ran out with the price still high
  };
  Status status = Status::Rejected;
  Reason reason = Reason::CapacityRejected;
  /// Spot price per core-hour quoted at decision time: the cheapest
  /// transient market's price, or the on-demand rate when no market feed
  /// is attached.
  double quoted_price = 1.0;
  /// The underlying placement; meaningful when admitted().
  PlacementResult placement;
  /// Deferred only: when the policy wants the request re-evaluated
  /// (the next affordable price step, clamped to the deadline).
  sim::SimTime retry_at;

  [[nodiscard]] bool admitted() const noexcept {
    return status == Status::Placed || status == Status::PlacedDeflated;
  }
};

enum class AdmissionPolicyKind { AdmitAll, PriceThreshold, BidOptimized };

[[nodiscard]] const char* admission_policy_name(AdmissionPolicyKind p) noexcept;

struct AdmissionConfig {
  AdmissionPolicyKind policy = AdmissionPolicyKind::AdmitAll;
  /// Per-class spot ceilings, indexed by priority class (entry 0 is the
  /// on-demand class and is ignored — class 0 is never deferred). Classes
  /// beyond the vector use `default_ceiling`. The BidOptimized policy
  /// fills this from `transient::CapacityPlan::class_ceilings`.
  std::vector<double> class_ceilings;
  double default_ceiling = 0.35;
  /// Deferral window for requests without an explicit deadline.
  double max_defer_hours = 6.0;
};

struct AdmissionStats {
  std::uint64_t requests = 0;   ///< decide() calls on fresh requests
  std::uint64_t admitted = 0;
  std::uint64_t deferrals = 0;  ///< requests deferred at least once
  std::uint64_t retries = 0;    ///< queue re-evaluations that deferred again
  std::uint64_t expired = 0;    ///< deferrals that hit their deadline
  std::uint64_t rejected = 0;   ///< capacity rejections through the protocol
};

/// Read-only spot-price feed the price-aware policies quote from: the
/// minimum across the attached markets' traces. With no traces attached
/// (no transient market) the quote is the on-demand rate and the
/// price-aware policies degrade to AdmitAll — there is no market to wait
/// out. Trace lifetimes must cover the feed's.
class PriceFeed {
 public:
  PriceFeed() = default;
  PriceFeed(std::vector<const transient::PriceTrace*> traces,
            double on_demand_price);

  /// Cheapest market price at `now` (on-demand rate when empty).
  [[nodiscard]] double quote(sim::SimTime now) const noexcept;
  /// Finest sampling step across the attached traces (zero when empty) —
  /// the natural retry granularity for capacity deferrals.
  [[nodiscard]] sim::SimTime step() const noexcept;
  /// Earliest step-boundary in (from, until] where the quote is at or
  /// below `ceiling`; nullopt when the quote stays above it (or the feed
  /// is empty).
  [[nodiscard]] std::optional<sim::SimTime> next_at_or_below(
      double ceiling, sim::SimTime from, sim::SimTime until) const;

  [[nodiscard]] bool empty() const noexcept { return traces_.empty(); }
  [[nodiscard]] double on_demand_price() const noexcept {
    return on_demand_price_;
  }

 private:
  std::vector<const transient::PriceTrace*> traces_;
  double on_demand_price_ = 1.0;
};

/// The admission stage: policies subclass `evaluate`; the base class owns
/// the deferral queue, the stats and the placement forwarding. One
/// controller fronts one ClusterManagerBase (flat or sharded — the
/// protocol only uses the common interface).
class AdmissionController {
 public:
  AdmissionController(AdmissionConfig config, ClusterManagerBase& manager,
                      PriceFeed feed);
  virtual ~AdmissionController() = default;

  /// The protocol entry: decide on a fresh request at `now`. A Deferred
  /// decision queues the request internally; the caller schedules a wake-
  /// up at `retry_at` and calls drain().
  AdmissionDecision decide(const AdmissionRequest& request, sim::SimTime now);

  /// Earliest queued retry, if any.
  [[nodiscard]] std::optional<sim::SimTime> next_retry() const;

  struct Resolved {
    AdmissionRequest request;
    AdmissionDecision decision;
  };
  /// Re-evaluates every queued request due at or before `now`; returns
  /// the ones that resolved (admitted, capacity-rejected or expired).
  /// Re-deferred requests stay queued with a strictly later retry_at.
  std::vector<Resolved> drain(sim::SimTime now);

  [[nodiscard]] std::size_t queued() const noexcept { return queue_.size(); }
  [[nodiscard]] const AdmissionStats& stats() const noexcept { return stats_; }

  /// The manager's counters with the admission breakdown folded in:
  /// `ClusterStats::admission_deferrals` / `admission_expired` filled from
  /// this controller, expired deferrals added to `rejections` (an expired
  /// deferral is a rejection the placement layer never saw).
  [[nodiscard]] ClusterStats cluster_stats() const;

  [[nodiscard]] const AdmissionConfig& config() const noexcept {
    return config_;
  }

  /// Replaces the per-class price ceilings on the live controller. The
  /// online control plane (src/control) pushes re-optimized ceilings here
  /// at a tick barrier; already-queued requests re-evaluate against the
  /// new table on their next drain. Empty reverts every class to
  /// `default_ceiling`.
  void set_class_ceilings(std::vector<double> ceilings) noexcept {
    config_.class_ceilings = std::move(ceilings);
  }

 protected:
  /// Policy hook: admit now (use place()), defer (status Deferred with
  /// retry_at set) or reject. The base implementation admits everything.
  virtual AdmissionDecision evaluate(const AdmissionRequest& request,
                                     sim::SimTime now);

  /// Forwards to the manager's place_vm and maps the result onto the
  /// decision protocol, quoting the current price.
  AdmissionDecision place(const AdmissionRequest& request, sim::SimTime now);

  /// Price-aware policies only: place, but convert a capacity rejection
  /// into a short re-deferral while the request still has window left (a
  /// price-crossing restore lands `recovery_hours` after the price drop —
  /// a queued request must not die in that gap). The manager's counters
  /// charged by the failed attempt are recorded as retry noise and
  /// subtracted again by cluster_stats(), so only final outcomes show up
  /// in the end-to-end stats.
  AdmissionDecision place_or_requeue(const AdmissionRequest& request,
                                     sim::SimTime now);

  /// Effective ceiling of `priority_class` (config table, falling back to
  /// default_ceiling).
  [[nodiscard]] double ceiling_for(std::size_t priority_class) const noexcept;
  /// The request's effective deadline (explicit, or arrival + window).
  [[nodiscard]] sim::SimTime deadline_of(
      const AdmissionRequest& request) const noexcept;

  ClusterManagerBase& manager_;
  PriceFeed feed_;

 private:
  struct Pending {
    AdmissionRequest request;
    sim::SimTime retry_at;
  };

  AdmissionConfig config_;
  /// Kept sorted by (retry_at, arrival, vm id) — see the queue invariants
  /// in the header comment.
  std::vector<Pending> queue_;
  AdmissionStats stats_;
  /// Manager-counter increments from placement attempts whose rejection
  /// was converted into a re-deferral (retry noise; only the final
  /// attempt's outcome is end-to-end meaningful). Subtracted by
  /// cluster_stats().
  std::uint64_t spurious_rejections_ = 0;
  std::uint64_t spurious_reclamation_attempts_ = 0;
  std::uint64_t spurious_reclamation_failures_ = 0;
};

/// AdmitAll: the legacy behavior behind the new protocol — every request
/// placed immediately, decision-for-decision identical to bare place_vm.
class AdmitAllAdmission final : public AdmissionController {
 public:
  using AdmissionController::AdmissionController;
};

/// PriceThreshold: defer deflatable classes while the spot quote exceeds
/// their ceiling; admit class 0 (and everything else once the price drops
/// or with an empty feed) immediately.
class PriceThresholdAdmission : public AdmissionController {
 public:
  using AdmissionController::AdmissionController;

 protected:
  AdmissionDecision evaluate(const AdmissionRequest& request,
                             sim::SimTime now) override;
};

/// BidOptimized: PriceThreshold semantics with ceilings from the
/// per-class bid optimizer (the factory/caller fills
/// `AdmissionConfig::class_ceilings` from the capacity plan).
class BidOptimizedAdmission final : public PriceThresholdAdmission {
 public:
  using PriceThresholdAdmission::PriceThresholdAdmission;
};

[[nodiscard]] std::unique_ptr<AdmissionController> make_admission_controller(
    AdmissionConfig config, ClusterManagerBase& manager, PriceFeed feed);

/// Registry surface for admission policies — the generalization of PR 6's
/// net::AdmissionPolicyRegistry (which is now an alias of this registry;
/// plugins registered through either spelling are the same process-wide
/// set). Names: admit-all, price, bid-opt.
struct AdmissionSurface {
  static constexpr const char* kSurfaceName = "admission";
  static constexpr const char* kSurfaceDescription =
      "price-aware request/decision protocol in front of placement";
  /// Builds a controller over the caller's manager and price feed. The
  /// config's `policy` kind is advisory — the name picked the entry.
  using Factory = std::function<std::unique_ptr<AdmissionController>(
      const AdmissionConfig&, ClusterManagerBase&, PriceFeed)>;
  static void register_builtins(policy::PolicyRegistry<AdmissionSurface>&);
};

using AdmissionRegistry = policy::PolicyRegistry<AdmissionSurface>;

/// Builds a registered policy's controller by name; throws
/// std::invalid_argument naming the valid choices when unknown.
[[nodiscard]] std::unique_ptr<AdmissionController>
make_admission_controller_by_name(const std::string& name,
                                  const AdmissionConfig& config,
                                  ClusterManagerBase& manager, PriceFeed feed);

/// Reverse mapping from a *registry* name to the legacy enum (the registry
/// vocabulary admit-all/price/bid-opt differs from admission_policy_name's
/// admit-all/price-threshold/bid-optimized; both spellings resolve here).
[[nodiscard]] std::optional<AdmissionPolicyKind> admission_policy_from_name(
    const std::string& name) noexcept;

}  // namespace deflate::cluster
