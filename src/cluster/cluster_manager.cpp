#include "cluster/cluster_manager.hpp"

#include <algorithm>
#include <cmath>

#include "mechanisms/mechanism.hpp"
#include "util/logging.hpp"
#include "util/profiler.hpp"

namespace deflate::cluster {

ClusterManager::ServerNode::ServerNode(std::uint64_t id,
                                       const ClusterConfig& config)
    : hypervisor(id, config.server_capacity) {}

ClusterManager::ClusterManager(ClusterConfig config)
    : config_(std::move(config)),
      policy_(core::make_policy(config_.policy)),
      scorer_(make_placement_scorer(
          config_.placement_name.empty()
              ? placement_strategy_name(config_.placement)
              : config_.placement_name)),
      partitions_(config_.partitioned
                      ? ClusterPartitions(config_.server_count, config_.pool_weights)
                      : ClusterPartitions::single_pool(config_.server_count)) {
  std::shared_ptr<mech::DeflationMechanism> mechanism =
      mech::make_mechanism(config_.mechanism);
  if (config_.scan_pool != nullptr) {
    pool_ = config_.scan_pool;
  } else if (config_.worker_threads > 1) {
    owned_pool_ = std::make_unique<util::ThreadPool>(config_.worker_threads);
    pool_ = owned_pool_.get();
  }
  nodes_.reserve(config_.server_count);
  view_dirty_.assign(config_.server_count, 0);
  dirty_queue_.reserve(config_.server_count);
  scan_.capacity = config_.server_capacity;
  scan_.resize(config_.server_count);
  for (std::size_t i = 0; i < config_.server_count; ++i) {
    auto node = std::make_unique<ServerNode>(i, config_);
    node->controller = std::make_unique<core::LocalDeflationController>(
        node->hypervisor, policy_, mechanism);
    nodes_.push_back(std::move(node));
    refresh_view(i);
  }
}

void ClusterManager::mark_view_dirty(std::size_t server) {
  if (view_dirty_[server]) return;
  view_dirty_[server] = 1;
  dirty_queue_.push_back(server);
}

void ClusterManager::flush_views() {
  DEFLATE_PROFILE_SCOPE("cluster.flush_views");
  // Each queued server touches only its own table row (the queue is
  // deduped), so the drain parallelizes without synchronization and the
  // resulting columns are identical for any thread count.
  constexpr std::size_t kMinParallelDrain = 256;
  if (pool_ != nullptr && dirty_queue_.size() >= kMinParallelDrain) {
    util::parallel_for(pool_, dirty_queue_.size(),
                       [this](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i) {
                           const std::size_t server = dirty_queue_[i];
                           view_dirty_[server] = 0;
                           refresh_view(server);
                         }
                       });
  } else {
    for (const std::size_t server : dirty_queue_) {
      view_dirty_[server] = 0;
      refresh_view(server);
    }
  }
  dirty_queue_.clear();
}

FleetAggregate ClusterManager::aggregate_free() {
  flush_views();
  FleetAggregate aggregate;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i]->active) continue;
    aggregate.available += scan_.available_of(i);
    aggregate.deflatable += scan_.deflatable_of(i);
    ++aggregate.active_servers;
  }
  return aggregate;
}

void ClusterManager::refresh_view(std::size_t server) {
  ServerNode& node = *nodes_[server];
  const hv::Host& host = node.hypervisor.host();
  scan_.set_available(server, host.available());
  scan_.set_deflatable(server,
                       config_.mode == ReclamationMode::Deflation
                           ? node.controller->reclaimable_headroom()
                           : res::ResourceVector{});
  scan_.overcommit[server] = host.overcommit_ratio();
}

void ClusterManager::update_eligible(std::size_t server) {
  const ServerNode& node = *nodes_[server];
  scan_.eligible[server] = node.active && node.accepting ? 1 : 0;
}

std::vector<std::size_t> ClusterManager::candidate_servers(
    const hv::VmSpec& spec) const {
  const std::size_t pool = config_.partitioned
                               ? pool_for_priority(spec.deflatable, spec.priority,
                                                   partitions_.pool_count())
                               : 0;
  std::vector<std::size_t> candidates;
  for (const std::size_t idx : partitions_.pool(pool)) {
    if (nodes_[idx]->active && nodes_[idx]->accepting) candidates.push_back(idx);
  }
  return candidates;
}

double ClusterManager::min_launch_fraction(const hv::VmSpec& spec) const {
  const hv::Vm probe(spec);  // for the survival floor
  const res::ResourceVector floor = probe.allocation_floor();
  const res::ResourceVector full = spec.vector();
  double fraction = 0.0;
  for (const res::Resource r : res::all_resources) {
    if (full[r] <= 0.0) continue;
    core::VmShare share;
    share.id = spec.id;
    share.max_alloc = full[r];
    share.min_alloc = floor[r];
    share.priority = spec.priority;
    share.current = full[r];
    fraction = std::max(fraction, policy_->min_retained(share) / full[r]);
  }
  return std::min(1.0, fraction);
}

PlacementResult ClusterManager::admit(const hv::VmSpec& spec, std::size_t server,
                                      double fraction) {
  ServerNode& node = *nodes_[server];
  const res::ResourceVector demand = spec.vector() * fraction;

  PlacementResult result;
  const res::ResourceVector need =
      (demand - node.hypervisor.host().available()).clamped_nonneg();
  result.needed_reclamation = !need.is_zero();
  if (result.needed_reclamation) {
    ++stats_.reclamation_attempts;
    const core::ReclaimOutcome outcome = node.controller->make_room_for(demand);
    if (!outcome.success) {
      ++stats_.reclamation_failures;
      mark_view_dirty(server);
      result.status = PlacementResult::Status::Rejected;
      return result;
    }
  }

  hv::Vm& vm = node.hypervisor.create_vm(spec);
  if (fraction < 1.0) {
    node.controller->apply_allocation(vm, demand);
    ++stats_.deflated_launches;
    result.status = PlacementResult::Status::PlacedDeflated;
  } else {
    result.status = PlacementResult::Status::Placed;
  }
  result.host_id = server;
  result.launch_fraction = fraction;
  vm_locations_[spec.id] = server;
  ++stats_.placements;
  mark_view_dirty(server);
  return result;
}

PlacementResult ClusterManager::place_with_preemption(
    const hv::VmSpec& spec, const std::vector<std::size_t>& candidates) {
  const res::ResourceVector demand = spec.vector();
  PlacementResult result;

  // Feasibility with preemption: free capacity plus everything the
  // deflatable (low-priority) VMs currently hold.
  std::vector<HostView> views;
  views.reserve(candidates.size());
  for (const std::size_t idx : candidates) {
    HostView view = scan_.view_of(idx);
    res::ResourceVector preemptable;
    if (!spec.deflatable) {  // only on-demand VMs may evict others
      for (const hv::Vm* vm : nodes_[idx]->hypervisor.host().vms()) {
        if (vm->spec().deflatable) preemptable += vm->effective_allocation();
      }
    }
    view.deflatable = preemptable;
    view.feasible = (demand - view.available).clamped_nonneg().all_leq(
        preemptable, 1e-9);
    views.push_back(view);
  }
  const auto best = pick_host(*scorer_, demand, views);
  if (!best) {
    ++stats_.rejections;
    result.status = PlacementResult::Status::Rejected;
    return result;
  }
  const std::size_t server = candidates[*best];
  ServerNode& node = *nodes_[server];

  // Preempt lowest-priority deflatable VMs until the demand fits (§7.4.1's
  // "cloud operators preempt low-priority VMs under resource pressure").
  if (!demand.all_leq(node.hypervisor.host().available(), 1e-9)) {
    ++stats_.reclamation_attempts;
    std::vector<hv::Vm*> victims;
    for (hv::Vm* vm : node.hypervisor.host().vms()) {
      if (vm->spec().deflatable) victims.push_back(vm);
    }
    std::sort(victims.begin(), victims.end(), [](const hv::Vm* a, const hv::Vm* b) {
      if (a->spec().priority != b->spec().priority) {
        return a->spec().priority < b->spec().priority;
      }
      return a->spec().id < b->spec().id;
    });
    for (hv::Vm* victim : victims) {
      if (demand.all_leq(node.hypervisor.host().available(), 1e-9)) break;
      const hv::VmSpec victim_spec = victim->spec();
      node.hypervisor.destroy_vm(victim_spec.id);
      vm_locations_.erase(victim_spec.id);
      ++stats_.preemptions;
      for (const auto& callback : preemption_callbacks_) {
        callback(victim_spec, server);
      }
    }
    mark_view_dirty(server);
  }
  return admit(spec, server, 1.0);
}

PlacementResult ClusterManager::place_vm(const hv::VmSpec& spec) {
  DEFLATE_PROFILE_SCOPE("cluster.place");
  // Views are maintained lazily; bring the dirty ones up to date so every
  // feasibility decision below sees exact state (same decisions as the old
  // eager per-mutation rescan, minus the redundant rescans in between).
  flush_views();
  if (config_.mode == ReclamationMode::Preemption) {
    return place_with_preemption(spec, candidate_servers(spec));
  }

  // The deflation path scans the whole partition pool through the SoA
  // table (ineligible servers are masked by the eligibility column), so
  // there is no per-placement candidate vector to build.
  const std::size_t pool_index =
      config_.partitioned ? pool_for_priority(spec.deflatable, spec.priority,
                                              partitions_.pool_count())
                          : 0;
  const std::vector<std::size_t>& pool_candidates =
      partitions_.pool(pool_index);

  const res::ResourceVector full_demand = spec.vector();
  auto try_fraction = [&](double fraction) -> std::optional<std::size_t> {
    const res::ResourceVector demand = full_demand * fraction;
    // Deflation is a *pressure* response (§5): while surplus capacity
    // exists somewhere, place without deflating anyone. Only when no
    // server fits the demand in free capacity does the reclamation path
    // rank servers by their deflatable headroom.
    if (const auto server = scan_pick_host(
            *scorer_, demand, scan_, pool_candidates,
            ScanFeasibility::FreeCapacity, /*under_pressure=*/false, pool_)) {
      return server;
    }
    return scan_pick_host(*scorer_, demand, scan_, pool_candidates,
                          ScanFeasibility::WithDeflation,
                          /*under_pressure=*/true, pool_);
  };

  if (const auto server = try_fraction(1.0)) {
    return admit(spec, *server, 1.0);
  }

  // No server can host the full size. Deflatable VMs may start deflated
  // (§5.1.1); scan downwards to the policy's minimum retained fraction.
  if (spec.deflatable) {
    ++stats_.reclamation_attempts;  // full-size reclamation was infeasible
    const double min_fraction = min_launch_fraction(spec);
    for (double fraction = 1.0 - config_.deflated_launch_step;
         fraction >= min_fraction - 1e-9;
         fraction -= config_.deflated_launch_step) {
      const double f = std::max(fraction, min_fraction);
      if (const auto server = try_fraction(f)) {
        return admit(spec, *server, f);
      }
    }
    ++stats_.reclamation_failures;
  } else {
    ++stats_.reclamation_attempts;
    ++stats_.reclamation_failures;
  }
  ++stats_.rejections;
  PlacementResult result;
  result.needed_reclamation = true;
  result.status = PlacementResult::Status::Rejected;
  return result;
}

std::optional<std::vector<hv::VmSpec>> ClusterManager::take_server_offline(
    std::size_t server) {
  ServerNode& node = *nodes_.at(server);
  if (!node.active) return std::nullopt;
  node.active = false;
  node.accepting = true;  // clear any drain; the server is gone either way
  update_eligible(server);
  ++stats_.revocations;

  std::vector<hv::VmSpec> residents;
  for (const hv::Vm* vm : node.hypervisor.host().vms()) {
    residents.push_back(vm->spec());
  }
  std::sort(residents.begin(), residents.end(), displacement_before);
  for (const hv::VmSpec& spec : residents) {
    node.hypervisor.destroy_vm(spec.id);
    vm_locations_.erase(spec.id);
  }
  mark_view_dirty(server);
  return residents;
}

RevocationOutcome ClusterManager::revoke_server(std::size_t server) {
  DEFLATE_PROFILE_SCOPE("cluster.revoke");
  RevocationOutcome outcome;
  const std::optional<std::vector<hv::VmSpec>> residents =
      take_server_offline(server);
  if (!residents) return outcome;  // already revoked: idempotent
  outcome.vms_displaced = residents->size();

  for (const hv::VmSpec& spec : *residents) {
    if (config_.mode == ReclamationMode::Deflation) {
      // Re-place at full spec; the placement path deflates the VM and/or
      // its new neighbours as needed (possibly a deflated launch).
      const PlacementResult placed = place_vm(spec);
      if (placed.ok()) {
        ++outcome.vms_migrated;
        ++stats_.revocation_migrations;
        for (const auto& callback : migration_callbacks_) {
          callback(spec, server, placed.host_id, placed.launch_fraction);
        }
        continue;
      }
    }
    ++outcome.vms_killed;
    ++stats_.revocation_kills;
    // A revocation kill is a preemption wherever it happens: the stat
    // stays in lockstep with the preemption callbacks in both modes.
    ++stats_.preemptions;
    for (const auto& callback : preemption_callbacks_) callback(spec, server);
  }
  for (const auto& callback : revocation_callbacks_) callback(server, outcome);
  return outcome;
}

void ClusterManager::restore_server(std::size_t server) {
  ServerNode& node = *nodes_.at(server);
  if (node.active) {
    // A drain whose revocation never materialized (e.g. a withdrawn
    // warning): restoring a still-active server just reopens it for
    // placements, without counting a restoration.
    node.accepting = true;
    update_eligible(server);
    return;
  }
  node.active = true;
  node.accepting = true;
  update_eligible(server);
  ++stats_.restorations;
  mark_view_dirty(server);
}

void ClusterManager::drain_server(std::size_t server) {
  nodes_.at(server)->accepting = false;
  update_eligible(server);
}

std::size_t ClusterManager::active_server_count() const {
  std::size_t count = 0;
  for (const auto& node : nodes_) {
    if (node->active) ++count;
  }
  return count;
}

bool ClusterManager::remove_vm(std::uint64_t vm_id) {
  const auto it = vm_locations_.find(vm_id);
  if (it == vm_locations_.end()) return false;
  const std::size_t server = it->second;
  vm_locations_.erase(it);
  nodes_[server]->hypervisor.destroy_vm(vm_id);
  if (config_.mode == ReclamationMode::Deflation &&
      config_.reinflate_on_departure) {
    nodes_[server]->controller->redistribute_free();
  }
  mark_view_dirty(server);
  return true;
}

hv::Vm* ClusterManager::find_vm(std::uint64_t vm_id) {
  const auto it = vm_locations_.find(vm_id);
  if (it == vm_locations_.end()) return nullptr;
  return nodes_[it->second]->hypervisor.host().find_vm(vm_id);
}

std::optional<std::size_t> ClusterManager::server_of(std::uint64_t vm_id) const {
  const auto it = vm_locations_.find(vm_id);
  if (it == vm_locations_.end()) return std::nullopt;
  return it->second;
}

res::ResourceVector ClusterManager::total_capacity() const {
  return config_.server_capacity * static_cast<double>(nodes_.size());
}

res::ResourceVector ClusterManager::total_allocated() const {
  res::ResourceVector total;
  for (const auto& node : nodes_) total += node->hypervisor.host().allocated();
  return total;
}

res::ResourceVector ClusterManager::total_committed() const {
  res::ResourceVector total;
  for (const auto& node : nodes_) total += node->hypervisor.host().committed();
  return total;
}

void ClusterManager::subscribe_deflation(const DeflationCallback& callback) {
  for (auto& node : nodes_) node->controller->subscribe(callback);
}

void ClusterManager::rebind_placement(const std::string& name) {
  // make_placement_scorer throws before scorer_ is touched, so a bad name
  // leaves the current binding in place.
  scorer_ = make_placement_scorer(name);
  config_.placement_name = name;
  if (const auto strategy = placement_strategy_from_name(name)) {
    config_.placement = *strategy;
  }
}

}  // namespace deflate::cluster
