#include "cluster/cluster_manager.hpp"

#include <algorithm>
#include <cmath>

#include "mechanisms/mechanism.hpp"
#include "util/logging.hpp"

namespace deflate::cluster {

ClusterManager::ServerNode::ServerNode(std::uint64_t id,
                                       const ClusterConfig& config)
    : hypervisor(id, config.server_capacity) {}

ClusterManager::ClusterManager(ClusterConfig config)
    : config_(std::move(config)),
      policy_(core::make_policy(config_.policy)),
      partitions_(config_.partitioned
                      ? ClusterPartitions(config_.server_count, config_.pool_weights)
                      : ClusterPartitions::single_pool(config_.server_count)) {
  std::shared_ptr<mech::DeflationMechanism> mechanism =
      mech::make_mechanism(config_.mechanism);
  nodes_.reserve(config_.server_count);
  view_dirty_.assign(config_.server_count, 0);
  dirty_queue_.reserve(config_.server_count);
  for (std::size_t i = 0; i < config_.server_count; ++i) {
    auto node = std::make_unique<ServerNode>(i, config_);
    node->controller = std::make_unique<core::LocalDeflationController>(
        node->hypervisor, policy_, mechanism);
    node->view.host_id = i;
    node->view.capacity = config_.server_capacity;
    nodes_.push_back(std::move(node));
    refresh_view(i);
  }
}

void ClusterManager::mark_view_dirty(std::size_t server) {
  if (view_dirty_[server]) return;
  view_dirty_[server] = 1;
  dirty_queue_.push_back(server);
}

void ClusterManager::flush_views() {
  for (const std::size_t server : dirty_queue_) {
    view_dirty_[server] = 0;
    refresh_view(server);
  }
  dirty_queue_.clear();
}

FleetAggregate ClusterManager::aggregate_free() {
  flush_views();
  FleetAggregate aggregate;
  for (const auto& node : nodes_) {
    if (!node->active) continue;
    aggregate.available += node->view.available;
    aggregate.deflatable += node->view.deflatable;
    ++aggregate.active_servers;
  }
  return aggregate;
}

void ClusterManager::refresh_view(std::size_t server) {
  ServerNode& node = *nodes_[server];
  const hv::Host& host = node.hypervisor.host();
  node.view.available = host.available();
  node.view.deflatable = config_.mode == ReclamationMode::Deflation
                             ? node.controller->reclaimable_headroom()
                             : res::ResourceVector{};
  node.view.overcommit_ratio = host.overcommit_ratio();
}

std::vector<std::size_t> ClusterManager::candidate_servers(
    const hv::VmSpec& spec) const {
  const std::size_t pool = config_.partitioned
                               ? pool_for_priority(spec.deflatable, spec.priority,
                                                   partitions_.pool_count())
                               : 0;
  std::vector<std::size_t> candidates;
  for (const std::size_t idx : partitions_.pool(pool)) {
    if (nodes_[idx]->active && nodes_[idx]->accepting) candidates.push_back(idx);
  }
  return candidates;
}

bool ClusterManager::view_feasible(const HostView& view,
                                   const res::ResourceVector& demand) const {
  const res::ResourceVector need = (demand - view.available).clamped_nonneg();
  return need.all_leq(view.deflatable, 1e-9);
}

double ClusterManager::min_launch_fraction(const hv::VmSpec& spec) const {
  const hv::Vm probe(spec);  // for the survival floor
  const res::ResourceVector floor = probe.allocation_floor();
  const res::ResourceVector full = spec.vector();
  double fraction = 0.0;
  for (const res::Resource r : res::all_resources) {
    if (full[r] <= 0.0) continue;
    core::VmShare share;
    share.id = spec.id;
    share.max_alloc = full[r];
    share.min_alloc = floor[r];
    share.priority = spec.priority;
    share.current = full[r];
    fraction = std::max(fraction, policy_->min_retained(share) / full[r]);
  }
  return std::min(1.0, fraction);
}

PlacementResult ClusterManager::admit(const hv::VmSpec& spec, std::size_t server,
                                      double fraction) {
  ServerNode& node = *nodes_[server];
  const res::ResourceVector demand = spec.vector() * fraction;

  PlacementResult result;
  const res::ResourceVector need =
      (demand - node.hypervisor.host().available()).clamped_nonneg();
  result.needed_reclamation = !need.is_zero();
  if (result.needed_reclamation) {
    ++stats_.reclamation_attempts;
    const core::ReclaimOutcome outcome = node.controller->make_room_for(demand);
    if (!outcome.success) {
      ++stats_.reclamation_failures;
      mark_view_dirty(server);
      result.status = PlacementResult::Status::Rejected;
      return result;
    }
  }

  hv::Vm& vm = node.hypervisor.create_vm(spec);
  if (fraction < 1.0) {
    node.controller->apply_allocation(vm, demand);
    ++stats_.deflated_launches;
    result.status = PlacementResult::Status::PlacedDeflated;
  } else {
    result.status = PlacementResult::Status::Placed;
  }
  result.host_id = server;
  result.launch_fraction = fraction;
  vm_locations_[spec.id] = server;
  ++stats_.placements;
  mark_view_dirty(server);
  return result;
}

PlacementResult ClusterManager::place_with_preemption(
    const hv::VmSpec& spec, const std::vector<std::size_t>& candidates) {
  const res::ResourceVector demand = spec.vector();
  PlacementResult result;

  // Feasibility with preemption: free capacity plus everything the
  // deflatable (low-priority) VMs currently hold.
  std::vector<HostView> views;
  views.reserve(candidates.size());
  for (const std::size_t idx : candidates) {
    HostView view = nodes_[idx]->view;
    res::ResourceVector preemptable;
    if (!spec.deflatable) {  // only on-demand VMs may evict others
      for (const hv::Vm* vm : nodes_[idx]->hypervisor.host().vms()) {
        if (vm->spec().deflatable) preemptable += vm->effective_allocation();
      }
    }
    view.deflatable = preemptable;
    view.feasible = (demand - view.available).clamped_nonneg().all_leq(
        preemptable, 1e-9);
    views.push_back(view);
  }
  const auto best = pick_host(config_.placement, demand, views);
  if (!best) {
    ++stats_.rejections;
    result.status = PlacementResult::Status::Rejected;
    return result;
  }
  const std::size_t server = candidates[*best];
  ServerNode& node = *nodes_[server];

  // Preempt lowest-priority deflatable VMs until the demand fits (§7.4.1's
  // "cloud operators preempt low-priority VMs under resource pressure").
  if (!demand.all_leq(node.hypervisor.host().available(), 1e-9)) {
    ++stats_.reclamation_attempts;
    std::vector<hv::Vm*> victims;
    for (hv::Vm* vm : node.hypervisor.host().vms()) {
      if (vm->spec().deflatable) victims.push_back(vm);
    }
    std::sort(victims.begin(), victims.end(), [](const hv::Vm* a, const hv::Vm* b) {
      if (a->spec().priority != b->spec().priority) {
        return a->spec().priority < b->spec().priority;
      }
      return a->spec().id < b->spec().id;
    });
    for (hv::Vm* victim : victims) {
      if (demand.all_leq(node.hypervisor.host().available(), 1e-9)) break;
      const hv::VmSpec victim_spec = victim->spec();
      node.hypervisor.destroy_vm(victim_spec.id);
      vm_locations_.erase(victim_spec.id);
      ++stats_.preemptions;
      for (const auto& callback : preemption_callbacks_) {
        callback(victim_spec, server);
      }
    }
    mark_view_dirty(server);
  }
  return admit(spec, server, 1.0);
}

PlacementResult ClusterManager::place_vm(const hv::VmSpec& spec) {
  // Views are maintained lazily; bring the dirty ones up to date so every
  // feasibility decision below sees exact state (same decisions as the old
  // eager per-mutation rescan, minus the redundant rescans in between).
  flush_views();
  const std::vector<std::size_t> candidates = candidate_servers(spec);
  if (config_.mode == ReclamationMode::Preemption) {
    return place_with_preemption(spec, candidates);
  }

  const res::ResourceVector full_demand = spec.vector();
  auto try_fraction = [&](double fraction) -> std::optional<std::size_t> {
    const res::ResourceVector demand = full_demand * fraction;
    std::vector<HostView> views;
    views.reserve(candidates.size());
    for (const std::size_t idx : candidates) {
      views.push_back(nodes_[idx]->view);
    }
    // Deflation is a *pressure* response (§5): while surplus capacity
    // exists somewhere, place without deflating anyone. Only when no
    // server fits the demand in free capacity does the reclamation path
    // rank servers by their deflatable headroom.
    for (auto& view : views) {
      view.feasible = demand.all_leq(view.available, 1e-9);
    }
    if (const auto best = pick_host(config_.placement, demand, views)) {
      return candidates[*best];
    }
    for (auto& view : views) {
      view.feasible = view_feasible(view, demand);
    }
    if (const auto best = pick_host(config_.placement, demand, views,
                                    /*under_pressure=*/true)) {
      return candidates[*best];
    }
    return std::nullopt;
  };

  if (const auto server = try_fraction(1.0)) {
    return admit(spec, *server, 1.0);
  }

  // No server can host the full size. Deflatable VMs may start deflated
  // (§5.1.1); scan downwards to the policy's minimum retained fraction.
  if (spec.deflatable) {
    ++stats_.reclamation_attempts;  // full-size reclamation was infeasible
    const double min_fraction = min_launch_fraction(spec);
    for (double fraction = 1.0 - config_.deflated_launch_step;
         fraction >= min_fraction - 1e-9;
         fraction -= config_.deflated_launch_step) {
      const double f = std::max(fraction, min_fraction);
      if (const auto server = try_fraction(f)) {
        return admit(spec, *server, f);
      }
    }
    ++stats_.reclamation_failures;
  } else {
    ++stats_.reclamation_attempts;
    ++stats_.reclamation_failures;
  }
  ++stats_.rejections;
  PlacementResult result;
  result.needed_reclamation = true;
  result.status = PlacementResult::Status::Rejected;
  return result;
}

std::optional<std::vector<hv::VmSpec>> ClusterManager::take_server_offline(
    std::size_t server) {
  ServerNode& node = *nodes_.at(server);
  if (!node.active) return std::nullopt;
  node.active = false;
  node.accepting = true;  // clear any drain; the server is gone either way
  ++stats_.revocations;

  std::vector<hv::VmSpec> residents;
  for (const hv::Vm* vm : node.hypervisor.host().vms()) {
    residents.push_back(vm->spec());
  }
  std::sort(residents.begin(), residents.end(), displacement_before);
  for (const hv::VmSpec& spec : residents) {
    node.hypervisor.destroy_vm(spec.id);
    vm_locations_.erase(spec.id);
  }
  mark_view_dirty(server);
  return residents;
}

RevocationOutcome ClusterManager::revoke_server(std::size_t server) {
  RevocationOutcome outcome;
  const std::optional<std::vector<hv::VmSpec>> residents =
      take_server_offline(server);
  if (!residents) return outcome;  // already revoked: idempotent
  outcome.vms_displaced = residents->size();

  for (const hv::VmSpec& spec : *residents) {
    if (config_.mode == ReclamationMode::Deflation) {
      // Re-place at full spec; the placement path deflates the VM and/or
      // its new neighbours as needed (possibly a deflated launch).
      const PlacementResult placed = place_vm(spec);
      if (placed.ok()) {
        ++outcome.vms_migrated;
        ++stats_.revocation_migrations;
        for (const auto& callback : migration_callbacks_) {
          callback(spec, server, placed.host_id, placed.launch_fraction);
        }
        continue;
      }
    }
    ++outcome.vms_killed;
    ++stats_.revocation_kills;
    // A revocation kill is a preemption wherever it happens: the stat
    // stays in lockstep with the preemption callbacks in both modes.
    ++stats_.preemptions;
    for (const auto& callback : preemption_callbacks_) callback(spec, server);
  }
  for (const auto& callback : revocation_callbacks_) callback(server, outcome);
  return outcome;
}

void ClusterManager::restore_server(std::size_t server) {
  ServerNode& node = *nodes_.at(server);
  if (node.active) {
    // A drain whose revocation never materialized (e.g. a withdrawn
    // warning): restoring a still-active server just reopens it for
    // placements, without counting a restoration.
    node.accepting = true;
    return;
  }
  node.active = true;
  node.accepting = true;
  ++stats_.restorations;
  mark_view_dirty(server);
}

void ClusterManager::drain_server(std::size_t server) {
  nodes_.at(server)->accepting = false;
}

std::size_t ClusterManager::active_server_count() const {
  std::size_t count = 0;
  for (const auto& node : nodes_) {
    if (node->active) ++count;
  }
  return count;
}

bool ClusterManager::remove_vm(std::uint64_t vm_id) {
  const auto it = vm_locations_.find(vm_id);
  if (it == vm_locations_.end()) return false;
  const std::size_t server = it->second;
  vm_locations_.erase(it);
  nodes_[server]->hypervisor.destroy_vm(vm_id);
  if (config_.mode == ReclamationMode::Deflation &&
      config_.reinflate_on_departure) {
    nodes_[server]->controller->redistribute_free();
  }
  mark_view_dirty(server);
  return true;
}

hv::Vm* ClusterManager::find_vm(std::uint64_t vm_id) {
  const auto it = vm_locations_.find(vm_id);
  if (it == vm_locations_.end()) return nullptr;
  return nodes_[it->second]->hypervisor.host().find_vm(vm_id);
}

std::optional<std::size_t> ClusterManager::server_of(std::uint64_t vm_id) const {
  const auto it = vm_locations_.find(vm_id);
  if (it == vm_locations_.end()) return std::nullopt;
  return it->second;
}

res::ResourceVector ClusterManager::total_capacity() const {
  return config_.server_capacity * static_cast<double>(nodes_.size());
}

res::ResourceVector ClusterManager::total_allocated() const {
  res::ResourceVector total;
  for (const auto& node : nodes_) total += node->hypervisor.host().allocated();
  return total;
}

res::ResourceVector ClusterManager::total_committed() const {
  res::ResourceVector total;
  for (const auto& node : nodes_) total += node->hypervisor.host().committed();
  return total;
}

void ClusterManager::subscribe_deflation(const DeflationCallback& callback) {
  for (auto& node : nodes_) node->controller->subscribe(callback);
}

}  // namespace deflate::cluster
