#include "cluster/admission.hpp"

#include <algorithm>
#include <stdexcept>

namespace deflate::cluster {

namespace {

/// Deferral-queue ordering: (retry_at, arrival, vm id) — due-first, and
/// older requests ahead of newer ones at the same instant.
struct PendingBefore {
  template <typename Pending>
  bool operator()(const Pending& a, const Pending& b) const noexcept {
    if (a.retry_at != b.retry_at) return a.retry_at < b.retry_at;
    if (a.request.arrival != b.request.arrival) {
      return a.request.arrival < b.request.arrival;
    }
    return a.request.spec.id < b.request.spec.id;
  }
};

}  // namespace

const char* admission_policy_name(AdmissionPolicyKind p) noexcept {
  switch (p) {
    case AdmissionPolicyKind::AdmitAll: return "admit-all";
    case AdmissionPolicyKind::PriceThreshold: return "price-threshold";
    case AdmissionPolicyKind::BidOptimized: return "bid-optimized";
  }
  return "?";
}

AdmissionRequest AdmissionRequest::from_spec(const hv::VmSpec& spec,
                                            sim::SimTime arrival) {
  AdmissionRequest request;
  request.spec = spec;
  request.priority_class =
      pool_for_priority(spec.deflatable, spec.priority, kAdmissionClasses);
  request.arrival = arrival;
  return request;
}

// --- PriceFeed --------------------------------------------------------------

PriceFeed::PriceFeed(std::vector<const transient::PriceTrace*> traces,
                     double on_demand_price)
    : on_demand_price_(on_demand_price) {
  for (const transient::PriceTrace* trace : traces) {
    if (trace != nullptr && !trace->empty()) traces_.push_back(trace);
  }
}

sim::SimTime PriceFeed::step() const noexcept {
  if (traces_.empty()) return sim::SimTime{};
  sim::SimTime step = traces_.front()->step();
  for (const transient::PriceTrace* trace : traces_) {
    step = std::min(step, trace->step());
  }
  return step;
}

double PriceFeed::quote(sim::SimTime now) const noexcept {
  if (traces_.empty()) return on_demand_price_;
  double best = traces_.front()->at(now);
  for (std::size_t i = 1; i < traces_.size(); ++i) {
    best = std::min(best, traces_[i]->at(now));
  }
  return best;
}

std::optional<sim::SimTime> PriceFeed::next_at_or_below(
    double ceiling, sim::SimTime from, sim::SimTime until) const {
  if (traces_.empty() || until <= from) return std::nullopt;
  // All traces share one sampling grid in practice; step() is the finest,
  // which stays exact when they do not.
  const sim::SimTime step = this->step();
  if (step.micros() <= 0) return std::nullopt;
  // First step boundary strictly after `from`.
  const std::int64_t k = from.micros() / step.micros() + 1;
  for (sim::SimTime t = sim::SimTime::from_micros(k * step.micros());
       t <= until; t += step) {
    if (quote(t) <= ceiling) return t;
  }
  return std::nullopt;
}

// --- AdmissionController ----------------------------------------------------

AdmissionController::AdmissionController(AdmissionConfig config,
                                         ClusterManagerBase& manager,
                                         PriceFeed feed)
    : manager_(manager), feed_(std::move(feed)), config_(std::move(config)) {}

double AdmissionController::ceiling_for(
    std::size_t priority_class) const noexcept {
  if (priority_class < config_.class_ceilings.size()) {
    return config_.class_ceilings[priority_class];
  }
  return config_.default_ceiling;
}

sim::SimTime AdmissionController::deadline_of(
    const AdmissionRequest& request) const noexcept {
  if (request.deadline) return *request.deadline;
  return request.arrival +
         sim::SimTime::from_hours(std::max(0.0, config_.max_defer_hours));
}

AdmissionDecision AdmissionController::place(const AdmissionRequest& request,
                                             sim::SimTime now) {
  const PlacementResult placed = manager_.place_vm(request.spec);
  AdmissionDecision decision;
  decision.quoted_price = feed_.quote(now);
  decision.placement = placed;
  switch (placed.status) {
    case PlacementResult::Status::Placed:
      decision.status = AdmissionDecision::Status::Placed;
      decision.reason = AdmissionDecision::Reason::Admitted;
      break;
    case PlacementResult::Status::PlacedDeflated:
      decision.status = AdmissionDecision::Status::PlacedDeflated;
      decision.reason = AdmissionDecision::Reason::Admitted;
      break;
    case PlacementResult::Status::Rejected:
      decision.status = AdmissionDecision::Status::Rejected;
      decision.reason = AdmissionDecision::Reason::CapacityRejected;
      break;
  }
  return decision;
}

AdmissionDecision AdmissionController::place_or_requeue(
    const AdmissionRequest& request, sim::SimTime now) {
  const ClusterStats before = manager_.stats();
  AdmissionDecision decision = place(request, now);
  const sim::SimTime deadline = deadline_of(request);
  const sim::SimTime step = feed_.step();
  if (decision.status != AdmissionDecision::Status::Rejected ||
      now >= deadline || step.micros() <= 0) {
    return decision;
  }
  // The failed attempt charged the manager a rejection (and possibly
  // reclamation counters); the protocol is retrying, so book the charges
  // as noise.
  const ClusterStats after = manager_.stats();
  spurious_rejections_ += after.rejections - before.rejections;
  spurious_reclamation_attempts_ +=
      after.reclamation_attempts - before.reclamation_attempts;
  spurious_reclamation_failures_ +=
      after.reclamation_failures - before.reclamation_failures;
  decision.status = AdmissionDecision::Status::Deferred;
  decision.reason = AdmissionDecision::Reason::CapacityDeferred;
  decision.retry_at = std::min(now + step, deadline);
  return decision;
}

AdmissionDecision AdmissionController::evaluate(const AdmissionRequest& request,
                                                sim::SimTime now) {
  return place(request, now);
}

AdmissionDecision AdmissionController::decide(const AdmissionRequest& request,
                                              sim::SimTime now) {
  ++stats_.requests;
  AdmissionDecision decision = evaluate(request, now);
  switch (decision.status) {
    case AdmissionDecision::Status::Placed:
    case AdmissionDecision::Status::PlacedDeflated:
      ++stats_.admitted;
      break;
    case AdmissionDecision::Status::Rejected:
      if (decision.reason == AdmissionDecision::Reason::DeadlineExpired) {
        ++stats_.expired;
      } else {
        ++stats_.rejected;
      }
      break;
    case AdmissionDecision::Status::Deferred: {
      ++stats_.deferrals;
      const Pending pending{request, decision.retry_at};
      queue_.insert(std::upper_bound(queue_.begin(), queue_.end(), pending,
                                     PendingBefore{}),
                    pending);
      break;
    }
  }
  return decision;
}

std::optional<sim::SimTime> AdmissionController::next_retry() const {
  if (queue_.empty()) return std::nullopt;
  return queue_.front().retry_at;
}

std::vector<AdmissionController::Resolved> AdmissionController::drain(
    sim::SimTime now) {
  std::vector<Resolved> resolved;
  while (!queue_.empty() && queue_.front().retry_at <= now) {
    const Pending pending = queue_.front();
    queue_.erase(queue_.begin());
    AdmissionDecision decision = evaluate(pending.request, now);
    switch (decision.status) {
      case AdmissionDecision::Status::Placed:
      case AdmissionDecision::Status::PlacedDeflated:
        ++stats_.admitted;
        resolved.push_back({pending.request, decision});
        break;
      case AdmissionDecision::Status::Rejected:
        if (decision.reason == AdmissionDecision::Reason::DeadlineExpired) {
          ++stats_.expired;
        } else {
          ++stats_.rejected;
        }
        resolved.push_back({pending.request, decision});
        break;
      case AdmissionDecision::Status::Deferred: {
        // Queue invariant: a re-deferral must move strictly forward, or
        // drain would spin on the same entry.
        ++stats_.retries;
        Pending requeued = pending;
        requeued.retry_at = std::max(
            decision.retry_at, now + sim::SimTime::from_micros(1));
        queue_.insert(std::upper_bound(queue_.begin(), queue_.end(), requeued,
                                       PendingBefore{}),
                      requeued);
        break;
      }
    }
  }
  return resolved;
}

ClusterStats AdmissionController::cluster_stats() const {
  ClusterStats stats = manager_.stats();
  stats.admission_deferrals = stats_.deferrals;
  stats.admission_expired = stats_.expired;
  stats.rejections += stats_.expired;
  stats.rejections -= spurious_rejections_;
  stats.reclamation_attempts -= spurious_reclamation_attempts_;
  stats.reclamation_failures -= spurious_reclamation_failures_;
  return stats;
}

// --- PriceThresholdAdmission ------------------------------------------------

AdmissionDecision PriceThresholdAdmission::evaluate(
    const AdmissionRequest& request, sim::SimTime now) {
  // Class 0 (on-demand) is never price-gated, and with no market feed
  // there is nothing to wait out: admit immediately.
  if (request.priority_class == 0 || !request.spec.deflatable ||
      feed_.empty()) {
    return place(request, now);
  }
  const double ceiling = ceiling_for(request.priority_class);
  const double quote = feed_.quote(now);
  if (quote <= ceiling) return place_or_requeue(request, now);

  const sim::SimTime deadline = deadline_of(request);
  if (now >= deadline) {
    AdmissionDecision decision;
    decision.status = AdmissionDecision::Status::Rejected;
    decision.reason = AdmissionDecision::Reason::DeadlineExpired;
    decision.quoted_price = quote;
    return decision;
  }
  const std::optional<sim::SimTime> next =
      feed_.next_at_or_below(ceiling, now, deadline);
  if (!next) {
    // The quote stays above the ceiling for the request's whole remaining
    // window, so waiting guarantees it never starts. When the window is
    // cut short by the VM's own lifetime, serving its head now beats
    // serving nothing — admit. When an operator deadline is the binding
    // constraint, honor it: the request waits it out and expires.
    const sim::SimTime full_window =
        request.arrival +
        sim::SimTime::from_hours(std::max(0.0, config().max_defer_hours));
    if (deadline < full_window) return place_or_requeue(request, now);
    AdmissionDecision decision;
    decision.status = AdmissionDecision::Status::Deferred;
    decision.reason = AdmissionDecision::Reason::PriceDeferred;
    decision.quoted_price = quote;
    decision.retry_at = deadline;
    return decision;
  }
  AdmissionDecision decision;
  decision.status = AdmissionDecision::Status::Deferred;
  decision.reason = AdmissionDecision::Reason::PriceDeferred;
  decision.quoted_price = quote;
  decision.retry_at = *next;  // the next affordable price step
  return decision;
}

// --- factory ----------------------------------------------------------------

std::unique_ptr<AdmissionController> make_admission_controller(
    AdmissionConfig config, ClusterManagerBase& manager, PriceFeed feed) {
  switch (config.policy) {
    case AdmissionPolicyKind::AdmitAll:
      return std::make_unique<AdmitAllAdmission>(std::move(config), manager,
                                                 std::move(feed));
    case AdmissionPolicyKind::PriceThreshold:
      return std::make_unique<PriceThresholdAdmission>(std::move(config),
                                                       manager,
                                                       std::move(feed));
    case AdmissionPolicyKind::BidOptimized:
      return std::make_unique<BidOptimizedAdmission>(std::move(config),
                                                     manager,
                                                     std::move(feed));
  }
  return std::make_unique<AdmitAllAdmission>(std::move(config), manager,
                                             std::move(feed));
}

// --- registry surface -------------------------------------------------------

namespace {

/// Builtin factory: forces the entry's kind onto the caller's config and
/// dispatches through make_admission_controller — the name picked the
/// policy, whatever kind the config carried.
AdmissionSurface::Factory builtin(AdmissionPolicyKind kind) {
  return [kind](const AdmissionConfig& config, ClusterManagerBase& manager,
                PriceFeed feed) {
    AdmissionConfig selected = config;
    selected.policy = kind;
    return make_admission_controller(std::move(selected), manager,
                                     std::move(feed));
  };
}

}  // namespace

void AdmissionSurface::register_builtins(
    policy::PolicyRegistry<AdmissionSurface>& registry) {
  registry.add("admit-all", "legacy contract: every request placed on arrival",
               builtin(AdmissionPolicyKind::AdmitAll));
  registry.add(
      "price",
      "defer deflatable classes while the spot quote exceeds the ceiling",
      builtin(AdmissionPolicyKind::PriceThreshold), {"price-threshold"},
      {{"default_ceiling", "spot ceiling for classes without one", 0.35},
       {"max_defer_hours", "deferral window without a deadline", 6.0}});
  registry.add("bid-opt",
               "price thresholds supplied by the per-class bid optimizer",
               builtin(AdmissionPolicyKind::BidOptimized), {"bid-optimized"});
}

std::unique_ptr<AdmissionController> make_admission_controller_by_name(
    const std::string& name, const AdmissionConfig& config,
    ClusterManagerBase& manager, PriceFeed feed) {
  const auto* entry = AdmissionRegistry::instance().find(name);
  if (entry == nullptr) {
    throw std::invalid_argument(
        "unknown admission policy '" + name + "' (expected " +
        policy::joined_policy_names<AdmissionSurface>() + ")");
  }
  return entry->make(config, manager, std::move(feed));
}

std::optional<AdmissionPolicyKind> admission_policy_from_name(
    const std::string& name) noexcept {
  if (name == "admit-all") return AdmissionPolicyKind::AdmitAll;
  if (name == "price" || name == "price-threshold") {
    return AdmissionPolicyKind::PriceThreshold;
  }
  if (name == "bid-opt" || name == "bid-optimized") {
    return AdmissionPolicyKind::BidOptimized;
  }
  return std::nullopt;
}

}  // namespace deflate::cluster
