// Pricing schemes for deflatable VMs (§5.2.2, evaluated in Fig. 22):
//   * Static: fixed discount — deflatable VMs pay 0.2x the on-demand price
//     for their *committed* size, regardless of deflation.
//   * Priority-based: price equals the VM's priority level pi (priority-0.5
//     VMs pay 0.5x on-demand), again on committed size.
//   * Allocation-based: VMs pay the deflatable base rate weighted by the
//     resources *actually allocated* over time (half price at 50%
//     allocation).
// Prices are normalized to an on-demand rate of 1.0 per core-hour; CPU is
// the billing dimension (cloud VM prices scale with core count).
#pragma once

#include <string>

namespace deflate::cluster {

enum class PricingScheme { Static, PriorityBased, AllocationBased };

[[nodiscard]] const char* pricing_scheme_name(PricingScheme s) noexcept;

/// §5.2.2: "60-80% discount ... similar to current transient servers";
/// the paper's Fig. 22 uses 0.2x on-demand.
inline constexpr double kStaticDeflatableRate = 0.2;
inline constexpr double kOnDemandRate = 1.0;

/// Usage integrals accumulated by the cluster simulator.
struct RevenueTotals {
  double od_committed_core_hours = 0.0;  ///< on-demand VMs (never deflated)
  double df_committed_core_hours = 0.0;  ///< deflatable VMs, spec size
  double df_allocated_core_hours = 0.0;  ///< deflatable VMs, actual allocation
  /// sum over deflatable VMs of priority * committed core-hours.
  double df_priority_committed_core_hours = 0.0;

  RevenueTotals& operator+=(const RevenueTotals& rhs) noexcept;
};

/// Revenue earned from on-demand VMs.
[[nodiscard]] double on_demand_revenue(const RevenueTotals& totals) noexcept;

/// Revenue earned from deflatable VMs under the given scheme.
[[nodiscard]] double deflatable_revenue(const RevenueTotals& totals,
                                        PricingScheme scheme) noexcept;

/// Fig. 22's y-axis: the extra revenue deflatable VMs bring, relative to
/// the on-demand revenue of the same cluster, in percent.
[[nodiscard]] double revenue_increase_percent(const RevenueTotals& totals,
                                              PricingScheme scheme) noexcept;

}  // namespace deflate::cluster
