#include "cluster/sharded_manager.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "util/profiler.hpp"

namespace deflate::cluster {

const char* shard_selection_name(ShardSelectionPolicy p) noexcept {
  switch (p) {
    case ShardSelectionPolicy::PowerOfTwoChoices: return "power-of-two";
    case ShardSelectionPolicy::LeastLoaded: return "least-loaded";
    case ShardSelectionPolicy::RoundRobin: return "round-robin";
  }
  return "?";
}

void ShardSelector::push_if_fits(const ShardScores& scores, std::size_t shard,
                                 std::vector<std::size_t>& picks) {
  if (scores.score(shard) >= 1.0 &&
      std::find(picks.begin(), picks.end(), shard) == picks.end()) {
    picks.push_back(shard);
  }
}

// --- builtin shard selectors ------------------------------------------------

namespace {

/// Two uniform draws from the routing stream (second excludes the first),
/// best of the two by cached score first. Draw order and a_first's >= tie
/// preference are pinned by the golden/parity suites.
class PowerOfTwoSelector final : public ShardSelector {
 public:
  void route(const ShardScores& scores, util::Rng& rng,
             std::vector<std::size_t>& picks) override {
    const std::size_t n = scores.count();
    if (n < 2) return;
    const auto a = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    auto b = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 2));
    if (b >= a) ++b;  // distinct second choice, uniform over the rest
    const bool a_first = scores.score(a) >= scores.score(b);
    push_if_fits(scores, a_first ? a : b, picks);
    push_if_fits(scores, a_first ? b : a, picks);
  }
};

/// Proposes nothing: the score-sorted fallback tail IS least-loaded order.
class LeastLoadedSelector final : public ShardSelector {
 public:
  void route(const ShardScores&, util::Rng&,
             std::vector<std::size_t>&) override {}
};

/// Rotates through shards regardless of load; the cursor lives in the
/// selector, so re-binding the policy resets the rotation.
class RoundRobinSelector final : public ShardSelector {
 public:
  void route(const ShardScores& scores, util::Rng&,
             std::vector<std::size_t>& picks) override {
    const std::size_t n = scores.count();
    if (n == 0) return;
    const std::size_t start = next_++ % n;
    for (std::size_t i = 0; i < n; ++i) {
      push_if_fits(scores, (start + i) % n, picks);
    }
  }

 private:
  std::size_t next_ = 0;
};

}  // namespace

void ShardSelectionSurface::register_builtins(
    policy::PolicyRegistry<ShardSelectionSurface>& registry) {
  registry.add("p2c",
               "power-of-two-choices: two random shards, best cached score "
               "wins",
               [] { return std::make_unique<PowerOfTwoSelector>(); },
               {"power-of-two"});
  registry.add("least-loaded", "best cached aggregate score, O(shards)",
               [] { return std::make_unique<LeastLoadedSelector>(); });
  registry.add("round-robin", "rotate through shards regardless of load",
               [] { return std::make_unique<RoundRobinSelector>(); });
}

std::unique_ptr<ShardSelector> make_shard_selector(const std::string& name) {
  const auto* entry = ShardSelectionRegistry::instance().find(name);
  if (entry == nullptr) {
    throw std::invalid_argument(
        "unknown shard-selection policy '" + name + "' (expected " +
        policy::joined_policy_names<ShardSelectionSurface>() + ")");
  }
  return entry->make();
}

std::optional<ShardSelectionPolicy> shard_selection_from_name(
    const std::string& name) noexcept {
  if (name == "p2c" || name == "power-of-two") {
    return ShardSelectionPolicy::PowerOfTwoChoices;
  }
  if (name == "least-loaded") return ShardSelectionPolicy::LeastLoaded;
  if (name == "round-robin") return ShardSelectionPolicy::RoundRobin;
  return std::nullopt;
}

namespace {

/// Largest shard count the fleet supports: every shard needs at least one
/// server, and a partitioned shard needs one server per pool.
std::size_t clamp_shard_count(const ShardedClusterConfig& config) {
  const std::size_t servers = std::max<std::size_t>(1, config.cluster.server_count);
  const std::size_t min_servers_per_shard =
      config.cluster.partitioned
          ? std::max<std::size_t>(1, config.cluster.pool_weights.size())
          : 1;
  const std::size_t max_shards = std::max<std::size_t>(1, servers / min_servers_per_shard);
  return std::clamp<std::size_t>(config.shard_count, 1, max_shards);
}

}  // namespace

std::unique_ptr<ClusterManagerBase> make_cluster_manager(
    ShardedClusterConfig config) {
  if (config.shard_count <= 1) {
    // The degenerate flat fleet still gets the worker pool: its placement
    // scans chunk across the same thread budget.
    config.cluster.worker_threads = config.worker_threads;
    return std::make_unique<ClusterManager>(std::move(config.cluster));
  }
  return std::make_unique<ShardedClusterManager>(std::move(config));
}

ShardedClusterManager::ShardedClusterManager(ShardedClusterConfig config)
    : config_(std::move(config)),
      total_servers_(config_.cluster.server_count),
      routing_rng_(util::Rng::keyed(config_.routing_seed, /*stream=*/0x5a4d)),
      selector_(make_shard_selector(
          config_.selection_name.empty()
              ? shard_selection_name(config_.selection)
              : config_.selection_name)) {
  const std::size_t shard_count = clamp_shard_count(config_);
  if (config_.worker_threads > 1) {
    pool_ = std::make_unique<util::ThreadPool>(config_.worker_threads);
  }
  shards_.resize(shard_count);
  dirty_queue_.reserve(shard_count);

  // Near-even contiguous split: the first (total % shards) shards get one
  // extra server, so global ids map to (shard, local) by simple offsets.
  const std::size_t base = total_servers_ / shard_count;
  const std::size_t extra = total_servers_ % shard_count;
  std::size_t next_first = 0;
  for (std::size_t s = 0; s < shard_count; ++s) {
    Shard& shard = shards_[s];
    shard.first = next_first;
    shard.size = base + (s < extra ? 1 : 0);
    next_first += shard.size;

    ClusterConfig shard_config = config_.cluster;
    shard_config.server_count = shard.size;
    // All shards share one pool (a pool per shard would oversubscribe the
    // machine shard_count-fold).
    shard_config.worker_threads = 0;
    shard_config.scan_pool = pool_.get();
    shard.manager = std::make_unique<ClusterManager>(std::move(shard_config));
    refresh_shard(shard);

    // Forward shard callbacks with local ids translated to global ones;
    // the preemption hook also retires killed VMs from the routing map
    // (covers preemption-mode evictions and revocation kills alike).
    const std::size_t first = shard.first;
    shard.manager->subscribe_preemption(
        [this, first](const hv::VmSpec& spec, std::uint64_t host) {
          vm_shard_.erase(spec.id);
          for (const auto& callback : preemption_callbacks_) {
            callback(spec, first + host);
          }
        });
    shard.manager->subscribe_revocation(
        [this, first](std::uint64_t host, const RevocationOutcome& outcome) {
          for (const auto& callback : revocation_callbacks_) {
            callback(first + host, outcome);
          }
        });
    shard.manager->subscribe_migration(
        [this, first](const hv::VmSpec& spec, std::uint64_t from,
                      std::uint64_t to, double fraction) {
          for (const auto& callback : migration_callbacks_) {
            callback(spec, first + from, first + to, fraction);
          }
        });
  }
}

void ShardedClusterManager::mark_dirty(std::size_t s) {
  std::scoped_lock lock(dirty_mutex_);
  if (shards_[s].dirty) return;
  shards_[s].dirty = true;
  dirty_queue_.push_back(s);
}

void ShardedClusterManager::refresh_shard(Shard& shard) {
  const FleetAggregate aggregate = shard.manager->aggregate_free();
  shard.free = aggregate.available + aggregate.deflatable;
}

void ShardedClusterManager::flush_views() {
  DEFLATE_PROFILE_SCOPE("sharded.flush_views");
  // Drain to a fixpoint: snapshot the dirty set under the lock, clear the
  // flags, refresh the snapshot concurrently, then re-check — a shard
  // dirtied during the pass (its flag re-set by mark_dirty) lands in the
  // next pass instead of being silently dropped with the cleared queue.
  std::vector<std::size_t> snapshot;
  for (;;) {
    {
      std::scoped_lock lock(dirty_mutex_);
      if (dirty_queue_.empty()) return;
      snapshot.swap(dirty_queue_);
      dirty_queue_.clear();
      for (const std::size_t s : snapshot) shards_[s].dirty = false;
    }
    // Each refresh touches only its own shard's state, so the pass
    // parallelizes cleanly and the aggregates are thread-count
    // independent.
    util::parallel_for(pool_.get(), snapshot.size(),
                       [this, &snapshot](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i) {
                           refresh_shard(shards_[snapshot[i]]);
                         }
                       });
    snapshot.clear();
  }
}

double ShardedClusterManager::shard_score(const Shard& shard,
                                          const res::ResourceVector& demand) {
  double score = std::numeric_limits<double>::infinity();
  bool any_dimension = false;
  for (const res::Resource r : res::all_resources) {
    if (demand[r] <= 0.0) continue;
    any_dimension = true;
    score = std::min(score, shard.free[r] / demand[r]);
  }
  return any_dimension ? score : shard.free.norm();
}

namespace {

/// Zero-copy ShardScores adapter over the scheduler's cached aggregates;
/// lives on route_picks' stack for one placement.
class CachedShardScores final : public ShardScores {
 public:
  using ScoreFn = double (*)(const void*, std::size_t,
                             const res::ResourceVector&);
  CachedShardScores(const void* shards, std::size_t count,
                    const res::ResourceVector& demand, ScoreFn fn) noexcept
      : shards_(shards), count_(count), demand_(demand), fn_(fn) {}
  [[nodiscard]] std::size_t count() const noexcept override { return count_; }
  [[nodiscard]] double score(std::size_t shard) const override {
    return fn_(shards_, shard, demand_);
  }

 private:
  const void* shards_;
  std::size_t count_;
  const res::ResourceVector& demand_;
  ScoreFn fn_;
};

}  // namespace

std::vector<std::size_t> ShardedClusterManager::route_picks(
    const res::ResourceVector& demand) {
  const CachedShardScores scores(
      shards_.data(), shards_.size(), demand,
      [](const void* shards, std::size_t s, const res::ResourceVector& d) {
        return shard_score(static_cast<const Shard*>(shards)[s], d);
      });
  std::vector<std::size_t> picks;
  selector_->route(scores, routing_rng_, picks);
  return picks;
}

void ShardedClusterManager::rebind_shard_selection(const std::string& name) {
  // make_shard_selector throws before selector_ is touched, so a bad name
  // leaves the current binding (and its state) in place.
  selector_ = make_shard_selector(name);
  config_.selection_name = name;
  if (const auto policy = shard_selection_from_name(name)) {
    config_.selection = *policy;
  }
}

std::vector<std::size_t> ShardedClusterManager::route_tail(
    const res::ResourceVector& demand,
    const std::vector<std::size_t>& tried) {
  // Fallback: every remaining shard by descending cached score (ties by
  // shard index for determinism). Guarantees a placement is rejected only
  // when every shard's exact scan rejected it.
  std::vector<std::size_t> rest;
  rest.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (std::find(tried.begin(), tried.end(), s) == tried.end()) {
      rest.push_back(s);
    }
  }
  std::sort(rest.begin(), rest.end(), [&](std::size_t a, std::size_t b) {
    const double sa = shard_score(shards_[a], demand);
    const double sb = shard_score(shards_[b], demand);
    if (sa != sb) return sa > sb;
    return a < b;
  });
  return rest;
}

PlacementResult ShardedClusterManager::place_vm(const hv::VmSpec& spec) {
  DEFLATE_PROFILE_SCOPE("sharded.place");
  const res::ResourceVector demand = spec.vector();
  // Per-shard stats deltas of failed attempts this placement; all but the
  // "real" one (first attempt of a full rejection) are routing noise to be
  // subtracted from the aggregated stats.
  struct FailedAttempt {
    std::uint64_t attempts = 0;
    std::uint64_t failures = 0;
    std::uint64_t rejections = 0;
  };
  std::vector<FailedAttempt> failed;

  const auto try_shard = [&](std::size_t s,
                             PlacementResult& result) -> bool {
    Shard& shard = shards_[s];
    const ClusterStats& before = shard.manager->stats();
    const std::uint64_t attempts0 = before.reclamation_attempts;
    const std::uint64_t failures0 = before.reclamation_failures;
    const std::uint64_t rejections0 = before.rejections;
    result = shard.manager->place_vm(spec);
    if (!result.ok()) {
      const ClusterStats& after = shard.manager->stats();
      failed.push_back({after.reclamation_attempts - attempts0,
                        after.reclamation_failures - failures0,
                        after.rejections - rejections0});
      // Even a failed attempt can deflate bystanders before rejecting;
      // keep the cached aggregate eligible for the next flush.
      mark_dirty(s);
      return false;
    }
    result.host_id += shard.first;
    vm_shard_[spec.id] = s;
    // Cheap estimate; the next flush recomputes exactly.
    shard.free =
        (shard.free - demand * result.launch_fraction).clamped_nonneg();
    mark_dirty(s);
    return true;
  };

  const auto finish = [&](bool placed) {
    // On success every failed attempt was noise; on a full rejection the
    // first attempt stands in for the flat manager's single failed scan
    // (one rejection, one set of reclamation counts) and the rest is
    // noise.
    for (std::size_t i = placed ? 0 : 1; i < failed.size(); ++i) {
      spurious_rejections_ += failed[i].rejections;
      spurious_reclamation_attempts_ += failed[i].attempts;
      spurious_reclamation_failures_ += failed[i].failures;
    }
  };

  PlacementResult result;
  // Common case: a policy pick with cached headroom takes the VM and the
  // score-sorted fallback tail is never materialized.
  const std::vector<std::size_t> picks = route_picks(demand);
  for (const std::size_t s : picks) {
    if (try_shard(s, result)) {
      finish(true);
      return result;
    }
  }
  for (const std::size_t s : route_tail(demand, picks)) {
    if (try_shard(s, result)) {
      finish(true);
      return result;
    }
  }
  finish(false);
  result = PlacementResult{};
  result.needed_reclamation = true;
  result.status = PlacementResult::Status::Rejected;
  return result;
}

bool ShardedClusterManager::remove_vm(std::uint64_t vm_id) {
  const auto it = vm_shard_.find(vm_id);
  if (it == vm_shard_.end()) return false;
  const std::size_t s = it->second;
  Shard& shard = shards_[s];
  const hv::Vm* vm = shard.manager->find_vm(vm_id);
  const res::ResourceVector freed =
      vm != nullptr ? vm->effective_allocation() : res::ResourceVector{};
  vm_shard_.erase(it);
  if (!shard.manager->remove_vm(vm_id)) return false;
  shard.free += freed;
  mark_dirty(s);
  return true;
}

RevocationOutcome ShardedClusterManager::revoke_server(std::size_t server) {
  const std::size_t s = shard_of_server(server);
  Shard& shard = shards_[s];
  RevocationOutcome outcome;
  // Strip the residents at the shard level (counts the revocation there),
  // but re-place them here: the shard-local place_vm only scans its own
  // shard, which used to kill VMs whenever the home shard was full even
  // with fleet-wide headroom to spare.
  const std::optional<std::vector<hv::VmSpec>> residents =
      shard.manager->take_server_offline(server - shard.first);
  if (!residents) return outcome;  // already revoked: idempotent
  outcome.vms_displaced = residents->size();
  // Whole-server capacity vanished; route the displaced VMs (and everyone
  // after them) on a fresh aggregate instead of chasing it.
  refresh_shard(shard);

  for (const hv::VmSpec& spec : *residents) {
    vm_shard_.erase(spec.id);
    if (config_.cluster.mode == ReclamationMode::Deflation) {
      const PlacementResult placed = place_vm(spec);  // cross-shard fallback
      if (placed.ok()) {
        ++outcome.vms_migrated;
        ++overlay_.revocation_migrations;
        for (const auto& callback : migration_callbacks_) {
          callback(spec, server, placed.host_id, placed.launch_fraction);
        }
        continue;
      }
    }
    ++outcome.vms_killed;
    ++overlay_.revocation_kills;
    ++overlay_.preemptions;
    for (const auto& callback : preemption_callbacks_) callback(spec, server);
  }
  for (const auto& callback : revocation_callbacks_) callback(server, outcome);
  return outcome;
}

void ShardedClusterManager::restore_server(std::size_t server) {
  const std::size_t s = shard_of_server(server);
  Shard& shard = shards_[s];
  shard.manager->restore_server(server - shard.first);
  refresh_shard(shard);
}

void ShardedClusterManager::drain_server(std::size_t server) {
  const std::size_t s = shard_of_server(server);
  shards_[s].manager->drain_server(server - shards_[s].first);
  // The cached aggregate still counts the draining server's free capacity;
  // that only skews routing order — the shard's exact scan excludes it.
}

bool ShardedClusterManager::server_active(std::size_t server) const {
  const std::size_t s = shard_of_server(server);
  return shards_[s].manager->server_active(server - shards_[s].first);
}

std::size_t ShardedClusterManager::active_server_count() const {
  std::size_t count = 0;
  for (const Shard& shard : shards_) count += shard.manager->active_server_count();
  return count;
}

hv::Host& ShardedClusterManager::host(std::size_t server) {
  const std::size_t s = shard_of_server(server);
  return shards_[s].manager->host(server - shards_[s].first);
}

hv::Vm* ShardedClusterManager::find_vm(std::uint64_t vm_id) {
  const auto it = vm_shard_.find(vm_id);
  if (it == vm_shard_.end()) return nullptr;
  return shards_[it->second].manager->find_vm(vm_id);
}

std::optional<std::size_t> ShardedClusterManager::server_of(
    std::uint64_t vm_id) const {
  const auto it = vm_shard_.find(vm_id);
  if (it == vm_shard_.end()) return std::nullopt;
  const Shard& shard = shards_[it->second];
  const auto local = shard.manager->server_of(vm_id);
  if (!local) return std::nullopt;
  return shard.first + *local;
}

const ClusterStats& ShardedClusterManager::stats() const {
  stats_ = ClusterStats{};
  for (const Shard& shard : shards_) {
    const ClusterStats& s = shard.manager->stats();
    stats_.placements += s.placements;
    stats_.reclamation_attempts += s.reclamation_attempts;
    stats_.reclamation_failures += s.reclamation_failures;
    stats_.deflated_launches += s.deflated_launches;
    stats_.preemptions += s.preemptions;
    stats_.rejections += s.rejections;
    stats_.revocations += s.revocations;
    stats_.restorations += s.restorations;
    stats_.revocation_migrations += s.revocation_migrations;
    stats_.revocation_kills += s.revocation_kills;
  }
  stats_.rejections -= spurious_rejections_;
  stats_.reclamation_attempts -= spurious_reclamation_attempts_;
  stats_.reclamation_failures -= spurious_reclamation_failures_;
  stats_.revocation_migrations += overlay_.revocation_migrations;
  stats_.revocation_kills += overlay_.revocation_kills;
  stats_.preemptions += overlay_.preemptions;
  return stats_;
}

res::ResourceVector ShardedClusterManager::total_capacity() const {
  res::ResourceVector total;
  for (const Shard& shard : shards_) total += shard.manager->total_capacity();
  return total;
}

res::ResourceVector ShardedClusterManager::total_allocated() const {
  res::ResourceVector total;
  for (const Shard& shard : shards_) total += shard.manager->total_allocated();
  return total;
}

res::ResourceVector ShardedClusterManager::total_committed() const {
  res::ResourceVector total;
  for (const Shard& shard : shards_) total += shard.manager->total_committed();
  return total;
}

std::vector<std::size_t> ShardedClusterManager::pool_servers(
    std::size_t pool) const {
  std::vector<std::size_t> servers;
  for (const Shard& shard : shards_) {
    for (const std::size_t local : shard.manager->pool_servers(pool)) {
      servers.push_back(shard.first + local);
    }
  }
  return servers;
}

void ShardedClusterManager::subscribe_deflation(
    const DeflationCallback& callback) {
  for (Shard& shard : shards_) shard.manager->subscribe_deflation(callback);
}

std::size_t ShardedClusterManager::shard_of_server(std::size_t server) const {
  if (server >= total_servers_) {
    throw std::out_of_range("ShardedClusterManager: server id out of range");
  }
  // Shards are contiguous and near-even; binary search the offsets.
  const auto it = std::upper_bound(
      shards_.begin(), shards_.end(), server,
      [](std::size_t id, const Shard& shard) { return id < shard.first; });
  return static_cast<std::size_t>(std::distance(shards_.begin(), it)) - 1;
}

}  // namespace deflate::cluster
