// Cluster partitioning by priority (§5.2.1): the cluster is split into
// priority pools and VMs are placed only on their pool's servers, bounding
// performance interference between priority classes. On-demand VMs get
// their own pool.
#pragma once

#include <cstddef>
#include <vector>

namespace deflate::cluster {

class ClusterPartitions {
 public:
  /// `pool_weights[k]` is the expected share of committed resources for
  /// pool k ("the size of the different pools can be based on the typical
  /// workload mix"); every pool receives at least one server.
  ClusterPartitions(std::size_t server_count,
                    const std::vector<double>& pool_weights);

  /// Unpartitioned cluster: a single pool owning every server.
  static ClusterPartitions single_pool(std::size_t server_count);

  [[nodiscard]] std::size_t pool_count() const noexcept {
    return pools_.size();
  }
  /// Server indices belonging to pool `k`.
  [[nodiscard]] const std::vector<std::size_t>& pool(std::size_t k) const {
    return pools_.at(k);
  }

 private:
  std::vector<std::vector<std::size_t>> pools_;
};

/// Maps priorities to pools: pool 0 is on-demand; deflatable VMs map by
/// priority level (4 levels as in §7.1.2: 0.2 / 0.4 / 0.6 / 0.8).
[[nodiscard]] std::size_t pool_for_priority(bool deflatable, double priority,
                                            std::size_t pool_count) noexcept;

}  // namespace deflate::cluster
