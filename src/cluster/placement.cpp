#include "cluster/placement.hpp"

#include <algorithm>
#include <mutex>

namespace deflate::cluster {

namespace {

/// Capacity-normalized leftover mass after placing the demand; the
/// BestFit/WorstFit score. Shared by pick_host and scan_pick_host so the
/// two paths can never drift apart.
double leftover_score(const res::ResourceVector& demand, const HostView& host) {
  res::ResourceVector leftover_n;
  const res::ResourceVector availability = availability_vector(host);
  for (const res::Resource r : res::all_resources) {
    if (host.capacity[r] <= 0.0) continue;
    leftover_n[r] = (availability[r] - demand[r]) / host.capacity[r];
  }
  return leftover_n.clamped_nonneg().norm();
}

}  // namespace

res::ResourceVector availability_vector(const HostView& host) {
  // §5.2: A_j = Total - Used + deflatable_j / overcommitted_j. A server at
  // or below full commitment divides by 1 (no discount); overcommitted
  // servers see their deflatable headroom count for less, steering new VMs
  // toward less-loaded servers.
  const double overcommit_divisor = std::max(1.0, host.overcommit_ratio);
  return (host.available + host.deflatable * (1.0 / overcommit_divisor))
      .clamped_nonneg();
}

double fitness(const res::ResourceVector& demand, const HostView& host) {
  return res::cosine_similarity(demand, availability_vector(host));
}

double pressure_fitness(const res::ResourceVector& demand,
                        const HostView& host) {
  // Normalize both vectors by the server capacity so cores and MiB are
  // commensurate, then project availability onto the demand direction.
  res::ResourceVector demand_n, avail_n;
  const res::ResourceVector availability = availability_vector(host);
  for (const res::Resource r : res::all_resources) {
    if (host.capacity[r] <= 0.0) continue;
    demand_n[r] = demand[r] / host.capacity[r];
    avail_n[r] = availability[r] / host.capacity[r];
  }
  const double demand_norm = demand_n.norm();
  if (demand_norm <= 1e-12) return avail_n.norm();
  return demand_n.dot(avail_n) / demand_norm;
}

std::optional<std::size_t> pick_best_host(const res::ResourceVector& demand,
                                          std::span<const HostView> hosts,
                                          bool under_pressure) {
  std::optional<std::size_t> best;
  double best_fitness = -1.0;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    if (!hosts[i].feasible) continue;
    const double f = under_pressure ? pressure_fitness(demand, hosts[i])
                                    : fitness(demand, hosts[i]);
    if (f > best_fitness ||
        (f == best_fitness && best &&
         hosts[i].host_id < hosts[*best].host_id)) {
      best = i;
      best_fitness = f;
    }
  }
  return best;
}

const char* placement_strategy_name(PlacementStrategy s) noexcept {
  switch (s) {
    case PlacementStrategy::Fitness: return "fitness";
    case PlacementStrategy::FirstFit: return "first-fit";
    case PlacementStrategy::BestFit: return "best-fit";
    case PlacementStrategy::WorstFit: return "worst-fit";
  }
  return "?";
}

std::optional<std::size_t> pick_host(PlacementStrategy strategy,
                                     const res::ResourceVector& demand,
                                     std::span<const HostView> hosts,
                                     bool under_pressure) {
  if (strategy == PlacementStrategy::Fitness) {
    return pick_best_host(demand, hosts, under_pressure);
  }
  std::optional<std::size_t> best;
  double best_score = 0.0;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    if (!hosts[i].feasible) continue;
    if (strategy == PlacementStrategy::FirstFit) {
      if (!best || hosts[i].host_id < hosts[*best].host_id) best = i;
      continue;
    }
    const double leftover = leftover_score(demand, hosts[i]);
    const bool better = strategy == PlacementStrategy::BestFit
                            ? (!best || leftover < best_score)
                            : (!best || leftover > best_score);
    if (better) {
      best = i;
      best_score = leftover;
    }
  }
  return best;
}

// --- SoA scan table ---------------------------------------------------------

void HostScanTable::resize(std::size_t servers) {
  for (auto& column : available) column.assign(servers, 0.0);
  for (auto& column : deflatable) column.assign(servers, 0.0);
  overcommit.assign(servers, 0.0);
  eligible.assign(servers, 1);
}

void HostScanTable::set_available(std::size_t i,
                                  const res::ResourceVector& v) noexcept {
  for (std::size_t r = 0; r < res::kNumResources; ++r) {
    available[r][i] = v[static_cast<res::Resource>(r)];
  }
}

void HostScanTable::set_deflatable(std::size_t i,
                                   const res::ResourceVector& v) noexcept {
  for (std::size_t r = 0; r < res::kNumResources; ++r) {
    deflatable[r][i] = v[static_cast<res::Resource>(r)];
  }
}

res::ResourceVector HostScanTable::available_of(std::size_t i) const noexcept {
  return {available[0][i], available[1][i], available[2][i], available[3][i]};
}

res::ResourceVector HostScanTable::deflatable_of(std::size_t i) const noexcept {
  return {deflatable[0][i], deflatable[1][i], deflatable[2][i],
          deflatable[3][i]};
}

HostView HostScanTable::view_of(std::size_t i) const noexcept {
  HostView view;
  view.host_id = i;
  view.capacity = capacity;
  view.available = available_of(i);
  view.deflatable = deflatable_of(i);
  view.overcommit_ratio = overcommit[i];
  return view;
}

// --- deterministic (thread-count independent) strategy scan -----------------

namespace {

struct ScanBest {
  double score = 0.0;
  std::size_t host = 0;
  bool valid = false;
};

/// Strict total order on (score, host id): exactly the serial pick_host
/// preference, so merging chunk winners in *any* order yields the same
/// final answer as one serial sweep.
bool scan_better(PlacementStrategy strategy, double score, std::size_t host,
                 const ScanBest& best) {
  if (!best.valid) return true;
  switch (strategy) {
    case PlacementStrategy::Fitness:
    case PlacementStrategy::WorstFit:
      if (score != best.score) return score > best.score;
      return host < best.host;
    case PlacementStrategy::BestFit:
      if (score != best.score) return score < best.score;
      return host < best.host;
    case PlacementStrategy::FirstFit:
      return host < best.host;
  }
  return false;
}

}  // namespace

std::optional<std::size_t> scan_pick_host(PlacementStrategy strategy,
                                          const res::ResourceVector& demand,
                                          const HostScanTable& table,
                                          std::span<const std::size_t> candidates,
                                          ScanFeasibility feasibility,
                                          bool under_pressure,
                                          util::ThreadPool* pool) {
  const auto evaluate = [&](std::size_t begin, std::size_t end,
                            ScanBest& best) {
    for (std::size_t c = begin; c < end; ++c) {
      const std::size_t server = candidates[c];
      if (!table.eligible[server]) continue;
      const res::ResourceVector avail = table.available_of(server);
      if (feasibility == ScanFeasibility::FreeCapacity) {
        if (!demand.all_leq(avail, 1e-9)) continue;
      } else {
        const res::ResourceVector need = (demand - avail).clamped_nonneg();
        if (!need.all_leq(table.deflatable_of(server), 1e-9)) continue;
      }
      double score = 0.0;
      if (strategy != PlacementStrategy::FirstFit) {
        const HostView view = table.view_of(server);
        if (strategy == PlacementStrategy::Fitness) {
          score = under_pressure ? pressure_fitness(demand, view)
                                 : fitness(demand, view);
        } else {
          score = leftover_score(demand, view);
        }
      }
      if (scan_better(strategy, score, server, best)) {
        best = {score, server, true};
      }
    }
  };

  // Below this size the chunk dispatch costs more than the scan; the cutoff
  // cannot change results (serial and chunked agree bit-for-bit), only
  // where the work runs.
  constexpr std::size_t kMinParallelScan = 1024;
  ScanBest best;
  if (pool == nullptr || pool->size() <= 1 ||
      candidates.size() < kMinParallelScan) {
    evaluate(0, candidates.size(), best);
  } else {
    std::mutex merge_mutex;
    util::parallel_for(pool, candidates.size(),
                       [&](std::size_t begin, std::size_t end) {
                         ScanBest local;
                         evaluate(begin, end, local);
                         if (!local.valid) return;
                         std::scoped_lock lock(merge_mutex);
                         if (scan_better(strategy, local.score, local.host,
                                         best)) {
                           best = local;
                         }
                       });
  }
  if (!best.valid) return std::nullopt;
  return best.host;
}

}  // namespace deflate::cluster
