#include "cluster/placement.hpp"

#include <algorithm>

namespace deflate::cluster {

res::ResourceVector availability_vector(const HostView& host) {
  // §5.2: A_j = Total - Used + deflatable_j / overcommitted_j. A server at
  // or below full commitment divides by 1 (no discount); overcommitted
  // servers see their deflatable headroom count for less, steering new VMs
  // toward less-loaded servers.
  const double overcommit_divisor = std::max(1.0, host.overcommit_ratio);
  return (host.available + host.deflatable * (1.0 / overcommit_divisor))
      .clamped_nonneg();
}

double fitness(const res::ResourceVector& demand, const HostView& host) {
  return res::cosine_similarity(demand, availability_vector(host));
}

double pressure_fitness(const res::ResourceVector& demand,
                        const HostView& host) {
  // Normalize both vectors by the server capacity so cores and MiB are
  // commensurate, then project availability onto the demand direction.
  res::ResourceVector demand_n, avail_n;
  const res::ResourceVector availability = availability_vector(host);
  for (const res::Resource r : res::all_resources) {
    if (host.capacity[r] <= 0.0) continue;
    demand_n[r] = demand[r] / host.capacity[r];
    avail_n[r] = availability[r] / host.capacity[r];
  }
  const double demand_norm = demand_n.norm();
  if (demand_norm <= 1e-12) return avail_n.norm();
  return demand_n.dot(avail_n) / demand_norm;
}

std::optional<std::size_t> pick_best_host(const res::ResourceVector& demand,
                                          std::span<const HostView> hosts,
                                          bool under_pressure) {
  std::optional<std::size_t> best;
  double best_fitness = -1.0;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    if (!hosts[i].feasible) continue;
    const double f = under_pressure ? pressure_fitness(demand, hosts[i])
                                    : fitness(demand, hosts[i]);
    if (f > best_fitness ||
        (f == best_fitness && best &&
         hosts[i].host_id < hosts[*best].host_id)) {
      best = i;
      best_fitness = f;
    }
  }
  return best;
}

const char* placement_strategy_name(PlacementStrategy s) noexcept {
  switch (s) {
    case PlacementStrategy::Fitness: return "fitness";
    case PlacementStrategy::FirstFit: return "first-fit";
    case PlacementStrategy::BestFit: return "best-fit";
    case PlacementStrategy::WorstFit: return "worst-fit";
  }
  return "?";
}

std::optional<std::size_t> pick_host(PlacementStrategy strategy,
                                     const res::ResourceVector& demand,
                                     std::span<const HostView> hosts,
                                     bool under_pressure) {
  if (strategy == PlacementStrategy::Fitness) {
    return pick_best_host(demand, hosts, under_pressure);
  }
  std::optional<std::size_t> best;
  double best_score = 0.0;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    if (!hosts[i].feasible) continue;
    if (strategy == PlacementStrategy::FirstFit) {
      if (!best || hosts[i].host_id < hosts[*best].host_id) best = i;
      continue;
    }
    // Leftover mass after placing the demand, capacity-normalized.
    res::ResourceVector leftover_n;
    const res::ResourceVector availability = availability_vector(hosts[i]);
    for (const res::Resource r : res::all_resources) {
      if (hosts[i].capacity[r] <= 0.0) continue;
      leftover_n[r] = (availability[r] - demand[r]) / hosts[i].capacity[r];
    }
    const double leftover = leftover_n.clamped_nonneg().norm();
    const bool better = strategy == PlacementStrategy::BestFit
                            ? (!best || leftover < best_score)
                            : (!best || leftover > best_score);
    if (better) {
      best = i;
      best_score = leftover;
    }
  }
  return best;
}

}  // namespace deflate::cluster
