#include "cluster/placement.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>

namespace deflate::cluster {

namespace {

/// Capacity-normalized leftover mass after placing the demand; the
/// BestFit/WorstFit score. Shared by pick_host and scan_pick_host so the
/// two paths can never drift apart.
double leftover_score(const res::ResourceVector& demand, const HostView& host) {
  res::ResourceVector leftover_n;
  const res::ResourceVector availability = availability_vector(host);
  for (const res::Resource r : res::all_resources) {
    if (host.capacity[r] <= 0.0) continue;
    leftover_n[r] = (availability[r] - demand[r]) / host.capacity[r];
  }
  return leftover_n.clamped_nonneg().norm();
}

}  // namespace

res::ResourceVector availability_vector(const HostView& host) {
  // §5.2: A_j = Total - Used + deflatable_j / overcommitted_j. A server at
  // or below full commitment divides by 1 (no discount); overcommitted
  // servers see their deflatable headroom count for less, steering new VMs
  // toward less-loaded servers.
  const double overcommit_divisor = std::max(1.0, host.overcommit_ratio);
  return (host.available + host.deflatable * (1.0 / overcommit_divisor))
      .clamped_nonneg();
}

double fitness(const res::ResourceVector& demand, const HostView& host) {
  return res::cosine_similarity(demand, availability_vector(host));
}

double pressure_fitness(const res::ResourceVector& demand,
                        const HostView& host) {
  // Normalize both vectors by the server capacity so cores and MiB are
  // commensurate, then project availability onto the demand direction.
  res::ResourceVector demand_n, avail_n;
  const res::ResourceVector availability = availability_vector(host);
  for (const res::Resource r : res::all_resources) {
    if (host.capacity[r] <= 0.0) continue;
    demand_n[r] = demand[r] / host.capacity[r];
    avail_n[r] = availability[r] / host.capacity[r];
  }
  const double demand_norm = demand_n.norm();
  if (demand_norm <= 1e-12) return avail_n.norm();
  return demand_n.dot(avail_n) / demand_norm;
}

std::optional<std::size_t> pick_best_host(const res::ResourceVector& demand,
                                          std::span<const HostView> hosts,
                                          bool under_pressure) {
  std::optional<std::size_t> best;
  double best_fitness = -1.0;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    if (!hosts[i].feasible) continue;
    const double f = under_pressure ? pressure_fitness(demand, hosts[i])
                                    : fitness(demand, hosts[i]);
    if (f > best_fitness ||
        (f == best_fitness && best &&
         hosts[i].host_id < hosts[*best].host_id)) {
      best = i;
      best_fitness = f;
    }
  }
  return best;
}

const char* placement_strategy_name(PlacementStrategy s) noexcept {
  switch (s) {
    case PlacementStrategy::Fitness: return "fitness";
    case PlacementStrategy::FirstFit: return "first-fit";
    case PlacementStrategy::BestFit: return "best-fit";
    case PlacementStrategy::WorstFit: return "worst-fit";
  }
  return "?";
}

// --- builtin scorers --------------------------------------------------------

namespace {

/// §5.2 cosine fitness (pressure-aware). The only builtin whose span-path
/// ties break by host id: its sentinel-free score range (>= 0) made the
/// historical tie branch reachable, and golden runs pin that order.
class FitnessScorer final : public PlacementScorer {
 public:
  [[nodiscard]] Order order() const noexcept override {
    return Order::HigherBetter;
  }
  [[nodiscard]] bool prefer_lower_id_on_tie() const noexcept override {
    return true;
  }
  [[nodiscard]] double score(const res::ResourceVector& demand,
                             const HostView& host,
                             bool under_pressure) const override {
    return under_pressure ? pressure_fitness(demand, host)
                          : fitness(demand, host);
  }
};

class FirstFitScorer final : public PlacementScorer {
 public:
  [[nodiscard]] Order order() const noexcept override { return Order::ById; }
  [[nodiscard]] double score(const res::ResourceVector&, const HostView&,
                             bool) const override {
    return 0.0;
  }
};

class BestFitScorer final : public PlacementScorer {
 public:
  [[nodiscard]] Order order() const noexcept override {
    return Order::LowerBetter;
  }
  [[nodiscard]] double score(const res::ResourceVector& demand,
                             const HostView& host, bool) const override {
    return leftover_score(demand, host);
  }
};

class WorstFitScorer final : public PlacementScorer {
 public:
  [[nodiscard]] Order order() const noexcept override {
    return Order::HigherBetter;
  }
  [[nodiscard]] double score(const res::ResourceVector& demand,
                             const HostView& host, bool) const override {
    return leftover_score(demand, host);
  }
};

const FitnessScorer kFitnessScorer;
const FirstFitScorer kFirstFitScorer;
const BestFitScorer kBestFitScorer;
const WorstFitScorer kWorstFitScorer;

/// Non-owning handle to a static builtin (registry factories return
/// shared_ptr so plugins may hand out owned instances).
std::shared_ptr<const PlacementScorer> borrow(const PlacementScorer& scorer) {
  return {std::shared_ptr<const PlacementScorer>{}, &scorer};
}

}  // namespace

const PlacementScorer& builtin_placement_scorer(PlacementStrategy s) noexcept {
  switch (s) {
    case PlacementStrategy::Fitness: return kFitnessScorer;
    case PlacementStrategy::FirstFit: return kFirstFitScorer;
    case PlacementStrategy::BestFit: return kBestFitScorer;
    case PlacementStrategy::WorstFit: return kWorstFitScorer;
  }
  return kFitnessScorer;
}

void PlacementSurface::register_builtins(
    policy::PolicyRegistry<PlacementSurface>& registry) {
  registry.add("fitness",
               "cosine fitness vs deflation-aware availability (paper §5.2); "
               "pressure-aware",
               [] { return borrow(kFitnessScorer); });
  registry.add("first-fit", "lowest feasible host id",
               [] { return borrow(kFirstFitScorer); });
  registry.add("best-fit", "least leftover capacity (tightest pack)",
               [] { return borrow(kBestFitScorer); });
  registry.add("worst-fit", "most leftover capacity (max spreading)",
               [] { return borrow(kWorstFitScorer); });
}

std::shared_ptr<const PlacementScorer> make_placement_scorer(
    const std::string& name) {
  const auto* entry = PlacementRegistry::instance().find(name);
  if (entry == nullptr) {
    throw std::invalid_argument(
        "unknown placement policy '" + name + "' (expected " +
        policy::joined_policy_names<PlacementSurface>() + ")");
  }
  return entry->make();
}

std::optional<PlacementStrategy> placement_strategy_from_name(
    const std::string& name) noexcept {
  for (const PlacementStrategy s :
       {PlacementStrategy::Fitness, PlacementStrategy::FirstFit,
        PlacementStrategy::BestFit, PlacementStrategy::WorstFit}) {
    if (name == placement_strategy_name(s)) return s;
  }
  return std::nullopt;
}

std::optional<std::size_t> pick_host(PlacementStrategy strategy,
                                     const res::ResourceVector& demand,
                                     std::span<const HostView> hosts,
                                     bool under_pressure) {
  return pick_host(builtin_placement_scorer(strategy), demand, hosts,
                   under_pressure);
}

std::optional<std::size_t> pick_host(const PlacementScorer& scorer,
                                     const res::ResourceVector& demand,
                                     std::span<const HostView> hosts,
                                     bool under_pressure) {
  const PlacementScorer::Order order = scorer.order();
  std::optional<std::size_t> best;
  double best_score = 0.0;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    if (!hosts[i].feasible) continue;
    if (order == PlacementScorer::Order::ById) {
      if (!best || hosts[i].host_id < hosts[*best].host_id) best = i;
      continue;
    }
    const double s = scorer.score(demand, hosts[i], under_pressure);
    bool better = false;
    if (!best) {
      better = true;
    } else if (s != best_score) {
      better = order == PlacementScorer::Order::HigherBetter ? s > best_score
                                                             : s < best_score;
    } else {
      better = scorer.prefer_lower_id_on_tie() &&
               hosts[i].host_id < hosts[*best].host_id;
    }
    if (better) {
      best = i;
      best_score = s;
    }
  }
  return best;
}

// --- SoA scan table ---------------------------------------------------------

void HostScanTable::resize(std::size_t servers) {
  for (auto& column : available) column.assign(servers, 0.0);
  for (auto& column : deflatable) column.assign(servers, 0.0);
  overcommit.assign(servers, 0.0);
  eligible.assign(servers, 1);
}

void HostScanTable::set_available(std::size_t i,
                                  const res::ResourceVector& v) noexcept {
  for (std::size_t r = 0; r < res::kNumResources; ++r) {
    available[r][i] = v[static_cast<res::Resource>(r)];
  }
}

void HostScanTable::set_deflatable(std::size_t i,
                                   const res::ResourceVector& v) noexcept {
  for (std::size_t r = 0; r < res::kNumResources; ++r) {
    deflatable[r][i] = v[static_cast<res::Resource>(r)];
  }
}

res::ResourceVector HostScanTable::available_of(std::size_t i) const noexcept {
  return {available[0][i], available[1][i], available[2][i], available[3][i]};
}

res::ResourceVector HostScanTable::deflatable_of(std::size_t i) const noexcept {
  return {deflatable[0][i], deflatable[1][i], deflatable[2][i],
          deflatable[3][i]};
}

HostView HostScanTable::view_of(std::size_t i) const noexcept {
  HostView view;
  view.host_id = i;
  view.capacity = capacity;
  view.available = available_of(i);
  view.deflatable = deflatable_of(i);
  view.overcommit_ratio = overcommit[i];
  return view;
}

// --- deterministic (thread-count independent) strategy scan -----------------

namespace {

struct ScanBest {
  double score = 0.0;
  std::size_t host = 0;
  bool valid = false;
};

/// Strict total order on (score, host id): exactly the serial pick_host
/// preference, so merging chunk winners in *any* order yields the same
/// final answer as one serial sweep. Ties always break by lowest host id
/// here — the scan's determinism contract — even for scorers whose span
/// path keeps the first-seen winner.
bool scan_better(PlacementScorer::Order order, double score, std::size_t host,
                 const ScanBest& best) {
  if (!best.valid) return true;
  switch (order) {
    case PlacementScorer::Order::HigherBetter:
      if (score != best.score) return score > best.score;
      return host < best.host;
    case PlacementScorer::Order::LowerBetter:
      if (score != best.score) return score < best.score;
      return host < best.host;
    case PlacementScorer::Order::ById:
      return host < best.host;
  }
  return false;
}

}  // namespace

std::optional<std::size_t> scan_pick_host(PlacementStrategy strategy,
                                          const res::ResourceVector& demand,
                                          const HostScanTable& table,
                                          std::span<const std::size_t> candidates,
                                          ScanFeasibility feasibility,
                                          bool under_pressure,
                                          util::ThreadPool* pool) {
  return scan_pick_host(builtin_placement_scorer(strategy), demand, table,
                        candidates, feasibility, under_pressure, pool);
}

std::optional<std::size_t> scan_pick_host(const PlacementScorer& scorer,
                                          const res::ResourceVector& demand,
                                          const HostScanTable& table,
                                          std::span<const std::size_t> candidates,
                                          ScanFeasibility feasibility,
                                          bool under_pressure,
                                          util::ThreadPool* pool) {
  const PlacementScorer::Order order = scorer.order();
  const auto evaluate = [&](std::size_t begin, std::size_t end,
                            ScanBest& best) {
    for (std::size_t c = begin; c < end; ++c) {
      const std::size_t server = candidates[c];
      if (!table.eligible[server]) continue;
      const res::ResourceVector avail = table.available_of(server);
      if (feasibility == ScanFeasibility::FreeCapacity) {
        if (!demand.all_leq(avail, 1e-9)) continue;
      } else {
        const res::ResourceVector need = (demand - avail).clamped_nonneg();
        if (!need.all_leq(table.deflatable_of(server), 1e-9)) continue;
      }
      double score = 0.0;
      if (order != PlacementScorer::Order::ById) {
        score = scorer.score(demand, table.view_of(server), under_pressure);
      }
      if (scan_better(order, score, server, best)) {
        best = {score, server, true};
      }
    }
  };

  // Below this size the chunk dispatch costs more than the scan; the cutoff
  // cannot change results (serial and chunked agree bit-for-bit), only
  // where the work runs.
  constexpr std::size_t kMinParallelScan = 1024;
  ScanBest best;
  if (pool == nullptr || pool->size() <= 1 ||
      candidates.size() < kMinParallelScan) {
    evaluate(0, candidates.size(), best);
  } else {
    std::mutex merge_mutex;
    util::parallel_for(pool, candidates.size(),
                       [&](std::size_t begin, std::size_t end) {
                         ScanBest local;
                         evaluate(begin, end, local);
                         if (!local.valid) return;
                         std::scoped_lock lock(merge_mutex);
                         if (scan_better(order, local.score, local.host,
                                         best)) {
                           best = local;
                         }
                       });
  }
  if (!best.valid) return std::nullopt;
  return best.host;
}

}  // namespace deflate::cluster
