// Wire protocol between the centralized cluster manager and the per-server
// local controllers.
//
// The paper's prototype splits these across machines "communicating with
// each other via a REST API" (§6). This module models that boundary with
// explicitly serialized messages over an in-process bus: every cross-
// component interaction can be captured, logged, replayed, or re-pointed
// at a real HTTP transport without touching policy code. Encoding is a
// single text line of `key=value` pairs (URL-query style), the moral
// equivalent of the prototype's REST payloads.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "resources/resource_vector.hpp"

namespace deflate::cluster::wire {

/// Protocol version carried by every message envelope (field `v`).
/// Version 1 envelopes had no version field at all; version 2 added it so
/// the format can evolve — decode rejects a missing or mismatched tag
/// instead of guessing. The binary transport codec (src/net/codec.hpp)
/// versions its frames independently.
inline constexpr int kWireVersion = 2;

/// key=value&key=value codec used by all messages.
[[nodiscard]] std::string encode_fields(
    const std::map<std::string, std::string>& fields);
[[nodiscard]] std::map<std::string, std::string> decode_fields(
    const std::string& line);

/// Builds a message envelope: `fields` plus the `type` tag and the
/// `v=kWireVersion` version tag every bus message carries.
[[nodiscard]] std::string encode_envelope(
    const std::string& type, std::map<std::string, std::string> fields);

/// Decodes an envelope of the given type: returns the field map only when
/// the line parses, carries `type=<type>` and its version tag matches
/// kWireVersion exactly (missing or foreign versions are rejected — the
/// caller must not act on a message from an incompatible peer).
[[nodiscard]] std::optional<std::map<std::string, std::string>>
decode_envelope(const std::string& type, const std::string& line);

[[nodiscard]] std::string encode_vector(const res::ResourceVector& v);
[[nodiscard]] std::optional<res::ResourceVector> decode_vector(
    const std::string& text);

/// POST /vms — manager asks a server to host a VM.
struct PlaceRequest {
  std::uint64_t vm_id = 0;
  res::ResourceVector demand;
  double priority = 1.0;
  bool deflatable = false;

  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static std::optional<PlaceRequest> decode(const std::string& line);
};

/// Response to PlaceRequest.
struct PlaceResponse {
  std::uint64_t vm_id = 0;
  bool accepted = false;
  std::uint64_t host_id = 0;
  double launch_fraction = 1.0;

  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static std::optional<PlaceResponse> decode(const std::string& line);
};

/// POST /vms/{id}/allocation — manager-initiated deflation/reinflation.
struct DeflateCommand {
  std::uint64_t vm_id = 0;
  res::ResourceVector target;

  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static std::optional<DeflateCommand> decode(const std::string& line);
};

/// Server -> application manager notification (Fig. 1's "Deflate VM
/// Notification" arrow).
struct DeflationNotice {
  std::uint64_t vm_id = 0;
  res::ResourceVector old_alloc;
  res::ResourceVector new_alloc;

  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static std::optional<DeflationNotice> decode(const std::string& line);
};

/// Periodic server -> manager state update ("each server updates the
/// central master about all changes in server utilization after every
/// deflation event", §6).
struct UtilizationReport {
  std::uint64_t host_id = 0;
  res::ResourceVector available;
  res::ResourceVector committed;
  double overcommit_ratio = 0.0;

  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static std::optional<UtilizationReport> decode(
      const std::string& line);
};

/// Synchronous in-process topic bus standing in for HTTP. Delivery is
/// in subscription order (deterministic); handlers receive the encoded
/// line exactly as published.
class MessageBus {
 public:
  using Handler = std::function<void(const std::string& line)>;

  void subscribe(const std::string& topic, Handler handler);
  /// Returns the number of handlers that received the message.
  std::size_t publish(const std::string& topic, const std::string& line);

  [[nodiscard]] std::uint64_t messages_published() const noexcept {
    return published_;
  }

 private:
  std::map<std::string, std::vector<Handler>> topics_;
  std::uint64_t published_ = 0;
};

}  // namespace deflate::cluster::wire
