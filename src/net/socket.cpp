#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>

namespace deflate::net {

namespace {

void set_nodelay(int fd) noexcept {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in loopback_addr(std::uint16_t port) noexcept {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

/// A peer that disappears mid-write raises SIGPIPE by default, which
/// would kill the whole daemon; send_all opts out per-call instead.
constexpr int kSendFlags =
#ifdef MSG_NOSIGNAL
    MSG_NOSIGNAL;
#else
    0;
#endif

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

bool Socket::send_all(const void* data, std::size_t size) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::size_t sent = 0;
  while (sent < size) {
    const auto n = ::send(fd_, bytes + sent, size - sent, kSendFlags);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

long Socket::recv_some(void* buffer, std::size_t size) noexcept {
  for (;;) {
    const auto n = ::recv(fd_, buffer, size, 0);
    if (n < 0 && errno == EINTR) continue;
    return static_cast<long>(n);
  }
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Socket{};
  const sockaddr_in addr = loopback_addr(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return Socket{};
  }
  set_nodelay(fd);
  return Socket{fd};
}

std::optional<ListenSocket> ListenSocket::open_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback_addr(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  ListenSocket out;
  out.fd_ = fd;
  out.port_ = ntohs(addr.sin_port);
  return out;
}

std::optional<Socket> ListenSocket::accept_one() noexcept {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      set_nodelay(fd);
      return Socket{fd};
    }
    if (errno == EINTR) continue;
    return std::nullopt;
  }
}

void ListenSocket::close() noexcept {
  if (fd_ >= 0) {
    // shutdown() before close wakes a thread parked in accept().
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace deflate::net
