// Binary transport codec for the admission service (the deflated daemon).
//
// cluster/wire.hpp models the paper's §6 REST boundary as text messages on
// an in-process bus; this codec is what actually crosses a socket. Every
// message travels in a versioned, length-prefixed frame:
//
//   offset  size  field
//   0       1     magic (0xDF)
//   1       1     codec version (kCodecVersion)
//   2       1     message type (MsgType)
//   3       4     payload length, little-endian u32 (<= kMaxPayload)
//   7       len   payload (fixed-width little-endian fields; doubles as
//                 IEEE-754 bit patterns, so round-trips are bit-exact)
//
// The version byte sits in front of the length so an incompatible peer is
// rejected before its framing is trusted. Decoding is strict: a frame is
// either complete and exactly consumed (Ok), not yet fully buffered
// (NeedMore), or rejected (Malformed) — truncated payloads, oversized
// lengths, unknown types, out-of-range enums and trailing payload bytes
// all reject without reading out of bounds (fuzzed in
// tests/test_net_codec.cpp, under ASan/UBSan in CI).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "cluster/admission.hpp"
#include "cluster/wire.hpp"

namespace deflate::net {

inline constexpr std::uint8_t kFrameMagic = 0xDF;
/// Bumped whenever the frame layout or any payload encoding changes.
/// v2: Hello advertises every policy registry surface (Hello::surfaces).
/// v3: Hello carries `telemetry_every` — a client's Hello subscribes the
///     connection to periodic UtilizationReport telemetry frames.
inline constexpr std::uint8_t kCodecVersion = 3;
/// Hard cap on advertised surfaces in a Hello (decode rejects above it).
inline constexpr std::uint32_t kMaxHelloSurfaces = 64;
/// Hard upper bound on payload length; a length field above this is
/// malformed (it would let a broken peer make us buffer without bound).
inline constexpr std::uint32_t kMaxPayload = 1u << 20;
inline constexpr std::size_t kHeaderSize = 7;

enum class MsgType : std::uint8_t {
  Hello = 1,              ///< server -> client greeting (self-describing)
  Error = 2,              ///< either direction: request-level failure
  Shutdown = 3,           ///< client -> server: stop serving
  Bye = 4,                ///< server -> client: shutdown acknowledged
  AdmissionRequest = 5,   ///< client -> server: Admission API v2 request
  AdmissionDecision = 6,  ///< server -> client: decision (direct or drained)
  PlaceRequest = 7,       ///< client -> server: raw placement (no admission)
  PlaceResponse = 8,
  DeflateCommand = 9,
  DeflationNotice = 10,
  UtilizationReport = 11,
};

[[nodiscard]] const char* msg_type_name(MsgType type) noexcept;

/// One policy registry surface as advertised in a Hello: the surface's
/// name ("admission", "placement", …) and its registered policy names.
struct PolicySurface {
  std::string surface;
  std::vector<std::string> policies;
};

/// First frame on every connection, server -> client: who is serving, and
/// which policies its registries carry (self-description — a client can
/// pick a policy by name without out-of-band docs).
struct Hello {
  std::uint8_t codec_version = kCodecVersion;
  std::string server;                 ///< free-form banner
  std::string admission_policy;       ///< policy this server decides with
  std::vector<std::string> policies;  ///< admission policy names (legacy)
  /// v2: every policy registry surface in the process (admission,
  /// placement, shard-selection, migration, revocation, control — plus
  /// whatever plugins registered), each with its full policy-name list.
  std::vector<PolicySurface> surfaces;
  /// v3: telemetry subscription. Meaningful on a *client* Hello (the only
  /// frame a client may send before its first request): a non-zero value
  /// asks the server to interleave one aggregate UtilizationReport after
  /// every `telemetry_every` admission decisions on this connection.
  /// Zero (default, and on server Hellos) means no telemetry.
  std::uint32_t telemetry_every = 0;
};

struct ErrorMsg {
  std::uint32_t code = 0;
  std::string message;
};

struct Shutdown {};
struct Bye {};

/// Admission API v2 request with a client-assigned correlation id; the
/// matching AdmissionDecisionMsg echoes the id (responses are pipelined,
/// and drained deferral resolutions arrive out of request order).
struct AdmissionRequestMsg {
  std::uint64_t request_id = 0;
  cluster::AdmissionRequest request;
};

struct AdmissionDecisionMsg {
  std::uint64_t request_id = 0;
  cluster::AdmissionDecision decision;
};

using Message =
    std::variant<Hello, ErrorMsg, Shutdown, Bye, AdmissionRequestMsg,
                 AdmissionDecisionMsg, cluster::wire::PlaceRequest,
                 cluster::wire::PlaceResponse, cluster::wire::DeflateCommand,
                 cluster::wire::DeflationNotice,
                 cluster::wire::UtilizationReport>;

[[nodiscard]] MsgType message_type(const Message& message) noexcept;

/// Encodes one complete frame (header + payload).
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const Message& message);

enum class DecodeStatus { Ok, NeedMore, Malformed };

struct DecodeResult {
  DecodeStatus status = DecodeStatus::NeedMore;
  /// Bytes consumed from the input: the full frame on Ok, 0 otherwise.
  std::size_t consumed = 0;
  Message message;    ///< valid only when status == Ok
  std::string error;  ///< set only when status == Malformed
};

/// Decodes the frame starting at `data`. Never reads past `data + size`.
[[nodiscard]] DecodeResult decode_frame(const std::uint8_t* data,
                                        std::size_t size);

/// Incremental frame extraction over a byte stream (socket reads land in
/// arbitrary chunks). A malformed frame poisons the buffer: framing can
/// not be resynchronized after a corrupt length field, so the connection
/// must be dropped.
class FrameBuffer {
 public:
  void append(const std::uint8_t* data, std::size_t size);

  /// Extracts the next complete frame; NeedMore when the buffer holds only
  /// a partial frame (or was poisoned — `poisoned()` disambiguates).
  [[nodiscard]] DecodeResult next();

  [[nodiscard]] bool poisoned() const noexcept { return poisoned_; }
  [[nodiscard]] std::size_t buffered() const noexcept {
    return buffer_.size() - offset_;
  }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t offset_ = 0;
  bool poisoned_ = false;
};

}  // namespace deflate::net
