#include "net/server.hpp"

#include <algorithm>

#include "net/registry.hpp"
#include "policy/catalog.hpp"

namespace deflate::net {

Server::Server(ServiceConfig config) : core_(config) {
  if (!core_.config().capture_path.empty()) {
    capture_ = std::make_unique<CaptureWriter>(core_.config().capture_path,
                                               core_.config());
  }
}

Server::~Server() { stop(); }

bool Server::start() {
  auto listener = ListenSocket::open_loopback(core_.config().port);
  if (!listener.has_value()) return false;
  if (capture_ != nullptr && !capture_->valid()) return false;
  listener_ = std::move(*listener);
  port_ = listener_.port();
  pool_ = std::make_unique<util::ThreadPool>(core_.config().worker_threads);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void Server::accept_loop() {
  for (;;) {
    auto accepted = listener_.accept_one();
    if (!accepted.has_value()) return;  // listener closed: stopping
    auto socket = std::make_shared<Socket>(std::move(*accepted));
    std::uint32_t conn_id = 0;
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      if (stopped_) return;
      conn_id = next_conn_id_++;
      open_connections_.emplace(conn_id, socket);
      ++stats_.connections;
    }
    pool_->submit([this, conn_id, socket] {
      serve_connection(conn_id, std::move(socket));
    });
  }
}

void Server::serve_connection(std::uint32_t conn_id,
                              std::shared_ptr<Socket> socket) {
  {
    Hello hello;
    hello.server = core_.config().banner;
    hello.admission_policy = core_.config().admission_policy;
    hello.policies = AdmissionPolicyRegistry::instance().names();
    for (const policy::SurfaceInfo& info : policy::describe_all_surfaces()) {
      PolicySurface surface;
      surface.surface = info.surface;
      for (const policy::PolicyInfo& p : info.policies) {
        surface.policies.push_back(p.name);
      }
      hello.surfaces.push_back(std::move(surface));
    }
    const auto frame = encode_frame(Message{hello});
    if (!socket->send_all(frame.data(), frame.size())) {
      std::lock_guard<std::mutex> lock(state_mutex_);
      open_connections_.erase(conn_id);
      return;
    }
  }

  auto controller = core_.make_controller();
  /// vm id -> client request id: drained resolutions echo the id the
  /// client attached when it submitted the (then deferred) request.
  std::map<std::uint64_t, std::uint64_t> request_ids;
  /// Telemetry subscription (codec v3): a client Hello with a non-zero
  /// `telemetry_every` asks for one aggregate UtilizationReport after
  /// every N admission decisions on this connection.
  std::uint32_t telemetry_every = 0;
  std::uint32_t telemetry_countdown = 0;
  FrameBuffer frames;
  std::vector<std::uint8_t> out;
  std::uint8_t chunk[16384];
  bool close_connection = false;
  bool request_shutdown = false;

  const auto append = [&out](const std::vector<std::uint8_t>& frame) {
    out.insert(out.end(), frame.begin(), frame.end());
  };

  while (!close_connection) {
    const long received = socket->recv_some(chunk, sizeof(chunk));
    if (received <= 0) break;  // peer gone, or stop() shut the socket down
    frames.append(chunk, static_cast<std::size_t>(received));
    out.clear();

    // Drain every complete frame before writing once: responses to a
    // pipelined batch leave in a single send.
    for (;;) {
      DecodeResult result = frames.next();
      if (result.status == DecodeStatus::NeedMore) break;
      if (result.status == DecodeStatus::Malformed) {
        ErrorMsg error;
        error.code = 400;
        error.message = result.error;
        append(encode_frame(Message{std::move(error)}));
        close_connection = true;
        std::lock_guard<std::mutex> lock(state_mutex_);
        ++stats_.malformed_frames;
        break;
      }

      if (const auto* request =
              std::get_if<AdmissionRequestMsg>(&result.message)) {
        std::lock_guard<std::mutex> admission(admission_mutex_);
        const sim::SimTime now = core_.advance_clock(request->request.arrival);
        if (capture_ != nullptr) {
          capture_->record(conn_id, encode_frame(result.message));
        }
        std::uint64_t sent_decisions = 0;
        // Piggyback drain: deferral resolutions due by now go out first,
        // ahead of the fresh request's own decision.
        for (auto& resolved : controller->drain(now)) {
          AdmissionDecisionMsg msg;
          const auto it = request_ids.find(resolved.request.spec.id);
          msg.request_id = it == request_ids.end() ? 0 : it->second;
          msg.decision = resolved.decision;
          const auto frame = encode_frame(Message{msg});
          if (capture_ != nullptr) capture_->record(conn_id, frame);
          append(frame);
          ++sent_decisions;
        }
        request_ids[request->request.spec.id] = request->request_id;
        AdmissionDecisionMsg direct;
        direct.request_id = request->request_id;
        direct.decision = controller->decide(request->request, now);
        const auto frame = encode_frame(Message{direct});
        if (capture_ != nullptr) capture_->record(conn_id, frame);
        append(frame);
        ++sent_decisions;
        // Interleaved telemetry: after every `telemetry_every` requests a
        // subscribed connection gets one fleet-wide utilization frame,
        // snapshotted under the same admission mutex as the decision it
        // follows. Telemetry frames are not captured: replaying a capture
        // must reproduce the decision stream regardless of who was
        // subscribed to what.
        bool telemetry_due = false;
        if (telemetry_every != 0 && ++telemetry_countdown >= telemetry_every) {
          telemetry_countdown = 0;
          telemetry_due = true;
          append(encode_frame(Message{fleet_utilization()}));
        }
        std::lock_guard<std::mutex> lock(state_mutex_);
        ++stats_.admission_requests;
        stats_.decisions += sent_decisions;
        if (telemetry_due) ++stats_.telemetry_reports;
      } else if (const auto* place =
                     std::get_if<cluster::wire::PlaceRequest>(
                         &result.message)) {
        // The raw placement path: a spec-only request straight to the
        // manager, bypassing admission (the legacy place_vm contract).
        hv::VmSpec spec;
        spec.id = place->vm_id;
        spec.vcpus = static_cast<int>(place->demand.cpu());
        spec.memory_mib = place->demand.memory();
        spec.disk_bw_mbps = place->demand.disk_bw();
        spec.net_bw_mbps = place->demand.net_bw();
        spec.priority = place->priority;
        spec.deflatable = place->deflatable;
        cluster::wire::PlaceResponse response;
        response.vm_id = place->vm_id;
        {
          std::lock_guard<std::mutex> admission(admission_mutex_);
          const auto placement = core_.manager().place_vm(spec);
          response.accepted =
              placement.status != cluster::PlacementResult::Status::Rejected;
          response.host_id = placement.host_id;
          response.launch_fraction = placement.launch_fraction;
        }
        append(encode_frame(Message{response}));
        std::lock_guard<std::mutex> lock(state_mutex_);
        ++stats_.place_requests;
      } else if (const auto* hello = std::get_if<Hello>(&result.message)) {
        // A client Hello is a subscription update: it (re)arms or cancels
        // the periodic telemetry stream for this connection. Nothing is
        // answered — the next due report is the acknowledgement.
        telemetry_every = hello->telemetry_every;
        telemetry_countdown = 0;
      } else if (std::holds_alternative<Shutdown>(result.message)) {
        append(encode_frame(Message{Bye{}}));
        close_connection = true;
        request_shutdown = true;
        break;
      } else {
        ErrorMsg error;
        error.code = 422;
        error.message =
            std::string("unexpected ") +
            msg_type_name(message_type(result.message)) + " frame";
        append(encode_frame(Message{std::move(error)}));
      }
    }

    if (!out.empty() && !socket->send_all(out.data(), out.size())) break;
  }

  socket->close();
  std::lock_guard<std::mutex> lock(state_mutex_);
  open_connections_.erase(conn_id);
  if (request_shutdown) {
    shutdown_requested_ = true;
    shutdown_cv_.notify_all();
  }
}

cluster::wire::UtilizationReport Server::fleet_utilization() {
  cluster::wire::UtilizationReport report;
  report.host_id = kFleetTelemetryHostId;
  cluster::ClusterManagerBase& manager = core_.manager();
  res::ResourceVector capacity;
  for (std::size_t s = 0; s < manager.server_count(); ++s) {
    if (!manager.server_active(s)) continue;
    const hv::Host& host = manager.host(s);
    report.available += host.available();
    report.committed += host.committed();
    capacity += host.capacity();
  }
  double worst = 0.0;
  for (const res::Resource r : {res::Resource::Cpu, res::Resource::Memory}) {
    if (capacity[r] > 0.0) {
      worst = std::max(worst, report.committed[r] / capacity[r]);
    }
  }
  report.overcommit_ratio = worst;
  return report;
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(state_mutex_);
  shutdown_cv_.wait(lock,
                    [this] { return shutdown_requested_ || stopped_; });
}

void Server::stop() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    stopped_ = true;
    shutdown_cv_.notify_all();
    // Wake every handler parked in recv().
    for (auto& [id, socket] : open_connections_) socket->shutdown_both();
  }
  listener_.close();  // wakes the accept loop
  if (accept_thread_.joinable()) accept_thread_.join();
  if (pool_ != nullptr) pool_->wait_idle();
  if (capture_ != nullptr) {
    std::lock_guard<std::mutex> admission(admission_mutex_);
    capture_->flush();
  }
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return stats_;
}

}  // namespace deflate::net
