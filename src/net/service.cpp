#include "net/service.hpp"

#include <stdexcept>

#include "net/registry.hpp"

namespace deflate::net {

ServiceCore::ServiceCore(const ServiceConfig& config) : config_(config) {
  if (AdmissionPolicyRegistry::instance().find(config_.admission_policy) ==
      nullptr) {
    throw std::invalid_argument(
        "unknown admission policy '" + config_.admission_policy +
        "' (expected " +
        policy::joined_policy_names<cluster::AdmissionSurface>() + ")");
  }

  if (config_.price_trace_hours > 0) {
    transient::SpotPriceConfig spot = config_.spot;
    spot.on_demand_price = config_.on_demand_price;
    traces_.push_back(
        transient::SpotPriceModel(spot, config_.price_seed)
            .generate(sim::SimTime::from_hours(config_.price_trace_hours)));
  }
  std::vector<const transient::PriceTrace*> trace_ptrs;
  for (const auto& trace : traces_) trace_ptrs.push_back(&trace);
  feed_ = cluster::PriceFeed(std::move(trace_ptrs), config_.on_demand_price);

  cluster::ShardedClusterConfig fleet;
  fleet.cluster.server_count = config_.server_count;
  fleet.cluster.placement_name = config_.placement_policy;
  fleet.shard_count = config_.shard_count;
  fleet.selection = config_.shard_policy;
  fleet.selection_name = config_.shard_policy_name;
  fleet.routing_seed = config_.routing_seed;
  // The manager ctor resolves both names through their registries and
  // throws the same one-line "unknown … (expected a|b|c)" diagnostics.
  manager_ = cluster::make_cluster_manager(fleet);
}

std::unique_ptr<cluster::AdmissionController> ServiceCore::make_controller() {
  const auto* entry =
      AdmissionPolicyRegistry::instance().find(config_.admission_policy);
  // Existence was checked in the constructor; a policy cannot be
  // unregistered, so entry is non-null here.
  return entry->make(config_.admission, *manager_, feed_);
}

sim::SimTime ServiceCore::advance_clock(sim::SimTime arrival) noexcept {
  if (arrival > clock_) clock_ = arrival;
  return clock_;
}

}  // namespace deflate::net
