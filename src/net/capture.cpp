#include "net/capture.hpp"

#include <cstdio>
#include <cstdlib>
#include <deque>
#include <map>
#include <sstream>

#include "cluster/wire.hpp"
#include "net/registry.hpp"

namespace deflate::net {

namespace {

/// Hexfloat formatting: %a round-trips every finite double exactly, which
/// is what lets the replayer rebuild a bit-identical price trace.
std::string hexf(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%a", v);
  return buffer;
}

bool parse_hexf(const std::map<std::string, std::string>& fields,
                const std::string& key, double& out) {
  const auto it = fields.find(key);
  if (it == fields.end() || it->second.empty()) return false;
  char* end = nullptr;
  out = std::strtod(it->second.c_str(), &end);
  return end != nullptr && *end == '\0';
}

bool parse_u64(const std::map<std::string, std::string>& fields,
               const std::string& key, std::uint64_t& out) {
  const auto it = fields.find(key);
  if (it == fields.end() || it->second.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(it->second.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

const char* shard_policy_token(cluster::ShardSelectionPolicy p) noexcept {
  switch (p) {
    case cluster::ShardSelectionPolicy::PowerOfTwoChoices: return "p2c";
    case cluster::ShardSelectionPolicy::LeastLoaded: return "least-loaded";
    case cluster::ShardSelectionPolicy::RoundRobin: return "round-robin";
  }
  return "p2c";
}

std::string join_ceilings(const std::vector<double>& ceilings) {
  std::ostringstream out;
  for (std::size_t i = 0; i < ceilings.size(); ++i) {
    if (i > 0) out << ',';
    out << hexf(ceilings[i]);
  }
  return out.str();
}

bool split_ceilings(const std::string& joined, std::vector<double>& out) {
  out.clear();
  if (joined.empty()) return true;
  std::istringstream in(joined);
  std::string token;
  while (std::getline(in, token, ',')) {
    char* end = nullptr;
    out.push_back(std::strtod(token.c_str(), &end));
    if (end == nullptr || *end != '\0') return false;
  }
  return true;
}

}  // namespace

std::string encode_capture_header(const ServiceConfig& config) {
  return cluster::wire::encode_envelope(
      "capture_header",
      {{"codec", std::to_string(kCodecVersion)},
       {"servers", std::to_string(config.server_count)},
       {"shards", std::to_string(config.shard_count)},
       {"shard_policy", shard_policy_token(config.shard_policy)},
       {"shard_policy_name", config.shard_policy_name},
       {"placement", config.placement_policy},
       {"routing_seed", std::to_string(config.routing_seed)},
       {"admission", config.admission_policy},
       {"ceilings", join_ceilings(config.admission.class_ceilings)},
       {"default_ceiling", hexf(config.admission.default_ceiling)},
       {"defer_hours", hexf(config.admission.max_defer_hours)},
       {"od_price", hexf(config.on_demand_price)},
       {"price_hours", hexf(config.price_trace_hours)},
       {"price_seed", std::to_string(config.price_seed)},
       {"spot_mean", hexf(config.spot.mean_price)},
       {"spot_reversion", hexf(config.spot.reversion_rate)},
       {"spot_volatility", hexf(config.spot.volatility)},
       {"spot_shock_rate", hexf(config.spot.shock_rate_per_hour)},
       {"spot_shock_mult", hexf(config.spot.shock_multiplier)},
       {"spot_shock_decay", hexf(config.spot.shock_decay_hours)},
       {"spot_floor", hexf(config.spot.floor_price)},
       {"spot_step_us", std::to_string(config.spot.step.micros())}});
}

std::optional<ServiceConfig> decode_capture_header(const std::string& line) {
  const auto fields = cluster::wire::decode_envelope("capture_header", line);
  if (!fields.has_value()) return std::nullopt;

  ServiceConfig config;
  std::uint64_t codec = 0, servers = 0, shards = 0, routing_seed = 0,
                price_seed = 0, step_us = 0;
  const auto policy_it = fields->find("shard_policy");
  const auto admission_it = fields->find("admission");
  const auto ceilings_it = fields->find("ceilings");
  if (!parse_u64(*fields, "codec", codec) || codec != kCodecVersion ||
      !parse_u64(*fields, "servers", servers) ||
      !parse_u64(*fields, "shards", shards) ||
      !parse_u64(*fields, "routing_seed", routing_seed) ||
      !parse_u64(*fields, "price_seed", price_seed) ||
      !parse_u64(*fields, "spot_step_us", step_us) ||
      policy_it == fields->end() || admission_it == fields->end() ||
      ceilings_it == fields->end()) {
    return std::nullopt;
  }
  const auto shard_policy = parse_shard_policy(policy_it->second);
  if (!shard_policy.has_value() ||
      !split_ceilings(ceilings_it->second, config.admission.class_ceilings) ||
      !parse_hexf(*fields, "default_ceiling",
                  config.admission.default_ceiling) ||
      !parse_hexf(*fields, "defer_hours", config.admission.max_defer_hours) ||
      !parse_hexf(*fields, "od_price", config.on_demand_price) ||
      !parse_hexf(*fields, "price_hours", config.price_trace_hours) ||
      !parse_hexf(*fields, "spot_mean", config.spot.mean_price) ||
      !parse_hexf(*fields, "spot_reversion", config.spot.reversion_rate) ||
      !parse_hexf(*fields, "spot_volatility", config.spot.volatility) ||
      !parse_hexf(*fields, "spot_shock_rate",
                  config.spot.shock_rate_per_hour) ||
      !parse_hexf(*fields, "spot_shock_mult", config.spot.shock_multiplier) ||
      !parse_hexf(*fields, "spot_shock_decay",
                  config.spot.shock_decay_hours) ||
      !parse_hexf(*fields, "spot_floor", config.spot.floor_price)) {
    return std::nullopt;
  }
  config.server_count = static_cast<std::size_t>(servers);
  config.shard_count = static_cast<std::size_t>(shards);
  config.shard_policy = *shard_policy;
  // Registry-name fields (absent in pre-policy-layer captures; replaying
  // those keeps the enum-selected behavior, bit-identical).
  if (const auto it = fields->find("shard_policy_name"); it != fields->end()) {
    config.shard_policy_name = it->second;
  }
  if (const auto it = fields->find("placement"); it != fields->end()) {
    config.placement_policy = it->second;
  }
  config.routing_seed = routing_seed;
  config.admission_policy = admission_it->second;
  config.price_seed = price_seed;
  config.spot.step =
      sim::SimTime::from_micros(static_cast<std::int64_t>(step_us));
  config.spot.on_demand_price = config.on_demand_price;
  return config;
}

CaptureWriter::CaptureWriter(const std::string& path,
                             const ServiceConfig& config)
    : out_(path, std::ios::binary | std::ios::trunc) {
  if (out_.is_open()) out_ << encode_capture_header(config) << '\n';
}

void CaptureWriter::record(std::uint32_t conn_id,
                           const std::vector<std::uint8_t>& frame) {
  char id[4];
  for (int i = 0; i < 4; ++i) {
    id[i] = static_cast<char>((conn_id >> (8 * i)) & 0xFF);
  }
  out_.write(id, sizeof(id));
  out_.write(reinterpret_cast<const char*>(frame.data()),
             static_cast<std::streamsize>(frame.size()));
}

namespace {

struct ReplayConnection {
  std::unique_ptr<cluster::AdmissionController> controller;
  /// vm id -> client request id, for correlating drained resolutions the
  /// same way the live server did.
  std::map<std::uint64_t, std::uint64_t> request_ids;
};

ReplayReport failed(std::string error) {
  ReplayReport report;
  report.error = std::move(error);
  return report;
}

}  // namespace

ReplayReport replay_capture(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return failed("cannot open capture file '" + path + "'");
  std::string header_line;
  if (!std::getline(in, header_line)) return failed("empty capture file");
  const auto config = decode_capture_header(header_line);
  if (!config.has_value()) return failed("bad capture header");

  ServiceCore core(*config);
  std::map<std::uint32_t, ReplayConnection> connections;
  // Regenerated decisions not yet matched against a captured record, in
  // emission order: (conn id, frame bytes).
  std::deque<std::pair<std::uint32_t, std::vector<std::uint8_t>>> expected;
  ReplayReport report;

  const auto note_mismatch = [&](std::string detail) {
    ++report.mismatches;
    if (report.details.size() < 8) report.details.push_back(std::move(detail));
  };

  for (std::size_t record = 0;; ++record) {
    char id_bytes[4];
    in.read(id_bytes, sizeof(id_bytes));
    if (in.gcount() == 0) break;  // clean EOF between records
    if (in.gcount() != sizeof(id_bytes)) {
      return failed("truncated record header at record " +
                    std::to_string(record));
    }
    std::uint32_t conn_id = 0;
    for (int i = 0; i < 4; ++i) {
      conn_id |= static_cast<std::uint32_t>(
                     static_cast<std::uint8_t>(id_bytes[i]))
                 << (8 * i);
    }

    // Frames are self-delimiting: read the fixed header, then the payload.
    std::vector<std::uint8_t> frame(kHeaderSize);
    in.read(reinterpret_cast<char*>(frame.data()), kHeaderSize);
    if (in.gcount() != static_cast<std::streamsize>(kHeaderSize)) {
      return failed("truncated frame header at record " +
                    std::to_string(record));
    }
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(frame[3 + i]) << (8 * i);
    }
    if (len > kMaxPayload) {
      return failed("oversized frame at record " + std::to_string(record));
    }
    frame.resize(kHeaderSize + len);
    in.read(reinterpret_cast<char*>(frame.data() + kHeaderSize), len);
    if (in.gcount() != static_cast<std::streamsize>(len)) {
      return failed("truncated frame payload at record " +
                    std::to_string(record));
    }
    const auto decoded = decode_frame(frame.data(), frame.size());
    if (decoded.status != DecodeStatus::Ok) {
      return failed("corrupt frame at record " + std::to_string(record) +
                    ": " + decoded.error);
    }

    if (const auto* request =
            std::get_if<AdmissionRequestMsg>(&decoded.message)) {
      ++report.requests;
      auto& conn = connections[conn_id];
      if (conn.controller == nullptr) conn.controller = core.make_controller();
      const sim::SimTime now = core.advance_clock(request->request.arrival);
      // Same order as the live server: drain first, then the fresh decide.
      for (auto& resolved : conn.controller->drain(now)) {
        AdmissionDecisionMsg msg;
        const auto id_it = conn.request_ids.find(resolved.request.spec.id);
        msg.request_id =
            id_it == conn.request_ids.end() ? 0 : id_it->second;
        msg.decision = resolved.decision;
        expected.emplace_back(conn_id, encode_frame(Message{msg}));
      }
      conn.request_ids[request->request.spec.id] = request->request_id;
      AdmissionDecisionMsg direct;
      direct.request_id = request->request_id;
      direct.decision = conn.controller->decide(request->request, now);
      expected.emplace_back(conn_id, encode_frame(Message{direct}));
    } else if (std::holds_alternative<AdmissionDecisionMsg>(decoded.message)) {
      ++report.decisions;
      if (expected.empty()) {
        note_mismatch("record " + std::to_string(record) +
                      ": captured decision with none regenerated");
        continue;
      }
      const auto [expected_conn, expected_frame] = std::move(expected.front());
      expected.pop_front();
      if (expected_conn != conn_id || expected_frame != frame) {
        note_mismatch("record " + std::to_string(record) +
                      ": decision diverged (conn " + std::to_string(conn_id) +
                      ")");
      }
    } else {
      return failed("unexpected " +
                    std::string(msg_type_name(message_type(decoded.message))) +
                    " at record " + std::to_string(record));
    }
  }

  for (const auto& leftover : expected) {
    note_mismatch("regenerated decision for conn " +
                  std::to_string(leftover.first) + " never captured");
  }
  return report;
}

}  // namespace deflate::net
