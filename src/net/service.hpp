// Shared substance of the admission service: the configuration a
// deflated daemon runs with, and the state both the live server
// (server.hpp) and the capture replayer (capture.hpp) build from it —
// spot-price trace, price feed, cluster manager, per-connection admission
// controllers and the global service clock.
//
// The replayer reconstructs a ServiceCore from the capture file's header
// and must end up with *bit-identical* behavior (same trace, same
// manager routing, same policy), so everything behavioral lives in
// ServiceConfig and nothing in ambient state.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/admission.hpp"
#include "cluster/sharded_manager.hpp"
#include "transient/spot_price.hpp"

namespace deflate::net {

struct ServiceConfig {
  /// Listen port; 0 = kernel-assigned ephemeral port (tests, CI).
  std::uint16_t port = 0;
  /// Connection-handler pool size.
  std::size_t worker_threads = 4;

  // Fleet.
  std::size_t server_count = 40;
  std::size_t shard_count = 1;
  cluster::ShardSelectionPolicy shard_policy =
      cluster::ShardSelectionPolicy::PowerOfTwoChoices;
  /// Registry name for shard selection; empty defers to `shard_policy`.
  /// Required to select a link-time plugin selector (no enum value).
  std::string shard_policy_name;
  /// Registry name for placement scoring; empty keeps the default
  /// (fitness). Unknown names throw std::invalid_argument at build.
  std::string placement_policy;
  std::uint64_t routing_seed = 42;

  // Admission.
  /// Registry name (net/registry.hpp): admit-all, price, bid-opt, or a
  /// plugin-registered policy.
  std::string admission_policy = "admit-all";
  /// Ceilings / deferral window; the `policy` kind inside is ignored —
  /// `admission_policy` picks the registry entry.
  cluster::AdmissionConfig admission;

  // Market. price_trace_hours > 0 attaches a single-market OU spot trace
  /// (deterministic in `spot` + `price_seed`) to the price feed; 0 runs
  /// feed-less (price policies degrade to admit-all).
  double on_demand_price = 1.0;
  double price_trace_hours = 0.0;
  std::uint64_t price_seed = 42;
  transient::SpotPriceConfig spot;

  /// Append every AdmissionRequest/AdmissionDecision to this message log
  /// (capture.hpp format); empty = no capture.
  std::string capture_path;

  /// Free-form server banner carried in the Hello frame.
  std::string banner = "deflated/0.1";
};

/// The deterministic heart of the service, shared by server and replayer.
/// Thread-compatible: the server serializes access with its own mutex.
class ServiceCore {
 public:
  /// Builds trace, feed and manager. Throws std::invalid_argument when
  /// the config names an unknown admission policy.
  explicit ServiceCore(const ServiceConfig& config);

  /// A fresh controller for one connection, built by the registry entry
  /// the config names. Controllers share the manager and feed; the
  /// deferral queue is per-connection, so drained resolutions always
  /// belong to the connection being served.
  [[nodiscard]] std::unique_ptr<cluster::AdmissionController>
  make_controller();

  /// Advances the global service clock to `arrival` (monotonic: never
  /// moves backwards) and returns the new now.
  sim::SimTime advance_clock(sim::SimTime arrival) noexcept;

  [[nodiscard]] cluster::ClusterManagerBase& manager() noexcept {
    return *manager_;
  }
  [[nodiscard]] const ServiceConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] sim::SimTime clock() const noexcept { return clock_; }

 private:
  ServiceConfig config_;
  /// Backing storage for the feed (PriceFeed holds raw pointers).
  std::vector<transient::PriceTrace> traces_;
  cluster::PriceFeed feed_;
  std::unique_ptr<cluster::ClusterManagerBase> manager_;
  sim::SimTime clock_;
};

}  // namespace deflate::net
