// Self-describing admission-policy registry for the service layer.
//
// The deflated daemon selects its admission policy by *name* at startup
// (and advertises every name it knows in the Hello frame), so a plugin —
// a test double, an experimental policy, a site-local heuristic — can be
// served without touching the daemon's dispatch code: register a name,
// a one-line description and a factory, and `--admission <name>` works.
// The built-ins (the three policies of src/cluster/admission.hpp) are
// registered by the registry itself, so lookup never depends on static
// initialization order across translation units.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/admission.hpp"
#include "cluster/sharded_manager.hpp"

namespace deflate::net {

struct AdmissionPolicyEntry {
  std::string name;
  std::string description;
  /// Builds a controller over the service's shared manager and feed. The
  /// config's `policy` kind is advisory — the name picked the entry.
  std::function<std::unique_ptr<cluster::AdmissionController>(
      const cluster::AdmissionConfig&, cluster::ClusterManagerBase&,
      cluster::PriceFeed)>
      make;
};

class AdmissionPolicyRegistry {
 public:
  /// The process-wide registry, built-ins pre-registered:
  ///   admit-all, price, bid-opt (src/cluster/admission.hpp).
  [[nodiscard]] static AdmissionPolicyRegistry& instance();

  /// Registers a policy; returns false (and changes nothing) when the
  /// name is already taken.
  bool add(AdmissionPolicyEntry entry);

  /// nullptr when the name is unknown.
  [[nodiscard]] const AdmissionPolicyEntry* find(const std::string& name) const;

  /// Registered names, sorted (the Hello frame's policy list).
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] const std::vector<AdmissionPolicyEntry>& entries() const {
    return entries_;
  }

 private:
  AdmissionPolicyRegistry();

  std::vector<AdmissionPolicyEntry> entries_;
};

/// Parses a shard-selection policy name (`p2c` / `least-loaded` /
/// `round-robin`, matching deflatectl's --shard-policy values); nullopt
/// on anything else.
[[nodiscard]] std::optional<cluster::ShardSelectionPolicy> parse_shard_policy(
    const std::string& name);

}  // namespace deflate::net
