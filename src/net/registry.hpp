// Service-layer facade over the generic policy registries.
//
// PR 6 introduced a bespoke `AdmissionPolicyRegistry` here so the deflated
// daemon could select (and advertise) admission policies by name. The
// generic policy layer (src/policy/registry.hpp) generalized that design
// to every pluggable surface, and the admission registry now lives with
// its policies in src/cluster/admission.hpp (`cluster::AdmissionSurface`).
// The aliases below keep the original service-layer spelling working —
// daemon code and plugins registered through either name share one
// process-wide registry.
#pragma once

#include <optional>
#include <string>

#include "cluster/admission.hpp"
#include "cluster/sharded_manager.hpp"
#include "policy/registry.hpp"

namespace deflate::net {

using AdmissionPolicyRegistry = cluster::AdmissionRegistry;
using AdmissionPolicyEntry = AdmissionPolicyRegistry::Entry;

/// Parses a shard-selection policy name (`p2c` / `least-loaded` /
/// `round-robin`, matching deflatectl's --shard-policy values); nullopt
/// on anything else. Delegates to the shard-selection registry's legacy
/// alias mapping.
[[nodiscard]] std::optional<cluster::ShardSelectionPolicy> parse_shard_policy(
    const std::string& name);

}  // namespace deflate::net
