#include "net/client.hpp"

namespace deflate::net {

std::optional<Client> Client::connect(std::uint16_t port) {
  Client client;
  client.socket_ = connect_loopback(port);
  if (!client.socket_.valid()) return std::nullopt;
  if (!client.read_until([&client] { return client.saw_hello_; })) {
    return std::nullopt;
  }
  return client;
}

template <typename Done>
bool Client::read_until(Done done) {
  std::uint8_t chunk[16384];
  for (;;) {
    // Drain buffered frames first (a batch response arrives as one read).
    for (;;) {
      DecodeResult result = frames_.next();
      if (result.status == DecodeStatus::NeedMore) break;
      if (result.status == DecodeStatus::Malformed) return false;
      if (!handle(std::move(result.message))) return false;
      if (done()) return true;
    }
    if (done()) return true;
    const long received = socket_.recv_some(chunk, sizeof(chunk));
    if (received <= 0) return false;
    frames_.append(chunk, static_cast<std::size_t>(received));
  }
}

bool Client::handle(Message message) {
  if (auto* hello = std::get_if<Hello>(&message)) {
    hello_ = std::move(*hello);
    saw_hello_ = true;
    return true;
  }
  if (const auto* decision = std::get_if<AdmissionDecisionMsg>(&message)) {
    if (outstanding_.erase(decision->request_id) == 0) {
      // Not awaited: a deferral from an earlier batch got resolved.
      resolved_[decision->request_id] = decision->decision;
    }
    decisions_[decision->request_id] = decision->decision;
    return true;
  }
  if (const auto* place = std::get_if<cluster::wire::PlaceResponse>(&message)) {
    last_place_ = *place;
    return true;
  }
  if (const auto* report =
          std::get_if<cluster::wire::UtilizationReport>(&message)) {
    // Interleaved telemetry (codec v3): count and keep the latest; it is
    // never what a read_until predicate waits for.
    last_telemetry_ = *report;
    ++telemetry_reports_;
    return true;
  }
  if (std::holds_alternative<Bye>(message)) {
    saw_bye_ = true;
    return true;
  }
  if (auto* error = std::get_if<ErrorMsg>(&message)) {
    last_error_ = std::move(*error);
    return false;
  }
  return false;  // anything else is a protocol violation
}

std::uint64_t Client::submit(const cluster::AdmissionRequest& request) {
  AdmissionRequestMsg msg;
  msg.request_id = next_request_id_++;
  msg.request = request;
  const auto frame = encode_frame(Message{msg});
  batch_.insert(batch_.end(), frame.begin(), frame.end());
  outstanding_.insert(msg.request_id);
  return msg.request_id;
}

bool Client::flush() {
  if (batch_.empty()) return true;
  if (!socket_.send_all(batch_.data(), batch_.size())) return false;
  batch_.clear();
  return read_until([this] { return outstanding_.empty(); });
}

std::optional<cluster::AdmissionDecision> Client::admit(
    const cluster::AdmissionRequest& request) {
  const std::uint64_t id = submit(request);
  if (!flush()) return std::nullopt;
  const auto it = decisions_.find(id);
  if (it == decisions_.end()) return std::nullopt;
  return it->second;
}

std::optional<cluster::wire::PlaceResponse> Client::place(
    const cluster::wire::PlaceRequest& request) {
  const auto frame = encode_frame(Message{request});
  if (!socket_.send_all(frame.data(), frame.size())) return std::nullopt;
  last_place_.reset();
  if (!read_until([this] { return last_place_.has_value(); })) {
    return std::nullopt;
  }
  return last_place_;
}

bool Client::request_telemetry(std::uint32_t every) {
  Hello hello;
  hello.server = "client";
  hello.telemetry_every = every;
  const auto frame = encode_frame(Message{hello});
  return socket_.send_all(frame.data(), frame.size());
}

bool Client::shutdown_server() {
  const auto frame = encode_frame(Message{Shutdown{}});
  if (!socket_.send_all(frame.data(), frame.size())) return false;
  return read_until([this] { return saw_bye_; });
}

}  // namespace deflate::net
