#include "net/codec.hpp"

#include <cstring>
#include <optional>

namespace deflate::net {

namespace {

// --- little-endian byte writer ---------------------------------------------

class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back((v >> (8 * i)) & 0xFF);
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back((v >> (8 * i)) & 0xFF);
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }
  void vec(const res::ResourceVector& v) {
    f64(v.cpu());
    f64(v.memory());
    f64(v.disk_bw());
    f64(v.net_bw());
  }
  void time(sim::SimTime t) { i64(t.micros()); }

  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

// --- bounds-checked little-endian reader ------------------------------------

class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool u8(std::uint8_t& v) {
    if (pos_ + 1 > size_) return false;
    v = data_[pos_++];
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (pos_ + 4 > size_) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (pos_ + 8 > size_) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return true;
  }
  bool i64(std::int64_t& v) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    std::memcpy(&v, &bits, sizeof(v));
    return true;
  }
  bool f64(double& v) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    std::memcpy(&v, &bits, sizeof(v));
    return true;
  }
  bool str(std::string& s) {
    std::uint32_t len = 0;
    if (!u32(len) || pos_ + len > size_) return false;
    s.assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return true;
  }
  bool vec(res::ResourceVector& v) {
    double cpu = 0, mem = 0, disk = 0, net = 0;
    if (!f64(cpu) || !f64(mem) || !f64(disk) || !f64(net)) return false;
    v = res::ResourceVector(cpu, mem, disk, net);
    return true;
  }
  bool time(sim::SimTime& t) {
    std::int64_t micros = 0;
    if (!i64(micros)) return false;
    t = sim::SimTime::from_micros(micros);
    return true;
  }
  /// Enum with validation: rejects values above `max` (a frame from a
  /// newer peer must not alias onto a random enumerator).
  template <typename E>
  bool enum8(E& e, std::uint8_t max) {
    std::uint8_t raw = 0;
    if (!u8(raw) || raw > max) return false;
    e = static_cast<E>(raw);
    return true;
  }

  [[nodiscard]] bool exhausted() const noexcept { return pos_ == size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// --- per-type payload encodings ---------------------------------------------

void put_spec(ByteWriter& w, const hv::VmSpec& spec) {
  w.u64(spec.id);
  w.str(spec.name);
  w.u32(static_cast<std::uint32_t>(spec.vcpus));
  w.f64(spec.memory_mib);
  w.f64(spec.disk_bw_mbps);
  w.f64(spec.net_bw_mbps);
  w.f64(spec.priority);
  w.u8(spec.deflatable ? 1 : 0);
  w.f64(spec.min_fraction);
  w.u8(static_cast<std::uint8_t>(spec.workload));
}

bool get_spec(ByteReader& r, hv::VmSpec& spec) {
  std::uint32_t vcpus = 0;
  std::uint8_t deflatable = 0;
  if (!r.u64(spec.id) || !r.str(spec.name) || !r.u32(vcpus) ||
      !r.f64(spec.memory_mib) || !r.f64(spec.disk_bw_mbps) ||
      !r.f64(spec.net_bw_mbps) || !r.f64(spec.priority) ||
      !r.u8(deflatable) || deflatable > 1 || !r.f64(spec.min_fraction) ||
      !r.enum8(spec.workload,
               static_cast<std::uint8_t>(hv::WorkloadClass::Unknown))) {
    return false;
  }
  spec.vcpus = static_cast<int>(vcpus);
  spec.deflatable = deflatable == 1;
  return true;
}

void put_placement(ByteWriter& w, const cluster::PlacementResult& p) {
  w.u8(static_cast<std::uint8_t>(p.status));
  w.u64(p.host_id);
  w.u8(p.needed_reclamation ? 1 : 0);
  w.f64(p.launch_fraction);
}

bool get_placement(ByteReader& r, cluster::PlacementResult& p) {
  std::uint8_t reclamation = 0;
  return r.enum8(p.status, static_cast<std::uint8_t>(
                               cluster::PlacementResult::Status::Rejected)) &&
         r.u64(p.host_id) && r.u8(reclamation) && reclamation <= 1 &&
         (p.needed_reclamation = reclamation == 1, true) &&
         r.f64(p.launch_fraction);
}

struct PayloadEncoder {
  ByteWriter w;

  void operator()(const Hello& m) {
    w.u8(m.codec_version);
    w.str(m.server);
    w.str(m.admission_policy);
    w.u32(static_cast<std::uint32_t>(m.policies.size()));
    for (const std::string& name : m.policies) w.str(name);
    w.u32(static_cast<std::uint32_t>(m.surfaces.size()));
    for (const PolicySurface& surface : m.surfaces) {
      w.str(surface.surface);
      w.u32(static_cast<std::uint32_t>(surface.policies.size()));
      for (const std::string& name : surface.policies) w.str(name);
    }
    w.u32(m.telemetry_every);
  }
  void operator()(const ErrorMsg& m) {
    w.u32(m.code);
    w.str(m.message);
  }
  void operator()(const Shutdown&) {}
  void operator()(const Bye&) {}
  void operator()(const AdmissionRequestMsg& m) {
    w.u64(m.request_id);
    put_spec(w, m.request.spec);
    w.u32(static_cast<std::uint32_t>(m.request.priority_class));
    w.time(m.request.arrival);
    w.u8(m.request.deadline.has_value() ? 1 : 0);
    w.time(m.request.deadline.value_or(sim::SimTime{}));
  }
  void operator()(const AdmissionDecisionMsg& m) {
    w.u64(m.request_id);
    w.u8(static_cast<std::uint8_t>(m.decision.status));
    w.u8(static_cast<std::uint8_t>(m.decision.reason));
    w.f64(m.decision.quoted_price);
    put_placement(w, m.decision.placement);
    w.time(m.decision.retry_at);
  }
  void operator()(const cluster::wire::PlaceRequest& m) {
    w.u64(m.vm_id);
    w.vec(m.demand);
    w.f64(m.priority);
    w.u8(m.deflatable ? 1 : 0);
  }
  void operator()(const cluster::wire::PlaceResponse& m) {
    w.u64(m.vm_id);
    w.u8(m.accepted ? 1 : 0);
    w.u64(m.host_id);
    w.f64(m.launch_fraction);
  }
  void operator()(const cluster::wire::DeflateCommand& m) {
    w.u64(m.vm_id);
    w.vec(m.target);
  }
  void operator()(const cluster::wire::DeflationNotice& m) {
    w.u64(m.vm_id);
    w.vec(m.old_alloc);
    w.vec(m.new_alloc);
  }
  void operator()(const cluster::wire::UtilizationReport& m) {
    w.u64(m.host_id);
    w.vec(m.available);
    w.vec(m.committed);
    w.f64(m.overcommit_ratio);
  }
};

std::optional<Message> decode_payload(MsgType type, const std::uint8_t* data,
                                      std::size_t size) {
  ByteReader r(data, size);
  Message out;
  bool ok = false;
  switch (type) {
    case MsgType::Hello: {
      Hello m;
      std::uint32_t count = 0;
      ok = r.u8(m.codec_version) && r.str(m.server) &&
           r.str(m.admission_policy) && r.u32(count) && count <= 4096;
      for (std::uint32_t i = 0; ok && i < count; ++i) {
        std::string name;
        ok = r.str(name);
        if (ok) m.policies.push_back(std::move(name));
      }
      std::uint32_t surface_count = 0;
      ok = ok && r.u32(surface_count) && surface_count <= kMaxHelloSurfaces;
      for (std::uint32_t s = 0; ok && s < surface_count; ++s) {
        PolicySurface surface;
        std::uint32_t policy_count = 0;
        ok = r.str(surface.surface) && r.u32(policy_count) &&
             policy_count <= 4096;
        for (std::uint32_t i = 0; ok && i < policy_count; ++i) {
          std::string name;
          ok = r.str(name);
          if (ok) surface.policies.push_back(std::move(name));
        }
        if (ok) m.surfaces.push_back(std::move(surface));
      }
      ok = ok && r.u32(m.telemetry_every);
      out = std::move(m);
      break;
    }
    case MsgType::Error: {
      ErrorMsg m;
      ok = r.u32(m.code) && r.str(m.message);
      out = std::move(m);
      break;
    }
    case MsgType::Shutdown:
      out = Shutdown{};
      ok = true;
      break;
    case MsgType::Bye:
      out = Bye{};
      ok = true;
      break;
    case MsgType::AdmissionRequest: {
      AdmissionRequestMsg m;
      std::uint32_t priority_class = 0;
      std::uint8_t has_deadline = 0;
      sim::SimTime deadline;
      ok = r.u64(m.request_id) && get_spec(r, m.request.spec) &&
           r.u32(priority_class) &&
           priority_class < cluster::kAdmissionClasses &&
           r.time(m.request.arrival) && r.u8(has_deadline) &&
           has_deadline <= 1 && r.time(deadline);
      if (ok) {
        m.request.priority_class = priority_class;
        if (has_deadline == 1) m.request.deadline = deadline;
      }
      out = std::move(m);
      break;
    }
    case MsgType::AdmissionDecision: {
      AdmissionDecisionMsg m;
      ok = r.u64(m.request_id) &&
           r.enum8(m.decision.status,
                   static_cast<std::uint8_t>(
                       cluster::AdmissionDecision::Status::Rejected)) &&
           r.enum8(m.decision.reason,
                   static_cast<std::uint8_t>(
                       cluster::AdmissionDecision::Reason::DeadlineExpired)) &&
           r.f64(m.decision.quoted_price) &&
           get_placement(r, m.decision.placement) &&
           r.time(m.decision.retry_at);
      out = std::move(m);
      break;
    }
    case MsgType::PlaceRequest: {
      cluster::wire::PlaceRequest m;
      std::uint8_t deflatable = 0;
      ok = r.u64(m.vm_id) && r.vec(m.demand) && r.f64(m.priority) &&
           r.u8(deflatable) && deflatable <= 1;
      m.deflatable = deflatable == 1;
      out = std::move(m);
      break;
    }
    case MsgType::PlaceResponse: {
      cluster::wire::PlaceResponse m;
      std::uint8_t accepted = 0;
      ok = r.u64(m.vm_id) && r.u8(accepted) && accepted <= 1 &&
           r.u64(m.host_id) && r.f64(m.launch_fraction);
      m.accepted = accepted == 1;
      out = std::move(m);
      break;
    }
    case MsgType::DeflateCommand: {
      cluster::wire::DeflateCommand m;
      ok = r.u64(m.vm_id) && r.vec(m.target);
      out = std::move(m);
      break;
    }
    case MsgType::DeflationNotice: {
      cluster::wire::DeflationNotice m;
      ok = r.u64(m.vm_id) && r.vec(m.old_alloc) && r.vec(m.new_alloc);
      out = std::move(m);
      break;
    }
    case MsgType::UtilizationReport: {
      cluster::wire::UtilizationReport m;
      ok = r.u64(m.host_id) && r.vec(m.available) && r.vec(m.committed) &&
           r.f64(m.overcommit_ratio);
      out = std::move(m);
      break;
    }
  }
  // Strict framing: the payload must be consumed exactly. Trailing bytes
  // mean the peer disagrees about the encoding — reject, don't guess.
  if (!ok || !r.exhausted()) return std::nullopt;
  return out;
}

DecodeResult malformed(std::string error) {
  DecodeResult result;
  result.status = DecodeStatus::Malformed;
  result.error = std::move(error);
  return result;
}

}  // namespace

const char* msg_type_name(MsgType type) noexcept {
  switch (type) {
    case MsgType::Hello: return "hello";
    case MsgType::Error: return "error";
    case MsgType::Shutdown: return "shutdown";
    case MsgType::Bye: return "bye";
    case MsgType::AdmissionRequest: return "admission_request";
    case MsgType::AdmissionDecision: return "admission_decision";
    case MsgType::PlaceRequest: return "place_request";
    case MsgType::PlaceResponse: return "place_response";
    case MsgType::DeflateCommand: return "deflate_command";
    case MsgType::DeflationNotice: return "deflation_notice";
    case MsgType::UtilizationReport: return "utilization_report";
  }
  return "unknown";
}

MsgType message_type(const Message& message) noexcept {
  struct Visitor {
    MsgType operator()(const Hello&) { return MsgType::Hello; }
    MsgType operator()(const ErrorMsg&) { return MsgType::Error; }
    MsgType operator()(const Shutdown&) { return MsgType::Shutdown; }
    MsgType operator()(const Bye&) { return MsgType::Bye; }
    MsgType operator()(const AdmissionRequestMsg&) {
      return MsgType::AdmissionRequest;
    }
    MsgType operator()(const AdmissionDecisionMsg&) {
      return MsgType::AdmissionDecision;
    }
    MsgType operator()(const cluster::wire::PlaceRequest&) {
      return MsgType::PlaceRequest;
    }
    MsgType operator()(const cluster::wire::PlaceResponse&) {
      return MsgType::PlaceResponse;
    }
    MsgType operator()(const cluster::wire::DeflateCommand&) {
      return MsgType::DeflateCommand;
    }
    MsgType operator()(const cluster::wire::DeflationNotice&) {
      return MsgType::DeflationNotice;
    }
    MsgType operator()(const cluster::wire::UtilizationReport&) {
      return MsgType::UtilizationReport;
    }
  };
  return std::visit(Visitor{}, message);
}

std::vector<std::uint8_t> encode_frame(const Message& message) {
  PayloadEncoder encoder;
  std::visit([&](const auto& m) { encoder(m); }, message);
  const std::vector<std::uint8_t> payload = encoder.w.take();

  std::vector<std::uint8_t> frame;
  frame.reserve(kHeaderSize + payload.size());
  frame.push_back(kFrameMagic);
  frame.push_back(kCodecVersion);
  frame.push_back(static_cast<std::uint8_t>(message_type(message)));
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) frame.push_back((len >> (8 * i)) & 0xFF);
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

DecodeResult decode_frame(const std::uint8_t* data, std::size_t size) {
  if (size < kHeaderSize) return DecodeResult{};  // NeedMore
  if (data[0] != kFrameMagic) return malformed("bad frame magic");
  if (data[1] != kCodecVersion) {
    return malformed("unsupported codec version " + std::to_string(data[1]) +
                     " (speaking " + std::to_string(kCodecVersion) + ")");
  }
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(data[3 + i]) << (8 * i);
  }
  if (len > kMaxPayload) {
    return malformed("oversized frame: payload length " + std::to_string(len));
  }
  if (size < kHeaderSize + len) return DecodeResult{};  // NeedMore

  const auto raw_type = data[2];
  if (raw_type < static_cast<std::uint8_t>(MsgType::Hello) ||
      raw_type > static_cast<std::uint8_t>(MsgType::UtilizationReport)) {
    return malformed("unknown message type " + std::to_string(raw_type));
  }
  const auto type = static_cast<MsgType>(raw_type);
  auto message = decode_payload(type, data + kHeaderSize, len);
  if (!message) {
    return malformed(std::string("malformed ") + msg_type_name(type) +
                     " payload");
  }
  DecodeResult result;
  result.status = DecodeStatus::Ok;
  result.consumed = kHeaderSize + len;
  result.message = std::move(*message);
  return result;
}

void FrameBuffer::append(const std::uint8_t* data, std::size_t size) {
  buffer_.insert(buffer_.end(), data, data + size);
}

DecodeResult FrameBuffer::next() {
  if (poisoned_) {
    return malformed("frame buffer poisoned by an earlier malformed frame");
  }
  DecodeResult result =
      decode_frame(buffer_.data() + offset_, buffer_.size() - offset_);
  if (result.status == DecodeStatus::Ok) {
    offset_ += result.consumed;
    // Reclaim consumed bytes once they dominate the buffer.
    if (offset_ > 4096 && offset_ * 2 > buffer_.size()) {
      buffer_.erase(buffer_.begin(),
                    buffer_.begin() + static_cast<std::ptrdiff_t>(offset_));
      offset_ = 0;
    }
  } else if (result.status == DecodeStatus::Malformed) {
    poisoned_ = true;
  }
  return result;
}

}  // namespace deflate::net
