// Message-log capture and deterministic replay for the admission service.
//
// File format:
//   line 1: a text header in the cluster/wire envelope format
//           (type=capture_header, v=kWireVersion) carrying the full
//           ServiceConfig the daemon ran with — doubles as hexfloats so
//           the replayer rebuilds a bit-identical price trace and fleet;
//   then:   binary records, each [u32 LE connection id][codec frame].
//
// The daemon appends every AdmissionRequest frame it accepts and every
// AdmissionDecision frame it sends (direct responses and drained deferral
// resolutions alike), in the global decision order — records are written
// under the same lock that serializes admission, so file order IS
// decision order.
//
// replay_capture() rebuilds a fresh ServiceCore from the header, feeds
// the captured requests through per-connection controllers exactly the
// way the live server did, and verifies the regenerated decision frames
// are byte-identical to the captured ones — deferral retry ordering,
// quoted prices, placement host ids and all. A nonzero `mismatches`
// means the service's decision path is no longer deterministic (or the
// log was tampered with).
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "net/codec.hpp"
#include "net/service.hpp"

namespace deflate::net {

/// Serializes the config into the text header line (without newline).
[[nodiscard]] std::string encode_capture_header(const ServiceConfig& config);
/// Rebuilds a config from a header line; nullopt on version/type/field
/// mismatch. Socket-level fields (port, threads, capture_path) are reset
/// to defaults — they do not affect decisions.
[[nodiscard]] std::optional<ServiceConfig> decode_capture_header(
    const std::string& line);

/// Append-only capture writer. Not thread-safe: the server calls it under
/// its admission lock (which is what makes file order = decision order).
class CaptureWriter {
 public:
  /// Opens `path` (truncating) and writes the header; `valid()` reports
  /// whether the file opened.
  CaptureWriter(const std::string& path, const ServiceConfig& config);

  [[nodiscard]] bool valid() const noexcept { return out_.is_open(); }

  /// Appends one [conn_id][frame] record.
  void record(std::uint32_t conn_id, const std::vector<std::uint8_t>& frame);

  void flush() { out_.flush(); }

 private:
  std::ofstream out_;
};

struct ReplayReport {
  std::size_t requests = 0;    ///< captured AdmissionRequest records
  std::size_t decisions = 0;   ///< captured AdmissionDecision records
  std::size_t mismatches = 0;  ///< decisions the fresh controller disagreed on
  /// First few mismatch descriptions (for the CLI).
  std::vector<std::string> details;
  /// Load-level failure (unreadable file, bad header, corrupt record);
  /// empty when the log itself was well-formed.
  std::string error;

  [[nodiscard]] bool ok() const noexcept {
    return error.empty() && mismatches == 0;
  }
};

/// Replays `path` through a fresh ServiceCore; see the header comment.
[[nodiscard]] ReplayReport replay_capture(const std::string& path);

}  // namespace deflate::net
