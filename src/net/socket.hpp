// Minimal RAII wrappers over loopback TCP sockets.
//
// The service layer (server.hpp / client.hpp) only ever speaks over
// 127.0.0.1 — the daemon models the paper's intra-datacenter control
// plane, not an internet-facing endpoint — so these wrappers bind and
// connect exclusively to the loopback interface. TCP_NODELAY is set on
// every connection: the protocol batches frames itself (client-side
// request batching), so Nagle buffering only adds latency.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

namespace deflate::net {

/// A connected stream socket (move-only; closes on destruction).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Writes the whole buffer (looping over partial writes); false on any
  /// send error (peer gone).
  bool send_all(const void* data, std::size_t size) noexcept;

  /// One recv: bytes read, 0 on orderly close, -1 on error. Retries EINTR.
  [[nodiscard]] long recv_some(void* buffer, std::size_t size) noexcept;

  /// Shuts down both directions (wakes a peer blocked in recv) without
  /// releasing the fd.
  void shutdown_both() noexcept;
  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Connects to 127.0.0.1:port; invalid Socket on failure.
[[nodiscard]] Socket connect_loopback(std::uint16_t port);

/// A listening socket bound to 127.0.0.1 (port 0 = ephemeral).
class ListenSocket {
 public:
  ListenSocket() = default;
  ~ListenSocket() { close(); }
  ListenSocket(ListenSocket&& other) noexcept
      : fd_(other.fd_), port_(other.port_) {
    other.fd_ = -1;
  }
  ListenSocket& operator=(ListenSocket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      port_ = other.port_;
      other.fd_ = -1;
    }
    return *this;
  }
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  /// Binds and listens; nullopt when the port is taken (or sockets are
  /// unavailable).
  [[nodiscard]] static std::optional<ListenSocket> open_loopback(
      std::uint16_t port);

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  /// The bound port (the kernel-assigned one when opened with port 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Blocks for one connection; nullopt when the socket was closed from
  /// another thread (the server's stop path) or accept failed.
  [[nodiscard]] std::optional<Socket> accept_one() noexcept;

  void close() noexcept;

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace deflate::net
