#include "net/registry.hpp"

namespace deflate::net {

std::optional<cluster::ShardSelectionPolicy> parse_shard_policy(
    const std::string& name) {
  return cluster::shard_selection_from_name(name);
}

}  // namespace deflate::net
