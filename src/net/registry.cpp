#include "net/registry.hpp"

#include <algorithm>

namespace deflate::net {

namespace {

AdmissionPolicyEntry builtin(const char* name, const char* description,
                             cluster::AdmissionPolicyKind kind) {
  AdmissionPolicyEntry entry;
  entry.name = name;
  entry.description = description;
  entry.make = [kind](const cluster::AdmissionConfig& config,
                      cluster::ClusterManagerBase& manager,
                      cluster::PriceFeed feed) {
    cluster::AdmissionConfig selected = config;
    selected.policy = kind;
    return cluster::make_admission_controller(selected, manager,
                                              std::move(feed));
  };
  return entry;
}

}  // namespace

AdmissionPolicyRegistry::AdmissionPolicyRegistry() {
  entries_.push_back(builtin(
      "admit-all", "legacy contract: every request placed on arrival",
      cluster::AdmissionPolicyKind::AdmitAll));
  entries_.push_back(builtin(
      "price",
      "defer deflatable classes while the spot quote exceeds the ceiling",
      cluster::AdmissionPolicyKind::PriceThreshold));
  entries_.push_back(builtin(
      "bid-opt",
      "price thresholds supplied by the per-class bid optimizer",
      cluster::AdmissionPolicyKind::BidOptimized));
}

AdmissionPolicyRegistry& AdmissionPolicyRegistry::instance() {
  static AdmissionPolicyRegistry registry;
  return registry;
}

bool AdmissionPolicyRegistry::add(AdmissionPolicyEntry entry) {
  if (entry.name.empty() || !entry.make ||
      find(entry.name) != nullptr) {
    return false;
  }
  entries_.push_back(std::move(entry));
  return true;
}

const AdmissionPolicyEntry* AdmissionPolicyRegistry::find(
    const std::string& name) const {
  for (const auto& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

std::vector<std::string> AdmissionPolicyRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) out.push_back(entry.name);
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<cluster::ShardSelectionPolicy> parse_shard_policy(
    const std::string& name) {
  if (name == "p2c" || name == "power-of-two") {
    return cluster::ShardSelectionPolicy::PowerOfTwoChoices;
  }
  if (name == "least-loaded") return cluster::ShardSelectionPolicy::LeastLoaded;
  if (name == "round-robin") return cluster::ShardSelectionPolicy::RoundRobin;
  return std::nullopt;
}

}  // namespace deflate::net
