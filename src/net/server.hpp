// The deflated daemon's engine: admission-as-a-service over loopback TCP.
//
// One Server owns a ServiceCore (fleet manager + price feed + clock), a
// listening socket and a util::ThreadPool of connection handlers. The
// accept loop runs in its own thread and hands each connection to the
// pool; a handler greets with Hello, then serves pipelined frames — a
// client may write a whole batch of AdmissionRequests before reading, and
// the handler answers them in order with one buffered write per read
// chunk (this is what the batching client and bench/scenario_service
// exploit).
//
// Concurrency model: each connection gets its *own* AdmissionController
// (so the deferral queue — and therefore every drained resolution — is
// unambiguously owned by one connection), while the cluster manager,
// price feed, service clock and capture log are shared and serialized by
// one admission mutex. Decisions are therefore globally ordered, which is
// what makes the capture log replayable (capture.hpp).
//
// Deferral resolutions are delivered in-stream: before deciding a fresh
// request, the handler drains its connection's queue at the advanced
// clock and pushes every resolved deferral as an AdmissionDecisionMsg
// (echoing the original request id) ahead of the direct response.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "cluster/wire.hpp"
#include "net/capture.hpp"
#include "net/service.hpp"
#include "net/socket.hpp"
#include "util/thread_pool.hpp"

namespace deflate::net {

/// Sentinel host id on aggregate (fleet-wide) UtilizationReport telemetry
/// frames, distinguishing them from any real per-server report.
inline constexpr std::uint64_t kFleetTelemetryHostId =
    ~static_cast<std::uint64_t>(0);

struct ServerStats {
  std::uint64_t connections = 0;
  std::uint64_t admission_requests = 0;
  std::uint64_t decisions = 0;  ///< direct + drained resolutions sent
  std::uint64_t place_requests = 0;
  std::uint64_t malformed_frames = 0;
  std::uint64_t telemetry_reports = 0;  ///< aggregate utilization frames sent
};

class Server {
 public:
  /// Builds the core (throws std::invalid_argument on an unknown
  /// admission policy, like ServiceCore).
  explicit Server(ServiceConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the accept loop; false when the port
  /// cannot be bound. Idempotent failure: the server can be destroyed.
  [[nodiscard]] bool start();

  /// The bound port (ephemeral-resolved when config.port was 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Blocks until a client sends Shutdown (or stop() is called).
  void wait();

  /// Stops accepting, wakes every connection, joins all handlers. Safe to
  /// call more than once; the destructor calls it.
  void stop();

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] const ServiceConfig& config() const noexcept {
    return core_.config();
  }

 private:
  void accept_loop();
  void serve_connection(std::uint32_t conn_id, std::shared_ptr<Socket> socket);
  /// Fleet-wide utilization snapshot (host_id = kFleetTelemetryHostId:
  /// available/committed summed over active servers, worst per-resource
  /// commit ratio). Caller must hold admission_mutex_ — the manager is
  /// shared state.
  [[nodiscard]] cluster::wire::UtilizationReport fleet_utilization();

  ServiceCore core_;
  std::unique_ptr<CaptureWriter> capture_;

  ListenSocket listener_;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;

  /// Serializes admission (clock advance, drain, decide), placement and
  /// capture appends across connections.
  std::mutex admission_mutex_;

  mutable std::mutex state_mutex_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
  bool stopped_ = false;
  std::uint32_t next_conn_id_ = 1;
  /// Open connections, for waking blocked recv()s on stop().
  std::map<std::uint32_t, std::shared_ptr<Socket>> open_connections_;
  ServerStats stats_;

  /// Declared last: destroyed first, joining handler tasks before the
  /// members they use go away.
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace deflate::net
