// Batching client for the admission service.
//
// The client separates *submitting* a request from *flushing* the batch:
// submit() assigns a request id and appends the encoded frame to an
// in-memory batch; flush() writes the whole batch in one send and reads
// until every outstanding request has its decision. Against a pipelining
// server this turns N round-trips into one, which is the entire gap
// bench/scenario_service gates on.
//
// Deferral resolutions: a request the server answered with Deferred is
// resolved later, in-stream, when a subsequent flush advances the service
// clock past its retry time. Those updates (decision frames whose request
// id is not in the outstanding set) land in resolved_deferrals() and
// also overwrite the original Deferred entry in decisions().
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "net/codec.hpp"
#include "net/socket.hpp"

namespace deflate::net {

class Client {
 public:
  /// Connects to 127.0.0.1:port and reads the server's Hello; nullopt on
  /// connection or handshake failure.
  [[nodiscard]] static std::optional<Client> connect(std::uint16_t port);

  [[nodiscard]] const Hello& hello() const noexcept { return hello_; }
  [[nodiscard]] bool connected() const noexcept { return socket_.valid(); }

  /// Queues a request into the current batch; returns its request id.
  /// Nothing is written until flush().
  std::uint64_t submit(const cluster::AdmissionRequest& request);

  /// Sends the batch in one write and reads until every outstanding
  /// request is decided; false on a connection/protocol failure (the
  /// client is unusable afterwards).
  [[nodiscard]] bool flush();

  /// Convenience: submit + flush, returning this request's decision.
  [[nodiscard]] std::optional<cluster::AdmissionDecision> admit(
      const cluster::AdmissionRequest& request);

  /// Raw placement round-trip (no admission protocol).
  [[nodiscard]] std::optional<cluster::wire::PlaceResponse> place(
      const cluster::wire::PlaceRequest& request);

  /// Sends Shutdown and waits for the Bye.
  [[nodiscard]] bool shutdown_server();

  /// Subscribes this connection to periodic telemetry: the server will
  /// interleave one aggregate UtilizationReport after every `every`
  /// admission decisions (0 cancels). Fire-and-forget — the subscription
  /// Hello has no acknowledgement; false only on a send failure.
  [[nodiscard]] bool request_telemetry(std::uint32_t every);

  /// Telemetry frames received so far, and the latest one.
  [[nodiscard]] std::uint64_t telemetry_reports() const noexcept {
    return telemetry_reports_;
  }
  [[nodiscard]] const std::optional<cluster::wire::UtilizationReport>&
  last_telemetry() const noexcept {
    return last_telemetry_;
  }

  /// Latest decision per request id (deferral updates overwrite).
  [[nodiscard]] const std::map<std::uint64_t, cluster::AdmissionDecision>&
  decisions() const noexcept {
    return decisions_;
  }
  /// Requests first answered Deferred whose resolution arrived later.
  [[nodiscard]] const std::map<std::uint64_t, cluster::AdmissionDecision>&
  resolved_deferrals() const noexcept {
    return resolved_;
  }
  /// Last request-level ErrorMsg received, if any.
  [[nodiscard]] const std::optional<ErrorMsg>& last_error() const noexcept {
    return last_error_;
  }

 private:
  Client() = default;

  /// Reads frames until `predicate` says done; false on socket close,
  /// malformed frame or an Error frame.
  template <typename Done>
  bool read_until(Done done);
  bool handle(Message message);

  Socket socket_;
  Hello hello_;
  FrameBuffer frames_;
  std::vector<std::uint8_t> batch_;
  std::uint64_t next_request_id_ = 1;
  std::set<std::uint64_t> outstanding_;
  std::map<std::uint64_t, cluster::AdmissionDecision> decisions_;
  std::map<std::uint64_t, cluster::AdmissionDecision> resolved_;
  std::optional<cluster::wire::PlaceResponse> last_place_;
  std::optional<cluster::wire::UtilizationReport> last_telemetry_;
  std::uint64_t telemetry_reports_ = 0;
  bool saw_hello_ = false;
  bool saw_bye_ = false;
  std::optional<ErrorMsg> last_error_;
};

}  // namespace deflate::net
