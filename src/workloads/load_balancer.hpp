// Weighted-round-robin load balancing, vanilla and deflation-aware (§7.3).
//
// The paper modifies HAProxy's WRR to re-weight servers by their *deflated*
// capacity ("the 'true' resource availability") so fewer requests reach
// deflated replicas. SmoothWrr implements the smooth weighted round-robin
// used by HAProxy/nginx (deterministic, starvation-free interleaving);
// LbExperiment reproduces the 3-replica Wikipedia setup of Fig. 19.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "util/stats.hpp"

namespace deflate::wl {

/// Smooth weighted round-robin: pick the backend with the highest running
/// "current weight", then subtract the total. Produces the classic smooth
/// interleaving (e.g. weights {5,1,1} -> a a b a c a a).
class SmoothWrr {
 public:
  explicit SmoothWrr(std::vector<double> weights);

  void set_weights(std::vector<double> weights);
  [[nodiscard]] std::size_t pick();
  [[nodiscard]] const std::vector<double>& weights() const noexcept {
    return weights_;
  }

 private:
  std::vector<double> weights_;
  std::vector<double> current_;
  double total_ = 0.0;
};

struct LbConfig {
  int replicas = 3;
  int deflatable_replicas = 2;  ///< §7.3: two of three run on deflatable VMs
  int cores_per_replica = 10;
  double request_rate = 200.0;  ///< aggregate, §7.3
  sim::SimTime duration = sim::SimTime::from_seconds(300);
  sim::SimTime warmup = sim::SimTime::from_seconds(30);
  double timeout_s = 15.0;

  // Per-request demand model (heavier pages than the Fig. 16 setup; the
  // Fig. 19 baseline response times sit around a second). 28 ms mean keeps
  // a vanilla-balanced deflated replica just below saturation at 80%
  // deflation, so queueing alone produces the endpoint of the paper's
  // curve.
  double cpu_demand_mean_ms = 28.0;
  double cpu_demand_sigma = 0.8;
  double overhead_median_s = 0.30;
  double overhead_sigma = 0.5;
  double slow_prob = 0.005;
  double slow_min_s = 2.0;
  double slow_max_s = 4.0;
  // CPU contention also slows the request's non-CPU path (locks, GC,
  // context switches): overhead scales by (1 + gamma * busy-ratio). This
  // interference term is what makes the vanilla balancer's tail degrade
  // *gradually* through 40-80% deflation as the paper measured, rather
  // than only at the queueing cliff.
  double interference_gamma = 2.0;

  std::uint64_t seed = 23;
};

struct LbRunResult {
  util::Summary latency;
  double served_fraction = 1.0;
};

class LbExperiment {
 public:
  explicit LbExperiment(LbConfig config) : config_(config) {}

  /// Deflates the deflatable replicas' CPU by `deflation` and runs the
  /// cluster behind a WRR balancer. `deflation_aware` switches between
  /// vanilla HAProxy weights (equal) and the paper's modified weights
  /// (proportional to effective vCPUs).
  [[nodiscard]] LbRunResult run(double deflation, bool deflation_aware) const;

 private:
  LbConfig config_;
};

}  // namespace deflate::wl
