// DeathStarBench-style social-network application model (§7.1.1, Fig. 15).
//
// 30 microservices in three tiers: 3 frontend, 15 logic, 12 backend (4
// memcached + 8 databases/storage). A request passes frontend -> a chain of
// logic services interleaved with cache lookups -> a storage query. Each
// service is a processor-sharing station capped at 2 cores (the paper's
// per-container limit; minimum 0.05 cores). The deflation experiment
// (Fig. 18) deflates the 22 non-database services uniformly; the higher
// communication/coordination intensity (more queueing stages per request)
// makes the post-50% degradation more abrupt than the monolithic Wikipedia
// case.
#pragma once

#include <cstdint>

#include "sim/time.hpp"
#include "util/stats.hpp"

namespace deflate::wl {

struct MicroserviceConfig {
  int frontend_count = 3;
  int logic_count = 15;
  int memcached_count = 4;
  int database_count = 8;

  double max_cores_per_service = 2.0;   ///< §7.2: 2-core limit per service
  double min_cores_per_service = 0.05;  ///< §7.2: 0.05-CPU floor

  double request_rate = 500.0;  ///< §7.2: 500 req/s
  sim::SimTime duration = sim::SimTime::from_seconds(240);
  sim::SimTime warmup = sim::SimTime::from_seconds(30);
  double timeout_s = 100.0;  ///< bounds the overload tail (Fig. 18 y-range)

  int logic_hops = 3;       ///< logic services visited per request
  int cache_lookups = 2;    ///< memcached accesses per request

  // Mean CPU demand per visit (ms); lognormal with sigma below. The logic
  // tier saturates when rate*hops/logic_count*demand = 2*(1-d): with the
  // defaults that is d = 65%, placing the Fig. 18 cliff past 50% with a
  // steep ramp through 60%.
  double frontend_demand_ms = 2.0;
  double logic_demand_ms = 7.0;
  double cache_demand_ms = 0.5;
  double db_demand_ms = 5.0;
  double demand_sigma = 0.8;

  std::uint64_t seed = 17;
};

struct MicroserviceResult {
  util::Summary latency;  ///< seconds, served requests
  double served_fraction = 1.0;
  double bottleneck_utilization = 0.0;  ///< hottest deflated station
  std::uint64_t requests = 0;
};

class MicroserviceApp {
 public:
  explicit MicroserviceApp(MicroserviceConfig config) : config_(config) {}

  /// Deflates the 22 non-database services (frontend + logic + memcached)
  /// by `deflation` and runs the workload (Fig. 18's experiment).
  [[nodiscard]] MicroserviceResult run(double deflation) const;

  [[nodiscard]] const MicroserviceConfig& config() const noexcept {
    return config_;
  }

 private:
  MicroserviceConfig config_;
};

}  // namespace deflate::wl
