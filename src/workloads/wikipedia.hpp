// German-Wikipedia replica model (§7.1.1, §7.2).
//
// The paper's testbed serves the 500 largest German-Wikipedia pages
// (0.5-2.2 MB) from a 30-core VM at 800 req/s with a 15 s timeout. Here a
// request is: a CPU stage on a processor-sharing station (page rendering,
// demand proportional to page size) plus a non-CPU overhead drawn from a
// heavy-tailed mixture (database, memcached misses, network) that dominates
// the undeflated tail — matching the paper's 0.3 s mean / 6.8 s p99
// baseline shape. CPU deflation shrinks only the station capacity.
#pragma once

#include <cstdint>

#include "sim/time.hpp"
#include "util/stats.hpp"

namespace deflate::wl {

struct WikipediaConfig {
  int cores = 30;
  double request_rate = 800.0;       ///< req/s, open loop
  sim::SimTime duration = sim::SimTime::from_seconds(300);
  sim::SimTime warmup = sim::SimTime::from_seconds(30);
  double timeout_s = 15.0;           ///< §7.2: 15 s request timeout

  // Page-size driven CPU demand: sizes ~ bounded Pareto [0.5, 2.2] MB
  // (top-500 pages), demand = size * cpu_ms_per_mb.
  // Mean demand ~7 ms puts the 6-core (80% deflation) point at ~93%
  // utilization: visibly slower (the paper's 0.6 s mean) but still serving,
  // with the full collapse only at 90%+ — matching Figs. 16-17.
  double page_min_mb = 0.5;
  double page_max_mb = 2.2;
  double page_alpha = 1.1;
  double cpu_ms_per_mb = 7.5;

  // Non-CPU overhead: lognormal body plus a small very-slow tail.
  double overhead_median_s = 0.22;
  double overhead_sigma = 0.45;
  double slow_prob = 0.012;
  double slow_min_s = 3.5;
  double slow_max_s = 6.5;

  std::uint64_t seed = 7;
};

struct AppRunResult {
  util::Summary latency;        ///< seconds, served requests only
  double served_fraction = 1.0; ///< Fig. 17's "% requests served"
  double cpu_utilization = 0.0; ///< of the deflated capacity
  std::uint64_t requests = 0;
};

class WikipediaApp {
 public:
  explicit WikipediaApp(WikipediaConfig config) : config_(config) {}

  /// Runs the workload with the VM's CPU deflated by `deflation` (0-1);
  /// capacity becomes cores*(1-deflation), floored at one core when
  /// deflation < 100% (the paper deflates 30 cores down to 1).
  [[nodiscard]] AppRunResult run(double deflation) const;

  [[nodiscard]] const WikipediaConfig& config() const noexcept { return config_; }

 private:
  WikipediaConfig config_;
};

}  // namespace deflate::wl
