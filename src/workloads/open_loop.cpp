#include "workloads/open_loop.hpp"

#include <utility>

namespace deflate::wl {

OpenLoopSource::OpenLoopSource(sim::Simulator& simulator, double rate_per_s,
                               sim::SimTime end, util::Rng rng, Arrival on_arrival)
    : sim_(simulator),
      rate_(rate_per_s),
      end_(end),
      rng_(rng),
      on_arrival_(std::move(on_arrival)) {}

void OpenLoopSource::start() {
  if (rate_ <= 0.0) return;
  schedule_next();
}

void OpenLoopSource::schedule_next() {
  const double gap_s = rng_.exponential(rate_);
  const sim::SimTime at = sim_.now() + sim::SimTime::from_seconds(gap_s);
  if (at > end_) return;
  sim_.schedule_at(at, [this] {
    ++arrivals_;
    on_arrival_();
    schedule_next();
  });
}

}  // namespace deflate::wl
