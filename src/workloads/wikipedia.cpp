#include "workloads/wikipedia.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "sim/simulator.hpp"
#include "workloads/latency_recorder.hpp"
#include "workloads/open_loop.hpp"
#include "workloads/ps_station.hpp"

namespace deflate::wl {

AppRunResult WikipediaApp::run(double deflation) const {
  const WikipediaConfig& cfg = config_;
  sim::Simulator simulator;
  const double capacity =
      std::max(deflation >= 1.0 ? 0.0 : 1.0,
               static_cast<double>(cfg.cores) * (1.0 - deflation));
  PsStation station(simulator, capacity);
  auto recorder = std::make_shared<LatencyRecorder>();

  util::Rng rng = util::Rng::keyed(cfg.seed, 0xd1cefULL);
  OpenLoopSource source(
      simulator, cfg.request_rate, cfg.duration, rng.derive(1),
      [&, recorder]() mutable {
        const sim::SimTime arrival = simulator.now();
        const bool in_measurement = arrival >= cfg.warmup;

        const double page_mb =
            rng.bounded_pareto(cfg.page_min_mb, cfg.page_max_mb, cfg.page_alpha);
        const double demand_s = page_mb * cfg.cpu_ms_per_mb / 1000.0;
        double overhead_s =
            rng.lognormal(std::log(cfg.overhead_median_s), cfg.overhead_sigma);
        if (rng.bernoulli(cfg.slow_prob)) {
          overhead_s += rng.uniform(cfg.slow_min_s, cfg.slow_max_s);
        }

        if (overhead_s >= cfg.timeout_s) {  // slow page missed the timeout
          if (in_measurement) recorder->record_dropped();
          return;
        }
        // The CPU stage must finish before timeout - overhead.
        const sim::SimTime cpu_deadline =
            arrival + sim::SimTime::from_seconds(cfg.timeout_s - overhead_s);
        station.submit(demand_s, cpu_deadline,
                       [recorder, arrival, overhead_s, in_measurement](
                           sim::SimTime done_at, bool served) {
                         if (!in_measurement) return;
                         if (!served) {
                           recorder->record_dropped();
                           return;
                         }
                         const double rt =
                             overhead_s + (done_at - arrival).seconds();
                         recorder->record_served(rt);
                       });
      });
  source.start();
  // Drain: every submitted request resolves within the timeout window.
  simulator.run_until(cfg.duration + sim::SimTime::from_seconds(cfg.timeout_s + 1.0));

  AppRunResult result;
  result.latency = recorder->summary();
  result.served_fraction = recorder->served_fraction();
  result.cpu_utilization = station.utilization();
  result.requests = recorder->total();
  return result;
}

}  // namespace deflate::wl
