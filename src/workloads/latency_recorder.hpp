// Response-time collection for the interactive-application experiments
// (Figs. 16-19): per-request latencies of served requests plus drop counts
// (requests exceeding their timeout are "no longer interesting to the
// users", §7.2).
#pragma once

#include <cstddef>
#include <vector>

#include "util/stats.hpp"

namespace deflate::wl {

class LatencyRecorder {
 public:
  void record_served(double response_time_s) {
    latencies_.push_back(response_time_s);
  }
  void record_dropped() noexcept { ++dropped_; }

  [[nodiscard]] std::size_t served() const noexcept { return latencies_.size(); }
  [[nodiscard]] std::size_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::size_t total() const noexcept { return served() + dropped(); }

  /// Fraction of requests completed within the timeout (Fig. 17's metric).
  [[nodiscard]] double served_fraction() const noexcept {
    const std::size_t t = total();
    return t == 0 ? 1.0 : static_cast<double>(served()) / static_cast<double>(t);
  }

  [[nodiscard]] util::Summary summary() const { return util::Summary::from(latencies_); }
  [[nodiscard]] const std::vector<double>& latencies() const noexcept {
    return latencies_;
  }

  void clear() noexcept {
    latencies_.clear();
    dropped_ = 0;
  }

 private:
  std::vector<double> latencies_;
  std::size_t dropped_ = 0;
};

}  // namespace deflate::wl
