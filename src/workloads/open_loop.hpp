// Open-loop (Poisson) request source, the workload-generator model behind
// wrk2-style constant-rate load (§7.1.1): arrivals do not slow down when
// the system does, which is what exposes overload cliffs.
#pragma once

#include <functional>

#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace deflate::wl {

class OpenLoopSource {
 public:
  using Arrival = std::function<void()>;

  /// Generates Poisson arrivals at `rate_per_s` from start() until `end`.
  OpenLoopSource(sim::Simulator& simulator, double rate_per_s, sim::SimTime end,
                 util::Rng rng, Arrival on_arrival);

  void start();

  [[nodiscard]] std::uint64_t arrivals() const noexcept { return arrivals_; }

 private:
  void schedule_next();

  sim::Simulator& sim_;
  double rate_;
  sim::SimTime end_;
  util::Rng rng_;
  Arrival on_arrival_;
  std::uint64_t arrivals_ = 0;
};

}  // namespace deflate::wl
