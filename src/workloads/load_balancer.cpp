#include "workloads/load_balancer.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "workloads/latency_recorder.hpp"
#include "workloads/open_loop.hpp"
#include "workloads/ps_station.hpp"

namespace deflate::wl {

SmoothWrr::SmoothWrr(std::vector<double> weights) {
  set_weights(std::move(weights));
}

void SmoothWrr::set_weights(std::vector<double> weights) {
  if (weights.empty()) {
    throw std::invalid_argument("SmoothWrr: no backends");
  }
  total_ = 0.0;
  for (double& w : weights) {
    w = std::max(0.0, w);
    total_ += w;
  }
  if (total_ <= 0.0) {  // degenerate: fall back to uniform
    for (double& w : weights) w = 1.0;
    total_ = static_cast<double>(weights.size());
  }
  weights_ = std::move(weights);
  current_.assign(weights_.size(), 0.0);
}

std::size_t SmoothWrr::pick() {
  std::size_t best = 0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    current_[i] += weights_[i];
    if (current_[i] > current_[best]) best = i;
  }
  current_[best] -= total_;
  return best;
}

LbRunResult LbExperiment::run(double deflation, bool deflation_aware) const {
  const LbConfig& cfg = config_;
  sim::Simulator simulator;

  std::vector<std::unique_ptr<PsStation>> replicas;
  std::vector<double> capacities;
  for (int i = 0; i < cfg.replicas; ++i) {
    const bool deflated = i < cfg.deflatable_replicas;
    const double cores =
        static_cast<double>(cfg.cores_per_replica) *
        (deflated ? std::max(0.0, 1.0 - deflation) : 1.0);
    capacities.push_back(cores);
    replicas.push_back(std::make_unique<PsStation>(simulator, cores));
  }

  // Vanilla HAProxy: equal static weights. Deflation-aware: weights track
  // the replicas' effective vCPU counts (§7.3).
  SmoothWrr balancer(deflation_aware
                         ? capacities
                         : std::vector<double>(replicas.size(), 1.0));

  auto recorder = std::make_shared<LatencyRecorder>();
  util::Rng rng = util::Rng::keyed(cfg.seed, deflation_aware ? 2 : 1);

  OpenLoopSource source(
      simulator, cfg.request_rate, cfg.duration, rng.derive(3),
      [&, recorder]() mutable {
        const sim::SimTime arrival = simulator.now();
        const bool in_measurement = arrival >= cfg.warmup;

        const double sigma = cfg.cpu_demand_sigma;
        const double demand_s = rng.lognormal(
            std::log(cfg.cpu_demand_mean_ms / 1000.0) - sigma * sigma / 2.0,
            sigma);
        double overhead_s =
            rng.lognormal(std::log(cfg.overhead_median_s), cfg.overhead_sigma);
        if (rng.bernoulli(cfg.slow_prob)) {
          overhead_s += rng.uniform(cfg.slow_min_s, cfg.slow_max_s);
        }
        if (overhead_s >= cfg.timeout_s) {
          if (in_measurement) recorder->record_dropped();
          return;
        }

        const std::size_t choice = balancer.pick();
        PsStation& replica = *replicas[choice];
        // Interference: CPU pressure on the replica inflates the non-CPU
        // portion of the request (see LbConfig::interference_gamma).
        if (capacities[choice] > 0.0) {
          const double busy_ratio =
              std::min(1.0, static_cast<double>(replica.active_jobs() + 1) /
                                capacities[choice]);
          overhead_s *= 1.0 + cfg.interference_gamma * busy_ratio;
        }
        if (overhead_s >= cfg.timeout_s) {
          if (in_measurement) recorder->record_dropped();
          return;
        }
        const sim::SimTime cpu_deadline =
            arrival + sim::SimTime::from_seconds(cfg.timeout_s - overhead_s);
        replica.submit(demand_s, cpu_deadline,
                       [recorder, arrival, overhead_s, in_measurement](
                           sim::SimTime done_at, bool served) {
                         if (!in_measurement) return;
                         if (!served) {
                           recorder->record_dropped();
                           return;
                         }
                         recorder->record_served(
                             overhead_s + (done_at - arrival).seconds());
                       });
      });
  source.start();
  simulator.run_until(cfg.duration +
                      sim::SimTime::from_seconds(cfg.timeout_s + 1.0));

  LbRunResult result;
  result.latency = recorder->summary();
  result.served_fraction = recorder->served_fraction();
  return result;
}

}  // namespace deflate::wl
