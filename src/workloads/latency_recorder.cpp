#include "workloads/latency_recorder.hpp"
