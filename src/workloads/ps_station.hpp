// Processor-sharing multi-core queueing station.
//
// Models a (possibly deflated) VM or container serving requests: `capacity`
// cores are shared equally among active jobs, with each job bounded by one
// core of parallelism (a web request is single-threaded). Capacity can be
// changed mid-run — that is exactly what CPU deflation does to a running
// service, and the paper's response-time experiments (Figs. 16-19) are this
// model under different capacity settings.
//
// The implementation uses the classic virtual-time formulation of egalitarian
// PS: all jobs accrue service at the same instantaneous rate
// r = min(1, C/n), so each event is O(log n) via a min-heap of virtual
// finish times (lazy deletion for timeouts).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/simulator.hpp"

namespace deflate::wl {

class PsStation {
 public:
  /// `done(completion_time, served)` fires exactly once per job: served on
  /// completion, not-served if the deadline passed first.
  using Completion = std::function<void(sim::SimTime, bool served)>;

  PsStation(sim::Simulator& simulator, double capacity_cores);

  /// Changes the shared capacity (deflation/reinflation) effective now.
  void set_capacity(double cores);
  [[nodiscard]] double capacity() const noexcept { return capacity_; }

  /// Submits a job needing `demand_s` CPU-seconds; it is aborted at
  /// `deadline` if unfinished (pass sim::SimTime::max() for no deadline).
  void submit(double demand_s, sim::SimTime deadline, Completion done);

  [[nodiscard]] std::size_t active_jobs() const noexcept { return live_jobs_; }

  /// Time-averaged number of busy cores since construction.
  [[nodiscard]] double mean_busy_cores() const noexcept;
  /// mean_busy_cores / capacity (using the *current* capacity).
  [[nodiscard]] double utilization() const noexcept;

 private:
  struct Job {
    double virtual_finish = 0.0;
    Completion done;
    sim::EventHandle timeout;
    bool alive = true;
  };
  struct HeapEntry {
    double virtual_finish;
    std::uint64_t id;
    bool operator>(const HeapEntry& rhs) const noexcept {
      if (virtual_finish != rhs.virtual_finish)
        return virtual_finish > rhs.virtual_finish;
      return id > rhs.id;
    }
  };

  [[nodiscard]] double rate() const noexcept;  ///< per-job cores right now
  void advance_virtual_time();
  void reschedule_completion();
  void on_completion();
  void on_timeout(std::uint64_t id);
  void drop_dead_heap_top();

  sim::Simulator& sim_;
  double capacity_;
  double virtual_now_ = 0.0;  ///< CPU-seconds each live job has received
  sim::SimTime last_wall_;
  double busy_core_seconds_ = 0.0;
  sim::SimTime accounting_start_;

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  std::unordered_map<std::uint64_t, Job> jobs_;
  std::size_t live_jobs_ = 0;
  std::uint64_t next_id_ = 0;
  sim::EventHandle completion_event_;
};

}  // namespace deflate::wl
