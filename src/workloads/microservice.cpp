#include "workloads/microservice.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "workloads/latency_recorder.hpp"
#include "workloads/open_loop.hpp"
#include "workloads/ps_station.hpp"

namespace deflate::wl {

namespace {

/// One hop of a request's pre-sampled path.
struct Hop {
  PsStation* station = nullptr;
  double demand_s = 0.0;
};

/// Submits hops sequentially; records the end-to-end latency at the last
/// hop or a drop if any hop times out.
void run_chain(const std::shared_ptr<std::vector<Hop>>& path, std::size_t index,
               sim::SimTime arrival, sim::SimTime deadline, bool in_measurement,
               const std::shared_ptr<LatencyRecorder>& recorder) {
  if (index >= path->size()) {
    if (in_measurement) {
      // arrival of completion event == now; caller recorded via last hop
    }
    return;
  }
  Hop& hop = (*path)[index];
  hop.station->submit(
      hop.demand_s, deadline,
      [path, index, arrival, deadline, in_measurement, recorder](
          sim::SimTime done_at, bool served) {
        if (!served) {
          if (in_measurement) recorder->record_dropped();
          return;
        }
        if (index + 1 < path->size()) {
          run_chain(path, index + 1, arrival, deadline, in_measurement, recorder);
        } else if (in_measurement) {
          recorder->record_served((done_at - arrival).seconds());
        }
      });
}

}  // namespace

MicroserviceResult MicroserviceApp::run(double deflation) const {
  const MicroserviceConfig& cfg = config_;
  sim::Simulator simulator;

  const double deflated_cores =
      std::max(cfg.min_cores_per_service,
               cfg.max_cores_per_service * (1.0 - deflation));

  // Tiered station pools. Databases are never deflated (§7.2: "we deflate
  // all microservices except for the databases").
  std::vector<std::unique_ptr<PsStation>> frontends, logics, caches, dbs;
  for (int i = 0; i < cfg.frontend_count; ++i) {
    frontends.push_back(std::make_unique<PsStation>(simulator, deflated_cores));
  }
  for (int i = 0; i < cfg.logic_count; ++i) {
    logics.push_back(std::make_unique<PsStation>(simulator, deflated_cores));
  }
  for (int i = 0; i < cfg.memcached_count; ++i) {
    caches.push_back(std::make_unique<PsStation>(simulator, deflated_cores));
  }
  for (int i = 0; i < cfg.database_count; ++i) {
    dbs.push_back(std::make_unique<PsStation>(simulator, cfg.max_cores_per_service));
  }

  auto recorder = std::make_shared<LatencyRecorder>();
  util::Rng rng = util::Rng::keyed(cfg.seed, 0x50c1a1ULL);
  std::size_t next_frontend = 0;

  OpenLoopSource source(
      simulator, cfg.request_rate, cfg.duration, rng.derive(1),
      [&, recorder]() mutable {
        const sim::SimTime arrival = simulator.now();
        const bool in_measurement = arrival >= cfg.warmup;
        const sim::SimTime deadline =
            arrival + sim::SimTime::from_seconds(cfg.timeout_s);

        auto demand = [&](double mean_ms) {
          const double sigma = cfg.demand_sigma;
          // lognormal with the requested mean: mu = ln(mean) - sigma^2/2
          return rng.lognormal(std::log(mean_ms / 1000.0) - sigma * sigma / 2.0,
                               sigma);
        };

        // Pre-sample the request's path: frontend, then logic hops
        // interleaved with cache lookups, then one storage query.
        auto path = std::make_shared<std::vector<Hop>>();
        path->push_back(
            {frontends[next_frontend].get(), demand(cfg.frontend_demand_ms)});
        next_frontend = (next_frontend + 1) % frontends.size();

        int cache_left = cfg.cache_lookups;
        for (int hop = 0; hop < cfg.logic_hops; ++hop) {
          const auto logic_idx = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(logics.size()) - 1));
          path->push_back({logics[logic_idx].get(), demand(cfg.logic_demand_ms)});
          if (cache_left > 0) {
            const auto cache_idx = static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(caches.size()) - 1));
            path->push_back(
                {caches[cache_idx].get(), demand(cfg.cache_demand_ms)});
            --cache_left;
          }
        }
        const auto db_idx = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(dbs.size()) - 1));
        path->push_back({dbs[db_idx].get(), demand(cfg.db_demand_ms)});

        run_chain(path, 0, arrival, deadline, in_measurement, recorder);
      });
  source.start();
  simulator.run_until(cfg.duration +
                      sim::SimTime::from_seconds(cfg.timeout_s + 1.0));

  MicroserviceResult result;
  result.latency = recorder->summary();
  result.served_fraction = recorder->served_fraction();
  result.requests = recorder->total();
  double hottest = 0.0;
  for (const auto& s : logics) hottest = std::max(hottest, s->utilization());
  for (const auto& s : frontends) hottest = std::max(hottest, s->utilization());
  for (const auto& s : caches) hottest = std::max(hottest, s->utilization());
  result.bottleneck_utilization = hottest;
  return result;
}

}  // namespace deflate::wl
