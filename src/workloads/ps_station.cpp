#include "workloads/ps_station.hpp"

#include <algorithm>
#include <cmath>

namespace deflate::wl {

namespace {
constexpr double kVirtualEps = 1e-12;
}

PsStation::PsStation(sim::Simulator& simulator, double capacity_cores)
    : sim_(simulator),
      capacity_(std::max(0.0, capacity_cores)),
      last_wall_(simulator.now()),
      accounting_start_(simulator.now()) {}

double PsStation::rate() const noexcept {
  if (live_jobs_ == 0) return 0.0;
  return std::min(1.0, capacity_ / static_cast<double>(live_jobs_));
}

void PsStation::advance_virtual_time() {
  const sim::SimTime now = sim_.now();
  const double dt = (now - last_wall_).seconds();
  if (dt > 0.0) {
    const double r = rate();
    virtual_now_ += dt * r;
    busy_core_seconds_ += dt * r * static_cast<double>(live_jobs_);
  }
  last_wall_ = now;
}

void PsStation::set_capacity(double cores) {
  advance_virtual_time();
  capacity_ = std::max(0.0, cores);
  reschedule_completion();
}

void PsStation::submit(double demand_s, sim::SimTime deadline, Completion done) {
  advance_virtual_time();
  const std::uint64_t id = next_id_++;
  Job job;
  job.virtual_finish = virtual_now_ + std::max(0.0, demand_s);
  job.done = std::move(done);
  if (deadline < sim::SimTime::max()) {
    job.timeout = sim_.schedule_at(std::max(deadline, sim_.now()),
                                   [this, id] { on_timeout(id); });
  }
  heap_.push(HeapEntry{job.virtual_finish, id});
  jobs_.emplace(id, std::move(job));
  ++live_jobs_;
  reschedule_completion();
}

void PsStation::drop_dead_heap_top() {
  while (!heap_.empty()) {
    const auto it = jobs_.find(heap_.top().id);
    if (it != jobs_.end() && it->second.alive) return;
    heap_.pop();
    if (it != jobs_.end()) jobs_.erase(it);
  }
}

void PsStation::reschedule_completion() {
  completion_event_.cancel();
  drop_dead_heap_top();
  if (heap_.empty()) return;
  const double r = rate();
  if (r <= 0.0) return;  // fully deflated: jobs only leave via timeout
  const double remaining = std::max(0.0, heap_.top().virtual_finish - virtual_now_);
  const auto delay = sim::SimTime::from_micros(static_cast<std::int64_t>(
      std::ceil(remaining / r * 1e6)));
  completion_event_ = sim_.schedule_in(delay, [this] { on_completion(); });
}

void PsStation::on_completion() {
  advance_virtual_time();
  // Complete every job whose virtual finish time has been reached (ties and
  // rounding grouped into one event).
  for (;;) {
    drop_dead_heap_top();
    if (heap_.empty() ||
        heap_.top().virtual_finish > virtual_now_ + kVirtualEps) {
      break;
    }
    const std::uint64_t id = heap_.top().id;
    heap_.pop();
    auto it = jobs_.find(id);
    Job job = std::move(it->second);
    jobs_.erase(it);
    --live_jobs_;
    job.timeout.cancel();
    job.done(sim_.now(), /*served=*/true);
  }
  reschedule_completion();
}

void PsStation::on_timeout(std::uint64_t id) {
  const auto it = jobs_.find(id);
  if (it == jobs_.end() || !it->second.alive) return;
  advance_virtual_time();
  Completion done = std::move(it->second.done);
  it->second.alive = false;  // heap entry removed lazily
  it->second.done = nullptr;
  --live_jobs_;
  done(sim_.now(), /*served=*/false);
  reschedule_completion();
}

double PsStation::mean_busy_cores() const noexcept {
  const double elapsed = (last_wall_ - accounting_start_).seconds();
  if (elapsed <= 0.0) return 0.0;
  return busy_core_seconds_ / elapsed;
}

double PsStation::utilization() const noexcept {
  return capacity_ > 0.0 ? mean_busy_cores() / capacity_ : 0.0;
}

}  // namespace deflate::wl
