#include "analysis/feasibility.hpp"

#include <algorithm>
#include <mutex>

#include "util/thread_pool.hpp"

namespace deflate::analysis {

std::vector<double> cpu_underallocation_fractions(
    std::span<const trace::VmRecord> records, double deflation,
    const std::function<bool(const trace::VmRecord&)>& filter) {
  const double threshold = 1.0 - deflation;
  std::vector<double> fractions(records.size(), -1.0);
  util::parallel_for(records.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const trace::VmRecord& record = records[i];
      if (filter && !filter(record)) continue;
      fractions[i] = record.cpu.fraction_above(threshold);
    }
  });
  // Compact out filtered entries while preserving order.
  std::vector<double> out;
  out.reserve(fractions.size());
  for (const double f : fractions) {
    if (f >= 0.0) out.push_back(f);
  }
  return out;
}

util::BoxStats cpu_underallocation_box(
    std::span<const trace::VmRecord> records, double deflation,
    const std::function<bool(const trace::VmRecord&)>& filter) {
  return util::BoxStats::from(
      cpu_underallocation_fractions(records, deflation, filter));
}

std::vector<std::vector<util::BoxStats>> cpu_underallocation_boxes(
    trace::VmArrivalStream& stream, std::span<const double> deflations,
    std::size_t group_count,
    const std::function<int(const trace::VmRecord&)>& group) {
  std::vector<std::vector<std::vector<double>>> fractions(
      group_count, std::vector<std::vector<double>>(deflations.size()));
  while (const auto record = stream.next()) {
    const int g = group ? group(*record) : 0;
    if (g < 0 || static_cast<std::size_t>(g) >= group_count) continue;
    for (std::size_t i = 0; i < deflations.size(); ++i) {
      fractions[g][i].push_back(
          record->cpu.fraction_above(1.0 - deflations[i]));
    }
  }
  std::vector<std::vector<util::BoxStats>> out(group_count);
  for (std::size_t g = 0; g < group_count; ++g) {
    out[g].reserve(deflations.size());
    for (std::size_t i = 0; i < deflations.size(); ++i) {
      out[g].push_back(util::BoxStats::from(fractions[g][i]));
    }
  }
  return out;
}

util::BoxStats container_underallocation_box(
    std::span<const trace::ContainerRecord> containers, ContainerSeries series,
    double deflation) {
  const double threshold = 1.0 - deflation;
  std::vector<double> fractions(containers.size());
  util::parallel_for(containers.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      fractions[i] = series(containers[i]).fraction_above(threshold);
    }
  });
  return util::BoxStats::from(fractions);
}

util::RunningStats container_utilization_stats(
    std::span<const trace::ContainerRecord> containers, ContainerSeries series) {
  std::mutex merge_mutex;
  util::RunningStats total;
  util::parallel_for(containers.size(), [&](std::size_t begin, std::size_t end) {
    util::RunningStats local;
    for (std::size_t i = begin; i < end; ++i) {
      for (const float s : series(containers[i]).samples()) {
        local.push(static_cast<double>(s));
      }
    }
    const std::scoped_lock lock(merge_mutex);
    total.merge(local);
  });
  return total;
}

double throughput_loss(const trace::VmRecord& record, double alloc) {
  const std::vector<float> allocation(record.cpu.size(),
                                      static_cast<float>(alloc));
  const auto result = record.cpu.underallocation(allocation);
  return result.used > 0.0 ? result.lost / result.used : 0.0;
}

}  // namespace deflate::analysis
