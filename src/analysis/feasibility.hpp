// Usage-based deflation feasibility analysis (§3.2).
//
// For a deflation level d, a VM's allocation shrinks to (1-d)*spec; the VM
// is "underallocated" in any interval whose (max) usage exceeds that. The
// statistics here — distribution across VMs of the fraction of time spent
// underallocated, with class/size/P95 breakdowns — are exactly what
// Figures 5-12 plot.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "trace/alibaba.hpp"
#include "trace/replay.hpp"
#include "trace/vm_record.hpp"
#include "util/stats.hpp"

namespace deflate::analysis {

/// Distribution, across VMs, of time-fraction-above-deflated-allocation.
/// `filter` restricts the VM population (class/size/peak breakdowns);
/// pass nullptr for all VMs.
[[nodiscard]] util::BoxStats cpu_underallocation_box(
    std::span<const trace::VmRecord> records, double deflation,
    const std::function<bool(const trace::VmRecord&)>& filter = nullptr);

/// Per-VM fractions (the raw points behind the box plot).
[[nodiscard]] std::vector<double> cpu_underallocation_fractions(
    std::span<const trace::VmRecord> records, double deflation,
    const std::function<bool(const trace::VmRecord&)>& filter = nullptr);

/// Streaming variant for bounded-memory traces: consumes `stream` in ONE
/// pass, computing every (group, deflation-level) box together, so the
/// trace is never materialized — only the per-VM statistic doubles are
/// retained. `group` maps a VM to an index in [0, group_count) (negative or
/// out-of-range drops the VM; nullptr puts every VM in group 0). The result
/// is indexed [group][deflation]. Numerically identical to calling
/// cpu_underallocation_box per (group, level) on the materialized records:
/// the per-VM statistic is order-independent and BoxStats sorts its input.
[[nodiscard]] std::vector<std::vector<util::BoxStats>>
cpu_underallocation_boxes(
    trace::VmArrivalStream& stream, std::span<const double> deflations,
    std::size_t group_count = 1,
    const std::function<int(const trace::VmRecord&)>& group = nullptr);

/// Selector for one of the container series (memory, memory_bw, ...).
using ContainerSeries =
    const trace::UtilizationSeries& (*)(const trace::ContainerRecord&);

[[nodiscard]] inline const trace::UtilizationSeries& memory_series(
    const trace::ContainerRecord& c) {
  return c.memory;
}
[[nodiscard]] inline const trace::UtilizationSeries& memory_bw_series(
    const trace::ContainerRecord& c) {
  return c.memory_bw;
}
[[nodiscard]] inline const trace::UtilizationSeries& disk_series(
    const trace::ContainerRecord& c) {
  return c.disk_bw;
}
[[nodiscard]] inline const trace::UtilizationSeries& net_series(
    const trace::ContainerRecord& c) {
  return c.net_bw;
}

/// Box plot of time-above-deflated-allocation for a container resource
/// (Figs. 9, 11, 12).
[[nodiscard]] util::BoxStats container_underallocation_box(
    std::span<const trace::ContainerRecord> containers, ContainerSeries series,
    double deflation);

/// Population-wide utilization statistics of a container resource (Fig. 10
/// reports the mean and max memory-bandwidth utilization).
[[nodiscard]] util::RunningStats container_utilization_stats(
    std::span<const trace::ContainerRecord> containers, ContainerSeries series);

/// Throughput loss of one VM under a fixed deflated allocation `alloc`
/// (fraction of spec): sum(max(0, u - alloc)) / sum(u) (§7.4.2, Fig. 4).
[[nodiscard]] double throughput_loss(const trace::VmRecord& record, double alloc);

}  // namespace deflate::analysis
