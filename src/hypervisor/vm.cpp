#include "hypervisor/vm.hpp"

#include <algorithm>

namespace deflate::hv {

const char* workload_class_name(WorkloadClass c) noexcept {
  switch (c) {
    case WorkloadClass::Interactive: return "interactive";
    case WorkloadClass::DelayInsensitive: return "delay-insensitive";
    case WorkloadClass::Unknown: return "unknown";
  }
  return "?";
}

Vm::Vm(VmSpec spec)
    : spec_(std::move(spec)), guest_(spec_.vcpus, spec_.memory_mib) {
  cgroups_.cpu_quota_cores = static_cast<double>(spec_.vcpus);
  cgroups_.memory_limit_mib = spec_.memory_mib;
  cgroups_.disk_bw_mbps = spec_.disk_bw_mbps;
  cgroups_.net_bw_mbps = spec_.net_bw_mbps;
}

void Vm::set_cpu_quota(double cores) noexcept {
  cgroups_.cpu_quota_cores =
      std::clamp(cores, 0.0, static_cast<double>(spec_.vcpus));
}

void Vm::set_memory_limit(double mib) noexcept {
  cgroups_.memory_limit_mib = std::clamp(mib, 0.0, spec_.memory_mib);
}

void Vm::set_disk_throttle(double mbps) noexcept {
  cgroups_.disk_bw_mbps = std::clamp(mbps, 0.0, spec_.disk_bw_mbps);
}

void Vm::set_net_throttle(double mbps) noexcept {
  cgroups_.net_bw_mbps = std::clamp(mbps, 0.0, spec_.net_bw_mbps);
}

res::ResourceVector Vm::plugged() const noexcept {
  // Ballooned pages are pinned: the guest sees them plugged but cannot use
  // them, so they do not count toward the allocation.
  return {static_cast<double>(guest_.vcpus()), guest_.usable_memory_mib(),
          spec_.disk_bw_mbps, spec_.net_bw_mbps};
}

res::ResourceVector Vm::effective_allocation() const noexcept {
  const res::ResourceVector limits{cgroups_.cpu_quota_cores,
                                   cgroups_.memory_limit_mib,
                                   cgroups_.disk_bw_mbps, cgroups_.net_bw_mbps};
  return plugged().elementwise_min(limits);
}

double Vm::deflation_fraction(res::Resource r) const noexcept {
  const double spec_amount = spec_.vector()[r];
  if (spec_amount <= 0.0) return 0.0;
  return std::clamp(1.0 - effective_allocation()[r] / spec_amount, 0.0, 1.0);
}

double Vm::max_deflation_fraction() const noexcept {
  double worst = 0.0;
  for (const res::Resource r : res::all_resources) {
    worst = std::max(worst, deflation_fraction(r));
  }
  return worst;
}

double Vm::memory_swap_pressure() const noexcept {
  return guest_.swap_pressure(effective_allocation()[res::Resource::Memory]);
}

res::ResourceVector Vm::allocation_floor() const noexcept {
  // Keep the guest bootable: a sliver of a core, one memory block, and a
  // trickle of I/O, or the user-specified minimum if that is higher.
  const res::ResourceVector survival{0.05, kMemoryBlockMib, 1.0, 1.0};
  return spec_.min_vector().elementwise_max(
      survival.elementwise_min(spec_.vector()));
}

}  // namespace deflate::hv
