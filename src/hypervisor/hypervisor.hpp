// Simulated per-server hypervisor (the KVM stand-in, DESIGN.md §1).
//
// Exposes exactly the control surface the paper's prototype drives through
// libvirt + cgroups + the QEMU guest agent:
//   * transparent multiplexing: cgroup CPU quota, memory limit, blkio and
//     network throttles (§4.2);
//   * explicit hotplug: agent-mediated vCPU / memory plug & unplug with
//     guest safety semantics (§4.3).
// Policy code should prefer the virt:: facade (libvirt-like API) layered on
// top of this class.
#pragma once

#include <cstdint>

#include "hypervisor/host.hpp"

namespace deflate::hv {

/// Outcome of one hotplug request (explicit deflation is allowed to return
/// "unfinished", §6).
struct HotplugResult {
  double requested = 0.0;  ///< what the caller asked for
  double achieved = 0.0;   ///< what the guest actually ended up with
  [[nodiscard]] bool complete() const noexcept { return achieved <= requested; }
};

class SimHypervisor {
 public:
  SimHypervisor(std::uint64_t host_id, res::ResourceVector capacity)
      : host_(host_id, capacity) {}

  [[nodiscard]] Host& host() noexcept { return host_; }
  [[nodiscard]] const Host& host() const noexcept { return host_; }

  /// Boots a VM. The VM starts with its full spec plugged and un-throttled;
  /// callers that want to *launch deflated* (§5.1.1) apply a mechanism right
  /// after. Throws on duplicate id.
  Vm& create_vm(const VmSpec& spec) { return host_.add_vm(spec); }

  /// Destroys the VM, releasing its resources. Returns false if unknown.
  bool destroy_vm(std::uint64_t vm_id) { return host_.remove_vm(vm_id); }

  // --- transparent (cgroups) ops --------------------------------------------
  void set_cpu_quota(Vm& vm, double cores) const { vm.set_cpu_quota(cores); }
  void set_memory_limit(Vm& vm, double mib) const { vm.set_memory_limit(mib); }
  void set_disk_throttle(Vm& vm, double mbps) const { vm.set_disk_throttle(mbps); }
  void set_net_throttle(Vm& vm, double mbps) const { vm.set_net_throttle(mbps); }

  // --- explicit (agent-mediated hotplug) ops ---------------------------------
  /// Requests the guest online exactly `vcpus`; the guest may stop at its
  /// safety floor.
  HotplugResult hotplug_vcpus(Vm& vm, int vcpus) const;
  /// Requests plugged memory of `mib` (block-aligned by the guest).
  HotplugResult hotplug_memory(Vm& vm, double mib) const;

 private:
  Host host_;
};

}  // namespace deflate::hv
