#include "hypervisor/host.hpp"

#include <algorithm>
#include <stdexcept>

namespace deflate::hv {

Host::Host(std::uint64_t id, res::ResourceVector capacity)
    : id_(id), capacity_(capacity) {}

Vm& Host::add_vm(VmSpec spec) {
  const std::uint64_t vm_id = spec.id;
  auto [it, inserted] = vms_.emplace(vm_id, std::make_unique<Vm>(std::move(spec)));
  if (!inserted) {
    throw std::invalid_argument("Host::add_vm: duplicate VM id");
  }
  order_.push_back(vm_id);
  return *it->second;
}

bool Host::remove_vm(std::uint64_t vm_id) {
  const auto it = vms_.find(vm_id);
  if (it == vms_.end()) return false;
  vms_.erase(it);
  order_.erase(std::remove(order_.begin(), order_.end(), vm_id), order_.end());
  return true;
}

Vm* Host::find_vm(std::uint64_t vm_id) noexcept {
  const auto it = vms_.find(vm_id);
  return it == vms_.end() ? nullptr : it->second.get();
}

const Vm* Host::find_vm(std::uint64_t vm_id) const noexcept {
  const auto it = vms_.find(vm_id);
  return it == vms_.end() ? nullptr : it->second.get();
}

std::vector<Vm*> Host::vms() noexcept {
  std::vector<Vm*> out;
  out.reserve(order_.size());
  for (const auto id : order_) out.push_back(vms_.at(id).get());
  return out;
}

std::vector<const Vm*> Host::vms() const noexcept {
  std::vector<const Vm*> out;
  out.reserve(order_.size());
  for (const auto id : order_) out.push_back(vms_.at(id).get());
  return out;
}

res::ResourceVector Host::committed() const noexcept {
  res::ResourceVector total;
  for (const auto id : order_) total += vms_.at(id)->spec().vector();
  return total;
}

res::ResourceVector Host::allocated() const noexcept {
  res::ResourceVector total;
  for (const auto id : order_) total += vms_.at(id)->effective_allocation();
  return total;
}

res::ResourceVector Host::available() const noexcept {
  return (capacity_ - allocated()).clamped_nonneg();
}

res::ResourceVector Host::deflatable_headroom() const noexcept {
  res::ResourceVector total;
  for (const auto id : order_) {
    const Vm& vm = *vms_.at(id);
    if (!vm.spec().deflatable) continue;
    total += (vm.effective_allocation() - vm.allocation_floor()).clamped_nonneg();
  }
  return total;
}

double Host::overcommit_ratio() const noexcept {
  const res::ResourceVector c = committed();
  double worst = 0.0;
  for (const res::Resource r : {res::Resource::Cpu, res::Resource::Memory}) {
    if (capacity_[r] > 0.0) worst = std::max(worst, c[r] / capacity_[r]);
  }
  return worst;
}

}  // namespace deflate::hv
